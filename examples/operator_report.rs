//! Operator report: the full five-RQ reliability report for both Tsubame
//! generations, the cross-generation comparison, and serialized logs an
//! operations team could archive.
//!
//! Run with:
//!
//! ```sh
//! cargo run -p failmitigate --example operator_report
//! ```

use failsim::{Simulator, SystemModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t2 = Simulator::new(SystemModel::tsubame2(), 42).generate()?;
    let t3 = Simulator::new(SystemModel::tsubame3(), 43).generate()?;

    println!("{}", failscope::render_report(&t2));
    println!("{}", failscope::render_report(&t3));
    println!("{}", failscope::render_comparison(&t2, &t3));

    // What the analyses imply operationally, per system.
    for (name, log) in [("Tsubame-2", &t2), ("Tsubame-3", &t3)] {
        if let Some(plan) =
            failmitigate::OperationsPlan::from_log(log, failmitigate::PlanConfig::default())
        {
            println!("--- {name} ---");
            println!("{}", plan.render());
        }
    }

    // Archive anonymized copies, as a center would before sharing data.
    let dir = std::env::temp_dir().join("failscope-operator-report");
    std::fs::create_dir_all(&dir)?;
    for (name, log) in [("tsubame2", &t2), ("tsubame3", &t3)] {
        let anon = faillog::anonymize_nodes(log, 0xFA11_5C0F);
        let path = dir.join(format!("{name}.fslog"));
        faillog::save(&path, &anon)?;
        let summary = faillog::summarize(&anon);
        println!(
            "archived {} ({} failures, {} failing nodes) -> {}",
            name,
            summary.failures,
            summary.failing_nodes,
            path.display()
        );
    }
    Ok(())
}
