//! Checkpoint planner: derive optimal checkpoint intervals (Young/Daly)
//! from the measured MTBF of each system generation, and show how the
//! 4x MTBF improvement changes the plan.
//!
//! Run with:
//!
//! ```sh
//! cargo run -p failmitigate --example checkpoint_planner
//! ```

use failmitigate::{sweep_costs, CheckpointPlan};
use failsim::{Simulator, SystemModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let systems = [
        ("Tsubame-2", SystemModel::tsubame2(), 42u64),
        ("Tsubame-3", SystemModel::tsubame3(), 43u64),
    ];

    for (name, model, seed) in systems {
        let log = Simulator::new(model, seed).generate()?;
        println!("=== {name} ===");

        // A 0.25 h (15-minute) checkpoint of a large GPU job.
        let plan = CheckpointPlan::from_log(&log, 0.25)?;
        let young = plan.young_interval_hours();
        let daly = plan.daly_interval_hours();
        println!(
            "MTBF {:.1} h -> checkpoint every {:.2} h (Young) / {:.2} h (Daly)",
            plan.mtbf_hours(),
            young,
            daly
        );
        println!(
            "efficiency at the Daly interval: {:.1}%",
            plan.efficiency(daly) * 100.0
        );
        println!(
            "1000 h of compute takes {:.0} wall-clock hours",
            plan.expected_makespan_hours(1000.0, daly)
        );

        // Sweep checkpoint costs: cheaper checkpoints buy efficiency.
        println!("cost sweep (cost h -> interval h, efficiency):");
        for (cost, tau, eff) in sweep_costs(plan.mtbf_hours(), &[0.05, 0.1, 0.25, 0.5, 1.0]) {
            println!("  {cost:>5.2} -> {tau:>6.2} h, {:>5.1}%", eff * 100.0);
        }
        println!();
    }
    Ok(())
}
