//! What-if study: how do failures scale as nodes pack more GPUs?
//!
//! The paper's RQ3 warns that "the number of GPUs per node is likely to
//! increase" (Summit, Sierra). This example sweeps hypothetical
//! Tsubame-3 successors from 1 to 8 GPUs per node, generates a year of
//! failures for each, and reports the multi-GPU failure exposure plus the
//! scheduling and checkpointing consequences.
//!
//! Run with:
//!
//! ```sh
//! cargo run -p failmitigate --example multi_gpu_what_if
//! ```

use failmitigate::{evaluate_policy, AllocationPolicy, SlotRiskModel};
use failscope::{InvolvementTable, TbfAnalysis};
use failsim::{ScenarioBuilder, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("one year of a hypothetical 540-node system, varying GPUs per node\n");
    println!(
        "{:>4} {:>9} {:>10} {:>12} {:>14}",
        "GPUs", "failures", "MTBF (h)", "multi-GPU %", "first-fit risk"
    );

    for gpus in 1..=8u8 {
        let model = ScenarioBuilder::new(format!("hypo-{gpus}gpu"))
            .gpus_per_node(gpus)
            .window_days(365)
            // Hold the per-GPU failure rate constant: more GPUs per node
            // means proportionally more GPU failures system-wide.
            .system_mtbf_hours(72.4 * 4.0 / gpus as f64)
            .multi_gpu_fraction(0.07 * gpus as f64 / 4.0)
            .build()
            .expect("valid scenario");
        let log = Simulator::new(model, 1000 + gpus as u64).generate()?;

        let tbf = TbfAnalysis::from_log(&log).expect("enough failures");
        let inv = InvolvementTable::from_log(&log);
        let risk = SlotRiskModel::from_log(&log).map(|m| {
            let jobs: Vec<(usize, f64)> = (0..100).map(|i| (1 + i % 2, 48.0)).collect();
            evaluate_policy(&m, AllocationPolicy::FirstFit, &jobs)
                .mean_interruption_probability
        });

        println!(
            "{:>4} {:>9} {:>10.1} {:>11.1}% {:>13.2}%",
            gpus,
            log.len(),
            tbf.mtbf_hours(),
            (inv.multi_gpu_fraction() * 100.0).max(0.0),
            risk.unwrap_or(0.0) * 100.0
        );
    }

    println!(
        "\nreading: packing more GPUs per node both shortens the system MTBF\n\
         (more components per node) and raises the simultaneous multi-GPU\n\
         share — the failure mode RQ3 tells operators to watch."
    );
    Ok(())
}
