//! Spare provisioning: size on-site spare pools for the components with
//! long repair tails (Fig. 10's power-board/SSD examples), and validate
//! the analytic sizing with the inventory simulation.
//!
//! Run with:
//!
//! ```sh
//! cargo run -p failmitigate --example spare_provisioning
//! ```

use failmitigate::{simulate_inventory, SparePolicy};
use failsim::{Simulator, SystemModel};
use failtypes::ComponentClass;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let log = Simulator::new(SystemModel::tsubame3(), 43).generate()?;
    println!("sizing spare pools from the measured Tsubame-3 log\n");

    let classes = [
        ComponentClass::Gpu,
        ComponentClass::Memory,
        ComponentClass::Storage,
        ComponentClass::Power,
        ComponentClass::Board,
    ];
    let lead_times = [7.0 * 24.0, 14.0 * 24.0, 28.0 * 24.0];

    println!(
        "{:<10} {:>12} | {:>8} {:>8} {:>8}   (spares for <=5% stockout)",
        "class", "MTBF (h)", "1 wk", "2 wk", "4 wk"
    );
    for class in classes {
        let Some(mtbf) = failscope::class_mtbf_hours(&log, class) else {
            continue;
        };
        let mut row = format!("{:<10} {:>12.1} |", class.name(), mtbf);
        for lead in lead_times {
            let policy = SparePolicy::from_log(&log, class, lead).expect("class failed");
            row.push_str(&format!(" {:>8}", policy.required_spares(0.05)));
        }
        println!("{row}");
    }

    // Validate the GPU sizing by simulating two years of operations.
    let policy = SparePolicy::from_log(&log, ComponentClass::Gpu, 14.0 * 24.0).unwrap();
    let spares = policy.required_spares(0.05);
    let outcome = simulate_inventory(policy, spares, 2.0 * 8760.0, 7);
    println!(
        "\nvalidation: {} GPU spares, 2-week lead time, 2 simulated years:",
        spares
    );
    println!(
        "  {} demands served from stock, {} stockouts ({:.1}%)",
        outcome.served_immediately,
        outcome.stockouts,
        outcome.stockout_fraction * 100.0
    );

    // The trade-off the paper warns about: excessive spares are dead
    // capital. Show the marginal benefit per extra spare.
    println!("\nmarginal stockout probability per spare (2-week lead time):");
    for s in 0..=spares + 2 {
        println!("  {s} spares -> {:>6.2}%", policy.stockout_probability(s) * 100.0);
    }
    Ok(())
}
