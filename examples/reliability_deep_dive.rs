//! Reliability deep dive: the analyses that go beyond the paper's
//! figures — node survival curves, repair overlap/availability, failure
//! rate trends, and distribution fitting of the TBF/TTR samples.
//!
//! Run with:
//!
//! ```sh
//! cargo run -p failmitigate --example reliability_deep_dive
//! ```

use failmitigate::{required_crews, simulate_staffing};
use failscope::{laplace_trend, node_lifetimes, rolling_rate, AvailabilityAnalysis, NodeSurvival};
use failsim::{Simulator, SystemModel};
use failstats::fit::select_best_family;
use failstats::mann_whitney;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t2 = Simulator::new(SystemModel::tsubame2(), 42).generate()?;
    let t3 = Simulator::new(SystemModel::tsubame3(), 43).generate()?;

    // 1. Node survival: how long does a node live before its first
    //    failure?
    println!("== Node survival (Kaplan-Meier) ==");
    for (name, log) in [("Tsubame-2", &t2), ("Tsubame-3", &t3)] {
        let s = NodeSurvival::from_log(log).expect("nodes exist");
        let horizon = log.window().duration().get();
        println!(
            "{name}: {} of {} nodes failed; S(1000h)={:.3}  S(5000h)={:.3}  S(end)={:.3}",
            s.observed_failures(),
            s.observed_failures() + s.censored_nodes(),
            s.survival_at(1000.0),
            s.survival_at(5000.0),
            s.survival_at(horizon),
        );
    }

    // 2. Repair overlap: the RQ5 warning quantified.
    println!("\n== Repair overlap (MTTR ~ MTBF) ==");
    for (name, log) in [("Tsubame-2", &t2), ("Tsubame-3", &t3)] {
        let a = AvailabilityAnalysis::from_log(log).expect("non-empty");
        println!(
            "{name}: {:.0}% of failures land on open repairs; mean {:.2} in flight (max {}); availability {:.3}%",
            a.overlap_probability() * 100.0,
            a.mean_concurrent_repairs(),
            a.max_concurrent_repairs(),
            a.node_availability() * 100.0,
        );
    }

    // 3. Failure-rate trend over the system's life.
    println!("\n== Failure-rate trend ==");
    for (name, log) in [("Tsubame-2", &t2), ("Tsubame-3", &t3)] {
        let trend = laplace_trend(log).expect("enough failures");
        let monthly = rolling_rate(log, 730.0);
        let rates: Vec<String> = monthly
            .iter()
            .step_by(3)
            .map(|b| format!("{:.2}", b.rate_per_hour * 24.0))
            .collect();
        println!(
            "{name}: Laplace U = {:+.2} (p = {:.2}) — {}; failures/day every 3rd month: {}",
            trend.u,
            trend.p_value,
            if trend.increasing_at(0.05) {
                "rate increasing"
            } else if trend.decreasing_at(0.05) {
                "rate decreasing"
            } else {
                "no significant trend"
            },
            rates.join(" "),
        );
    }

    // 4. Which family fits each system's inter-failure gaps?
    println!("\n== TBF distribution fitting (AIC) ==");
    for (name, log) in [("Tsubame-2", &t2), ("Tsubame-3", &t3)] {
        let times: Vec<f64> = log.times().map(|h| h.get()).collect();
        let gaps: Vec<f64> = failstats::inter_arrival_times(&times)
            .into_iter()
            .filter(|&g| g > 0.0)
            .collect();
        let ranked = select_best_family(&gaps);
        let list: Vec<String> = ranked
            .iter()
            .map(|m| format!("{} (AIC {:.0})", m.family, m.aic))
            .collect();
        println!("{name}: {}", list.join("  >  "));
    }

    // 5. Staffing: how many repair crews keep queueing negligible?
    println!("\n== Repair-crew staffing ==");
    for (name, log) in [("Tsubame-2", &t2), ("Tsubame-3", &t3)] {
        let one = simulate_staffing(log, 1).expect("non-empty");
        let crews = required_crews(log, 1.05, 64).expect("achievable");
        println!(
            "{name}: one crew inflates MTTR {:.1}x; {crews} crews keep overhead under 5%",
            one.inflation(),
        );
    }

    // 6. Do the generations differ in per-node hazard? (log-rank)
    println!("\n== Node-lifetime comparison (log-rank) ==");
    let lr = failstats::log_rank(&node_lifetimes(&t2), &node_lifetimes(&t3)).expect("events");
    println!(
        "chi2 = {:.1}, p = {:.4} -> {}",
        lr.statistic,
        lr.p_value,
        if lr.rejects_at(0.05) {
            "node hazards differ across generations"
        } else {
            "no detectable difference"
        }
    );

    // 7. Are the two generations' repair-time distributions the same?
    println!("\n== TTR comparison across generations (Mann-Whitney) ==");
    let ttr2: Vec<f64> = t2.iter().map(|r| r.ttr().get()).collect();
    let ttr3: Vec<f64> = t3.iter().map(|r| r.ttr().get()).collect();
    let test = mann_whitney(&ttr2, &ttr3).expect("non-empty");
    println!(
        "U = {:.0}, p = {:.3}, effect size = {:.2} -> {}",
        test.u,
        test.p_value,
        test.effect_size,
        if test.rejects_at(0.05) {
            "distributions differ"
        } else {
            "no significant difference (the paper's point: MTTR did not improve)"
        }
    );
    Ok(())
}
