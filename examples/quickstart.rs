//! Quickstart: generate a calibrated Tsubame-3 failure log, run the core
//! analyses, and print the headline numbers.
//!
//! Run with:
//!
//! ```sh
//! cargo run -p failscope --example quickstart
//! ```

use failscope::{CategoryBreakdown, InvolvementTable, TbfAnalysis, TtrAnalysis};
use failsim::{Simulator, SystemModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a log statistically shaped like the paper's Tsubame-3
    //    dataset (the real logs are closed data).
    let log = Simulator::new(SystemModel::tsubame3(), 43).generate()?;
    println!("{log}");

    // 2. RQ1 — which failure categories dominate?
    let cats = CategoryBreakdown::from_log(&log);
    println!("\nTop failure categories:");
    for share in cats.shares().iter().take(5) {
        println!(
            "  {:<12} {:>4} failures ({:>5.2}%)",
            share.category.label(),
            share.count,
            share.fraction * 100.0
        );
    }

    // 3. RQ3 — do multiple GPUs fail simultaneously?
    let inv = InvolvementTable::from_log(&log);
    println!(
        "\nMulti-GPU failures: {:.1}% of GPU failures with known involvement",
        inv.multi_gpu_fraction() * 100.0
    );

    // 4. RQ4/RQ5 — how reliable, and how fast to repair?
    let tbf = TbfAnalysis::from_log(&log).expect("log has many failures");
    let ttr = TtrAnalysis::from_log(&log).expect("log is non-empty");
    println!("\nMTBF {:.1} h (p75 {:.1} h)", tbf.mtbf_hours(), tbf.p75_hours());
    println!("MTTR {:.1} h (median {:.1} h)", ttr.mttr_hours(), ttr.median_hours());

    // 5. Serialize the log for later analysis.
    let text = faillog::to_string(&log)?;
    println!("\nSerialized log: {} bytes of failscope-log v1", text.len());
    Ok(())
}
