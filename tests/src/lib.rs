//! Integration test suite for the failscope workspace. See `tests/*.rs`.
