//! End-to-end tests for `faild`, the query server: concurrent clients
//! get byte-identical output to the local `failapi` path (which is the
//! CLI path), the render cache invalidates when a log grows, malformed
//! requests come back as typed error envelopes, and a graceful shutdown
//! persists `.fsidx` snapshots for every log the server cold-parsed.

use std::sync::mpsc;
use std::thread;

use failapi::{wire, OutputFormat, QueryEngine, QueryRequest, QuerySource, WatchRequest};
use failserver::client::Connection;
use failserver::{Endpoint, ServeSummary, ServerConfig};
use failsim::{Simulator, SystemModel};
use failtypes::Result;

const ANALYSIS: &str =
    "header,categories,spatial,involvement,tbf,ttr,availability,survival,seasonal";

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("failsuite-server");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn write_log(name: &str, model: SystemModel) -> String {
    let path = temp_path(name);
    let log = Simulator::new(model, 42).generate().expect("simulates");
    faillog::save(path.to_str().unwrap(), &log).expect("saves");
    path.to_str().unwrap().to_string()
}

/// Starts `faild` on a fresh endpoint in a background thread and
/// returns the bound endpoint plus the join handle for its summary.
fn start_server(
    endpoint: Endpoint,
    max_inflight: usize,
) -> (Endpoint, thread::JoinHandle<Result<ServeSummary>>) {
    let (tx, rx) = mpsc::channel();
    let handle = thread::spawn(move || {
        failserver::serve(
            ServerConfig {
                endpoint,
                max_inflight,
            },
            move |bound| {
                tx.send(bound.clone()).expect("report bound endpoint");
            },
        )
    });
    let bound = rx.recv().expect("server binds");
    (bound, handle)
}

/// What the CLI would print for this request: the same
/// `failapi::QueryEngine` path `failctl report`/`compare` route
/// through, executed cold in-process.
fn local(req: &QueryRequest) -> String {
    QueryEngine::new().execute(req).expect("local query").output
}

#[test]
fn concurrent_clients_get_cli_identical_output_warm_and_cold() {
    let t2 = write_log("fleet-t2.fslog", SystemModel::tsubame2());
    let t3 = write_log("fleet-t3.fslog", SystemModel::tsubame3());
    let (bound, handle) = start_server(Endpoint::tcp("127.0.0.1:0"), 4);

    // A mixed workload over both canonical seed logs, every --threads
    // value 1..=4, text and JSON, filtered and not. The expected bytes
    // come from the local engine — i.e. the CLI's own execution path.
    let mut requests: Vec<QueryRequest> = Vec::new();
    for threads in 1..=4 {
        requests.push(
            QueryRequest::report(QuerySource::file(&t2))
                .sections(ANALYSIS)
                .threads(threads),
        );
        requests.push(
            QueryRequest::report(QuerySource::file(&t3))
                .sections(ANALYSIS)
                .format(OutputFormat::Json)
                .threads(threads),
        );
        requests.push(
            QueryRequest::report(QuerySource::file(&t2))
                .sections("tbf,ttr")
                .where_expr("category == gpu && ttr > 24")
                .threads(threads),
        );
        requests.push(QueryRequest::compare(&t2, &t3).threads(threads));
        requests.push(
            QueryRequest::report(QuerySource::model("tsubame2", 42))
                .sections(ANALYSIS)
                .threads(threads),
        );
    }
    let expected: Vec<String> = requests.iter().map(local).collect();

    thread::scope(|s| {
        for client in 0..4 {
            let (bound, requests, expected) = (&bound, &requests, &expected);
            s.spawn(move || {
                let mut conn = Connection::connect(bound).expect("connects");
                // Stagger the walk so the four clients hit different
                // requests at the same moment (cold and warm mixed).
                for step in 0..requests.len() {
                    let i = (step + client * 7) % requests.len();
                    let line = wire::encode_query(i as u64, &requests[i]);
                    let resp = conn.roundtrip(&line).expect("roundtrips");
                    assert_eq!(resp.id, i as u64);
                    assert_eq!(
                        resp.output, expected[i],
                        "client {client} request {i} must match the CLI byte-for-byte"
                    );
                }
            });
        }
    });

    // Warm repeat: the identical request is answered from the render
    // cache, still byte-identical.
    let mut conn = Connection::connect(&bound).expect("connects");
    let line = wire::encode_query(99, &requests[0]);
    let warm = conn.roundtrip(&line).expect("roundtrips");
    assert!(warm.cached, "repeat of a served query must be a cache hit");
    assert_eq!(warm.output, expected[0]);
    // A different thread count is the same query: determinism says the
    // bytes cannot differ, so the cache key ignores it.
    let line = wire::encode_query(100, &requests[0].clone().threads(3));
    let warm3 = conn.roundtrip(&line).expect("roundtrips");
    assert!(warm3.cached);
    assert_eq!(warm3.output, expected[0]);

    // Watch over the protocol: one buffered response, identical to the
    // local run, including the v1 header line.
    let mut watch = WatchRequest::new("sim:tsubame3");
    watch.max_records = Some("50".to_string());
    watch.format = OutputFormat::Json;
    let mut local_watch = Vec::new();
    failapi::watch::run(&watch, &mut local_watch).expect("local watch");
    let resp = conn
        .roundtrip(&wire::encode_watch(101, &watch))
        .expect("roundtrips");
    assert_eq!(resp.output, String::from_utf8(local_watch).unwrap());
    assert!(resp.output.starts_with("{\"v\":1,\"kind\":\"watch\"}\n"));

    // The live metrics export reflects the run and stays NDJSON.
    let resp = conn
        .roundtrip(&wire::encode_simple(102, "metrics"))
        .expect("roundtrips");
    assert!(resp.output.contains("engine.render_cache.hit"), "{}", resp.output);
    assert!(resp.output.contains("server.requests"), "{}", resp.output);

    let resp = conn
        .roundtrip(&wire::encode_simple(103, "shutdown"))
        .expect("roundtrips");
    assert_eq!(resp.output, "faild: shutting down\n");
    let summary = handle.join().expect("joins").expect("serves");
    assert!(summary.connections >= 5, "{summary:?}");
    assert!(summary.requests >= requests.len() as u64, "{summary:?}");

    // Graceful shutdown persisted a snapshot for each cold-parsed,
    // unfiltered file log; both now serve warm.
    assert_eq!(summary.snapshots_persisted, 2, "{summary:?}");
    for path in [&t2, &t3] {
        assert!(
            matches!(failindex::probe(path).expect("probes"), failindex::Freshness::Exact),
            "{path} must have an exact snapshot after shutdown"
        );
        std::fs::remove_file(format!("{path}.fsidx")).expect("cleanup");
        std::fs::remove_file(path).expect("cleanup");
    }
}

#[test]
fn render_cache_invalidates_when_the_log_grows() {
    let path = temp_path("grow.fslog");
    let p = path.to_str().unwrap();
    let log = Simulator::new(SystemModel::tsubame2(), 42).generate().expect("simulates");
    let text = faillog::to_string(&log).expect("serializes");
    let cut = text[..text.len() / 2].rfind('\n').expect("has lines") + 1;
    std::fs::write(&path, &text[..cut]).expect("write prefix");

    let socket = temp_path("grow.sock");
    let _ = std::fs::remove_file(&socket);
    let (bound, handle) = start_server(Endpoint::unix(&socket), 2);
    let mut conn = Connection::connect(&bound).expect("connects");

    let req = QueryRequest::report(QuerySource::file(p)).sections(ANALYSIS);
    let first = conn
        .roundtrip(&wire::encode_query(1, &req))
        .expect("roundtrips");
    assert!(!first.cached);
    assert_eq!(first.output, local(&req));
    let repeat = conn
        .roundtrip(&wire::encode_query(2, &req))
        .expect("roundtrips");
    assert!(repeat.cached, "unchanged log must be served from cache");
    assert_eq!(repeat.output, first.output);

    // Prefix-extend the log on disk: the fingerprint in the cache key
    // changes, so the server re-reads instead of serving stale bytes.
    std::fs::write(&path, &text).expect("write full");
    let grown = conn
        .roundtrip(&wire::encode_query(3, &req))
        .expect("roundtrips");
    assert!(!grown.cached, "growth must invalidate the render cache");
    assert_ne!(grown.output, first.output, "growth must change the report");
    assert_eq!(grown.output, local(&req), "regrown output must match a cold CLI run");

    let resp = conn
        .roundtrip(&wire::encode_simple(4, "shutdown"))
        .expect("roundtrips");
    assert_eq!(resp.output, "faild: shutting down\n");
    let summary = handle.join().expect("joins").expect("serves");
    assert_eq!(summary.snapshots_persisted, 1, "{summary:?}");
    assert!(
        matches!(failindex::probe(p).expect("probes"), failindex::Freshness::Exact),
        "the persisted snapshot must cover the grown log"
    );
    assert!(!socket.exists(), "unix socket must be removed on shutdown");

    std::fs::remove_file(&path).expect("cleanup");
    std::fs::remove_file(format!("{p}.fsidx")).expect("cleanup");
}

#[test]
fn malformed_requests_come_back_as_typed_error_envelopes() {
    let (bound, handle) = start_server(Endpoint::tcp("127.0.0.1:0"), 2);
    let mut conn = Connection::connect(&bound).expect("connects");

    let args_cases = [
        ("this is not json", "request is not valid JSON"),
        ("[1,2,3]", "request must be a JSON object"),
        (r#"{"id":1,"cmd":"ping"}"#, "missing \"v\":1"),
        (
            r#"{"v":2,"id":1,"cmd":"ping"}"#,
            "unsupported protocol version 2 (this server speaks v1)",
        ),
        (r#"{"v":1,"cmd":"ping"}"#, "missing \"id\""),
        (r#"{"v":1,"id":1}"#, "missing \"cmd\""),
        (r#"{"v":1,"id":1,"cmd":"frobnicate"}"#, "unknown cmd \"frobnicate\""),
        (
            r#"{"v":1,"id":1,"cmd":"ping","extra":true}"#,
            "unknown field \"extra\" for cmd \"ping\"",
        ),
        (r#"{"v":1,"id":1,"cmd":"report"}"#, "report needs \"log\" or \"model\""),
        (
            r#"{"v":1,"id":1,"cmd":"report","log":"a","model":"tsubame2"}"#,
            "pass either \"log\" or \"model\", not both",
        ),
        (
            r#"{"v":1,"id":1,"cmd":"compare","old":"a"}"#,
            "missing field \"new\"",
        ),
        (
            r#"{"v":1,"id":1,"cmd":"report","log":"a","format":"yaml"}"#,
            "unknown --format `yaml`",
        ),
    ];
    for (line, want) in args_cases {
        let err = conn.roundtrip(line).expect_err("must be rejected");
        assert_eq!(err.kind(), "args", "{line}");
        assert!(err.to_string().contains(want), "{line} gave: {err}");
    }

    // Execution failures keep their own kind (not "args").
    let err = conn
        .roundtrip(r#"{"v":1,"id":1,"cmd":"report","log":"/no/such/file.fslog"}"#)
        .expect_err("must fail");
    assert_eq!(err.kind(), "run");
    assert!(err.to_string().contains("/no/such/file.fslog"), "{err}");
    let err = conn
        .roundtrip(r#"{"v":1,"id":1,"cmd":"report","model":"cray"}"#)
        .expect_err("must fail");
    assert!(err.to_string().contains("unknown model `cray`"), "{err}");

    // The connection survives every rejection.
    let resp = conn
        .roundtrip(&wire::encode_simple(50, "ping"))
        .expect("roundtrips");
    assert_eq!(resp.output, "pong\n");

    conn.roundtrip(&wire::encode_simple(51, "shutdown")).expect("shuts down");
    let summary = handle.join().expect("joins").expect("serves");
    assert_eq!(summary.snapshots_persisted, 0, "{summary:?}");
}

/// The v1 compat pin: the JSON report is exactly the version header
/// line plus the pre-existing `{id,title,data}` section rows, byte for
/// byte, so protocol consumers and pre-header consumers read the same
/// section bytes.
#[test]
fn json_v1_header_prefixes_unchanged_section_rows() {
    let p = write_log("compat.fslog", SystemModel::tsubame3());
    let req = QueryRequest::report(QuerySource::file(&p))
        .sections(ANALYSIS)
        .format(OutputFormat::Json)
        .threads(2);
    let out = local(&req);

    // Render the same sections directly with the pre-server renderer.
    let log = faillog::load(&p).expect("loads");
    let trace = failtrace::Collector::new();
    let view = failscope::LogView::new(&log);
    let sections = failscope::select_sections(ANALYSIS).expect("selects");
    let rows = failscope::render_json_sections(
        &sections,
        &failscope::SectionCtx::with_trace(&view, &trace),
        2,
    );

    let (header, body) = out.split_once('\n').expect("has header line");
    assert_eq!(header, r#"{"v":1,"kind":"report"}"#);
    assert_eq!(body, rows, "section rows must be byte-identical to the renderer's");
    for line in body.lines() {
        assert!(line.starts_with(r#"{"id":""#), "{line}");
    }
    std::fs::remove_file(&p).expect("cleanup");
}
