//! Property-based integration tests (proptest) spanning the workspace:
//! serialization round trips, generator invariants, and statistics
//! invariants on arbitrary inputs.

use proptest::prelude::*;

use failsim::{ScenarioBuilder, Simulator};
use failstats::{Ecdf, Summary};
use failtypes::{
    Category, Date, FailureLog, FailureRecord, Generation, GpuSlot, Hours, NodeId,
    ObservationWindow, SoftwareLocus, T3Category,
};

fn t3_window() -> ObservationWindow {
    ObservationWindow::new(
        Date::new(2017, 5, 9).expect("valid"),
        Date::new(2020, 2, 22).expect("valid"),
    )
    .expect("valid window")
}

/// Strategy for an arbitrary valid Tsubame-3 failure record.
fn arb_t3_record(id: u32) -> impl Strategy<Value = FailureRecord> {
    let window_hours = t3_window().duration().get();
    (
        0.0..window_hours,
        0.0..500.0f64,
        0..T3Category::ALL.len(),
        0u32..540,
        proptest::collection::btree_set(0u8..4, 0..=3),
        proptest::option::of(0..SoftwareLocus::ALL.len()),
    )
        .prop_map(move |(time, ttr, cat_idx, node, slots, locus_idx)| {
            let category = Category::T3(T3Category::ALL[cat_idx]);
            let mut rec = FailureRecord::new(
                id,
                Hours::new(time),
                Hours::new(ttr),
                category,
                NodeId::new(node),
            );
            if category.is_gpu() && !slots.is_empty() {
                rec = rec.with_gpus(slots.into_iter().map(GpuSlot::new));
            }
            if category.is_software() {
                if let Some(i) = locus_idx {
                    rec = rec.with_locus(SoftwareLocus::ALL[i]);
                }
            }
            rec
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csv_roundtrip_arbitrary_records(
        recs in proptest::collection::vec((0u32..10_000).prop_flat_map(arb_t3_record), 0..40)
    ) {
        // Deduplicate ids to keep records distinguishable after sorting.
        let recs: Vec<FailureRecord> = recs
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let mut out = FailureRecord::new(
                    i as u32, r.time(), r.ttr(), r.category(), r.node(),
                );
                if !r.gpus().is_empty() {
                    out = out.with_gpus(r.gpus().iter().copied());
                }
                if let Some(l) = r.locus() {
                    out = out.with_locus(l);
                }
                out
            })
            .collect();
        let log = FailureLog::new(Generation::Tsubame3, t3_window(), recs)
            .expect("strategy yields valid records");
        let text = faillog::to_string(&log).expect("serializes");
        let parsed = faillog::from_str(&text).expect("parses");
        prop_assert_eq!(parsed, log);
    }

    #[test]
    fn generated_logs_always_satisfy_invariants(
        seed in any::<u64>(),
        nodes in 2u32..200,
        gpus in 1u8..=8,
        mtbf in 5.0..200.0f64,
        days in 30u32..400,
    ) {
        let model = ScenarioBuilder::new("prop")
            .nodes(nodes)
            .gpus_per_node(gpus)
            .system_mtbf_hours(mtbf)
            .window_days(days)
            .build()
            .expect("strategy stays in the valid range");
        let expected = model.total_failures();
        let log = Simulator::new(model, seed).generate().expect("valid model");
        prop_assert_eq!(log.len() as u32, expected);
        let horizon = log.window().duration().get();
        let mut last = 0.0f64;
        for rec in log.iter() {
            let t = rec.time().get();
            prop_assert!(t >= 0.0 && t < horizon);
            prop_assert!(t >= last, "times must ascend");
            last = t;
            prop_assert!(rec.ttr().get() > 0.0);
            prop_assert!(rec.node().index() < nodes);
            for slot in rec.gpus() {
                prop_assert!(slot.index() < gpus);
            }
            // Slots are strictly ascending (distinct).
            for pair in rec.gpus().windows(2) {
                prop_assert!(pair[0] < pair[1]);
            }
        }
    }

    #[test]
    fn anonymization_is_bijective_for_any_key(key in any::<u64>()) {
        let model = ScenarioBuilder::new("anon")
            .nodes(50)
            .window_days(120)
            .system_mtbf_hours(20.0)
            .build()
            .expect("valid scenario");
        let log = Simulator::new(model, 3).generate().expect("valid model");
        let anon = faillog::anonymize_nodes(&log, key);
        // Node multiset preserved.
        let multiset = |l: &FailureLog| {
            let mut m = std::collections::HashMap::new();
            for r in l.iter() {
                *m.entry(r.node()).or_insert(0u32) += 1;
            }
            let mut v: Vec<u32> = m.into_values().collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(multiset(&log), multiset(&anon));
        // Double anonymization with the same key is deterministic.
        prop_assert_eq!(faillog::anonymize_nodes(&log, key), anon);
    }

    #[test]
    fn ecdf_quantile_and_eval_are_inverse_ish(
        mut data in proptest::collection::vec(-1e6..1e6f64, 1..200),
        p in 0.0..=1.0f64,
    ) {
        let ecdf = Ecdf::new(data.clone()).expect("non-empty, no NaN");
        let q = ecdf.quantile(p);
        data.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        // Quantiles stay inside the observed range.
        prop_assert!(q >= data[0] && q <= data[data.len() - 1]);
        // eval is monotone and bounded.
        prop_assert!(ecdf.eval(f64::NEG_INFINITY) == 0.0);
        prop_assert!((ecdf.eval(f64::INFINITY) - 1.0).abs() < 1e-12);
        prop_assert!(ecdf.eval(q) >= p - 1.0 / data.len() as f64 - 1e-9);
    }

    #[test]
    fn summary_orderings_hold(
        data in proptest::collection::vec(0.0..1e6f64, 1..200),
    ) {
        let s = Summary::from_data(&data).expect("non-empty");
        prop_assert!(s.min() <= s.q1());
        prop_assert!(s.q1() <= s.median());
        prop_assert!(s.median() <= s.q3());
        prop_assert!(s.q3() <= s.max());
        prop_assert!(s.mean() >= s.min() && s.mean() <= s.max());
        prop_assert!(s.iqr() >= 0.0);
        prop_assert!(s.std_dev() >= 0.0);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,400}") {
        // Malformed input must produce an error, never a panic.
        let _ = faillog::from_str(&input);
    }

    #[test]
    fn parser_never_panics_on_mutated_valid_logs(
        seed in any::<u64>(),
        cut in 0usize..2000,
        insert in ".{0,30}",
    ) {
        let model = ScenarioBuilder::new("fuzz")
            .nodes(16)
            .window_days(60)
            .system_mtbf_hours(50.0)
            .build()
            .expect("valid scenario");
        let log = Simulator::new(model, seed).generate().expect("valid model");
        let mut text = faillog::to_string(&log).expect("serializes");
        // Mutate: truncate at a byte boundary and splice arbitrary text.
        let cut = text
            .char_indices()
            .map(|(i, _)| i)
            .take(cut + 1)
            .last()
            .unwrap_or(0)
            .min(text.len());
        text.truncate(cut);
        text.push_str(&insert);
        let _ = faillog::from_str(&text); // must not panic
    }

    #[test]
    fn kaplan_meier_is_monotone_for_any_sample(
        lifetimes in proptest::collection::vec((0.0..1e4f64, any::<bool>()), 1..100),
    ) {
        use failstats::{KaplanMeier, Lifetime};
        let data: Vec<Lifetime> = lifetimes
            .into_iter()
            .map(|(d, obs)| Lifetime { duration: d, observed: obs })
            .collect();
        let km = KaplanMeier::fit(&data).expect("valid lifetimes");
        let mut prev = 1.0;
        for step in km.steps() {
            prop_assert!(step.survival <= prev + 1e-12);
            prop_assert!((0.0..=1.0).contains(&step.survival));
            prev = step.survival;
        }
    }

    #[test]
    fn tbf_mtbf_equals_window_over_count(seed in any::<u64>()) {
        let model = ScenarioBuilder::new("mtbf")
            .nodes(64)
            .window_days(200)
            .system_mtbf_hours(25.0)
            .build()
            .expect("valid scenario");
        let log = Simulator::new(model, seed).generate().expect("valid model");
        let tbf = failscope::TbfAnalysis::from_log(&log).expect("enough failures");
        let expected = log.window().duration().get() / log.len() as f64;
        prop_assert!((tbf.mtbf_hours() - expected).abs() < 1e-9);
    }
}
