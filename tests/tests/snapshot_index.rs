//! Persistence guarantees of the `failindex` snapshot subsystem.
//!
//! The contract, across the whole workspace:
//!
//! 1. **Round trip** — saving a canonical log's index and loading it
//!    back renders byte-identical analysis reports at any thread
//!    count, for both system generations.
//! 2. **Corruption safety** — every way a snapshot or its log can rot
//!    (truncation, flipped header or body bytes, a future format
//!    version, an edited log) degrades *silently* to a cold parse;
//!    strict [`failindex::load`] is the only path that surfaces the
//!    reason.
//! 3. **Incremental extension** — growing a log record by record and
//!    re-opening through the snapshot yields exactly the index a cold
//!    rebuild would produce, at every step (property-tested).

use failscope::{
    render_text_sections, select_sections, FleetIndex, LogView, SectionCtx, StreamView,
};
use failsim::{ScenarioBuilder, Simulator, SystemModel};
use failtypes::FailureLog;
use proptest::prelude::*;

/// Every analysis section — the full report minus `metrics`, whose
/// counters legitimately differ between a parse and a snapshot hit.
const ANALYSIS: &str =
    "header,categories,spatial,involvement,tbf,ttr,availability,survival,seasonal";

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("failsuite-snapshot").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn render(index: &(dyn FleetIndex + Sync), threads: usize) -> String {
    let sections = select_sections(ANALYSIS).expect("section spec is valid");
    render_text_sections(&sections, &SectionCtx::new(index), threads)
}

/// The index a cold, from-scratch ingest of `log` produces.
fn cold_view(log: &FailureLog) -> StreamView {
    let mut view = StreamView::for_log(log);
    view.extend(log.records().iter().cloned()).expect("valid log");
    view
}

#[test]
fn canonical_logs_round_trip_with_byte_identical_reports() {
    let dir = temp_dir("roundtrip");
    for (model, seed, expected) in [
        (SystemModel::tsubame2(), 42u64, 897usize),
        (SystemModel::tsubame3(), 43, 338),
    ] {
        let log = Simulator::new(model, seed).generate().expect("simulates");
        assert_eq!(log.len(), expected);
        let text = faillog::to_string(&log).expect("serializes");
        let path = dir.join(format!("{}.fslog", log.generation()));
        std::fs::write(&path, &text).expect("writes log");

        let written = failindex::save(
            failindex::snapshot_path(&path),
            &LogView::new(&log),
            failindex::SourceInfo::of_bytes(text.as_bytes()),
        )
        .expect("saves snapshot");
        assert_eq!(
            written,
            std::fs::metadata(failindex::snapshot_path(&path))
                .expect("snapshot exists")
                .len(),
            "reported byte count matches the file"
        );

        let snap = match failindex::open_indexed(&path, None).expect("opens") {
            failindex::IndexedLoad::Exact(snap) => snap,
            other => panic!("expected an exact hit, got {other:?}"),
        };
        assert_eq!(snap.view(), &cold_view(&log), "loaded index == rebuilt index");

        let cold = render(&LogView::new(&log), 1);
        for threads in 1..=4 {
            assert_eq!(render(&snap, threads), cold, "threads={threads}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_corruption_degrades_silently_to_a_cold_parse() {
    let dir = temp_dir("corruption");
    let log = Simulator::new(SystemModel::tsubame3(), 43).generate().expect("simulates");
    let text = faillog::to_string(&log).expect("serializes");
    let path = dir.join("t3.fslog");
    let spath = failindex::snapshot_path(&path);
    std::fs::write(&path, &text).expect("writes log");
    failindex::save(
        &spath,
        &LogView::new(&log),
        failindex::SourceInfo::of_bytes(text.as_bytes()),
    )
    .expect("saves snapshot");
    let pristine = std::fs::read(&spath).expect("snapshot bytes");

    // Helper: the current snapshot must be ignored — open_indexed
    // returns Cold without error, as if no snapshot existed.
    let assert_cold = |why: &str| {
        match failindex::open_indexed(&path, None).expect("log itself is readable") {
            failindex::IndexedLoad::Cold { source } => {
                assert_eq!(source.bytes, text.len() as u64, "{why}");
            }
            other => panic!("{why}: expected a cold fallback, got {other:?}"),
        }
    };

    // Truncated snapshot (mid-body and mid-header).
    std::fs::write(&spath, &pristine[..pristine.len() / 2]).expect("writes");
    assert_cold("truncated body");
    std::fs::write(&spath, &pristine[..20]).expect("writes");
    assert_cold("truncated header");

    // Flipped header byte: the header checksum catches it.
    let mut bad = pristine.clone();
    bad[10] ^= 0xFF;
    std::fs::write(&spath, &bad).expect("writes");
    assert_cold("flipped header byte");

    // Flipped body byte: the header validates, the body checksum
    // catches it — and the strict loader names the problem.
    let mut bad = pristine.clone();
    bad[60] ^= 0xFF;
    std::fs::write(&spath, &bad).expect("writes");
    assert_cold("flipped body byte");
    let err = failindex::load(&spath).expect_err("strict load surfaces the reason");
    assert!(err.to_string().contains("checksum"), "{err}");

    // A future format version is not ours to read.
    let mut bad = pristine.clone();
    bad[6] = 0xFF;
    std::fs::write(&spath, &bad).expect("writes");
    assert_cold("future format version");
    let err = failindex::load(&spath).expect_err("strict load surfaces the reason");
    assert!(err.to_string().contains("version"), "{err}");

    // Stale hash: the snapshot is fine but the *log* was edited in
    // place (same length), so the fingerprint no longer matches.
    std::fs::write(&spath, &pristine).expect("writes");
    let mut edited = text.clone().into_bytes();
    let comma = text.rfind(',').expect("csv has commas");
    edited[comma - 1] ^= 0x01;
    std::fs::write(&path, &edited).expect("writes");
    assert_cold("edited log, same length");
    assert!(matches!(
        failindex::probe(&path).expect("probe reads"),
        failindex::Freshness::Stale { .. }
    ));

    // A log that *shrank* can never match a snapshot prefix.
    std::fs::write(&path, &text.as_bytes()[..text.len() / 2]).expect("writes");
    match failindex::probe(&path).expect("probe reads") {
        failindex::Freshness::Stale { reason } => {
            assert!(reason.contains("shrank"), "{reason}")
        }
        other => panic!("expected stale, got {other:?}"),
    }

    // And with no snapshot at all, probe says so.
    std::fs::remove_file(&spath).expect("cleanup");
    assert!(matches!(
        failindex::probe(&path).expect("probe reads"),
        failindex::Freshness::Missing
    ));
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Grow a log one record at a time; after every append, opening
    // through the snapshot must yield exactly the index a cold
    // rebuild of the current file produces, and the rewritten
    // snapshot must be an exact hit for the next reader.
    #[test]
    fn record_by_record_growth_extends_exactly_like_a_cold_rebuild(
        seed in 0u64..1024,
        nodes in 4u32..24,
    ) {
        let model = ScenarioBuilder::new("prop-snapshot")
            .nodes(nodes)
            .gpus_per_node(4)
            .system_mtbf_hours(40.0)
            .window_days(30)
            .build()
            .expect("scenario parameters are valid");
        let log = Simulator::new(model, seed).generate().expect("simulates");
        let text = faillog::to_string(&log).expect("serializes");
        let lines: Vec<&str> = text.lines().collect();
        // Body rows start after the '#' preamble and the column header.
        let body_start = lines.iter().position(|l| !l.starts_with('#')).expect("has header") + 1;

        let dir = temp_dir(&format!("grow-{seed}-{nodes}"));
        let path = dir.join("grow.fslog");

        let mut contents = lines[..body_start].join("\n");
        contents.push('\n');
        for (step, row) in lines[body_start..].iter().enumerate() {
            contents.push_str(row);
            contents.push('\n');
            std::fs::write(&path, &contents).expect("writes log");

            let expected = cold_view(&faillog::load(&path).expect("cold parse"));
            match failindex::open_indexed(&path, None).expect("opens") {
                // First touch: nothing on disk yet — seed the snapshot
                // the way `--index auto` does after a cold parse.
                failindex::IndexedLoad::Cold { source } if step == 0 => {
                    failindex::save(failindex::snapshot_path(&path), &expected, source)
                        .expect("saves snapshot");
                }
                failindex::IndexedLoad::Extended { snapshot, added } if step > 0 => {
                    prop_assert_eq!(added, 1, "exactly the appended record is parsed");
                    prop_assert_eq!(snapshot.view(), &expected, "step {}", step);
                }
                other => panic!("step {step}: unexpected load {other:?}"),
            }

            // The extension rewrote the snapshot: a second reader hits
            // exactly, with zero parsing.
            match failindex::open_indexed(&path, None).expect("re-opens") {
                failindex::IndexedLoad::Exact(snap) => {
                    prop_assert_eq!(snap.view(), &expected, "re-open at step {}", step);
                }
                other => panic!("step {step}: expected exact hit, got {other:?}"),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
