//! Cross-crate guarantees for the chunked ingest pipeline: the parallel
//! parser is byte-identical to the serial one at any thread count and
//! chunk size (including chunks smaller than a single line), parse
//! errors carry global line numbers regardless of where chunk
//! boundaries fall, and gzip round trips preserve the canonical seed
//! logs exactly.

use proptest::prelude::*;

use failsim::{ScenarioBuilder, Simulator, SystemModel};
use failtypes::FailureLog;
use faillog::ParseOptions;

/// A small-but-real corpus: the canonical Tsubame-2 log (897 records)
/// serialized to `failscope-log v1` text.
fn t2_text() -> String {
    let log = Simulator::new(SystemModel::tsubame2(), 5)
        .generate()
        .expect("calibrated model simulates");
    faillog::to_string(&log).expect("serializes")
}

fn t3_log() -> FailureLog {
    Simulator::new(SystemModel::tsubame3(), 43)
        .generate()
        .expect("calibrated model simulates")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Serial and parallel parses of the same text are equal for
    // arbitrary thread counts and chunk sizes — including chunk sizes
    // of a single byte, far smaller than any one line.
    #[test]
    fn parallel_parse_is_byte_identical_to_serial(
        threads in 1usize..=4,
        chunk_bytes in (0usize..5, 1usize..8192).prop_map(|(pick, random)| match pick {
            0 => 1,
            1 => 7,
            2 => random,
            3 => faillog::DEFAULT_CHUNK_BYTES,
            _ => usize::MAX,
        }),
        // Vary the corpus itself too: a sub-slice of the fleet keeps
        // the simulation cheap while changing record mix and length.
        nodes in 8u32..64,
        seed in 0u64..32,
    ) {
        let model = ScenarioBuilder::new("prop-ingest")
            .nodes(nodes)
            .gpus_per_node(4)
            .system_mtbf_hours(40.0)
            .window_days(90)
            .build()
            .expect("scenario parameters are valid");
        let log = Simulator::new(model, seed).generate().expect("simulates");
        let text = faillog::to_string(&log).expect("serializes");

        let serial = faillog::from_str_with(&text, &ParseOptions::serial())
            .expect("serial parse succeeds");
        let opts = ParseOptions::new().threads(threads).chunk_bytes(chunk_bytes);
        let parallel = faillog::from_str_with(&text, &opts).expect("parallel parse succeeds");

        prop_assert_eq!(serial.len(), log.len());
        prop_assert_eq!(&parallel, &serial);
        // Byte-identical end to end: re-serialization agrees too.
        prop_assert_eq!(
            faillog::to_string(&parallel).expect("serializes"),
            text
        );
    }

    // A corrupted row reports the same global 1-based line number at
    // every chunk size, even when the boundary splits the bad line.
    #[test]
    fn error_lines_are_chunk_invariant(
        chunk_bytes in (0usize..3, 1usize..4096).prop_map(|(pick, random)| match pick {
            0 => 1,
            1 => random,
            _ => usize::MAX,
        }),
        threads in 1usize..=4,
    ) {
        let mut text = t2_text();
        // Corrupt a row mid-file: drop a field from the 300th body row.
        let body_start = text.find("\n1,").expect("first body row") + 1;
        let mut rows: Vec<&str> = text[body_start..].lines().collect();
        let expected_line = text[..body_start].lines().count() + 300;
        rows[299] = "300,bad-row";
        let header = text[..body_start].to_string();
        text = header + &rows.join("\n") + "\n";

        let opts = ParseOptions::new().threads(threads).chunk_bytes(chunk_bytes);
        let err = faillog::from_str_with(&text, &opts).expect_err("corrupt row must fail");
        match err {
            failtypes::Error::Row { line, .. } => prop_assert_eq!(line, expected_line),
            other => panic!("unexpected error: {other}"),
        }
    }
}

/// When several rows are bad, the first one in declaration order wins —
/// not whichever chunk's worker finishes first.
#[test]
fn first_error_in_declaration_order_wins_across_chunks() {
    let mut text = t2_text();
    let body_start = text.find("\n1,").expect("first body row") + 1;
    let mut rows: Vec<&str> = text[body_start..].lines().collect();
    let first_bad = text[..body_start].lines().count() + 100;
    rows[99] = "100,bad";
    rows[700] = "701,also-bad";
    let header = text[..body_start].to_string();
    text = header + &rows.join("\n") + "\n";

    for chunk_bytes in [1, 64, 4096, faillog::DEFAULT_CHUNK_BYTES] {
        for threads in [1, 4] {
            let opts = ParseOptions::new().threads(threads).chunk_bytes(chunk_bytes);
            let err = faillog::from_str_with(&text, &opts).expect_err("corrupt rows must fail");
            match err {
                failtypes::Error::Row { line, .. } => assert_eq!(
                    line, first_bad,
                    "chunk_bytes={chunk_bytes} threads={threads}"
                ),
                other => panic!("unexpected error: {other}"),
            }
        }
    }
}

/// Gzip round trip on both canonical seed logs: compress, decompress,
/// reparse, and compare against the original log — plus an on-disk
/// `.fslog.gz` save/load cycle with no external tooling.
#[test]
fn gzip_round_trips_the_canonical_seed_logs() {
    let t2 = Simulator::new(SystemModel::tsubame2(), 42)
        .generate()
        .expect("simulates");
    for (name, log) in [("t2", &t2), ("t3", &t3_log())] {
        let text = faillog::to_string(log).expect("serializes");
        let packed = faillog::gzip_compress(text.as_bytes());
        assert!(packed.len() < text.len(), "{name}: gzip must shrink the log");
        let unpacked = faillog::gzip_decompress(&packed).expect("inflates");
        assert_eq!(unpacked, text.as_bytes(), "{name}: gzip round trip");

        let reparsed = faillog::from_str(&text).expect("parses");
        let via_gzip =
            faillog::from_str(std::str::from_utf8(&unpacked).expect("utf8")).expect("parses");
        assert_eq!(via_gzip, reparsed, "{name}: parse equality through gzip");

        let dir = std::env::temp_dir().join(format!("failsuite-gz-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("log.fslog.gz");
        faillog::save(&path, log).expect("saves gzip");
        let magic = &std::fs::read(&path).expect("read")[..2];
        assert_eq!(magic, [0x1F, 0x8B], "{name}: .gz extension writes gzip");
        let loaded = faillog::load(&path).expect("loads gzip transparently");
        assert_eq!(&loaded, log, "{name}: save/load through .fslog.gz");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The parallel default path and an explicit serial parse agree on the
/// canonical golden logs used elsewhere in the suite.
#[test]
fn canonical_logs_parse_identically_on_every_path() {
    for text in [t2_text(), faillog::to_string(&t3_log()).expect("serializes")] {
        let serial = faillog::from_str_with(&text, &ParseOptions::serial()).expect("parses");
        let default = faillog::from_str(&text).expect("parses");
        let tiny = faillog::from_str_with(&text, &ParseOptions::new().threads(3).chunk_bytes(1))
            .expect("parses");
        assert_eq!(default, serial);
        assert_eq!(tiny, serial);
    }
}
