//! Section-registry guarantees, end to end:
//!
//! * **Golden snapshots** — the text and NDJSON reports for the two
//!   canonical logs are byte-identical to the checked-in files under
//!   `golden/`, at every thread count. Any formatting drift in any
//!   section shows up as a snapshot diff.
//! * **Batch/stream equivalence** — every registry section renders the
//!   same JSON and text from a batch [`failscope::LogView`] and a
//!   fully-ingested [`failscope::StreamView`], on the canonical logs
//!   and on arbitrary-seed simulations.
//! * **Mitigation from the index** — the integrated operations plan
//!   built from a mid-stream index matches the batch plan, without a
//!   raw-log rescan.

use failmitigate::{OperationsPlan, PlanConfig};
use failscope::{LogView, SectionCtx, StreamView, SECTIONS};
use failsim::{Simulator, SystemModel};
use failtypes::FailureLog;
use proptest::prelude::*;

const GOLDEN_T2_TEXT: &str = include_str!("golden/report_tsubame2_seed42.txt");
const GOLDEN_T3_TEXT: &str = include_str!("golden/report_tsubame3_seed43.txt");
const GOLDEN_T2_JSON: &str = include_str!("golden/report_tsubame2_seed42.ndjson");
const GOLDEN_T3_JSON: &str = include_str!("golden/report_tsubame3_seed43.ndjson");

fn t2() -> FailureLog {
    Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap()
}

fn t3() -> FailureLog {
    Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap()
}

fn streamed(log: &FailureLog) -> StreamView {
    let mut sv = StreamView::for_log(log);
    for rec in log.iter() {
        sv.push(rec.clone()).expect("in-order records");
    }
    sv
}

#[test]
fn text_reports_match_golden_snapshots_at_every_thread_count() {
    for (log, golden) in [(t2(), GOLDEN_T2_TEXT), (t3(), GOLDEN_T3_TEXT)] {
        for threads in 1..=4 {
            assert_eq!(
                failscope::render_report_threaded(&log, threads),
                golden,
                "{} text report drifted from golden at threads={threads}",
                log.spec().name()
            );
        }
    }
}

#[test]
fn json_reports_match_golden_snapshots_at_every_thread_count() {
    for (log, golden) in [(t2(), GOLDEN_T2_JSON), (t3(), GOLDEN_T3_JSON)] {
        for threads in 1..=4 {
            assert_eq!(
                failscope::render_report_json(&log, threads),
                golden,
                "{} JSON report drifted from golden at threads={threads}",
                log.spec().name()
            );
        }
    }
}

#[test]
fn every_section_agrees_between_batch_and_stream_on_canonical_logs() {
    for log in [t2(), t3()] {
        let view = LogView::new(&log);
        let sv = streamed(&log);
        let batch = SectionCtx::new(&view);
        let stream = SectionCtx::new(&sv);
        for section in SECTIONS {
            assert_eq!(
                (section.json)(&batch).render(),
                (section.json)(&stream).render(),
                "section `{}` JSON diverges on {}",
                section.id,
                log.spec().name()
            );
            assert_eq!(
                (section.text)(&batch),
                (section.text)(&stream),
                "section `{}` text diverges on {}",
                section.id,
                log.spec().name()
            );
        }
    }
}

#[test]
fn operations_plan_from_stream_index_matches_batch_plan() {
    for log in [t2(), t3()] {
        let sv = streamed(&log);
        let from_stream = OperationsPlan::from_index(&sv, PlanConfig::default())
            .expect("canonical logs are plannable");
        let from_batch = OperationsPlan::from_log(&log, PlanConfig::default())
            .expect("canonical logs are plannable");
        assert_eq!(from_stream, from_batch, "{}", log.spec().name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Section JSON/text is a pure function of the index contents:
    // batch and stream construction agree for any simulated history.
    #[test]
    fn sections_agree_between_batch_and_stream_for_any_seed(
        seed in 0u64..10_000,
        tsubame2 in any::<bool>(),
    ) {
        let model = if tsubame2 {
            SystemModel::tsubame2()
        } else {
            SystemModel::tsubame3()
        };
        let log = Simulator::new(model, seed).generate().unwrap();
        let view = LogView::new(&log);
        let sv = streamed(&log);
        let batch = SectionCtx::new(&view);
        let stream = SectionCtx::new(&sv);
        for section in SECTIONS {
            prop_assert_eq!(
                (section.json)(&batch).render(),
                (section.json)(&stream).render(),
                "section `{}` JSON diverges at seed {}", section.id, seed
            );
            prop_assert_eq!(
                (section.text)(&batch),
                (section.text)(&stream),
                "section `{}` text diverges at seed {}", section.id, seed
            );
        }
    }

    // The NDJSON report is byte-identical at any thread count for any
    // simulated history, not just the canonical seeds.
    #[test]
    fn json_report_is_thread_identical_for_any_seed(seed in 0u64..10_000) {
        let log = Simulator::new(SystemModel::tsubame3(), seed).generate().unwrap();
        let serial = failscope::render_report_json(&log, 1);
        prop_assert_eq!(&serial, &failscope::render_report_json(&log, 3));
        prop_assert_eq!(serial.lines().count(), SECTIONS.len());
    }
}
