//! Cross-crate guarantees for predicate pushdown (`--where`).
//!
//! The contract, across the whole workspace:
//!
//! 1. **Parser pushdown is transparent** — a filtered parallel parse is
//!    identical to a filtered serial parse at any thread count and
//!    chunk size, and both equal the post-hoc filter of an unfiltered
//!    parse (property-tested over corpora and a predicate pool).
//! 2. **Streaming equals batch under a filter** — a [`StreamView`]
//!    filtered after incremental ingest matches the batch [`LogView`]
//!    of the post-hoc-filtered log, on every sampled prefix.
//! 3. **Snapshots compose with filters** — a `.fsidx` snapshot always
//!    stores unfiltered state; applying a predicate to the decoded
//!    view renders byte-identical reports to a filtered cold parse,
//!    for both canonical seed logs at 1–4 threads.

use failfilter::CompiledPredicate;
use failscope::{
    render_text_sections, select_sections, FleetIndex, LogView, SectionCtx, StreamView,
};
use failsim::{ScenarioBuilder, Simulator, SystemModel};
use faillog::ParseOptions;
use failtypes::FailureLog;
use proptest::prelude::*;

/// Expressions spanning every field family and operator the language
/// offers; all are valid over both generations' vocabularies.
const PREDICATES: &[&str] = &[
    "ttr > 12",
    "category == gpu",
    "category != software && recovery <= 24",
    "gpus >= 2 || slot in (0, 1)",
    "time < 500",
    "month in (1, 2, 3, 4, 5, 6)",
    "node ~ \"rack1\"",
    "!(category ~ \"net\") && ttr >= 1",
];

/// Every analysis section — the full report minus `metrics`, whose
/// counters legitimately differ between a parse and a snapshot hit.
const ANALYSIS: &str =
    "header,categories,spatial,involvement,tbf,ttr,availability,survival,seasonal";

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("failsuite-filter").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn render(index: &(dyn FleetIndex + Sync), threads: usize) -> String {
    let sections = select_sections(ANALYSIS).expect("section spec is valid");
    render_text_sections(&sections, &SectionCtx::new(index), threads)
}

fn scenario_log(seed: u64) -> FailureLog {
    let model = ScenarioBuilder::new("filter-pushdown")
        .nodes(24)
        .gpus_per_node(4)
        .system_mtbf_hours(30.0)
        .window_days(120)
        .build()
        .expect("scenario parameters are valid");
    Simulator::new(model, seed).generate().expect("simulates")
}

/// The post-hoc oracle: filter a fully-parsed log's records.
fn post_hoc(log: &FailureLog, pred: &CompiledPredicate) -> FailureLog {
    let (spec, window) = (log.spec().clone(), log.window());
    log.filtered(|r| pred.matches(r, &spec, window))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Pushing the predicate into the chunked parser changes nothing
    // but the record set: filtered parallel == filtered serial ==
    // post-hoc filter, at arbitrary thread counts and chunk sizes.
    #[test]
    fn filtered_parallel_parse_matches_filtered_serial_and_post_hoc(
        threads in 1usize..=4,
        chunk_bytes in (0usize..4, 1usize..8192).prop_map(|(pick, random)| match pick {
            0 => 1,
            1 => random,
            2 => faillog::DEFAULT_CHUNK_BYTES,
            _ => usize::MAX,
        }),
        seed in 0u64..16,
        pred_idx in 0usize..PREDICATES.len(),
    ) {
        let log = scenario_log(seed);
        let text = faillog::to_string(&log).expect("serializes");
        let pred = failfilter::compile(PREDICATES[pred_idx]).expect("predicate compiles");

        let serial = faillog::from_str_with(&text, &ParseOptions::serial().filter(pred.clone()))
            .expect("filtered serial parse succeeds");
        let opts = ParseOptions::new()
            .threads(threads)
            .chunk_bytes(chunk_bytes)
            .filter(pred.clone());
        let parallel = faillog::from_str_with(&text, &opts)
            .expect("filtered parallel parse succeeds");
        prop_assert_eq!(&parallel, &serial);

        let unfiltered = faillog::from_str_with(&text, &ParseOptions::serial())
            .expect("unfiltered parse succeeds");
        prop_assert_eq!(&serial, &post_hoc(&unfiltered, &pred));
    }

    // Incremental (streaming) ingest followed by a filtered rebuild
    // matches the batch view of the post-hoc-filtered log on every
    // sampled prefix, and renders identically at the end.
    #[test]
    fn filtered_stream_view_matches_filtered_batch_on_prefixes(
        seed in 0u64..8,
        pred_idx in 0usize..PREDICATES.len(),
    ) {
        let log = scenario_log(seed);
        let pred = failfilter::compile(PREDICATES[pred_idx]).expect("predicate compiles");
        let (spec, window) = (log.spec().clone(), log.window());

        let mut view = StreamView::for_log(&log);
        let total = log.records().len();
        for (i, rec) in log.records().iter().enumerate() {
            view.push(rec.clone()).expect("valid record");
            if i % 29 == 7 || i + 1 == total {
                let filtered = view.filtered(|r| pred.matches(r, &spec, window));
                let prefix = FailureLog::with_spec(
                    log.generation(),
                    spec.clone(),
                    window,
                    log.records()[..=i].to_vec(),
                )
                .expect("prefix of a valid log is valid");
                prop_assert_eq!(filtered.to_log(), post_hoc(&prefix, &pred));
            }
        }
        let filtered = view.filtered(|r| pred.matches(r, &spec, window));
        let oracle = post_hoc(&log, &pred);
        prop_assert_eq!(render(&filtered, 2), render(&LogView::new(&oracle), 2));
    }
}

#[test]
fn warm_filtered_reports_match_cold_filtered_byte_for_byte() {
    let dir = temp_dir("warm-vs-cold");
    for (model, seed, expected) in [
        (SystemModel::tsubame2(), 42u64, 897usize),
        (SystemModel::tsubame3(), 43, 338),
    ] {
        let log = Simulator::new(model, seed).generate().expect("simulates");
        assert_eq!(log.len(), expected);
        let text = faillog::to_string(&log).expect("serializes");
        let path = dir.join(format!("{}.fslog", log.generation()));
        std::fs::write(&path, &text).expect("writes log");
        let source = failindex::SourceInfo::of_bytes(text.as_bytes());
        failindex::save(failindex::snapshot_path(&path), &LogView::new(&log), source)
            .expect("saves snapshot");

        for expr in ["category == gpu && ttr > 24", "month in (6, 7, 8)", "node ~ \"rack1\""] {
            let pred = failfilter::compile(expr).expect("predicate compiles");
            // The snapshot holds unfiltered state: the predicate
            // composes by filtering the decoded view, with no parsing.
            let snap = match failindex::open_indexed(&path, None).expect("opens") {
                failindex::IndexedLoad::Exact(snap) => snap,
                other => panic!("fresh snapshot must be an exact hit, got {other:?}"),
            };
            let view = snap.into_view();
            let (spec, window) = (view.spec().clone(), view.window());
            let warm = view.filtered(|r| pred.matches(r, &spec, window));

            for threads in 1usize..=4 {
                let opts = ParseOptions::new().threads(threads).filter(pred.clone());
                let cold =
                    faillog::load_with(&path, &opts).expect("filtered cold parse succeeds");
                assert_eq!(
                    render(&warm, threads),
                    render(&LogView::new(&cold), threads),
                    "warm vs cold diverged for `{expr}` at {threads} threads on {}",
                    log.generation()
                );
            }
        }
    }
}
