//! End-to-end integration: generate → serialize → parse → analyze, across
//! every crate in the workspace.

use failscope::{
    CategoryBreakdown, InvolvementTable, NodeDistribution, SeasonalAnalysis, TbfAnalysis,
    TtrAnalysis,
};
use failsim::{ScenarioBuilder, Simulator, SystemModel};
use failtypes::{FailureLog, Generation};

fn generate(gen: Generation, seed: u64) -> FailureLog {
    Simulator::new(SystemModel::for_generation(gen), seed)
        .generate()
        .expect("calibrated models generate valid logs")
}

#[test]
fn generate_serialize_parse_analyze_roundtrip() {
    for (gen, seed) in [(Generation::Tsubame2, 42), (Generation::Tsubame3, 43)] {
        let log = generate(gen, seed);

        // Serialize to text and back.
        let text = faillog::to_string(&log).expect("serializes");
        let parsed = faillog::from_str(&text).expect("parses");
        assert_eq!(parsed, log, "round trip must be lossless");

        // Every analysis yields identical results on the parsed copy.
        let a = CategoryBreakdown::from_log(&log);
        let b = CategoryBreakdown::from_log(&parsed);
        assert_eq!(a, b);
        let a = TbfAnalysis::from_log(&log).expect("analysable");
        let b = TbfAnalysis::from_log(&parsed).expect("analysable");
        assert_eq!(a.mtbf_hours(), b.mtbf_hours());
        assert_eq!(a.p75_hours(), b.p75_hours());
    }
}

#[test]
fn file_roundtrip_through_disk() {
    let log = generate(Generation::Tsubame3, 7);
    let dir = std::env::temp_dir().join("failsuite-e2e");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("roundtrip.fslog");
    faillog::save(&path, &log).expect("saves");
    let loaded = faillog::load(&path).expect("loads");
    assert_eq!(loaded, log);
    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn anonymization_preserves_every_aggregate_analysis() {
    let log = generate(Generation::Tsubame2, 42);
    let anon = faillog::anonymize_nodes(&log, 0xABCD);

    // Node-identity-independent analyses are bit-identical.
    assert_eq!(
        CategoryBreakdown::from_log(&log),
        CategoryBreakdown::from_log(&anon)
    );
    assert_eq!(
        InvolvementTable::from_log(&log),
        InvolvementTable::from_log(&anon)
    );
    assert_eq!(
        TtrAnalysis::from_log(&log).expect("non-empty").mttr_hours(),
        TtrAnalysis::from_log(&anon).expect("non-empty").mttr_hours()
    );
    assert_eq!(
        SeasonalAnalysis::from_log(&log).monthly_failure_counts(),
        SeasonalAnalysis::from_log(&anon).monthly_failure_counts()
    );

    // Node-level distribution is preserved as a multiset.
    let d1 = NodeDistribution::from_log(&log);
    let d2 = NodeDistribution::from_log(&anon);
    assert_eq!(d1.failing_nodes(), d2.failing_nodes());
    assert_eq!(d1.histogram(), d2.histogram());
}

#[test]
fn what_if_scenario_flows_through_the_whole_stack() {
    let model = ScenarioBuilder::new("integration-what-if")
        .nodes(128)
        .gpus_per_node(6)
        .system_mtbf_hours(36.0)
        .window_days(400)
        .multi_gpu_fraction(0.3)
        .build()
        .expect("valid scenario");
    let log = Simulator::new(model, 99).generate().expect("generates");

    // Serialize/parse with a custom spec.
    let text = faillog::to_string(&log).expect("serializes");
    let parsed = faillog::from_str(&text).expect("parses");
    assert_eq!(parsed.spec().gpus_per_node(), 6);
    assert_eq!(parsed, log);

    // Analyses run and are self-consistent.
    let tbf = TbfAnalysis::from_log(&parsed).expect("many failures");
    assert!((tbf.mtbf_hours() - 36.0).abs() < 2.0);
    let inv = InvolvementTable::from_log(&parsed);
    assert!(inv.rows().iter().all(|r| r.gpus <= 6));
    let multi = inv.multi_gpu_fraction();
    assert!((multi - 0.3).abs() < 0.08, "multi fraction {multi}");

    // Mitigation consumes the same log.
    let plan = failmitigate::CheckpointPlan::from_log(&parsed, 0.2).expect("valid MTBF");
    assert!(plan.daly_interval_hours() > 1.0);
}

#[test]
fn filtered_views_stay_consistent_with_full_log() {
    let log = generate(Generation::Tsubame3, 43);
    let gpu_only = log.filtered(|r| r.category().is_gpu());
    assert_eq!(gpu_only.len(), 94);
    // Category breakdown of the filtered log is 100% GPU.
    let b = CategoryBreakdown::from_log(&gpu_only);
    assert!((b.gpu_fraction() - 1.0).abs() < 1e-12);
    // The filtered log serializes and parses like any other.
    let text = faillog::to_string(&gpu_only).expect("serializes");
    let parsed = faillog::from_str(&text).expect("parses");
    assert_eq!(parsed.len(), 94);
}

#[test]
fn determinism_across_the_full_pipeline() {
    let once = faillog::to_string(&generate(Generation::Tsubame2, 5)).expect("serializes");
    let twice = faillog::to_string(&generate(Generation::Tsubame2, 5)).expect("serializes");
    assert_eq!(once, twice, "same seed, same bytes");
    let other = faillog::to_string(&generate(Generation::Tsubame2, 6)).expect("serializes");
    assert_ne!(once, other, "different seed, different log");
}
