//! The paper's headline claims, verified end to end through the
//! `failbench` experiment harness — the same code path that generates
//! EXPERIMENTS.md.

use failbench::experiments::{self, ablations, ALL_IDS};

#[test]
fn every_table_and_figure_reproduces() {
    let mut failures = Vec::new();
    for id in ALL_IDS {
        let exp = experiments::run(id).expect("known id");
        if !exp.passes() {
            failures.push(exp.render());
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn every_ablation_reproduces() {
    for exp in ablations::all() {
        assert!(exp.passes(), "{} failed:\n{}", exp.id, exp.render());
    }
}

#[test]
fn headline_narrative_claims() {
    let (t2, t3) = experiments::standard_logs();

    // "GPU failures are significantly higher in number than CPU failures
    // on both the systems."
    let b2 = failscope::CategoryBreakdown::from_log(&t2);
    let b3 = failscope::CategoryBreakdown::from_log(&t3);
    assert!(b2.gpu_fraction() > 10.0 * b2.cpu_fraction());
    assert!(b3.gpu_fraction() > 5.0 * b3.cpu_fraction());

    // "software failures are becoming the dominant failure type": top T3
    // category is Software, top T2 category is GPU.
    assert_eq!(b3.shares()[0].category.label(), "Software");
    assert_eq!(b2.shares()[0].category.label(), "GPU");

    // "up to 4x improvement in overall system MTBF" / "the mean time to
    // recovery remains largely similar".
    let tbf2 = failscope::TbfAnalysis::from_log(&t2).expect("analysable");
    let tbf3 = failscope::TbfAnalysis::from_log(&t3).expect("analysable");
    assert!(tbf3.mtbf_hours() / tbf2.mtbf_hours() > 4.0);
    let ttr2 = failscope::TtrAnalysis::from_log(&t2).expect("non-empty");
    let ttr3 = failscope::TtrAnalysis::from_log(&t3).expect("non-empty");
    assert!((ttr2.mttr_hours() - ttr3.mttr_hours()).abs() < 10.0);

    // "no failure affected all four GPUs attached to a node" (T3).
    assert!(t3.gpu_records().all(|r| r.gpus().len() < 4));

    // "in ~70% of the failures more than one GPU was affected" (T2).
    let inv2 = failscope::InvolvementTable::from_log(&t2);
    assert!((inv2.multi_gpu_fraction() - 0.6956).abs() < 0.01);
}

#[test]
fn repro_harness_ids_are_unique_and_stable() {
    let mut ids: Vec<&str> = ALL_IDS.to_vec();
    ids.extend(ablations::all().iter().map(|e| e.id));
    let mut dedup = ids.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), ids.len(), "duplicate experiment ids");
    // The paper has 3 tables, 11 data figures (2-12), and the PEP
    // walkthrough.
    assert_eq!(ALL_IDS.len(), 15);
}
