//! Streaming/batch equivalence guarantees of the `failwatch` subsystem.
//!
//! The contract: feeding a finished log record by record through
//! `WatchState` must land in exactly the state the batch pipeline
//! computes from the whole log at once —
//!
//! 1. **Index equivalence** — the incremental `StreamView` equals the
//!    batch `LogView` on category partitions, month buckets, sorted
//!    TTRs, and slot/node tallies, on canonical logs, on arbitrary
//!    seeds, and on every prefix of a log (property-tested).
//! 2. **Estimate equivalence** — MTBF, mean gap, and MTTR are
//!    bit-identical to `TbfAnalysis`/`TtrAnalysis`, and while the
//!    quantile sketches are in exact mode their quantiles are
//!    bit-identical to the `Ecdf` over the same sample.
//! 3. **Alert correctness** — a full accelerated replay stays quiet on
//!    a clean stream's MTTR and fires on an injected regression.

use failscope::{LogView, TbfAnalysis, TtrAnalysis};
use failsim::{ReplayClock, Simulator, SystemModel};
use failstats::Ecdf;
use failtypes::{AlertKind, FailureLog};
use failwatch::{
    Baseline, DriftConfig, DriftDetector, SimSource, StateConfig, WatchConfig, WatchState,
};
use proptest::prelude::*;

fn ingest_all(log: &FailureLog) -> WatchState {
    let mut state = WatchState::for_log(log, StateConfig::default());
    for rec in log.iter() {
        state
            .ingest(rec.clone())
            .expect("replaying a valid log never fails");
    }
    state
}

/// The full equivalence contract between a streamed state and the batch
/// pipeline over the same records.
fn assert_stream_matches_batch(log: &FailureLog) {
    let state = ingest_all(log);
    let view = LogView::new(log);

    // Index structures are identical, not merely equivalent.
    let sv = state.view();
    assert_eq!(sv.len(), view.len());
    assert_eq!(sv.category_indices(), view.category_indices());
    assert_eq!(sv.month_ttrs(), view.month_ttrs());
    assert_eq!(sv.ttrs_sorted(), view.ttrs_sorted());
    assert_eq!(sv.slot_counts(), view.slot_counts());
    assert_eq!(sv.node_counts(), view.node_counts());

    // Headline estimates are bit-identical to the batch analyses. The
    // one deliberate divergence: the closed-form streaming MTBF
    // (window / n) is already defined at n = 1, where the batch
    // analysis returns `None` for lack of inter-arrival times.
    let tbf = TbfAnalysis::from_log(log);
    let ttr = TtrAnalysis::from_log(log);
    match &tbf {
        Some(t) => {
            assert_eq!(
                state.mtbf_hours().map(f64::to_bits),
                Some(t.mtbf_hours().to_bits())
            );
            assert_eq!(
                state.mean_gap_hours().map(f64::to_bits),
                Some(t.mean_gap_hours().to_bits())
            );
        }
        None => {
            let expected =
                (log.len() == 1).then(|| log.window().duration().get().to_bits());
            assert_eq!(state.mtbf_hours().map(f64::to_bits), expected);
            assert_eq!(state.mean_gap_hours(), None);
        }
    }
    assert_eq!(
        state.mttr_hours().map(f64::to_bits),
        ttr.as_ref().map(|t| t.mttr_hours().to_bits())
    );

    // While the sketches are exact they must agree with the Ecdf bit
    // for bit; past capacity the sketch guarantees rank error instead.
    if state.sketches_exact() {
        if let Some(ecdf) = Ecdf::from_sorted(view.ttrs_sorted().to_vec()) {
            for p in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
                assert_eq!(
                    state.ttr_quantile(p).map(f64::to_bits),
                    Some(ecdf.quantile(p).to_bits()),
                    "ttr quantile p={p}"
                );
            }
        }
    }
}

/// A prefix log: the first `k` records under the same window.
fn prefix(log: &FailureLog, k: usize) -> FailureLog {
    let recs: Vec<_> = log.iter().take(k).cloned().collect();
    FailureLog::new(log.generation(), log.window(), recs)
        .expect("a prefix of a valid log is valid")
}

#[test]
fn stream_matches_batch_on_canonical_logs() {
    for model in [SystemModel::tsubame2(), SystemModel::tsubame3()] {
        let log = Simulator::new(model, 42).generate().unwrap();
        assert_stream_matches_batch(&log);
    }
}

#[test]
fn stream_matches_batch_on_degenerate_logs() {
    let log = Simulator::new(SystemModel::tsubame3(), 42).generate().unwrap();
    // Empty stream.
    assert_stream_matches_batch(&log.filtered(|_| false));
    // Single record.
    assert_stream_matches_batch(&prefix(&log, 1));
    // Single-category slice.
    assert_stream_matches_batch(&log.filtered(|r| r.category().is_gpu()));
}

#[test]
fn clean_accelerated_replay_stays_quiet_on_mttr() {
    let mut source =
        SimSource::new(SystemModel::tsubame3(), 3, ReplayClock::unpaced()).unwrap();
    let baseline = Baseline::from_model(SystemModel::tsubame3(), 1).unwrap();
    let detector = DriftDetector::new(baseline, DriftConfig::default());
    let mut sink = Vec::new();
    let outcome =
        failwatch::run(&mut source, Some(detector), &WatchConfig::default(), &mut sink).unwrap();
    assert!(outcome.records > 0);
    assert!(
        !outcome
            .alerts
            .iter()
            .any(|a| a.kind == AlertKind::MttrRegression),
        "clean replay raised an MTTR regression"
    );
}

#[test]
fn injected_regression_alerts_and_state_still_counts_every_record() {
    let model = SystemModel::tsubame2();
    let clean_len = Simulator::new(model.clone(), 42).generate().unwrap().len();
    let mut source = SimSource::new(model.clone(), 42, ReplayClock::unpaced())
        .unwrap()
        .with_mttr_injection(5.0, 0.5);
    let baseline = Baseline::from_model(model, 1).unwrap();
    let detector = DriftDetector::new(baseline, DriftConfig::default());
    let mut sink = Vec::new();
    let outcome =
        failwatch::run(&mut source, Some(detector), &WatchConfig::default(), &mut sink).unwrap();
    // Injection rescales repair times; it never adds or drops events.
    assert_eq!(outcome.records, clean_len);
    assert_eq!(outcome.state.len(), clean_len);
    let regressions: Vec<_> = outcome
        .alerts
        .iter()
        .filter(|a| a.kind == AlertKind::MttrRegression)
        .collect();
    assert!(!regressions.is_empty(), "injected regression went undetected");
    for alert in &regressions {
        assert!(alert.metric > alert.threshold);
    }
    // The NDJSON stream carries the same alert.
    let text = String::from_utf8(sink).unwrap();
    assert!(text.contains("\"kind\":\"mttr_regression\""));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn stream_equivalence_holds_for_arbitrary_seeds(seed in 0u64..10_000) {
        let log = Simulator::new(SystemModel::tsubame3(), seed).generate().unwrap();
        assert_stream_matches_batch(&log);
    }

    #[test]
    fn stream_equivalence_holds_on_every_prefix(
        seed in 0u64..10_000,
        frac in 0.0..1.0f64,
    ) {
        let log = Simulator::new(SystemModel::tsubame3(), seed).generate().unwrap();
        let k = (log.len() as f64 * frac) as usize;
        assert_stream_matches_batch(&prefix(&log, k));
    }

    // Batched ingest is bit-identical to per-record ingest on every
    // prefix that falls on a chunk boundary: the complete state
    // (incremental index with its deferred sorted runs, quantile
    // sketches, EWMAs, trailing windows) compares equal, and drift
    // detectors evaluated at the same boundaries emit the same alerts.
    #[test]
    fn batched_ingest_matches_per_record_at_every_chunk_boundary(
        seed in 0u64..10_000,
        chunk_sizes in proptest::collection::vec(1usize..48, 1..24),
    ) {
        let log = Simulator::new(SystemModel::tsubame3(), seed).generate().unwrap();
        let baseline = Baseline::from_model(SystemModel::tsubame3(), 1).unwrap();
        let mut det_batched = DriftDetector::new(baseline.clone(), DriftConfig::default());
        let mut det_single = DriftDetector::new(baseline, DriftConfig::default());
        let mut batched = WatchState::for_log(&log, StateConfig::default());
        let mut per_record = WatchState::for_log(&log, StateConfig::default());

        let mut pos = 0;
        let mut turn = 0;
        while pos < log.len() {
            let size = chunk_sizes[turn % chunk_sizes.len()].min(log.len() - pos);
            turn += 1;
            let chunk = &log.records()[pos..pos + size];
            let accepted = batched.ingest_batch(chunk.to_vec()).unwrap();
            prop_assert_eq!(accepted, size);
            for rec in chunk {
                per_record.ingest(rec.clone()).unwrap();
            }
            pos += size;
            prop_assert_eq!(&batched, &per_record, "diverged after {} records", pos);
            let alerts_batched = det_batched.evaluate(&batched);
            let alerts_single = det_single.evaluate(&per_record);
            prop_assert_eq!(alerts_batched, alerts_single, "alerts diverged after {} records", pos);
        }
        prop_assert_eq!(batched.len(), log.len());
    }
}
