//! Determinism guarantees of the parallel execution engine.
//!
//! Three layers, three contracts:
//!
//! 1. **LogView equivalence** — every `from_view` analysis equals its
//!    `from_log` original, on canonical and on arbitrary seeds
//!    (property-tested).
//! 2. **Thread-count invariance** — the threaded report renderer and
//!    the sharded seed sweeps return bit-identical results at any
//!    worker count.
//! 3. **Shared-store invariance** — experiments built from the shared
//!    `LogStore` match experiments built from freshly simulated logs.

use failbench::experiments;
use failbench::runner;
use failscope::{
    class_mtbf_hours, class_mtbf_hours_view, gpu_involvement_mtbf_hours,
    gpu_involvement_mtbf_hours_view, per_category_tbf, per_category_tbf_view, per_category_ttr,
    per_category_ttr_view, render_report, render_report_threaded, AvailabilityAnalysis,
    CategoryBreakdown, ClassBreakdown, DomainBreakdown, LocusBreakdown, LogView, MultiGpuTemporal,
    NodeDistribution, RackDistribution, SeasonalAnalysis, SlotDistribution, TbfAnalysis,
    TtrAnalysis,
};
use failsim::{Simulator, SystemModel};
use failtypes::{ComponentClass, FailureLog};
use proptest::prelude::*;

fn assert_view_matches_log(log: &FailureLog) {
    let view = LogView::new(log);

    assert_eq!(CategoryBreakdown::from_view(&view), CategoryBreakdown::from_log(log));
    assert_eq!(ClassBreakdown::from_view(&view), ClassBreakdown::from_log(log));
    assert_eq!(DomainBreakdown::from_view(&view), DomainBreakdown::from_log(log));
    assert_eq!(LocusBreakdown::from_view(&view), LocusBreakdown::from_log(log));

    assert_eq!(NodeDistribution::from_view(&view), NodeDistribution::from_log(log));
    assert_eq!(SlotDistribution::from_view(&view), SlotDistribution::from_log(log));
    assert_eq!(RackDistribution::from_view(&view), RackDistribution::from_log(log));

    assert_eq!(TbfAnalysis::from_view(&view), TbfAnalysis::from_log(log));
    assert_eq!(TtrAnalysis::from_view(&view), TtrAnalysis::from_log(log));
    assert_eq!(per_category_tbf_view(&view, 5), per_category_tbf(log, 5));
    assert_eq!(per_category_ttr_view(&view), per_category_ttr(log));
    for class in [ComponentClass::Gpu, ComponentClass::Cpu, ComponentClass::Storage] {
        assert_eq!(
            class_mtbf_hours_view(&view, class),
            class_mtbf_hours(log, class)
        );
    }
    assert_eq!(
        gpu_involvement_mtbf_hours_view(&view),
        gpu_involvement_mtbf_hours(log)
    );

    assert_eq!(
        MultiGpuTemporal::from_view(&view, 96.0),
        MultiGpuTemporal::from_log(log, 96.0)
    );
    assert_eq!(
        AvailabilityAnalysis::from_view(&view),
        AvailabilityAnalysis::from_log(log)
    );
    assert_eq!(SeasonalAnalysis::from_view(&view), SeasonalAnalysis::from_log(log));
}

#[test]
fn logview_matches_from_log_on_canonical_logs() {
    let (t2, t3) = experiments::standard_logs();
    assert_view_matches_log(&t2);
    assert_view_matches_log(&t3);
}

#[test]
fn logview_matches_on_degenerate_logs() {
    let (_, t3) = experiments::standard_logs();
    // Empty log.
    assert_view_matches_log(&t3.filtered(|_| false));
    // Single-category slice.
    assert_view_matches_log(&t3.filtered(|r| r.category().is_gpu()));
}

#[test]
fn report_is_identical_at_every_thread_count() {
    let (t2, t3) = experiments::standard_logs();
    for log in [&*t2, &*t3] {
        let serial = render_report(log);
        for threads in 1..=8 {
            assert_eq!(
                serial,
                render_report_threaded(log, threads),
                "report diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn seed_sweeps_are_bit_identical_across_thread_counts() {
    let mtbf = |log: &FailureLog| {
        TbfAnalysis::from_log(log).map_or(0.0, |t| t.mtbf_hours())
    };
    let serial = experiments::seed_average_with(SystemModel::tsubame3, 7000, 6, 1, mtbf);
    for threads in [2, 3, 4, 8] {
        let parallel =
            experiments::seed_average_with(SystemModel::tsubame3, 7000, 6, threads, mtbf);
        assert_eq!(serial.to_bits(), parallel.to_bits(), "threads = {threads}");
    }
}

#[test]
fn parallel_catalog_run_matches_serial_byte_for_byte() {
    // A representative slice: cheap figures plus one seed-sweep-heavy one.
    let catalog = experiments::catalog();
    let slice: Vec<_> = catalog
        .into_iter()
        .filter(|(id, _)| ["table1", "fig2", "fig5", "fig9", "pep"].contains(id))
        .collect();
    let serial = runner::run_catalog_with(&slice, 1);
    let parallel = runner::run_catalog_with(&slice, 4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.render(), p.render(), "{} diverged across thread counts", s.id);
    }
}

#[test]
fn store_backed_logs_equal_fresh_simulations() {
    let (t2, t3) = experiments::standard_logs();
    let fresh2 = Simulator::new(SystemModel::tsubame2(), experiments::T2_SEED)
        .generate()
        .unwrap();
    let fresh3 = Simulator::new(SystemModel::tsubame3(), experiments::T3_SEED)
        .generate()
        .unwrap();
    assert_eq!(*t2, fresh2);
    assert_eq!(*t3, fresh3);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn logview_equivalence_holds_for_arbitrary_seeds(seed in 0u64..10_000) {
        let log = Simulator::new(SystemModel::tsubame3(), seed).generate().unwrap();
        assert_view_matches_log(&log);
    }

    #[test]
    fn threaded_report_is_deterministic_for_arbitrary_seeds(
        seed in 0u64..10_000,
        threads in 1usize..6,
    ) {
        let log = Simulator::new(SystemModel::tsubame3(), seed).generate().unwrap();
        prop_assert_eq!(render_report(&log), render_report_threaded(&log, threads));
    }
}
