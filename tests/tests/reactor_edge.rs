//! Connection edge cases for the `faild` reactor: requests that arrive
//! one byte at a time (slowloris), many requests pipelined into a
//! single TCP segment, clients that vanish mid-response, hundreds of
//! idle connections held open while others query, and the multi-fleet
//! catalog (`logs`/`evict`) round trip. Every response body must stay
//! byte-identical to the local engine — the CLI's own execution path —
//! no matter how the bytes were framed on the wire.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use failapi::{wire, OutputFormat, QueryEngine, QueryRequest, QuerySource};
use failserver::client::Connection;
use failserver::{Endpoint, ServeSummary, ServerConfig};
use failsim::{Simulator, SystemModel};
use failtypes::Result;

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("failsuite-reactor");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn write_log(name: &str, model: SystemModel) -> String {
    let path = temp_path(name);
    let log = Simulator::new(model, 42).generate().expect("simulates");
    faillog::save(path.to_str().unwrap(), &log).expect("saves");
    path.to_str().unwrap().to_string()
}

fn start_server(max_inflight: usize) -> (String, thread::JoinHandle<Result<ServeSummary>>) {
    let (tx, rx) = mpsc::channel();
    let handle = thread::spawn(move || {
        failserver::serve(
            ServerConfig {
                endpoint: Endpoint::tcp("127.0.0.1:0"),
                max_inflight,
            },
            move |bound| {
                tx.send(bound.clone()).expect("report bound endpoint");
            },
        )
    });
    let bound = rx.recv().expect("server binds");
    let addr = match bound {
        Endpoint::Tcp(addr) => addr,
        other => panic!("expected tcp endpoint, got {other}"),
    };
    (addr, handle)
}

fn local(req: &QueryRequest) -> String {
    QueryEngine::new().execute(req).expect("local query").output
}

fn shut_down(addr: &str, handle: thread::JoinHandle<Result<ServeSummary>>) -> ServeSummary {
    let endpoint = Endpoint::tcp(addr);
    let mut conn = Connection::connect(&endpoint).expect("connects for shutdown");
    let resp = conn
        .roundtrip(&wire::encode_simple(99, "shutdown"))
        .expect("shutdown");
    assert_eq!(resp.output, "faild: shutting down\n");
    handle.join().expect("server thread").expect("serve result")
}

/// One response line read from a raw socket, decoded.
fn read_response(reader: &mut BufReader<TcpStream>) -> wire::Response {
    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("reads response");
    assert!(n > 0, "server closed the connection unexpectedly");
    wire::parse_response(line.trim_end()).expect("well-formed response")
}

#[test]
fn slowloris_partial_frames_still_answer_byte_identically() {
    let log = write_log("slow.fslog", SystemModel::tsubame2());
    let (addr, handle) = start_server(2);

    let req = QueryRequest::report(QuerySource::file(&log)).sections("header,categories");
    let want = local(&req);

    // Sixteen connections, each dripping its request ONE byte at a
    // time, advanced round-robin so every connection holds a partial
    // frame at once: the reactor must buffer them all indefinitely
    // without burning CPU or timing anyone out.
    const DRIPPERS: usize = 16;
    let mut conns: Vec<(TcpStream, BufReader<TcpStream>)> = (0..DRIPPERS)
        .map(|_| {
            let stream = TcpStream::connect(&addr).expect("connects");
            let writer = stream.try_clone().expect("clones");
            (writer, BufReader::new(stream))
        })
        .collect();
    let lines: Vec<Vec<u8>> = (0..DRIPPERS)
        .map(|i| format!("{}\n", wire::encode_query(i as u64, &req)).into_bytes())
        .collect();
    let longest = lines.iter().map(Vec::len).max().unwrap();
    for pos in 0..longest {
        for (i, (writer, _)) in conns.iter_mut().enumerate() {
            if let Some(&byte) = lines[i].get(pos) {
                writer.write_all(&[byte]).expect("writes byte");
                writer.flush().expect("flushes");
            }
        }
        if pos % 64 == 0 {
            thread::sleep(Duration::from_millis(1));
        }
    }
    for (i, (writer, reader)) in conns.iter_mut().enumerate() {
        let resp = read_response(reader);
        assert_eq!(resp.id, i as u64);
        assert_eq!(resp.output, want);
        // Each connection is still healthy for a normally-framed request.
        writer
            .write_all(format!("{}\n", wire::encode_simple(100, "ping")).as_bytes())
            .expect("writes ping");
        assert_eq!(read_response(reader).output, "pong\n");
    }

    shut_down(&addr, handle);
}

#[test]
fn client_deadline_expires_with_a_reasoned_error_when_the_server_hangs() {
    // A "server" that accepts and then never says anything.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("binds");
    let addr = listener.local_addr().expect("addr").to_string();
    let hold = thread::spawn(move || listener.accept().map(|(s, _)| s));

    let endpoint = Endpoint::tcp(&addr);
    let mut conn = Connection::connect(&endpoint).expect("connects");
    conn.set_deadline(Some(Duration::from_millis(100)))
        .expect("sets deadline");
    let err = conn
        .roundtrip(&wire::encode_simple(1, "ping"))
        .expect_err("a mute server must trip the deadline");
    let msg = err.to_string();
    assert!(msg.contains("no response from faild within"), "{msg}");
    assert!(msg.contains("100ms"), "{msg}");
    drop(hold.join());
}

#[test]
fn pipelined_requests_in_one_segment_answer_in_order() {
    let t2 = write_log("pipe-t2.fslog", SystemModel::tsubame2());
    let t3 = write_log("pipe-t3.fslog", SystemModel::tsubame3());
    let (addr, handle) = start_server(4);

    // Mixed cheap and expensive queries: even with four workers racing,
    // responses must come back in request order on this connection.
    let reqs: Vec<QueryRequest> = vec![
        QueryRequest::report(QuerySource::file(&t2)).sections("header,categories,tbf"),
        QueryRequest::report(QuerySource::file(&t3))
            .sections("header,availability")
            .format(OutputFormat::Json),
        QueryRequest::compare(&t2, &t3),
        QueryRequest::report(QuerySource::file(&t2)).sections("header,categories,tbf"),
    ];
    let want: Vec<String> = reqs.iter().map(local).collect();
    let mut segment = String::new();
    for (i, req) in reqs.iter().enumerate() {
        segment.push_str(&wire::encode_query(i as u64 + 1, req));
        segment.push('\n');
    }
    segment.push_str(&wire::encode_simple(50, "ping"));
    segment.push('\n');

    let stream = TcpStream::connect(&addr).expect("connects");
    let mut writer = stream.try_clone().expect("clones");
    let mut reader = BufReader::new(stream);
    // One write call: all five requests land in the same segment(s)
    // and the reactor must split, execute, and reorder completions.
    writer.write_all(segment.as_bytes()).expect("writes batch");
    writer.flush().expect("flushes");

    for (i, want) in want.iter().enumerate() {
        let resp = read_response(&mut reader);
        assert_eq!(resp.id, i as u64 + 1, "responses must keep request order");
        assert_eq!(&resp.output, want);
    }
    assert_eq!(read_response(&mut reader).output, "pong\n");

    shut_down(&addr, handle);
}

#[test]
fn client_disconnect_mid_response_does_not_disturb_others() {
    let log = write_log("gone.fslog", SystemModel::tsubame2());
    let (addr, handle) = start_server(2);

    let req = QueryRequest::report(QuerySource::file(&log))
        .sections("header,categories,spatial,involvement,tbf,ttr,availability,survival,seasonal")
        .format(OutputFormat::Json);
    let want = local(&req);

    // Fire a large query and slam the connection shut without reading a
    // byte of the response; the server's write hits a dead peer.
    {
        let mut stream = TcpStream::connect(&addr).expect("connects");
        stream
            .write_all(format!("{}\n", wire::encode_query(1, &req)).as_bytes())
            .expect("writes");
        stream.flush().expect("flushes");
        // drop: RST or FIN while the response is queued or in flight
    }

    // A well-behaved client connected afterwards gets full service.
    let endpoint = Endpoint::tcp(&addr);
    let mut conn = Connection::connect(&endpoint).expect("connects");
    let resp = conn
        .roundtrip(&wire::encode_query(2, &req))
        .expect("query after abandoner");
    assert_eq!(resp.output, want);

    let summary = shut_down(&addr, handle);
    assert!(summary.connections >= 3, "summary: {summary:?}");
}

#[test]
fn hundreds_of_idle_connections_cost_nothing_and_interleave_queries() {
    let log = write_log("idle.fslog", SystemModel::tsubame3());
    let (addr, handle) = start_server(4);

    let req = QueryRequest::report(QuerySource::file(&log)).sections("header,tbf");
    let want = local(&req);

    // 512 connections held open with no traffic at all. The reactor
    // must keep them parked (no per-connection threads, no timeouts)
    // while interleaved queries on other connections stay snappy.
    let mut idle: Vec<TcpStream> = Vec::with_capacity(512);
    let endpoint = Endpoint::tcp(&addr);
    for i in 0..512 {
        idle.push(TcpStream::connect(&addr).expect("idle connect"));
        if i % 128 == 64 {
            let mut conn = Connection::connect(&endpoint).expect("connects");
            let resp = conn.roundtrip(&wire::encode_query(1, &req)).expect("query");
            assert_eq!(resp.output, want);
        }
    }

    // A late idler can still speak: pick one mid-pack and query on it.
    let stream = idle.swap_remove(256);
    let mut writer = stream.try_clone().expect("clones");
    let mut reader = BufReader::new(stream);
    writer
        .write_all(format!("{}\n", wire::encode_query(3, &req)).as_bytes())
        .expect("writes");
    writer.flush().expect("flushes");
    assert_eq!(read_response(&mut reader).output, want);

    drop(idle);
    let summary = shut_down(&addr, handle);
    assert!(summary.connections >= 513, "summary: {summary:?}");
}

#[test]
fn catalog_lists_and_evicts_cached_logs_over_the_wire() {
    let t2 = write_log("cat-t2.fslog", SystemModel::tsubame2());
    let t3 = write_log("cat-t3.fslog", SystemModel::tsubame3());
    let (addr, handle) = start_server(2);
    let endpoint = Endpoint::tcp(&addr);
    let mut conn = Connection::connect(&endpoint).expect("connects");

    // An empty server has an empty catalog.
    let resp = conn.roundtrip(&wire::encode_simple(1, "logs")).expect("logs");
    assert_eq!(resp.output, "faild: 0 cached logs\n");

    let req2 = QueryRequest::report(QuerySource::file(&t2)).sections("header,categories");
    let req3 = QueryRequest::report(QuerySource::file(&t3)).sections("header,categories");
    assert!(!conn.roundtrip(&wire::encode_query(2, &req2)).expect("t2").cached);
    assert!(conn.roundtrip(&wire::encode_query(3, &req2)).expect("t2 warm").cached);
    assert!(!conn.roundtrip(&wire::encode_query(4, &req3)).expect("t3").cached);

    // The catalog names both sources with fingerprint and cache state.
    let resp = conn.roundtrip(&wire::encode_simple(5, "logs")).expect("logs");
    assert!(resp.output.starts_with("faild: 2 cached logs\n"), "{}", resp.output);
    for path in [&t2, &t3] {
        assert!(resp.output.contains(path.as_str()), "{}", resp.output);
    }
    assert!(resp.output.contains("records="), "{}", resp.output);
    assert!(resp.output.contains("crc32="), "{}", resp.output);
    assert!(resp.output.contains("renders=1"), "{}", resp.output);

    // Evicting one source drops its parsed log and render entries...
    let resp = conn
        .roundtrip(&wire::encode_evict(6, &QuerySource::file(&t2)))
        .expect("evict");
    assert!(resp.output.contains("evicted"), "{}", resp.output);
    assert!(resp.output.contains(t2.as_str()), "{}", resp.output);
    assert!(resp.output.contains("logs=1"), "{}", resp.output);
    assert!(resp.output.contains("renders=1"), "{}", resp.output);

    // ...so the same query runs cold again while the survivor stays warm.
    assert!(!conn.roundtrip(&wire::encode_query(7, &req2)).expect("t2 cold").cached);
    assert!(conn.roundtrip(&wire::encode_query(8, &req3)).expect("t3 warm").cached);

    // Evicting something never loaded says so instead of erroring.
    let resp = conn
        .roundtrip(&wire::encode_evict(9, &QuerySource::file("/no/such.fslog")))
        .expect("evict miss");
    assert!(resp.output.contains("nothing cached"), "{}", resp.output);

    // The new counter family shows up in metrics alongside the old one.
    let resp = conn
        .roundtrip(&wire::encode_simple(10, "metrics"))
        .expect("metrics");
    for counter in ["cache.hits", "cache.misses", "engine.render_cache.hit"] {
        assert!(resp.output.contains(counter), "missing {counter}:\n{}", resp.output);
    }

    shut_down(&addr, handle);
}

#[test]
fn oversized_request_line_is_rejected_then_connection_closes() {
    let (addr, handle) = start_server(1);

    let stream = TcpStream::connect(&addr).expect("connects");
    let mut writer = stream.try_clone().expect("clones");
    let mut reader = BufReader::new(stream);
    // 9 MiB of 'x' with no newline: past the 8 MiB frame cap the server
    // must answer with a typed error and hang up rather than buffer
    // unbounded garbage.
    let blob = vec![b'x'; 9 * 1024 * 1024];
    // The peer may reset once the server stops reading; either the
    // write fails or the error line comes back — both are acceptable,
    // but if a line arrives it must be the typed oversize error.
    let _ = writer.write_all(&blob);
    let _ = writer.flush();
    let mut line = String::new();
    if reader.read_line(&mut line).is_ok() && !line.is_empty() {
        let err = wire::parse_response(line.trim_end()).expect_err("oversize is an error");
        assert!(err.to_string().contains("exceeds"), "{err}");
        // After the error line the server closes the connection.
        let mut rest = Vec::new();
        let _ = reader.read_to_end(&mut rest);
        assert!(rest.is_empty(), "connection should close after oversize error");
    }

    shut_down(&addr, handle);
}
