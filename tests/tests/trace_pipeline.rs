//! Pipeline-wide tracing guarantees, end to end:
//!
//! * **Golden trace snapshot** — the deterministic NDJSON export of a
//!   fully traced report pass (generate → index → render) over the
//!   canonical Tsubame-2 log is byte-identical to the checked-in
//!   golden file, at every thread count.
//! * **Metrics section** — `--sections metrics` surfaces the same
//!   collector through the section registry as structured JSON.
//! * **Thread invariance** — counters and histograms accumulate to the
//!   same values no matter how many workers render the report
//!   (property-tested over arbitrary seeds).

use failscope::{LogView, Section, SectionCtx, METRICS_SECTION_ID, SECTIONS};
use failsim::{Simulator, SystemModel};
use failtrace::Collector;
use proptest::prelude::*;

const GOLDEN_TRACE: &str = include_str!("golden/trace_report_tsubame2_seed42.ndjson");

/// One fully traced pipeline pass: simulate, index, render every
/// registry section as NDJSON on `threads` workers. Returns the report
/// and the collector.
fn traced_pass(model: SystemModel, seed: u64, threads: usize) -> (String, Collector) {
    let trace = Collector::new();
    let log = Simulator::new(model, seed)
        .generate_traced(Some(&trace))
        .expect("calibrated model simulates");
    let view = LogView::new_traced(&log, Some(&trace));
    let ctx = SectionCtx::with_trace(&view, &trace);
    let sections: Vec<&Section> = SECTIONS.iter().collect();
    let report = failscope::render_json_sections(&sections, &ctx, threads);
    (report, trace)
}

#[test]
fn trace_export_matches_golden_at_every_thread_count() {
    for threads in 1..=4 {
        let (_, trace) = traced_pass(SystemModel::tsubame2(), 42, threads);
        assert_eq!(
            trace.export(),
            GOLDEN_TRACE,
            "trace export drifted from golden at threads={threads}"
        );
    }
}

#[test]
fn trace_export_is_valid_ndjson_with_known_kinds() {
    let (_, trace) = traced_pass(SystemModel::tsubame3(), 43, 2);
    let export = trace.export();
    for (i, line) in export.lines().enumerate() {
        assert!(
            line.starts_with(r#"{"kind":"counter""#)
                || line.starts_with(r#"{"kind":"hist""#)
                || line.starts_with(r#"{"kind":"span""#),
            "line {i} has an unknown kind: {line}"
        );
        assert!(line.contains(&format!(r#""id":{i},"#)), "ids not sequential: {line}");
        assert!(line.contains(r#""stage":""#), "{line}");
        // The deterministic export never carries wall-clock fields.
        assert!(!line.contains("wall_ms"), "{line}");
    }
    assert!(export.contains(r#""stage":"sim.generate""#));
    assert!(export.contains(r#""stage":"index.logview""#));
    assert!(export.contains(r#""stage":"report.sections_rendered","value":9"#));
}

#[test]
fn metrics_section_surfaces_the_collector_through_the_registry() {
    let (report, trace) = traced_pass(SystemModel::tsubame2(), 42, 3);
    let metrics_line = report
        .lines()
        .find(|l| l.contains(r#""id":"metrics""#))
        .expect("metrics section rendered");
    assert!(
        metrics_line.starts_with(r#"{"id":"metrics","title":"Runtime metrics","data":{"#),
        "{metrics_line}"
    );
    for key in [r#""counters":"#, r#""hists":"#, r#""spans":"#] {
        assert!(metrics_line.contains(key), "{metrics_line}");
    }
    assert!(
        metrics_line.contains(r#""stage":"sim.records_generated","value":897"#),
        "{metrics_line}"
    );
    // The registry carries the section like any other.
    let section = failscope::section_by_id(METRICS_SECTION_ID).expect("registered");
    assert_eq!(section.title, "Runtime metrics");
    // Without a trace the section renders empty text and null JSON.
    let log = Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap();
    let view = LogView::new(&log);
    let ctx = SectionCtx::new(&view);
    assert_eq!((section.text)(&ctx), "");
    assert_eq!((section.json)(&ctx).render(), "null");
    // The traced collector renders a human-readable block too.
    assert!(trace.render_text().contains("counter sim.records_generated = 897"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // The deterministic export is a pure function of the work done,
    // not of how many threads did it.
    #[test]
    fn trace_export_is_thread_invariant_for_any_seed(
        seed in 0u64..10_000,
        tsubame2 in any::<bool>(),
        threads in 2usize..6,
    ) {
        let model = || if tsubame2 {
            SystemModel::tsubame2()
        } else {
            SystemModel::tsubame3()
        };
        let (serial_report, serial_trace) = traced_pass(model(), seed, 1);
        let (threaded_report, threaded_trace) = traced_pass(model(), seed, threads);
        prop_assert_eq!(serial_report, threaded_report);
        prop_assert_eq!(serial_trace.export(), threaded_trace.export());
        prop_assert_eq!(
            serial_trace.counter("sim.records_generated"),
            threaded_trace.counter("sim.records_generated")
        );
    }
}
