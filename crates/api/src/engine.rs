//! [`QueryEngine`]: the one execution path behind `failctl report`,
//! `failctl compare`, and every `faild` query.
//!
//! # One path, two lifetimes
//!
//! The CLI constructs a fresh engine per invocation, so its caches are
//! always cold and execution is exactly the old in-CLI pipeline. The
//! server keeps one engine alive across clients; that engine memoizes
//!
//! * **parsed logs** — keyed by source identity *and content
//!   fingerprint* (`(path, bytes, crc32, chunk size, filter)` for
//!   files, `(name, seed)` for models). Each entry stores the
//!   [`Collector`] that recorded the original parse/generation, and a
//!   cache hit replays those instruments into the new query's collector
//!   ([`Collector::merge_from`]), so the `metrics` section and `--trace`
//!   exports stay byte-identical to an uncached run.
//! * **rendered outputs** — keyed by the full query shape (command,
//!   source fingerprints, filters, sections, format, chunk size, index
//!   policy, and — when snapshots are in play — the snapshot freshness
//!   state). The thread count is deliberately **excluded**: output is
//!   byte-identical at every `--threads` value, so all thread counts
//!   share one entry. A log that grows on disk changes its fingerprint,
//!   which invalidates every dependent entry without any watcher
//!   machinery.
//!
//! Only successful outputs are cached; errors always re-execute.
//!
//! # Dirty snapshots
//!
//! Every unfiltered cold parse of a file (index mode `off`, where the
//! CLI would never write a snapshot) is remembered together with the
//! [`failindex::SourceInfo`] fingerprint of the bytes it parsed.
//! [`QueryEngine::persist_dirty`] — called by the server on graceful
//! shutdown — writes those indexes to disk so the next process starts
//! warm. Auto-mode cold parses refresh their snapshot immediately,
//! exactly like the CLI always has.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use failfilter::CompiledPredicate;
use failindex::{Freshness, IndexMode, IndexedLoad, SourceInfo};
use faillog::ParseOptions;
use failscope::SectionCtx;
use failsim::{Simulator, SystemModel};
use failtrace::Collector;
use failtypes::{Error, FailureLog, JsonValue, Result};

use crate::request::{OutputFormat, QueryCmd, QueryOptions, QueryRequest, QuerySource};

/// Default byte budget for the render cache (64 MiB). Rendered
/// reports are small (a few KiB), so the default holds thousands of
/// entries; `faild --cache-bytes` overrides it. The bound only ever
/// affects memory, never correctness: an evicted entry re-renders.
pub const DEFAULT_CACHE_BYTES: usize = 64 * 1024 * 1024;

/// The result of executing one [`QueryRequest`].
#[derive(Debug)]
pub struct QueryOutcome {
    /// The rendered output, byte-identical to the equivalent CLI
    /// invocation.
    pub output: String,
    /// The query's trace collector (load instruments replayed on cache
    /// hits), for `--trace` exports.
    pub trace: Collector,
    /// `true` when the output was served from the render cache.
    pub cached: bool,
}

/// A parsed (or generated) log plus the collector that recorded the
/// work, replayed into later queries that reuse the entry.
struct CachedLog {
    log: Arc<FailureLog>,
    load_trace: Collector,
    /// Catalog grouping id: the file path, or `model:{name}:{seed}`.
    /// Several cache entries (chunk-size or filter variants) share one
    /// id; `logs`/`evict` operate on the id, not the entry key.
    catalog_id: String,
    /// The file fingerprint at parse time (`None` for models).
    source_info: Option<SourceInfo>,
}

/// An unfiltered cold-parsed file log eligible for snapshot
/// persistence at shutdown.
struct DirtyLog {
    log: Arc<FailureLog>,
    source: SourceInfo,
}

struct RenderEntry {
    output: String,
    trace: Collector,
    /// Catalog ids of every source this output depends on, so a
    /// catalog `evict` can drop dependent renders.
    sources: Vec<String>,
    /// The entry's current recency stamp; `order` records with an
    /// older stamp are stale and skipped on eviction.
    stamp: u64,
    /// Charged against the byte budget: key + output length.
    bytes: usize,
}

/// An LRU render cache bounded by total bytes, not entry count.
///
/// Recency is tracked with stamps: every hit pushes a fresh
/// `(key, stamp)` pair instead of splicing the old one out of the
/// queue, and eviction skips pairs whose stamp no longer matches the
/// entry's (lazy invalidation). The queue is compacted when the stale
/// pairs outnumber the live entries.
#[derive(Default)]
struct RenderCache {
    map: HashMap<String, RenderEntry>,
    order: VecDeque<(String, u64)>,
    next_stamp: u64,
    bytes: usize,
}

impl RenderCache {
    /// Marks `key` as most recently used.
    fn touch(&mut self, key: &str) {
        self.next_stamp += 1;
        let stamp = self.next_stamp;
        if let Some(entry) = self.map.get_mut(key) {
            entry.stamp = stamp;
            self.order.push_back((key.to_string(), stamp));
        }
        self.maybe_compact();
    }

    /// Inserts an entry as most recently used and charges its bytes.
    fn insert(&mut self, key: String, mut entry: RenderEntry) {
        self.next_stamp += 1;
        entry.stamp = self.next_stamp;
        self.bytes += entry.bytes;
        self.order.push_back((key.clone(), entry.stamp));
        self.map.insert(key, entry);
    }

    /// Evicts least-recently-used entries until the budget holds.
    /// Returns how many live entries were dropped.
    fn evict_to(&mut self, budget: usize) -> usize {
        let mut evicted = 0;
        while self.bytes > budget {
            let Some((key, stamp)) = self.order.pop_front() else {
                break;
            };
            let live = self.map.get(&key).is_some_and(|e| e.stamp == stamp);
            if live {
                if let Some(entry) = self.map.remove(&key) {
                    self.bytes -= entry.bytes;
                    evicted += 1;
                }
            }
        }
        evicted
    }

    /// Drops every entry depending on `catalog_id`; returns the count.
    fn remove_source(&mut self, catalog_id: &str) -> usize {
        let doomed: Vec<String> = self
            .map
            .iter()
            .filter(|(_, e)| e.sources.iter().any(|s| s == catalog_id))
            .map(|(k, _)| k.clone())
            .collect();
        for key in &doomed {
            if let Some(entry) = self.map.remove(key) {
                self.bytes -= entry.bytes;
            }
        }
        self.maybe_compact();
        doomed.len()
    }

    /// Rebuilds the recency queue once stale pairs dominate, keeping
    /// amortized O(1) touches without unbounded queue growth.
    fn maybe_compact(&mut self) {
        if self.order.len() > 2 * self.map.len() + 64 {
            self.order
                .retain(|(key, stamp)| self.map.get(key).is_some_and(|e| e.stamp == *stamp));
        }
    }
}

/// The shared query executor. See the module docs for the caching and
/// determinism contract.
pub struct QueryEngine {
    logs: Mutex<HashMap<String, CachedLog>>,
    renders: Mutex<RenderCache>,
    dirty: Mutex<HashMap<String, DirtyLog>>,
    metrics: Collector,
    /// Render-cache byte budget (key + output bytes per entry).
    cache_bytes: usize,
}

impl std::fmt::Debug for QueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryEngine").finish_non_exhaustive()
    }
}

impl Default for QueryEngine {
    fn default() -> Self {
        Self::new()
    }
}

/// A source's resolved on-disk identity: the raw bytes fingerprint
/// (also reused as the dirty-snapshot `SourceInfo`). `None` when the
/// file could not be read — execution then bypasses every cache and
/// lets the parser report the canonical error.
type FilePrint = Option<SourceInfo>;

impl QueryEngine {
    /// A fresh engine with empty caches and the default render-cache
    /// byte budget ([`DEFAULT_CACHE_BYTES`]).
    pub fn new() -> Self {
        Self::with_cache_bytes(DEFAULT_CACHE_BYTES)
    }

    /// A fresh engine whose render cache is bounded to `cache_bytes`
    /// (the `faild --cache-bytes` knob). A budget of 0 disables render
    /// caching entirely; log memoization is unaffected.
    pub fn with_cache_bytes(cache_bytes: usize) -> Self {
        QueryEngine {
            logs: Mutex::new(HashMap::new()),
            renders: Mutex::new(RenderCache::default()),
            dirty: Mutex::new(HashMap::new()),
            metrics: Collector::new(),
            cache_bytes,
        }
    }

    /// The engine's own instrumentation (cache hits/misses, snapshot
    /// persistence). Cloning shares the registry, so a server can record
    /// its own counters into the same collector and export one
    /// `metrics` document.
    pub fn metrics(&self) -> &Collector {
        &self.metrics
    }

    /// Executes one query. The output is byte-identical to the
    /// equivalent CLI invocation at any thread count, warm or cold,
    /// cached or uncached.
    ///
    /// # Errors
    ///
    /// Propagates argument validation, filter compilation, I/O, and
    /// parse errors with the same messages the CLI commands always
    /// produced. Errors are never cached.
    pub fn execute(&self, req: &QueryRequest) -> Result<QueryOutcome> {
        let filter = build_filter(&req.opts)?;
        let key = self.render_key(req)?;
        if let Some((key, _)) = &key {
            let mut renders = self.renders.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(entry) = renders.map.get(key) {
                self.metrics.incr("engine.render_cache.hit", 1);
                self.metrics.incr("cache.hits", 1);
                let trace = Collector::new();
                trace.merge_from(&entry.trace);
                let output = entry.output.clone();
                renders.touch(key);
                return Ok(QueryOutcome {
                    output,
                    trace,
                    cached: true,
                });
            }
        }
        self.metrics.incr("engine.render_cache.miss", 1);
        self.metrics.incr("cache.misses", 1);
        let trace = Collector::new();
        let output = match &req.cmd {
            QueryCmd::Report(source) => self.run_report(req, source, &filter, &trace)?,
            QueryCmd::Compare { old, new } => self.run_compare(req, old, new, &filter, &trace)?,
        };
        if let Some((key, sources)) = key {
            let snapshot = Collector::new();
            snapshot.merge_from(&trace);
            let mut renders = self.renders.lock().unwrap_or_else(|e| e.into_inner());
            if !renders.map.contains_key(&key) {
                let bytes = key.len() + output.len();
                renders.insert(
                    key,
                    RenderEntry {
                        output: output.clone(),
                        trace: snapshot,
                        sources,
                        stamp: 0,
                        bytes,
                    },
                );
                let evicted = renders.evict_to(self.cache_bytes);
                if evicted > 0 {
                    self.metrics
                        .incr("engine.render_cache.evicted", evicted as u64);
                    self.metrics.incr("cache.evictions", evicted as u64);
                }
            }
        }
        Ok(QueryOutcome {
            output,
            trace,
            cached: false,
        })
    }

    /// Writes a `.fsidx` snapshot for every unfiltered cold-parsed file
    /// log the engine is still holding, skipping logs whose snapshot is
    /// already exact. Returns the number of snapshots written. Called
    /// by the server on graceful shutdown.
    pub fn persist_dirty(&self) -> usize {
        let drained: Vec<(String, DirtyLog)> = {
            let mut dirty = self.dirty.lock().unwrap_or_else(|e| e.into_inner());
            dirty.drain().collect()
        };
        let mut written = 0;
        for (path, entry) in drained {
            if matches!(failindex::probe(&path), Ok(Freshness::Exact)) {
                continue;
            }
            let view = failscope::LogView::new(&entry.log);
            if failindex::save(failindex::snapshot_path(&path), &view, entry.source).is_ok() {
                written += 1;
                self.metrics.incr("engine.snapshots_persisted", 1);
            }
        }
        written
    }

    /// The number of file logs currently awaiting snapshot persistence.
    pub fn dirty_count(&self) -> usize {
        self.dirty.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Builds the render-cache key for a request — plus the catalog
    /// ids of the sources it depends on, recorded in the entry so a
    /// catalog `evict` can drop dependent renders — or `None` when the
    /// request must not be cached (a source file is unreadable — let
    /// execution surface the canonical error — or a warm-mode probe
    /// failed).
    fn render_key(&self, req: &QueryRequest) -> Result<Option<(String, Vec<String>)>> {
        let mut sources = Vec::new();
        let mut catalog_ids = Vec::new();
        let paths: Vec<&str> = match &req.cmd {
            QueryCmd::Report(QuerySource::Model { name, seed }) => {
                sources.push(format!("model:{name}:{seed}"));
                catalog_ids.push(format!("model:{name}:{seed}"));
                Vec::new()
            }
            QueryCmd::Report(QuerySource::File(path)) => vec![path.as_str()],
            QueryCmd::Compare { old, new } => vec![old.as_str(), new.as_str()],
        };
        for path in paths {
            let Some(info) = fingerprint(path) else {
                return Ok(None);
            };
            catalog_ids.push(path.to_string());
            let mut id = format!("file:{path}:{}:{:08x}", info.bytes, info.crc32);
            if req.opts.index_mode() != IndexMode::Off {
                // Warm queries also depend on the snapshot's state: a
                // cold auto run that leaves a snapshot behind must not
                // be replayed for the (now warm) next run, whose
                // `metrics` section truthfully differs.
                let Ok(freshness) = failindex::probe(path) else {
                    return Ok(None);
                };
                let tag = match freshness {
                    Freshness::Exact => "exact".to_string(),
                    Freshness::Prefix { tail_bytes } => format!("prefix:{tail_bytes}"),
                    Freshness::Stale { .. } => "stale".to_string(),
                    Freshness::Missing => "missing".to_string(),
                };
                id.push_str(&format!(":fsidx={tag}"));
            }
            sources.push(id);
        }
        let opts = &req.opts;
        let key = JsonValue::object()
            .field("v", 1u64)
            .field(
                "cmd",
                match &req.cmd {
                    QueryCmd::Report(_) => "report",
                    QueryCmd::Compare { .. } => "compare",
                },
            )
            .field("sources", JsonValue::array(sources))
            .field("where", opt_str(&opts.where_expr))
            .field("since", opt_str(&opts.since))
            .field("until", opt_str(&opts.until))
            .field("sections", opt_str(&opts.sections))
            .field("format", opts.format.name())
            .field("chunk_bytes", opts.chunk_bytes as u64)
            .field("index", opts.index_mode().to_string())
            .build()
            .render();
        Ok(Some((key, catalog_ids)))
    }

    /// Lists every source the engine has memoized, grouped by catalog
    /// id (the file path, or `model:{name}:{seed}`) and sorted for
    /// deterministic output. Snapshot freshness is probed live, so the
    /// listing reflects the disk as of this call.
    pub fn catalog(&self) -> Vec<CatalogEntry> {
        struct Group {
            records: usize,
            info: Option<SourceInfo>,
            log_entries: usize,
        }
        let mut groups: HashMap<String, Group> = HashMap::new();
        {
            let logs = self.logs.lock().unwrap_or_else(|e| e.into_inner());
            for entry in logs.values() {
                let group = groups
                    .entry(entry.catalog_id.clone())
                    .or_insert_with(|| Group {
                        records: 0,
                        info: None,
                        log_entries: 0,
                    });
                group.log_entries += 1;
                // Filtered variants parse fewer records; report the
                // fullest parse the engine holds.
                group.records = group.records.max(entry.log.len());
                if let Some(info) = &entry.source_info {
                    let wider = group.info.as_ref().is_none_or(|g| info.bytes >= g.bytes);
                    if wider {
                        group.info = Some(*info);
                    }
                }
            }
        }
        let render_counts: HashMap<String, usize> = {
            let renders = self.renders.lock().unwrap_or_else(|e| e.into_inner());
            let mut counts = HashMap::new();
            for entry in renders.map.values() {
                for source in &entry.sources {
                    *counts.entry(source.clone()).or_insert(0) += 1;
                }
            }
            counts
        };
        let dirty: Vec<String> = {
            let dirty = self.dirty.lock().unwrap_or_else(|e| e.into_inner());
            dirty.keys().cloned().collect()
        };
        let mut entries: Vec<CatalogEntry> = groups
            .into_iter()
            .map(|(source, group)| {
                let is_model = group.info.is_none();
                let snapshot = if is_model {
                    None
                } else {
                    Some(match failindex::probe(&source) {
                        Ok(Freshness::Exact) => "exact".to_string(),
                        Ok(Freshness::Prefix { .. }) => "prefix".to_string(),
                        Ok(Freshness::Stale { .. }) => "stale".to_string(),
                        Ok(Freshness::Missing) | Err(_) => "missing".to_string(),
                    })
                };
                CatalogEntry {
                    records: group.records,
                    bytes: group.info.as_ref().map(|i| i.bytes),
                    crc32: group.info.as_ref().map(|i| i.crc32),
                    snapshot,
                    log_entries: group.log_entries,
                    render_entries: render_counts.get(&source).copied().unwrap_or(0),
                    dirty: dirty.contains(&source),
                    source,
                }
            })
            .collect();
        entries.sort_by(|a, b| a.source.cmp(&b.source));
        entries
    }

    /// Drops every memoized state for one source: parsed-log cache
    /// entries, render-cache entries depending on it, and its pending
    /// dirty snapshot. The next query re-parses from disk (or
    /// regenerates the model). Render drops count as cache evictions.
    pub fn evict(&self, source: &QuerySource) -> EvictOutcome {
        let catalog_id = catalog_id(source);
        let logs = {
            let mut logs = self.logs.lock().unwrap_or_else(|e| e.into_inner());
            let before = logs.len();
            logs.retain(|_, entry| entry.catalog_id != catalog_id);
            before - logs.len()
        };
        let renders = {
            let mut renders = self.renders.lock().unwrap_or_else(|e| e.into_inner());
            renders.remove_source(&catalog_id)
        };
        let dirty = {
            let mut dirty = self.dirty.lock().unwrap_or_else(|e| e.into_inner());
            usize::from(dirty.remove(&catalog_id).is_some())
        };
        if renders > 0 {
            self.metrics
                .incr("engine.render_cache.evicted", renders as u64);
            self.metrics.incr("cache.evictions", renders as u64);
        }
        self.metrics.incr("engine.catalog.evict", 1);
        EvictOutcome {
            source: catalog_id,
            logs,
            renders,
            dirty,
        }
    }

    /// Ported from the CLI `report` command: resolves the input (model,
    /// warm snapshot, or cold parse), renders the selected sections.
    fn run_report(
        &self,
        req: &QueryRequest,
        source: &QuerySource,
        filter: &Option<CompiledPredicate>,
        trace: &Collector,
    ) -> Result<String> {
        let opts = &req.opts;
        validate_chunk(opts)?;
        let sections = match &opts.sections {
            Some(spec) => failscope::select_sections(spec)?,
            None => failscope::SECTIONS.iter().collect(),
        };
        let input = match source {
            QuerySource::Model { name, seed } => {
                if let Some(mode) = opts.index {
                    return Err(Error::args(format!(
                        "--index {mode} only applies to file input (--model {name} is generated in-process)"
                    )));
                }
                let log = self.model_log(name, *seed, trace)?;
                // The model path never touches the parser; the
                // predicate applies directly to the generated records.
                match filter {
                    Some(p) => {
                        let (spec, window) = (log.spec().clone(), log.window());
                        ReportInput::Cold(Arc::new(log.filtered(|r| p.matches(r, &spec, window))))
                    }
                    None => ReportInput::Cold(log),
                }
            }
            QuerySource::File(path) => self.open_report_input(req, path, trace, filter)?,
        };
        let render = |ctx: &SectionCtx<'_>| match opts.format {
            OutputFormat::Text => failscope::render_text_sections(&sections, ctx, opts.threads),
            OutputFormat::Json => failscope::render_json_sections(&sections, ctx, opts.threads),
        };
        let body = match &input {
            ReportInput::Warm(view) => render(&SectionCtx::with_trace(view.as_ref(), trace)),
            ReportInput::Cold(log) => {
                let view = failscope::LogView::new_traced(log, Some(trace));
                render(&SectionCtx::with_trace(&view, trace))
            }
        };
        Ok(version_header(opts.format, "report") + &body)
    }

    /// Ported from the CLI `compare` command.
    fn run_compare(
        &self,
        req: &QueryRequest,
        old: &str,
        new: &str,
        filter: &Option<CompiledPredicate>,
        trace: &Collector,
    ) -> Result<String> {
        let opts = &req.opts;
        validate_chunk(opts)?;
        let older = self.load_compare_input(req, old, trace, filter)?;
        let newer = self.load_compare_input(req, new, trace, filter)?;
        let body = trace.time("compare.render", || match opts.format {
            OutputFormat::Text => {
                failscope::render_comparison_threaded(&older, &newer, opts.threads)
            }
            OutputFormat::Json => failscope::render_comparison_json(&older, &newer, opts.threads),
        });
        Ok(version_header(opts.format, "compare") + &body)
    }

    /// Loads a report's file input honouring the index policy and the
    /// query's filter: a warm snapshot is served without parsing the
    /// log (exact hit) or by parsing only its appended tail (prefix
    /// hit), with the predicate applied to the decoded view; otherwise
    /// the log is parsed cold with the predicate pushed into the
    /// parser. Auto mode refreshes the snapshot best-effort after an
    /// *unfiltered* cold parse only — a filtered parse never sees the
    /// whole log, and snapshots must.
    fn open_report_input(
        &self,
        req: &QueryRequest,
        path: &str,
        trace: &Collector,
        filter: &Option<CompiledPredicate>,
    ) -> Result<ReportInput> {
        let opts = &req.opts;
        let mode = opts.index_mode();
        if mode == IndexMode::Off {
            let log = self.file_log(path, opts, filter, trace)?;
            return Ok(ReportInput::Cold(log));
        }
        let warm = |view: failscope::StreamView| -> Result<ReportInput> {
            Ok(ReportInput::Warm(Box::new(filter_view(view, filter))))
        };
        match failindex::open_indexed(path, Some(trace))? {
            IndexedLoad::Exact(snap) => warm(snap.into_view()),
            IndexedLoad::Extended { snapshot, .. } => warm(snapshot.into_view()),
            IndexedLoad::Cold { source } => {
                if mode == IndexMode::Require {
                    return Err(require_warm_err(path, opts));
                }
                if filter.is_some() {
                    let log = self.file_log(path, opts, filter, trace)?;
                    return Ok(ReportInput::Cold(log));
                }
                let log = self.file_log(path, opts, &None, trace)?;
                failindex::save_traced(
                    failindex::snapshot_path(path),
                    &failscope::LogView::new(&log),
                    source,
                    Some(trace),
                )
                .ok();
                Ok(ReportInput::Cold(log))
            }
        }
    }

    /// Loads one `compare` input; warm snapshots are filtered as
    /// decoded views and converted back to a log without parsing (the
    /// comparison renderer works on logs).
    fn load_compare_input(
        &self,
        req: &QueryRequest,
        path: &str,
        trace: &Collector,
        filter: &Option<CompiledPredicate>,
    ) -> Result<Arc<FailureLog>> {
        let opts = &req.opts;
        let mode = opts.index_mode();
        if mode == IndexMode::Off {
            return self.file_log(path, opts, filter, trace);
        }
        match failindex::open_indexed(path, Some(trace))? {
            IndexedLoad::Exact(snap) => Ok(Arc::new(filter_view(snap.into_view(), filter).to_log())),
            IndexedLoad::Extended { snapshot, .. } => {
                Ok(Arc::new(filter_view(snapshot.into_view(), filter).to_log()))
            }
            IndexedLoad::Cold { source } => {
                if mode == IndexMode::Require {
                    return Err(require_warm_err(path, opts));
                }
                if filter.is_some() {
                    return self.file_log(path, opts, filter, trace);
                }
                let log = self.file_log(path, opts, &None, trace)?;
                failindex::save_traced(
                    failindex::snapshot_path(path),
                    &failscope::LogView::new(&log),
                    source,
                    Some(trace),
                )
                .ok();
                Ok(log)
            }
        }
    }

    /// A memoized in-process model generation. The stored load trace is
    /// replayed into `trace` so a cache hit's metrics are identical to
    /// a fresh generation.
    fn model_log(&self, name: &str, seed: u64, trace: &Collector) -> Result<Arc<FailureLog>> {
        let model = model_by_name(name)?;
        let key = format!("model:{name}:{seed}");
        {
            let logs = self.logs.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(entry) = logs.get(&key) {
                self.metrics.incr("engine.log_cache.hit", 1);
                trace.merge_from(&entry.load_trace);
                return Ok(Arc::clone(&entry.log));
            }
        }
        self.metrics.incr("engine.log_cache.miss", 1);
        let load_trace = Collector::new();
        let log = Arc::new(Simulator::new(model, seed).generate_traced(Some(&load_trace))?);
        trace.merge_from(&load_trace);
        let mut logs = self.logs.lock().unwrap_or_else(|e| e.into_inner());
        logs.entry(key.clone()).or_insert(CachedLog {
            log: Arc::clone(&log),
            load_trace,
            catalog_id: key,
            source_info: None,
        });
        Ok(log)
    }

    /// A memoized cold file parse (with the query's filter pushed into
    /// the parser), keyed by content fingerprint so a grown or
    /// rewritten log re-parses. Unfiltered parses are remembered for
    /// snapshot persistence at shutdown.
    fn file_log(
        &self,
        path: &str,
        opts: &QueryOptions,
        filter: &Option<CompiledPredicate>,
        trace: &Collector,
    ) -> Result<Arc<FailureLog>> {
        let parse_opts = {
            let mut p = ParseOptions::new()
                .threads(opts.threads)
                .chunk_bytes(opts.chunk_bytes);
            p.filter.clone_from(filter);
            p
        };
        let Some(info) = fingerprint(path) else {
            // Unreadable input: parse uncached so the loader reports
            // the canonical error (and never poisons a cache entry).
            let load_trace = Collector::new();
            let log = load_traced(path, &load_trace, &parse_opts)?;
            trace.merge_from(&load_trace);
            return Ok(Arc::new(log));
        };
        let filter_tag = match (&filter, opts) {
            (None, _) => String::from("-"),
            (Some(_), o) => format!(
                "w={:?};s={:?};u={:?}",
                o.where_expr, o.since, o.until
            ),
        };
        let key = format!(
            "file:{path}:{}:{:08x}:c{}:{filter_tag}",
            info.bytes, info.crc32, opts.chunk_bytes
        );
        {
            let logs = self.logs.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(entry) = logs.get(&key) {
                self.metrics.incr("engine.log_cache.hit", 1);
                trace.merge_from(&entry.load_trace);
                return Ok(Arc::clone(&entry.log));
            }
        }
        self.metrics.incr("engine.log_cache.miss", 1);
        let load_trace = Collector::new();
        let log = Arc::new(load_traced(path, &load_trace, &parse_opts)?);
        trace.merge_from(&load_trace);
        if filter.is_none() {
            let mut dirty = self.dirty.lock().unwrap_or_else(|e| e.into_inner());
            dirty.insert(
                path.to_string(),
                DirtyLog {
                    log: Arc::clone(&log),
                    source: info,
                },
            );
        }
        let mut logs = self.logs.lock().unwrap_or_else(|e| e.into_inner());
        logs.entry(key).or_insert(CachedLog {
            log: Arc::clone(&log),
            load_trace,
            catalog_id: path.to_string(),
            source_info: Some(info),
        });
        Ok(log)
    }
}

/// One source in the engine's catalog: everything `faild` remembers
/// about a log it has served, grouped across chunk-size and filter
/// variants. Produced by [`QueryEngine::catalog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogEntry {
    /// The grouping id: the file path, or `model:{name}:{seed}`.
    pub source: String,
    /// Records in the fullest cached parse of this source.
    pub records: usize,
    /// File bytes at parse time (`None` for in-process models).
    pub bytes: Option<u64>,
    /// CRC-32 of the file bytes at parse time (`None` for models).
    pub crc32: Option<u32>,
    /// Live `.fsidx` freshness — `exact`, `prefix`, `stale`, or
    /// `missing` — probed at listing time (`None` for models).
    pub snapshot: Option<String>,
    /// Parsed-log cache entries held for this source.
    pub log_entries: usize,
    /// Render-cache entries whose output depends on this source.
    pub render_entries: usize,
    /// Whether an unfiltered cold parse awaits snapshot persistence.
    pub dirty: bool,
}

/// What one [`QueryEngine::evict`] dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictOutcome {
    /// The catalog id the eviction targeted.
    pub source: String,
    /// Parsed-log cache entries dropped.
    pub logs: usize,
    /// Render-cache entries dropped.
    pub renders: usize,
    /// Pending dirty snapshots dropped (0 or 1).
    pub dirty: usize,
}

impl EvictOutcome {
    /// The `faild` response body for an `evict` command.
    pub fn render(&self) -> String {
        if self.logs == 0 && self.renders == 0 && self.dirty == 0 {
            return format!("faild: nothing cached for {}\n", self.source);
        }
        format!(
            "faild: evicted {} (logs={} renders={} dirty={})\n",
            self.source, self.logs, self.renders, self.dirty
        )
    }
}

/// The catalog id a source groups under: the file path, or
/// `model:{name}:{seed}`.
fn catalog_id(source: &QuerySource) -> String {
    match source {
        QuerySource::File(path) => path.clone(),
        QuerySource::Model { name, seed } => format!("model:{name}:{seed}"),
    }
}

/// Renders the catalog listing the `faild` `logs` command returns: a
/// count header plus one line per source, sorted by catalog id.
pub fn render_catalog(entries: &[CatalogEntry]) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "faild: {} cached log{}\n",
        entries.len(),
        if entries.len() == 1 { "" } else { "s" }
    );
    for e in entries {
        let _ = write!(out, "{}: records={}", e.source, e.records);
        if let (Some(bytes), Some(crc)) = (e.bytes, e.crc32) {
            let _ = write!(out, " bytes={bytes} crc32={crc:08x}");
        }
        if let Some(snapshot) = &e.snapshot {
            let _ = write!(out, " snapshot={snapshot}");
        }
        let _ = writeln!(
            out,
            " entries={} renders={} dirty={}",
            e.log_entries,
            e.render_entries,
            if e.dirty { "yes" } else { "no" }
        );
    }
    out
}

/// A report's resolved input: a warm snapshot index, or a cold-parsed
/// (possibly filtered at ingest) log.
enum ReportInput {
    Warm(Box<failscope::StreamView>),
    Cold(Arc<FailureLog>),
}

/// The `{"v":1,...}` header line versioning every JSON output; text
/// output is unversioned (it is not a machine schema).
fn version_header(format: OutputFormat, kind: &str) -> String {
    match format {
        OutputFormat::Text => String::new(),
        OutputFormat::Json => format!("{{\"v\":1,\"kind\":\"{kind}\"}}\n"),
    }
}

fn opt_str(value: &Option<String>) -> JsonValue {
    match value {
        Some(s) => JsonValue::Str(s.clone()),
        None => JsonValue::Null,
    }
}

/// Raw-bytes fingerprint of a source file (`None` when unreadable).
fn fingerprint(path: &str) -> FilePrint {
    std::fs::read(path).ok().map(|raw| SourceInfo::of_bytes(&raw))
}

fn validate_chunk(opts: &QueryOptions) -> Result<()> {
    if opts.chunk_bytes == 0 {
        return Err(Error::args("--parse-chunk must be at least 1 byte"));
    }
    Ok(())
}

fn load_traced(path: &str, trace: &Collector, opts: &ParseOptions) -> Result<FailureLog> {
    // Parse errors carry their 1-based line number and offending field;
    // prefixing the path makes the message directly actionable.
    faillog::load_traced_with(path, Some(trace), opts)
        .map_err(|e| Error::run(format!("{path}: {e}")))
}

/// Compiles the record filter for a query: the `--where` expression,
/// conjoined with the `--since`/`--until` sugar, which desugars into
/// the same predicate IR (`time >= SINCE && time < UNTIL`; `--until` is
/// exclusive, matching the half-open observation window). Returns
/// `None` when no filtering option is present.
pub(crate) fn build_filter(opts: &QueryOptions) -> Result<Option<CompiledPredicate>> {
    compile_filter(
        opts.where_expr.as_deref(),
        opts.since.as_deref(),
        opts.until.as_deref(),
    )
}

/// Filter compilation shared with the watch runner.
pub(crate) fn compile_filter(
    where_expr: Option<&str>,
    since: Option<&str>,
    until: Option<&str>,
) -> Result<Option<CompiledPredicate>> {
    let mut pred: Option<CompiledPredicate> = None;
    let mut conjoin = |p: CompiledPredicate| {
        pred = Some(match pred.take() {
            Some(q) => q.and(p),
            None => p,
        });
    };
    if let Some(src) = where_expr {
        conjoin(failfilter::compile(src).map_err(|e| Error::args(format!("--where: {e}")))?);
    }
    for (flag, op, raw) in [("since", ">=", since), ("until", "<", until)] {
        if let Some(raw) = raw {
            let lit = failfilter::time_literal(raw)
                .map_err(|e| Error::args(format!("--{flag}: {e}")))?;
            conjoin(
                failfilter::compile(&format!("time {op} {lit}"))
                    .expect("desugared time bound compiles"),
            );
        }
    }
    Ok(pred)
}

/// Filters a snapshot-decoded view through the query's predicate
/// (identity without one). Snapshots always persist unfiltered state;
/// this is where a `--where` composes with a warm index — still with
/// zero parsing.
fn filter_view(
    view: failscope::StreamView,
    filter: &Option<CompiledPredicate>,
) -> failscope::StreamView {
    match filter {
        Some(p) => {
            let spec = view.spec().clone();
            let window = view.window();
            view.filtered(|r| p.matches(r, &spec, window))
        }
        None => view,
    }
}

fn require_warm_err(path: &str, opts: &QueryOptions) -> Error {
    use std::fmt::Write as _;
    let mut msg = format!(
        "{path}: no warm .fsidx snapshot for --index require (build one with `failctl index build {path}`)"
    );
    if let Some(expr) = &opts.where_expr {
        // Snapshots are always unfiltered, so the fix is the same build
        // command — the filter applies at read time, not build time.
        let _ = write!(
            msg,
            "; `--where {expr}` filters the snapshot at read time, so the same unfiltered build serves it"
        );
    }
    Error::run(msg)
}

/// Resolves a calibrated model by name.
pub fn model_by_name(name: &str) -> Result<SystemModel> {
    match name {
        "tsubame2" => Ok(SystemModel::tsubame2()),
        "tsubame3" => Ok(SystemModel::tsubame3()),
        other => Err(Error::run(format!(
            "unknown model `{other}` (use tsubame2 or tsubame3)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::QueryRequest;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("failapi-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn model_report_is_cached_with_identical_bytes_and_trace() {
        let engine = QueryEngine::new();
        let req = QueryRequest::report(QuerySource::model("tsubame2", 42))
            .format(OutputFormat::Json)
            .threads(2);
        let cold = engine.execute(&req).expect("executes");
        assert!(!cold.cached);
        assert!(cold.output.starts_with("{\"v\":1,\"kind\":\"report\"}\n"));
        let warm = engine.execute(&req).expect("executes");
        assert!(warm.cached);
        assert_eq!(warm.output, cold.output);
        assert_eq!(warm.trace.export(), cold.trace.export());
        // A fresh engine (the CLI case) produces the same bytes.
        let fresh = QueryEngine::new().execute(&req).expect("executes");
        assert_eq!(fresh.output, cold.output);
        assert_eq!(fresh.trace.export(), cold.trace.export());
    }

    #[test]
    fn thread_count_shares_one_cache_entry() {
        let engine = QueryEngine::new();
        let base = QueryRequest::report(QuerySource::model("tsubame3", 7));
        let one = engine.execute(&base.clone().threads(1)).expect("executes");
        let four = engine.execute(&base.threads(4)).expect("executes");
        assert!(!one.cached);
        assert!(four.cached, "threads must not split the render cache");
        assert_eq!(one.output, four.output);
    }

    #[test]
    fn file_growth_invalidates_the_render_cache() {
        let path = temp_path("grow.fslog");
        let p = path.to_str().unwrap();
        let log = Simulator::new(SystemModel::tsubame2(), 42)
            .generate()
            .expect("simulates");
        let text = faillog::to_string(&log).expect("serializes");
        let cut = text[..text.len() / 2].rfind('\n').expect("has lines") + 1;
        std::fs::write(&path, &text[..cut]).expect("write prefix");

        let engine = QueryEngine::new();
        let req = QueryRequest::report(QuerySource::file(p)).sections("header,tbf");
        let first = engine.execute(&req).expect("executes");
        assert!(engine.execute(&req).expect("executes").cached);

        std::fs::write(&path, &text).expect("write full");
        let regrown = engine.execute(&req).expect("executes");
        assert!(!regrown.cached, "growth must invalidate the cache");
        assert_ne!(regrown.output, first.output);
        // ... and the grown output matches a fresh engine's.
        let fresh = QueryEngine::new().execute(&req).expect("executes");
        assert_eq!(regrown.output, fresh.output);

        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn persist_dirty_writes_snapshots_for_cold_parses() {
        let path = temp_path("dirty.fslog");
        let p = path.to_str().unwrap();
        let spath = failindex::snapshot_path(p);
        let log = Simulator::new(SystemModel::tsubame2(), 42)
            .generate()
            .expect("simulates");
        faillog::save(p, &log).expect("saves");
        let _ = std::fs::remove_file(&spath);

        let engine = QueryEngine::new();
        let req = QueryRequest::report(QuerySource::file(p)).sections("header");
        engine.execute(&req).expect("executes");
        assert_eq!(engine.dirty_count(), 1);
        assert_eq!(engine.persist_dirty(), 1);
        assert_eq!(engine.dirty_count(), 0);
        assert!(matches!(failindex::probe(p), Ok(Freshness::Exact)));
        // Filtered parses never mark the log dirty: the parse did not
        // see the whole log, and snapshots must.
        let _ = std::fs::remove_file(&spath);
        let filtered = QueryRequest::report(QuerySource::file(p))
            .sections("header")
            .where_expr("category == gpu");
        engine.execute(&filtered).expect("executes");
        assert_eq!(engine.dirty_count(), 0);

        std::fs::remove_file(&path).expect("cleanup");
        let _ = std::fs::remove_file(&spath);
    }

    #[test]
    fn validation_errors_match_the_cli_wording() {
        let engine = QueryEngine::new();
        let err = engine
            .execute(
                &QueryRequest::report(QuerySource::model("tsubame2", 42))
                    .index(IndexMode::Auto),
            )
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("--index auto only applies to file input"),
            "{err}"
        );
        let err = engine
            .execute(&QueryRequest::report(QuerySource::model("cray", 1)))
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown model `cray`"), "{err}");
        let err = engine
            .execute(
                &QueryRequest::report(QuerySource::model("tsubame2", 1)).where_expr("bananas == 1"),
            )
            .unwrap_err()
            .to_string();
        assert!(err.starts_with("--where: unknown field `bananas`"), "{err}");
        let err = engine
            .execute(&QueryRequest::report(QuerySource::model("tsubame2", 1)).chunk_bytes(0))
            .unwrap_err()
            .to_string();
        assert!(err.contains("--parse-chunk must be at least 1 byte"), "{err}");
    }
}
