//! The failscope query layer: a typed [`QueryRequest`] /
//! [`QueryOutcome`] API with **one** execution path shared
//! byte-identically by the `failctl` CLI and the `faild` query server.
//!
//! Before this crate existed, `failctl report` and `failctl compare`
//! carried the whole pipeline — filter compilation, `.fsidx` snapshot
//! policy, cold parsing, section rendering — inside the CLI crate,
//! which made a long-running server impossible without duplicating
//! that logic. `failapi` extracts it:
//!
//! * [`request`] — the serializable query model: sources
//!   ([`QuerySource`]), commands (report/compare), and the common
//!   options every query shares (threads, `--where`/`--since`/`--until`
//!   filters, sections, format, `.fsidx` index policy, parse chunking).
//! * [`engine`] — [`QueryEngine::execute`], the single execution path.
//!   A fresh engine behaves exactly like the old CLI commands; a
//!   long-lived engine (the server) additionally memoizes parsed logs
//!   and rendered outputs keyed by content fingerprints, so repeated
//!   queries are answered without re-parsing **and still byte-identical
//!   to a cold run** (cached load traces are replayed into each query's
//!   collector via [`failtrace::Collector::merge_from`]).
//! * [`wire`] — the versioned NDJSON protocol (`{"v":1,...}`) spoken
//!   over the `faild` socket, used by both the server and the
//!   `failctl query` client so the two cannot drift.
//! * [`watch`] — the streaming watch runner ([`WatchRequest`]), moved
//!   out of the CLI so bounded watch queries can also be served.
//!
//! # Determinism contract
//!
//! For any fixed request, the rendered output is byte-identical at
//! every `--threads` value, warm or cold, cached or uncached. Cache
//! keys therefore exclude the thread count but include the source
//! fingerprint (bytes + crc32), the parse chunk size (the `metrics`
//! section truthfully reports `parse.chunks`), the filter expressions,
//! the section selection, the output format, and — when snapshots are
//! in play — the snapshot freshness state, which is what invalidates
//! warm entries when a log grows.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod engine;
pub mod request;
pub mod watch;
pub mod wire;

pub use engine::{
    render_catalog, CatalogEntry, EvictOutcome, QueryEngine, QueryOutcome, DEFAULT_CACHE_BYTES,
};
pub use request::{
    parse_chunk_bytes, parse_format, parse_index, parse_threads, OutputFormat, QueryCmd,
    QueryOptions, QueryRequest, QuerySource,
};
pub use watch::WatchRequest;
