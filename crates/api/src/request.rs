//! The serializable query model shared by the CLI and the server.
//!
//! A [`QueryRequest`] carries everything a report or comparison needs,
//! as plain data: raw filter expressions (compiled at execution time so
//! requests stay cheap to ship over the wire and stable as cache-key
//! components), a source ([`QuerySource`]), and the common
//! [`QueryOptions`]. The flag-parsing helpers at the bottom are the
//! single place the textual flag values (`--threads 4`,
//! `--format json`, ...) become typed values, so the CLI and the wire
//! protocol reject bad values with identical messages.

use failindex::IndexMode;
use failtypes::{Error, Result};

/// Where a query's records come from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuerySource {
    /// A `.fslog` file on disk (gzip-compressed input is transparent).
    File(String),
    /// A calibrated model generated in-process (`--model NAME
    /// [--seed N]`).
    Model {
        /// Model name (`tsubame2` or `tsubame3`).
        name: String,
        /// Simulation seed.
        seed: u64,
    },
}

impl QuerySource {
    /// Convenience constructor for a file source.
    pub fn file(path: impl Into<String>) -> Self {
        QuerySource::File(path.into())
    }

    /// Convenience constructor for a model source.
    pub fn model(name: impl Into<String>, seed: u64) -> Self {
        QuerySource::Model {
            name: name.into(),
            seed,
        }
    }
}

/// How a query renders its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Operator-facing plain text (the default).
    #[default]
    Text,
    /// Machine-readable JSON (NDJSON with a `{"v":1,...}` header line).
    Json,
}

impl OutputFormat {
    /// The wire/flag name of the format.
    pub fn name(self) -> &'static str {
        match self {
            OutputFormat::Text => "text",
            OutputFormat::Json => "json",
        }
    }
}

/// What a query computes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryCmd {
    /// The sectioned reliability report over one source.
    Report(QuerySource),
    /// The cross-generation comparison of two log files.
    Compare {
        /// The older log's path.
        old: String,
        /// The newer log's path.
        new: String,
    },
}

/// Options shared by every query command; mirrors the CLI's common
/// flags one for one so they cannot drift between commands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOptions {
    /// Worker threads for parsing and section rendering. Output is
    /// byte-identical at every value.
    pub threads: usize,
    /// Byte-range chunk size the input is split at while parsing.
    pub chunk_bytes: usize,
    /// Raw `--where` filter expression, compiled at execution time.
    pub where_expr: Option<String>,
    /// Raw `--since` bound (sugar for `time >= T`).
    pub since: Option<String>,
    /// Raw `--until` bound (sugar for `time < T`, exclusive).
    pub until: Option<String>,
    /// Output format.
    pub format: OutputFormat,
    /// Raw `--sections` selection spec (report only; `None` = all).
    pub sections: Option<String>,
    /// `.fsidx` snapshot policy; `None` means the flag was not given
    /// (equivalent to [`IndexMode::Off`], but model sources reject an
    /// explicit flag even when it is `off`).
    pub index: Option<IndexMode>,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            threads: failstats::available_threads(),
            chunk_bytes: faillog::DEFAULT_CHUNK_BYTES,
            where_expr: None,
            since: None,
            until: None,
            format: OutputFormat::Text,
            sections: None,
            index: None,
        }
    }
}

impl QueryOptions {
    /// The effective snapshot policy ([`IndexMode::Off`] when the flag
    /// was not given).
    pub fn index_mode(&self) -> IndexMode {
        self.index.unwrap_or(IndexMode::Off)
    }
}

/// A complete query: the command plus its options. Build one with
/// [`QueryRequest::report`] / [`QueryRequest::compare`] and the
/// chainable setters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRequest {
    /// What to compute.
    pub cmd: QueryCmd,
    /// The shared options.
    pub opts: QueryOptions,
}

impl QueryRequest {
    /// A report query over `source` with default options.
    pub fn report(source: QuerySource) -> Self {
        QueryRequest {
            cmd: QueryCmd::Report(source),
            opts: QueryOptions::default(),
        }
    }

    /// A comparison query over two log files with default options.
    pub fn compare(old: impl Into<String>, new: impl Into<String>) -> Self {
        QueryRequest {
            cmd: QueryCmd::Compare {
                old: old.into(),
                new: new.into(),
            },
            opts: QueryOptions::default(),
        }
    }

    /// Sets the worker thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.opts.threads = threads;
        self
    }

    /// Sets the parse chunk size in bytes.
    #[must_use]
    pub fn chunk_bytes(mut self, chunk_bytes: usize) -> Self {
        self.opts.chunk_bytes = chunk_bytes;
        self
    }

    /// Sets the raw `--where` expression.
    #[must_use]
    pub fn where_expr(mut self, expr: impl Into<String>) -> Self {
        self.opts.where_expr = Some(expr.into());
        self
    }

    /// Sets the raw `--since` bound.
    #[must_use]
    pub fn since(mut self, bound: impl Into<String>) -> Self {
        self.opts.since = Some(bound.into());
        self
    }

    /// Sets the raw `--until` bound.
    #[must_use]
    pub fn until(mut self, bound: impl Into<String>) -> Self {
        self.opts.until = Some(bound.into());
        self
    }

    /// Sets the output format.
    #[must_use]
    pub fn format(mut self, format: OutputFormat) -> Self {
        self.opts.format = format;
        self
    }

    /// Sets the raw `--sections` selection spec.
    #[must_use]
    pub fn sections(mut self, spec: impl Into<String>) -> Self {
        self.opts.sections = Some(spec.into());
        self
    }

    /// Sets an explicit `.fsidx` snapshot policy.
    #[must_use]
    pub fn index(mut self, mode: IndexMode) -> Self {
        self.opts.index = Some(mode);
        self
    }
}

/// Parses a generic flag value with the canonical CLI error message.
fn parse_flag<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T> {
    raw.parse()
        .map_err(|_| Error::args(format!("invalid value `{raw}` for --{flag}")))
}

/// Resolves a raw `--threads` value (default: host parallelism). The
/// rendered output is byte-identical at every thread count.
pub fn parse_threads(raw: Option<&str>) -> Result<usize> {
    match raw {
        None => Ok(failstats::available_threads()),
        Some(raw) => parse_flag("threads", raw),
    }
}

/// Resolves a raw `--parse-chunk` value (default 1 MiB; any value gives
/// byte-identical output).
pub fn parse_chunk_bytes(raw: Option<&str>) -> Result<usize> {
    let chunk_bytes: usize = match raw {
        None => faillog::DEFAULT_CHUNK_BYTES,
        Some(raw) => parse_flag("parse-chunk", raw)?,
    };
    if chunk_bytes == 0 {
        return Err(Error::args("--parse-chunk must be at least 1 byte"));
    }
    Ok(chunk_bytes)
}

/// Resolves a raw `--format` value (default: text).
pub fn parse_format(raw: Option<&str>) -> Result<OutputFormat> {
    match raw.unwrap_or("text") {
        "text" => Ok(OutputFormat::Text),
        "json" => Ok(OutputFormat::Json),
        other => Err(Error::args(format!(
            "unknown --format `{other}` (use text or json)"
        ))),
    }
}

/// Resolves a raw `--index` value. Snapshots are opt-in (`None` when
/// the flag is absent): the default report's metrics section truthfully
/// shows where the data came from, so a silently warm default would
/// change output between otherwise-identical invocations.
pub fn parse_index(raw: Option<&str>) -> Result<Option<IndexMode>> {
    match raw {
        None => Ok(None),
        Some(raw) => raw.parse::<IndexMode>().map(Some).map_err(Error::args),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_options() {
        let req = QueryRequest::report(QuerySource::file("a.fslog"))
            .threads(3)
            .chunk_bytes(4096)
            .where_expr("category == gpu")
            .since("500")
            .until("1000")
            .format(OutputFormat::Json)
            .sections("tbf,ttr")
            .index(IndexMode::Auto);
        assert_eq!(req.opts.threads, 3);
        assert_eq!(req.opts.chunk_bytes, 4096);
        assert_eq!(req.opts.where_expr.as_deref(), Some("category == gpu"));
        assert_eq!(req.opts.format, OutputFormat::Json);
        assert_eq!(req.opts.index_mode(), IndexMode::Auto);
        let cmp = QueryRequest::compare("old.fslog", "new.fslog");
        assert_eq!(cmp.opts.index, None);
        assert_eq!(cmp.opts.index_mode(), IndexMode::Off);
    }

    #[test]
    fn flag_parsers_match_cli_messages() {
        assert_eq!(parse_threads(Some("4")).unwrap(), 4);
        assert_eq!(
            parse_threads(Some("many")).unwrap_err().to_string(),
            "invalid value `many` for --threads"
        );
        assert_eq!(
            parse_chunk_bytes(None).unwrap(),
            faillog::DEFAULT_CHUNK_BYTES
        );
        assert_eq!(
            parse_chunk_bytes(Some("0")).unwrap_err().to_string(),
            "--parse-chunk must be at least 1 byte"
        );
        assert_eq!(parse_format(None).unwrap(), OutputFormat::Text);
        assert!(parse_format(Some("yaml"))
            .unwrap_err()
            .to_string()
            .contains("unknown --format `yaml`"));
        assert_eq!(parse_index(None).unwrap(), None);
        assert_eq!(parse_index(Some("require")).unwrap(), Some(IndexMode::Require));
        assert!(parse_index(Some("sometimes")).is_err());
    }
}
