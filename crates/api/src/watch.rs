//! The streaming watch runner, extracted from the CLI so bounded watch
//! queries can be served by `faild` as well as run interactively.
//!
//! A [`WatchRequest`] deliberately keeps most values as the **raw
//! strings** they arrived as (flag values or wire fields): watch's
//! flag-combination diagnostics quote the offending value verbatim
//! (`--accel 3 only applies to sim: sources ...`), and keeping the raw
//! form in the request is what lets the CLI and the server reject bad
//! requests with identical messages.

use std::io;

use failindex::IndexMode;
use failsim::{ReplayClock, SystemModel};
use failtrace::Collector;
use failtypes::{Error, Result};
use failwatch::{
    Baseline, DriftConfig, DriftDetector, EventSource, SimSource, StateConfig, TailSource,
    WatchConfig,
};

use crate::engine::{compile_filter, model_by_name};
use crate::request::{parse_chunk_bytes, parse_threads, OutputFormat};

/// A watch query: stream a log file or a simulated replay through the
/// online monitor. See the module docs for why most fields are raw
/// strings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WatchRequest {
    /// The stream source: a log file path or `sim:MODEL`.
    pub source: String,
    /// Keep tailing the file after EOF (file sources only).
    pub follow: bool,
    /// Raw `--accel` value: sim hours per wall second, or `max`.
    pub accel: Option<String>,
    /// Raw `--seed` value (sim sources only).
    pub seed: Option<String>,
    /// Raw `--inject-mttr` factor (sim sources only).
    pub inject_mttr: Option<String>,
    /// Raw `--baseline` model name, or `none`.
    pub baseline: Option<String>,
    /// Raw `--window` size for the online state.
    pub window: Option<String>,
    /// Raw `--refresh` record period for summaries.
    pub refresh: Option<String>,
    /// Raw `--chunk` ingest chunk size in records.
    pub chunk: Option<String>,
    /// Raw `--max-records` stop bound.
    pub max_records: Option<String>,
    /// Raw `--max-idle` poll bound.
    pub max_idle: Option<String>,
    /// Raw `--threads` value.
    pub threads: Option<String>,
    /// Raw `--where` filter expression scoping the monitor.
    pub where_expr: Option<String>,
    /// Raw `--parse-chunk` read-buffer size (file sources only).
    pub parse_chunk: Option<String>,
    /// Raw `--sections` summary selection.
    pub sections: Option<String>,
    /// Output format (json = pure NDJSON stream).
    pub format: OutputFormat,
    /// Explicit `.fsidx` policy: `auto` persists the accumulated index
    /// on clean shutdown (file sources only). `None` = flag absent.
    pub index: Option<IndexMode>,
}

impl WatchRequest {
    /// A watch over `source` with every option defaulted.
    pub fn new(source: impl Into<String>) -> Self {
        WatchRequest {
            source: source.into(),
            ..WatchRequest::default()
        }
    }
}

/// Runs a watch to completion, streaming alerts and summaries to `out`
/// as they happen. Returns the run's trace collector (for `--trace`
/// exports and server metrics).
///
/// # Errors
///
/// Propagates flag validation, source, and stream errors with the same
/// messages the CLI `watch` command always produced.
pub fn run(req: &WatchRequest, out: &mut dyn io::Write) -> Result<Collector> {
    let source_arg = req.source.as_str();
    let filter = compile_filter(req.where_expr.as_deref(), None, None)?;
    let persist_index = match req.index.unwrap_or(IndexMode::Off) {
        IndexMode::Off => false,
        IndexMode::Auto => true,
        IndexMode::Require => {
            return Err(Error::args(
                "watch supports --index auto or off (snapshots are written, never read)",
            ))
        }
    };
    if persist_index {
        if let Some(expr) = &req.where_expr {
            // Snapshots must cover the whole log; a watch scoped by a
            // predicate accumulates filtered state that must never be
            // persisted as an index.
            return Err(Error::args(format!(
                "--index auto cannot persist an index scoped by `--where {expr}`; drop one of the two flags"
            )));
        }
    }

    let mut source: Box<dyn EventSource> = if let Some(name) = source_arg.strip_prefix("sim:") {
        let clock = match req.accel.as_deref().unwrap_or("max") {
            "max" => ReplayClock::unpaced(),
            raw => {
                let rate: f64 = raw.parse().map_err(|_| {
                    Error::args(format!(
                        "invalid --accel value `{raw}` (sim hours per wall second, or `max`)"
                    ))
                })?;
                ReplayClock::new(rate)
            }
        };
        if let Some(bytes) = &req.parse_chunk {
            return Err(Error::args(format!(
                "--parse-chunk {bytes} only applies to file sources (sim:{name} is generated in-process)"
            )));
        }
        if let Some(mode) = req.index {
            return Err(Error::args(format!(
                "--index {mode} only applies to file sources (sim:{name} has no log to snapshot)"
            )));
        }
        let seed = parse_raw_flag(&req.seed, "seed", 42u64)?;
        let mut src = SimSource::new(model_by_name(name)?, seed, clock)?;
        if let Some(raw) = &req.inject_mttr {
            let factor: f64 = raw
                .parse()
                .map_err(|_| Error::args(format!("invalid --inject-mttr value `{raw}`")))?;
            if !(factor.is_finite() && factor > 0.0) {
                return Err(Error::args("--inject-mttr must be positive"));
            }
            // The canonical regression scenario: repairs slow down by
            // `factor` halfway through the replay.
            src = src.with_mttr_injection(factor, 0.5);
        }
        Box::new(src)
    } else {
        for (flag, value) in [
            ("accel", &req.accel),
            ("seed", &req.seed),
            ("inject-mttr", &req.inject_mttr),
        ] {
            if let Some(value) = value {
                return Err(Error::args(format!(
                    "--{flag} {value} only applies to sim: sources (`{source_arg}` is a file)"
                )));
            }
        }
        let capacity = match &req.parse_chunk {
            Some(_) => Some(parse_chunk_bytes(req.parse_chunk.as_deref())?),
            None => None,
        };
        Box::new(TailSource::open_with_capacity(
            source_arg, req.follow, capacity,
        )?)
    };

    let baseline = match req.baseline.as_deref() {
        Some("none") => None,
        Some(name) => Some(Baseline::from_model(model_by_name(name)?, 1)?),
        // Default: the calibrated model matching the stream's system
        // generation, so drift means "unlike the paper's machine".
        None => Some(Baseline::from_model(
            SystemModel::for_generation(source.generation()),
            1,
        )?),
    };
    let detector = baseline.map(|b| DriftDetector::new(b, DriftConfig::default()));

    let trace = Collector::new();
    let state = StateConfig::builder()
        .window(parse_raw_flag(
            &req.window,
            "window",
            StateConfig::default().window,
        )?)
        .build()?;
    let mut builder = WatchConfig::builder()
        .state(state)
        .refresh_every(parse_raw_flag(&req.refresh, "refresh", 100)?)
        .ingest_chunk(parse_raw_flag(
            &req.chunk,
            "chunk",
            WatchConfig::default().ingest_chunk,
        )?)
        .threads(parse_threads(req.threads.as_deref())?)
        .json_summaries(req.format == OutputFormat::Json)
        .trace(trace.clone());
    if let Some(pred) = filter {
        builder = builder.filter(pred);
    }
    if let Some(raw) = &req.max_idle {
        let polls: u64 = raw
            .parse()
            .map_err(|_| Error::args(format!("invalid --max-idle value `{raw}`")))?;
        builder = builder.max_idle_polls(polls);
    }
    if let Some(raw) = &req.max_records {
        let records: usize = raw
            .parse()
            .map_err(|_| Error::args(format!("invalid --max-records value `{raw}`")))?;
        builder = builder.max_records(records);
    }
    if let Some(spec) = &req.sections {
        builder = builder.summary_sections(failwatch::select_watch_sections(spec)?);
    }
    let config = builder.build()?;
    if req.format == OutputFormat::Json {
        // The stream's schema header: versions every NDJSON line that
        // follows (summary sections and alerts).
        writeln!(out, "{{\"v\":1,\"kind\":\"watch\"}}")
            .map_err(|e| Error::io("writing watch stream", e))?;
    }
    let outcome = failwatch::run(source.as_mut(), detector, &config, out)?;
    // Clean shutdown: persist the accumulated index so a later
    // `report --index auto` on the same log starts warm. The source's
    // progress fingerprint covers exactly the bytes whose records the
    // state ingested, so a bounded run (--max-records) snapshots a
    // valid prefix of the file.
    if persist_index {
        if let Some((log_path, progress)) = source.snapshot_target() {
            let source_info = failindex::SourceInfo {
                bytes: progress.bytes,
                crc32: progress.crc32,
                lines: progress.lines,
            };
            failindex::save_traced(
                failindex::snapshot_path(&log_path),
                outcome.state.view(),
                source_info,
                Some(&trace),
            )
            .ok();
        }
    }
    Ok(trace)
}

/// Parses an optional raw flag value with the canonical
/// `invalid value ... for --flag` message.
fn parse_raw_flag<T: std::str::FromStr>(
    raw: &Option<String>,
    flag: &str,
    default: T,
) -> Result<T> {
    match raw {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| Error::args(format!("invalid value `{raw}` for --{flag}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_watch_streams_and_versions_json() {
        let mut req = WatchRequest::new("sim:tsubame3");
        req.max_records = Some("50".to_string());
        req.format = OutputFormat::Json;
        let mut buf = Vec::new();
        run(&req, &mut buf).expect("watches");
        let text = String::from_utf8(buf).expect("utf8");
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("{\"v\":1,\"kind\":\"watch\"}"));
        assert!(text.lines().all(|l| l.starts_with('{')), "{text}");
    }

    #[test]
    fn rejections_quote_the_raw_values() {
        let mut req = WatchRequest::new("sim:tsubame3");
        req.parse_chunk = Some("512".to_string());
        let err = run(&req, &mut Vec::new()).unwrap_err().to_string();
        assert!(err.contains("--parse-chunk 512"), "{err}");
        let mut req = WatchRequest::new("sim:tsubame3");
        req.index = Some(IndexMode::Off);
        let err = run(&req, &mut Vec::new()).unwrap_err().to_string();
        assert!(err.contains("--index off"), "{err}");
        let mut req = WatchRequest::new("some-file.fslog");
        req.accel = Some("3".to_string());
        let err = run(&req, &mut Vec::new()).unwrap_err().to_string();
        assert!(
            err.contains("--accel 3") && err.contains("some-file.fslog"),
            "{err}"
        );
        let mut req = WatchRequest::new("sim:tsubame3");
        req.index = Some(IndexMode::Require);
        let err = run(&req, &mut Vec::new()).unwrap_err().to_string();
        assert!(err.contains("watch supports --index auto or off"), "{err}");
    }
}
