//! The versioned NDJSON protocol spoken over the `faild` socket.
//!
//! One request per line, one response per line, both JSON objects
//! carrying `"v":1`. Both the server and the `failctl query` client use
//! this codec, so the two cannot drift.
//!
//! # Request grammar
//!
//! ```json
//! {"v":1,"id":7,"cmd":"report","log":"fleet.fslog","sections":["tbf","ttr"],"where":"category == gpu","format":"json"}
//! {"v":1,"id":8,"cmd":"report","model":"tsubame2","seed":42}
//! {"v":1,"id":9,"cmd":"compare","old":"t2.fslog","new":"t3.fslog","until":"1000"}
//! {"v":1,"id":10,"cmd":"watch","source":"sim:tsubame3","max_records":50,"format":"json"}
//! {"v":1,"id":11,"cmd":"metrics"}
//! {"v":1,"id":12,"cmd":"logs"}
//! {"v":1,"id":13,"cmd":"evict","log":"fleet.fslog"}
//! {"v":1,"id":14,"cmd":"ping"}
//! {"v":1,"id":15,"cmd":"shutdown"}
//! ```
//!
//! Unknown fields are rejected (typo protection, exactly like the
//! CLI's unknown-flag rejection). `sections` accepts an array of
//! section ids or the CLI's comma-joined string form.
//!
//! # Response grammar
//!
//! ```json
//! {"v":1,"id":7,"ok":true,"cmd":"report","cached":false,"output":"..."}
//! {"v":1,"id":7,"ok":false,"error":{"kind":"args","message":"unknown section `bogus` ..."}}
//! ```
//!
//! `output` holds the exact bytes the equivalent CLI invocation prints;
//! `error.kind` is [`failtypes::Error::kind`], the stable
//! machine-readable variant tag.

use failtypes::{Error, JsonValue, Result};

use crate::request::{parse_format, parse_index, OutputFormat, QueryCmd, QueryRequest, QuerySource};
use crate::watch::WatchRequest;

/// The protocol version this codec speaks.
pub const PROTOCOL_VERSION: i64 = 1;

/// A decoded request command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// A report or comparison query for the engine.
    Query(QueryRequest),
    /// A bounded watch stream, buffered into one response.
    Watch(WatchRequest),
    /// The server's live trace-collector export.
    Metrics,
    /// The multi-fleet catalog: every log the engine has memoized.
    Logs,
    /// Drop one source's memoized state (parsed logs, dependent render
    /// entries, pending dirty snapshot).
    Evict(QuerySource),
    /// Liveness check.
    Ping,
    /// Graceful shutdown (drain, persist dirty snapshots, exit).
    Shutdown,
}

impl Command {
    /// The wire name of the command (echoed in responses).
    pub fn name(&self) -> &'static str {
        match self {
            Command::Query(req) => match req.cmd {
                QueryCmd::Report(_) => "report",
                QueryCmd::Compare { .. } => "compare",
            },
            Command::Watch(_) => "watch",
            Command::Metrics => "metrics",
            Command::Logs => "logs",
            Command::Evict(_) => "evict",
            Command::Ping => "ping",
            Command::Shutdown => "shutdown",
        }
    }
}

/// A decoded success response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Echo of the request id.
    pub id: u64,
    /// Echo of the command name.
    pub cmd: String,
    /// Whether the server answered from its render cache.
    pub cached: bool,
    /// The exact bytes the equivalent CLI invocation prints.
    pub output: String,
}

/// Parses one request line. Returns the request id (0 when it could
/// not be recovered) alongside the decoded command or the typed error
/// to send back.
pub fn parse_request(line: &str) -> (u64, Result<Command>) {
    let doc = match JsonValue::parse(line) {
        Ok(doc) => doc,
        Err(e) => return (0, Err(Error::args(format!("request is not valid JSON: {e}")))),
    };
    let Some(obj) = doc.as_object() else {
        return (0, Err(Error::args("request must be a JSON object")));
    };
    // Recover the id early so even otherwise-malformed requests get a
    // correlated error envelope.
    let id = doc
        .get("id")
        .and_then(JsonValue::as_i64)
        .and_then(|i| u64::try_from(i).ok())
        .unwrap_or(0);
    (id, parse_command(&doc, obj))
}

fn parse_command(doc: &JsonValue, obj: &[(String, JsonValue)]) -> Result<Command> {
    match doc.get("v").and_then(JsonValue::as_i64) {
        Some(PROTOCOL_VERSION) => {}
        Some(v) => {
            return Err(Error::args(format!(
                "unsupported protocol version {v} (this server speaks v{PROTOCOL_VERSION})"
            )))
        }
        None => return Err(Error::args("request is missing \"v\":1")),
    }
    if doc
        .get("id")
        .map(|v| v.as_i64().is_none_or(|i| i < 0))
        .unwrap_or(true)
    {
        return Err(Error::args(
            "request is missing \"id\" (a non-negative integer)",
        ));
    }
    let Some(cmd) = doc.get("cmd").and_then(JsonValue::as_str) else {
        return Err(Error::args("request is missing \"cmd\""));
    };
    let check_fields = |allowed: &[&str]| -> Result<()> {
        for (key, _) in obj {
            if !allowed.contains(&key.as_str()) {
                return Err(Error::args(format!(
                    "unknown field \"{key}\" for cmd \"{cmd}\""
                )));
            }
        }
        Ok(())
    };
    match cmd {
        "report" => {
            check_fields(&[
                "v", "id", "cmd", "log", "model", "seed", "sections", "where", "since", "until",
                "format", "threads", "parse_chunk", "index",
            ])?;
            let source = parse_source(doc, "report")?;
            let mut req = QueryRequest::report(source);
            req.opts = parse_options(doc, req.opts)?;
            if let Some(spec) = parse_sections(doc)? {
                req.opts.sections = Some(spec);
            }
            Ok(Command::Query(req))
        }
        "compare" => {
            check_fields(&[
                "v", "id", "cmd", "old", "new", "where", "since", "until", "format", "threads",
                "parse_chunk", "index",
            ])?;
            let old = require_str(doc, "old")?;
            let new = require_str(doc, "new")?;
            let mut req = QueryRequest::compare(old, new);
            req.opts = parse_options(doc, req.opts)?;
            Ok(Command::Query(req))
        }
        "watch" => {
            check_fields(&[
                "v",
                "id",
                "cmd",
                "source",
                "seed",
                "accel",
                "inject_mttr",
                "baseline",
                "window",
                "refresh",
                "chunk",
                "max_records",
                "max_idle",
                "threads",
                "where",
                "format",
                "sections",
                "parse_chunk",
                "index",
            ])?;
            let mut req = WatchRequest::new(require_str(doc, "source")?);
            req.seed = raw_field(doc, "seed")?;
            req.accel = raw_field(doc, "accel")?;
            req.inject_mttr = raw_field(doc, "inject_mttr")?;
            req.baseline = raw_field(doc, "baseline")?;
            req.window = raw_field(doc, "window")?;
            req.refresh = raw_field(doc, "refresh")?;
            req.chunk = raw_field(doc, "chunk")?;
            req.max_records = raw_field(doc, "max_records")?;
            req.max_idle = raw_field(doc, "max_idle")?;
            req.threads = raw_field(doc, "threads")?;
            req.where_expr = opt_string(doc, "where")?;
            req.parse_chunk = raw_field(doc, "parse_chunk")?;
            req.sections = parse_sections(doc)?;
            req.format = parse_format(opt_string(doc, "format")?.as_deref())?;
            req.index = parse_index(opt_string(doc, "index")?.as_deref())?;
            Ok(Command::Watch(req))
        }
        "metrics" => {
            check_fields(&["v", "id", "cmd"])?;
            Ok(Command::Metrics)
        }
        "logs" => {
            check_fields(&["v", "id", "cmd"])?;
            Ok(Command::Logs)
        }
        "evict" => {
            check_fields(&["v", "id", "cmd", "log", "model", "seed"])?;
            Ok(Command::Evict(parse_source(doc, "evict")?))
        }
        "ping" => {
            check_fields(&["v", "id", "cmd"])?;
            Ok(Command::Ping)
        }
        "shutdown" => {
            check_fields(&["v", "id", "cmd"])?;
            Ok(Command::Shutdown)
        }
        other => Err(Error::args(format!(
            "unknown cmd \"{other}\" (use report, compare, watch, logs, evict, metrics, ping, or shutdown)"
        ))),
    }
}

fn parse_source(doc: &JsonValue, cmd: &str) -> Result<QuerySource> {
    let log = opt_string(doc, "log")?;
    let model = opt_string(doc, "model")?;
    let seed = opt_u64(doc, "seed")?;
    match (log, model) {
        (Some(_), Some(_)) => Err(Error::args("pass either \"log\" or \"model\", not both")),
        (Some(path), None) => {
            if let Some(seed) = seed {
                return Err(Error::args(format!(
                    "\"seed\" {seed} only applies with \"model\""
                )));
            }
            Ok(QuerySource::File(path))
        }
        (None, Some(name)) => Ok(QuerySource::Model {
            name,
            seed: seed.unwrap_or(42),
        }),
        (None, None) => Err(Error::args(format!("{cmd} needs \"log\" or \"model\""))),
    }
}

fn parse_options(
    doc: &JsonValue,
    mut opts: crate::request::QueryOptions,
) -> Result<crate::request::QueryOptions> {
    opts.where_expr = opt_string(doc, "where")?;
    opts.since = opt_string(doc, "since")?;
    opts.until = opt_string(doc, "until")?;
    opts.format = parse_format(opt_string(doc, "format")?.as_deref())?;
    opts.index = parse_index(opt_string(doc, "index")?.as_deref())?;
    if let Some(threads) = opt_u64(doc, "threads")? {
        opts.threads = usize::try_from(threads)
            .map_err(|_| Error::args(format!("invalid value `{threads}` for --threads")))?;
    }
    if let Some(chunk) = opt_u64(doc, "parse_chunk")? {
        opts.chunk_bytes = usize::try_from(chunk)
            .map_err(|_| Error::args(format!("invalid value `{chunk}` for --parse-chunk")))?;
    }
    Ok(opts)
}

/// `sections` accepts `["tbf","ttr"]` or the CLI's `"tbf,ttr"`.
fn parse_sections(doc: &JsonValue) -> Result<Option<String>> {
    match doc.get("sections") {
        None | Some(JsonValue::Null) => Ok(None),
        Some(JsonValue::Str(spec)) => Ok(Some(spec.clone())),
        Some(JsonValue::Array(items)) => {
            let mut ids = Vec::with_capacity(items.len());
            for item in items {
                match item.as_str() {
                    Some(id) => ids.push(id.to_string()),
                    None => {
                        return Err(Error::args(
                            "field \"sections\" must be an array of section-id strings",
                        ))
                    }
                }
            }
            Ok(Some(ids.join(",")))
        }
        Some(_) => Err(Error::args(
            "field \"sections\" must be an array of section-id strings",
        )),
    }
}

fn require_str(doc: &JsonValue, key: &str) -> Result<String> {
    opt_string(doc, key)?
        .ok_or_else(|| Error::args(format!("missing field \"{key}\"")))
}

fn opt_string(doc: &JsonValue, key: &str) -> Result<Option<String>> {
    match doc.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(JsonValue::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(Error::args(format!("field \"{key}\" must be a string"))),
    }
}

fn opt_u64(doc: &JsonValue, key: &str) -> Result<Option<u64>> {
    match doc.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => v
            .as_i64()
            .and_then(|i| u64::try_from(i).ok())
            .map(Some)
            .ok_or_else(|| {
                Error::args(format!("field \"{key}\" must be a non-negative integer"))
            }),
    }
}

/// A raw-string field: accepts a JSON string or number and keeps its
/// canonical textual form (watch diagnostics quote values verbatim).
fn raw_field(doc: &JsonValue, key: &str) -> Result<Option<String>> {
    match doc.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(JsonValue::Str(s)) => Ok(Some(s.clone())),
        Some(v @ (JsonValue::Int(_) | JsonValue::Num(_))) => Ok(Some(v.render())),
        Some(_) => Err(Error::args(format!(
            "field \"{key}\" must be a string or number"
        ))),
    }
}

/// Encodes a report/compare query as one request line (no trailing
/// newline).
pub fn encode_query(id: u64, req: &QueryRequest) -> String {
    let opts = &req.opts;
    let mut b = JsonValue::object().field("v", PROTOCOL_VERSION).field("id", id);
    match &req.cmd {
        QueryCmd::Report(QuerySource::File(path)) => {
            b = b.field("cmd", "report").field("log", path.as_str());
        }
        QueryCmd::Report(QuerySource::Model { name, seed }) => {
            b = b
                .field("cmd", "report")
                .field("model", name.as_str())
                .field("seed", *seed);
        }
        QueryCmd::Compare { old, new } => {
            b = b
                .field("cmd", "compare")
                .field("old", old.as_str())
                .field("new", new.as_str());
        }
    }
    if let Some(spec) = &opts.sections {
        b = b.field("sections", spec.as_str());
    }
    for (key, value) in [
        ("where", &opts.where_expr),
        ("since", &opts.since),
        ("until", &opts.until),
    ] {
        if let Some(value) = value {
            b = b.field(key, value.as_str());
        }
    }
    if opts.format != OutputFormat::Text {
        b = b.field("format", opts.format.name());
    }
    if let Some(mode) = opts.index {
        b = b.field("index", mode.to_string());
    }
    b = b
        .field("threads", opts.threads as u64)
        .field("parse_chunk", opts.chunk_bytes as u64);
    b.build().render()
}

/// Encodes a watch query as one request line (no trailing newline).
pub fn encode_watch(id: u64, req: &WatchRequest) -> String {
    let mut b = JsonValue::object()
        .field("v", PROTOCOL_VERSION)
        .field("id", id)
        .field("cmd", "watch")
        .field("source", req.source.as_str());
    for (key, value) in [
        ("seed", &req.seed),
        ("accel", &req.accel),
        ("inject_mttr", &req.inject_mttr),
        ("baseline", &req.baseline),
        ("window", &req.window),
        ("refresh", &req.refresh),
        ("chunk", &req.chunk),
        ("max_records", &req.max_records),
        ("max_idle", &req.max_idle),
        ("threads", &req.threads),
        ("where", &req.where_expr),
        ("parse_chunk", &req.parse_chunk),
        ("sections", &req.sections),
    ] {
        if let Some(value) = value {
            b = b.field(key, value.as_str());
        }
    }
    if req.format != OutputFormat::Text {
        b = b.field("format", req.format.name());
    }
    if let Some(mode) = req.index {
        b = b.field("index", mode.to_string());
    }
    b.build().render()
}

/// Encodes an `evict` command targeting one catalog source.
pub fn encode_evict(id: u64, source: &QuerySource) -> String {
    let mut b = JsonValue::object()
        .field("v", PROTOCOL_VERSION)
        .field("id", id)
        .field("cmd", "evict");
    match source {
        QuerySource::File(path) => b = b.field("log", path.as_str()),
        QuerySource::Model { name, seed } => {
            b = b.field("model", name.as_str()).field("seed", *seed);
        }
    }
    b.build().render()
}

/// Encodes a field-less command (`metrics`, `logs`, `ping`,
/// `shutdown`).
pub fn encode_simple(id: u64, cmd: &str) -> String {
    JsonValue::object()
        .field("v", PROTOCOL_VERSION)
        .field("id", id)
        .field("cmd", cmd)
        .build()
        .render()
}

/// Encodes a success response line.
pub fn encode_ok(id: u64, cmd: &str, cached: bool, output: &str) -> String {
    JsonValue::object()
        .field("v", PROTOCOL_VERSION)
        .field("id", id)
        .field("ok", true)
        .field("cmd", cmd)
        .field("cached", cached)
        .field("output", output)
        .build()
        .render()
}

/// Encodes a typed error envelope from any pipeline error.
pub fn encode_err(id: u64, error: &Error) -> String {
    JsonValue::object()
        .field("v", PROTOCOL_VERSION)
        .field("id", id)
        .field("ok", false)
        .field(
            "error",
            JsonValue::object()
                .field("kind", error.kind())
                .field("message", error.to_string())
                .build(),
        )
        .build()
        .render()
}

/// Decodes a response line. An error envelope becomes `Err` with the
/// original message (argument errors keep their `args` kind so exit
/// codes match the CLI).
pub fn parse_response(line: &str) -> Result<Response> {
    let doc = JsonValue::parse(line)
        .map_err(|e| Error::run(format!("response is not valid JSON: {e}")))?;
    match doc.get("v").and_then(JsonValue::as_i64) {
        Some(PROTOCOL_VERSION) => {}
        _ => return Err(Error::run("response is missing \"v\":1")),
    }
    let id = doc
        .get("id")
        .and_then(JsonValue::as_i64)
        .and_then(|i| u64::try_from(i).ok())
        .ok_or_else(|| Error::run("response is missing \"id\""))?;
    match doc.get("ok").and_then(JsonValue::as_bool) {
        Some(true) => Ok(Response {
            id,
            cmd: doc
                .get("cmd")
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_string(),
            cached: doc
                .get("cached")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false),
            output: doc
                .get("output")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| Error::run("response is missing \"output\""))?
                .to_string(),
        }),
        Some(false) => {
            let error = doc.get("error");
            let kind = error
                .and_then(|e| e.get("kind"))
                .and_then(JsonValue::as_str)
                .unwrap_or("other");
            let message = error
                .and_then(|e| e.get("message"))
                .and_then(JsonValue::as_str)
                .unwrap_or("unspecified server error");
            Err(match kind {
                "args" => Error::args(message),
                _ => Error::run(message),
            })
        }
        None => Err(Error::run("response is missing \"ok\"")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_request_round_trips() {
        let req = QueryRequest::report(QuerySource::file("fleet.fslog"))
            .sections("tbf,ttr")
            .where_expr("category == gpu")
            .format(OutputFormat::Json)
            .threads(4)
            .chunk_bytes(4096);
        let line = encode_query(7, &req);
        assert!(line.starts_with(r#"{"v":1,"id":7,"cmd":"report","log":"fleet.fslog""#));
        let (id, cmd) = parse_request(&line);
        assert_eq!(id, 7);
        assert_eq!(cmd.unwrap(), Command::Query(req));
    }

    #[test]
    fn model_compare_and_watch_round_trip() {
        let req = QueryRequest::report(QuerySource::model("tsubame2", 43));
        let (_, cmd) = parse_request(&encode_query(1, &req));
        assert_eq!(cmd.unwrap(), Command::Query(req));

        let req = QueryRequest::compare("a.fslog", "b.fslog").until("1000");
        let (_, cmd) = parse_request(&encode_query(2, &req));
        assert_eq!(cmd.unwrap(), Command::Query(req));

        let mut watch = WatchRequest::new("sim:tsubame3");
        watch.max_records = Some("50".to_string());
        watch.format = OutputFormat::Json;
        let (_, cmd) = parse_request(&encode_watch(3, &watch));
        assert_eq!(cmd.unwrap(), Command::Watch(watch));

        for simple in ["metrics", "logs", "ping", "shutdown"] {
            let (_, cmd) = parse_request(&encode_simple(4, simple));
            assert_eq!(cmd.unwrap().name(), simple);
        }
    }

    #[test]
    fn evict_round_trips_both_source_forms() {
        let file = QuerySource::file("fleet.fslog");
        let (_, cmd) = parse_request(&encode_evict(5, &file));
        assert_eq!(cmd.unwrap(), Command::Evict(file));

        let model = QuerySource::model("tsubame2", 7);
        let (_, cmd) = parse_request(&encode_evict(6, &model));
        assert_eq!(cmd.unwrap(), Command::Evict(model));

        let (_, cmd) = parse_request(r#"{"v":1,"id":1,"cmd":"evict"}"#);
        let err = cmd.unwrap_err();
        assert_eq!(err.kind(), "args");
        assert!(err.to_string().contains("evict needs \"log\" or \"model\""));
    }

    #[test]
    fn sections_accept_array_or_string() {
        let (_, cmd) = parse_request(
            r#"{"v":1,"id":1,"cmd":"report","log":"x","sections":["tbf","ttr"]}"#,
        );
        let Command::Query(req) = cmd.unwrap() else {
            panic!("expected query")
        };
        assert_eq!(req.opts.sections.as_deref(), Some("tbf,ttr"));
    }

    #[test]
    fn watch_raw_fields_accept_numbers() {
        let (_, cmd) = parse_request(
            r#"{"v":1,"id":1,"cmd":"watch","source":"sim:tsubame3","max_records":50,"seed":7}"#,
        );
        let Command::Watch(req) = cmd.unwrap() else {
            panic!("expected watch")
        };
        assert_eq!(req.max_records.as_deref(), Some("50"));
        assert_eq!(req.seed.as_deref(), Some("7"));
    }

    #[test]
    fn malformed_requests_are_typed_args_errors() {
        let cases = [
            ("not json at all", "request is not valid JSON"),
            ("[1,2,3]", "request must be a JSON object"),
            (r#"{"id":1,"cmd":"ping"}"#, "missing \"v\":1"),
            (r#"{"v":2,"id":1,"cmd":"ping"}"#, "unsupported protocol version 2"),
            (r#"{"v":1,"cmd":"ping"}"#, "missing \"id\""),
            (r#"{"v":1,"id":1}"#, "missing \"cmd\""),
            (r#"{"v":1,"id":1,"cmd":"frobnicate"}"#, "unknown cmd \"frobnicate\""),
            (r#"{"v":1,"id":1,"cmd":"ping","extra":true}"#, "unknown field \"extra\""),
            (r#"{"v":1,"id":1,"cmd":"report"}"#, "report needs \"log\" or \"model\""),
            (
                r#"{"v":1,"id":1,"cmd":"report","log":"a","model":"tsubame2"}"#,
                "not both",
            ),
            (
                r#"{"v":1,"id":1,"cmd":"report","log":"a","seed":7}"#,
                "only applies with \"model\"",
            ),
            (
                r#"{"v":1,"id":1,"cmd":"report","log":"a","threads":-2}"#,
                "field \"threads\" must be a non-negative integer",
            ),
            (r#"{"v":1,"id":1,"cmd":"compare","old":"a"}"#, "missing field \"new\""),
        ];
        for (line, want) in cases {
            let (_, cmd) = parse_request(line);
            let err = cmd.unwrap_err();
            assert_eq!(err.kind(), "args", "{line}");
            assert!(err.to_string().contains(want), "{line} gave {err}");
        }
        // The id is still recovered from malformed-but-parseable lines.
        let (id, cmd) = parse_request(r#"{"v":1,"id":9,"cmd":"nope"}"#);
        assert_eq!(id, 9);
        assert!(cmd.is_err());
    }

    #[test]
    fn responses_round_trip_including_errors() {
        let ok = encode_ok(5, "report", true, "line one\nline two\n");
        let resp = parse_response(&ok).unwrap();
        assert_eq!(resp.id, 5);
        assert_eq!(resp.cmd, "report");
        assert!(resp.cached);
        assert_eq!(resp.output, "line one\nline two\n");

        let err_line = encode_err(6, &Error::args("unknown section `bogus`"));
        assert!(err_line.contains(r#""kind":"args""#), "{err_line}");
        let err = parse_response(&err_line).unwrap_err();
        assert_eq!(err.kind(), "args");
        assert!(err.to_string().contains("unknown section `bogus`"));
    }
}
