//! A zero-dependency readiness poller for the reactor.
//!
//! On Linux x86_64/aarch64 this is real `epoll`, reached through raw
//! `syscall`/`svc` instructions — the repo vendors no `libc`, and the
//! three calls the reactor needs (`epoll_create1`, `epoll_ctl`,
//! `epoll_pwait`) have a stable ABI that fits in a few lines of inline
//! assembly. Everything `unsafe` lives in this module; the rest of the
//! crate keeps `deny(unsafe_code)`.
//!
//! On other targets a portable fallback ticks every couple of
//! milliseconds and reports every registered descriptor as ready.
//! Spurious readiness is harmless — all reactor I/O is non-blocking —
//! but idle connections cost a periodic scan there instead of zero,
//! so the fallback is a correctness bridge, not the design point.
#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// Readable — or in an error/hangup state, which a non-blocking
    /// `read` surfaces as EOF or an error.
    pub readable: bool,
    /// Writable (or errored; a `write` attempt surfaces it).
    pub writable: bool,
}

/// Readiness poller: register descriptors with a token and interest
/// set, then [`Poller::wait`] for events. Level-triggered.
#[derive(Debug)]
pub(crate) struct Poller {
    inner: imp::Poller,
}

impl Poller {
    pub(crate) fn new() -> io::Result<Poller> {
        Ok(Poller {
            inner: imp::Poller::new()?,
        })
    }

    pub(crate) fn add(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        self.inner.ctl(imp::Op::Add, fd, token, read, write)
    }

    pub(crate) fn modify(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        self.inner.ctl(imp::Op::Modify, fd, token, read, write)
    }

    pub(crate) fn remove(&self, fd: RawFd) -> io::Result<()> {
        self.inner.ctl(imp::Op::Remove, fd, 0, false, false)
    }

    /// Blocks until at least one registered descriptor is ready (or
    /// `timeout_ms` elapses; -1 waits forever), filling `events`. A
    /// signal interruption returns an empty set instead of an error.
    pub(crate) fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        events.clear();
        self.inner.wait(events, timeout_ms)
    }
}

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod imp {
    use super::Event;
    use std::io;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLL_CLOEXEC: usize = 0x80000;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const EPOLL_CREATE1: usize = 291;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
    }
    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const EPOLL_CREATE1: usize = 20;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
    }

    // The kernel packs epoll_event on x86_64 only (12 bytes); every
    // other architecture uses natural alignment (16 bytes).
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            out("rcx") _,
            out("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        std::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a1 => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            options(nostack),
        );
        ret
    }

    /// Raw syscalls return `-errno` on failure.
    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    #[derive(Debug, Clone, Copy)]
    pub(super) enum Op {
        Add,
        Modify,
        Remove,
    }

    #[derive(Debug)]
    pub(super) struct Poller {
        epfd: OwnedFd,
    }

    impl Poller {
        pub(super) fn new() -> io::Result<Poller> {
            let fd = check(unsafe {
                syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0)
            })?;
            // OwnedFd closes the epoll instance on drop.
            Ok(Poller {
                epfd: unsafe { OwnedFd::from_raw_fd(fd as RawFd) },
            })
        }

        pub(super) fn ctl(
            &self,
            op: Op,
            fd: RawFd,
            token: u64,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            const EPOLL_CTL_ADD: usize = 1;
            const EPOLL_CTL_DEL: usize = 2;
            const EPOLL_CTL_MOD: usize = 3;
            let mut interest = 0u32;
            if read {
                interest |= EPOLLIN;
            }
            if write {
                interest |= EPOLLOUT;
            }
            let event = EpollEvent {
                events: interest,
                data: token,
            };
            let opnum = match op {
                Op::Add => EPOLL_CTL_ADD,
                Op::Modify => EPOLL_CTL_MOD,
                Op::Remove => EPOLL_CTL_DEL,
            };
            check(unsafe {
                syscall6(
                    nr::EPOLL_CTL,
                    self.epfd.as_raw_fd() as usize,
                    opnum,
                    fd as usize,
                    std::ptr::addr_of!(event) as usize,
                    0,
                    0,
                )
            })
            .map(|_| ())
        }

        pub(super) fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
            // epoll_pwait with a null sigmask is exactly epoll_wait,
            // and exists on every architecture (aarch64 dropped the
            // unsuffixed call).
            let n = match check(unsafe {
                syscall6(
                    nr::EPOLL_PWAIT,
                    self.epfd.as_raw_fd() as usize,
                    buf.as_mut_ptr() as usize,
                    buf.len(),
                    timeout_ms as usize,
                    0,
                    8,
                )
            }) {
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            };
            for ev in &buf[..n] {
                let (bits, token) = (ev.events, ev.data);
                events.push(Event {
                    token,
                    readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
mod imp {
    use super::Event;
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    #[derive(Debug, Clone, Copy)]
    pub(super) enum Op {
        Add,
        Modify,
        Remove,
    }

    /// Tick-based fallback: every registered descriptor is reported
    /// ready per its interest set each tick. Non-blocking I/O turns
    /// the spurious readiness into cheap `WouldBlock` returns.
    #[derive(Debug)]
    pub(super) struct Poller {
        registered: Mutex<HashMap<RawFd, (u64, bool, bool)>>,
    }

    impl Poller {
        pub(super) fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: Mutex::new(HashMap::new()),
            })
        }

        pub(super) fn ctl(
            &self,
            op: Op,
            fd: RawFd,
            token: u64,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            let mut reg = self.registered.lock().unwrap_or_else(|e| e.into_inner());
            match op {
                Op::Add | Op::Modify => {
                    reg.insert(fd, (token, read, write));
                }
                Op::Remove => {
                    reg.remove(&fd);
                }
            }
            Ok(())
        }

        pub(super) fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            let tick = Duration::from_millis(2);
            let nap = if timeout_ms < 0 {
                tick
            } else {
                tick.min(Duration::from_millis(timeout_ms as u64))
            };
            std::thread::sleep(nap);
            let reg = self.registered.lock().unwrap_or_else(|e| e.into_inner());
            for (_, &(token, read, write)) in reg.iter() {
                if read || write {
                    events.push(Event {
                        token,
                        readable: read,
                        writable: write,
                    });
                }
            }
            Ok(())
        }
    }
}
