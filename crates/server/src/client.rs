//! The blocking `faild` client used by `failctl query` and the tests.

use std::io::{BufRead, BufReader, Write};
use std::time::Duration;

use failapi::wire::{self, Response};
use failtypes::{Error, Result};

use crate::server::{Endpoint, Stream};

/// Default response deadline: how long [`Connection::roundtrip`] waits
/// for the server to produce bytes before giving up with a typed error.
/// Generous, because a cold parse of a large log is legitimate work —
/// the deadline exists to catch a *hung* server, not a busy one.
pub const DEFAULT_DEADLINE: Duration = Duration::from_secs(30);

/// One connection to a running `faild`. Requests and responses are
/// strictly interleaved (send one line, read one line), matching the
/// protocol's per-connection ordering guarantee.
///
/// Reads carry a deadline ([`DEFAULT_DEADLINE`], adjustable with
/// [`Connection::set_deadline`]): the server never imposes read
/// timeouts of its own, so a client that didn't watch the clock would
/// block forever if the daemon hung. The deadline is a quiet-period
/// bound — it expires when the server produces *no bytes* for that
/// long, not when a long response streams slowly.
#[derive(Debug)]
pub struct Connection {
    reader: BufReader<Stream>,
    writer: Stream,
    deadline: Option<Duration>,
}

impl Connection {
    /// Connects to a `faild` endpoint with the default response
    /// deadline.
    ///
    /// # Errors
    ///
    /// Fails when the socket cannot be reached.
    pub fn connect(endpoint: &Endpoint) -> Result<Connection> {
        let writer = endpoint.connect_stream()?;
        let reader = writer
            .try_clone()
            .map_err(|e| Error::io("cloning the faild connection", e))?;
        let mut conn = Connection {
            reader: BufReader::new(reader),
            writer,
            deadline: None,
        };
        conn.set_deadline(Some(DEFAULT_DEADLINE))?;
        Ok(conn)
    }

    /// Sets (or with `None` disables) the response deadline.
    ///
    /// # Errors
    ///
    /// Fails when the socket rejects the timeout (already closed).
    pub fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<()> {
        self.reader
            .get_ref()
            .set_read_timeout(deadline)
            .map_err(|e| Error::io("setting the faild response deadline", e))?;
        self.deadline = deadline;
        Ok(())
    }

    /// Sends one encoded request line and reads the matching response.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, when the server closes the connection, when
    /// no response arrives within the deadline, or — decoded from the
    /// typed error envelope — when the server answers with `ok:false`
    /// (argument errors keep their `args` kind).
    pub fn roundtrip(&mut self, line: &str) -> Result<Response> {
        writeln!(self.writer, "{line}")
            .and_then(|()| self.writer.flush())
            .map_err(|e| Error::io("sending request to faild", e))?;
        let mut response = String::new();
        let n = match self.reader.read_line(&mut response) {
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                let waited = self
                    .deadline
                    .map_or_else(|| "the deadline".to_string(), |d| format!("{d:?}"));
                return Err(Error::run(format!(
                    "no response from faild within {waited} — the server may be hung \
                     (Connection::set_deadline adjusts or disables the deadline)"
                )));
            }
            Err(e) => return Err(Error::io("reading response from faild", e)),
        };
        if n == 0 {
            return Err(Error::run("faild closed the connection"));
        }
        wire::parse_response(response.trim_end())
    }
}

/// One-shot convenience: connect, send `line`, return the response.
///
/// # Errors
///
/// As [`Connection::connect`] and [`Connection::roundtrip`].
pub fn roundtrip(endpoint: &Endpoint, line: &str) -> Result<Response> {
    Connection::connect(endpoint)?.roundtrip(line)
}
