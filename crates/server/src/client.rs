//! The blocking `faild` client used by `failctl query` and the tests.

use std::io::{BufRead, BufReader, Write};

use failapi::wire::{self, Response};
use failtypes::{Error, Result};

use crate::server::{Endpoint, Stream};

/// One connection to a running `faild`. Requests and responses are
/// strictly interleaved (send one line, read one line), matching the
/// protocol's per-connection ordering guarantee.
#[derive(Debug)]
pub struct Connection {
    reader: BufReader<Stream>,
    writer: Stream,
}

impl Connection {
    /// Connects to a `faild` endpoint.
    ///
    /// # Errors
    ///
    /// Fails when the socket cannot be reached.
    pub fn connect(endpoint: &Endpoint) -> Result<Connection> {
        let writer = endpoint.connect_stream()?;
        let reader = writer
            .try_clone()
            .map_err(|e| Error::io("cloning the faild connection", e))?;
        Ok(Connection {
            reader: BufReader::new(reader),
            writer,
        })
    }

    /// Sends one encoded request line and reads the matching response.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, when the server closes the connection, or —
    /// decoded from the typed error envelope — when the server answers
    /// with `ok:false` (argument errors keep their `args` kind).
    pub fn roundtrip(&mut self, line: &str) -> Result<Response> {
        writeln!(self.writer, "{line}")
            .and_then(|()| self.writer.flush())
            .map_err(|e| Error::io("sending request to faild", e))?;
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(|e| Error::io("reading response from faild", e))?;
        if n == 0 {
            return Err(Error::run("faild closed the connection"));
        }
        wire::parse_response(response.trim_end())
    }
}

/// One-shot convenience: connect, send `line`, return the response.
///
/// # Errors
///
/// As [`Connection::connect`] and [`Connection::roundtrip`].
pub fn roundtrip(endpoint: &Endpoint, line: &str) -> Result<Response> {
    Connection::connect(endpoint)?.roundtrip(line)
}
