//! `faild` — the failscope query server.
//!
//! A long-running daemon holding one process-wide
//! [`failapi::QueryEngine`] (parsed logs, warm `.fsidx`-backed render
//! cache) and answering report/compare/watch/metrics queries from many
//! concurrent clients over a Unix or TCP socket, one NDJSON request per
//! line ([`failapi::wire`]).
//!
//! * [`server`] — [`serve`]: bind, accept, thread-per-connection with a
//!   bounded execution gate, graceful shutdown persisting dirty
//!   snapshots.
//! * [`client`] — [`client::Connection`]: the blocking client used by
//!   `failctl query` and the test suite.
//!
//! The determinism contract is inherited from `failapi`: every response
//! body is byte-identical to the equivalent `failctl` CLI invocation,
//! warm or cold, at any thread count.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod client;
pub mod server;

pub use server::{ready_line, serve, Endpoint, ServeSummary, ServerConfig};
