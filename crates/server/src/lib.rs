//! `faild` — the failscope query server.
//!
//! A long-running daemon holding one process-wide
//! [`failapi::QueryEngine`] (parsed logs, warm `.fsidx`-backed render
//! cache) and answering report/compare/watch/metrics/logs/evict
//! queries from many concurrent clients over a Unix or TCP socket, one
//! NDJSON request per line ([`failapi::wire`]).
//!
//! * [`server`] — endpoints, transports, and [`serve`] /
//!   [`serve_with_engine`].
//! * [`reactor`](crate) (private) — the single-threaded non-blocking
//!   event loop that owns every socket, plus the bounded worker pool
//!   (`max_inflight` threads) that executes queries. Idle connections
//!   cost zero CPU; slow readers are backpressured by pausing their
//!   read side once the write backlog passes a high-water mark.
//! * [`sys`](crate) (private) — the zero-dependency epoll binding
//!   (raw syscalls; the only `unsafe` in the crate).
//! * [`client`] — [`client::Connection`]: the blocking client used by
//!   `failctl query` and the test suite, with a response deadline so a
//!   hung server surfaces as a typed error instead of a stuck process.
//!
//! The determinism contract is inherited from `failapi`: every response
//! body is byte-identical to the equivalent `failctl` CLI invocation,
//! warm or cold, at any thread count.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod client;
mod reactor;
pub mod server;
mod sys;

pub use server::{ready_line, serve, serve_with_engine, Endpoint, ServeSummary, ServerConfig};
