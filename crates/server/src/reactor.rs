//! The event loop `faild` serves from: one reactor thread multiplexing
//! every connection, plus a bounded worker pool executing queries.
//!
//! # Structure
//!
//! The reactor owns the listener and all client sockets, every one
//! non-blocking, registered with the [`crate::sys::Poller`]
//! (level-triggered epoll on Linux). Each connection is a small state
//! machine:
//!
//! * **read side** — bytes accumulate in `read_buf`; the frame splitter
//!   carves complete NDJSON lines off the front (tracking a scan offset
//!   so dripped bytes are never rescanned) and dispatches each request.
//! * **execution** — `report`/`compare`/`watch` go to the worker pool
//!   (`max_inflight` threads, so the pool *is* the execution bound);
//!   `metrics`, `logs`, `evict`, `ping`, and `shutdown` are cheap and
//!   answered inline on the loop.
//! * **write side** — responses are emitted strictly in request order
//!   (a per-connection sequence number orders out-of-order worker
//!   completions), appended to `write_buf`, and flushed as far as the
//!   socket allows; partial writes resume when the poller reports the
//!   socket writable again.
//!
//! Workers hand finished responses back through a completion list and
//! wake the loop by writing one byte to a self-pipe (a `UnixStream`
//! pair — the portable cousin of `eventfd`).
//!
//! # Backpressure
//!
//! A connection whose un-flushed response backlog exceeds
//! [`HIGH_WATER`] stops being read (its `EPOLLIN` interest is dropped)
//! until the backlog drains below [`LOW_WATER`]; a client that sends
//! pipelined queries faster than it reads responses throttles itself,
//! not the server. Request lines are capped at [`MAX_LINE`].
//!
//! # Shutdown
//!
//! The `shutdown` command answers its own request, then drains: the
//! listener is deregistered, no further frames are parsed on any
//! connection, in-flight worker jobs finish and flush, and the loop
//! exits once nothing is pending. The caller persists dirty `.fsidx`
//! snapshots after the loop returns.

use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::{mpsc, Arc, Mutex};

use failapi::wire::{self, Command};
use failapi::{QueryEngine, QueryRequest, WatchRequest};
use failtypes::{Error, Result};

use crate::server::{Listener, ServeSummary, Stream};
use crate::sys::{Event, Poller};

/// Poller token of the listening socket.
const LISTENER: u64 = 0;
/// Poller token of the self-pipe's read end.
const WAKER: u64 = 1;
/// First connection token.
const FIRST_CONN: u64 = 2;

/// Hard cap on one request line; a frame this long without a newline
/// is answered with a typed error and the connection is closed (the
/// stream cannot be resynchronized).
const MAX_LINE: usize = 8 * 1024 * 1024;
/// Un-flushed response bytes above which a connection stops being read.
const HIGH_WATER: usize = 1024 * 1024;
/// Backlog below which a paused connection resumes reading.
const LOW_WATER: usize = 64 * 1024;
/// One non-blocking read's scratch size.
const READ_CHUNK: usize = 64 * 1024;
/// Most bytes accepted from one connection per loop visit, so a
/// firehose sender cannot starve its peers (level-triggered polling
/// revisits it immediately).
const READ_BURST: usize = 1024 * 1024;

/// Work shipped to the pool: the queries whose execution cost is
/// unbounded. Everything else is answered inline on the loop.
enum JobCmd {
    Query(QueryRequest),
    Watch(WatchRequest),
}

struct Job {
    conn: u64,
    seq: u64,
    id: u64,
    cmd: JobCmd,
}

/// (connection token, per-connection sequence, encoded response line).
type Completion = (u64, u64, String);

/// The self-pipe's write end, shared by every worker.
struct Waker {
    tx: UnixStream,
}

impl Waker {
    fn wake(&self) {
        // A full pipe means a wake-up is already pending; any error is
        // ignorable for the same reason.
        let _ = (&self.tx).write(&[1]);
    }
}

/// Per-connection state machine.
struct Conn {
    stream: Stream,
    /// Bytes received but not yet carved into frames.
    read_buf: Vec<u8>,
    /// How far `read_buf` has been scanned for a newline.
    scanned: usize,
    /// Encoded responses awaiting the socket.
    write_buf: Vec<u8>,
    /// How much of `write_buf` has been written.
    write_pos: usize,
    /// Next sequence number to assign to an incoming request.
    next_seq: u64,
    /// Next sequence number to emit into `write_buf`.
    next_emit: u64,
    /// Completed responses waiting for their turn in request order.
    done: BTreeMap<u64, String>,
    /// Requests of this connection currently in the worker pool.
    inflight: usize,
    /// The peer closed its write side; drain and close.
    peer_eof: bool,
    /// Unrecoverable I/O state; drop at the next sweep.
    dead: bool,
    /// Close once the write buffer drains (protocol violation).
    close_after_flush: bool,
    /// Reads paused by the high-water mark.
    paused: bool,
    /// Whether the descriptor is currently in the poller. A connection
    /// with no interest at all (peer closed, nothing to write, workers
    /// still busy) is withdrawn entirely — a level-triggered `EPOLLHUP`
    /// cannot be masked and would otherwise spin the loop.
    registered: bool,
    /// Interest currently registered with the poller.
    want_read: bool,
    want_write: bool,
}

impl Conn {
    fn new(stream: Stream) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            scanned: 0,
            write_buf: Vec::new(),
            write_pos: 0,
            next_seq: 0,
            next_emit: 0,
            done: BTreeMap::new(),
            inflight: 0,
            peer_eof: false,
            dead: false,
            close_after_flush: false,
            paused: false,
            registered: true,
            want_read: true,
            want_write: false,
        }
    }

    fn backlog(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    fn flushed(&self) -> bool {
        self.write_pos >= self.write_buf.len()
    }
}

/// One complete frame-extraction step.
enum FrameStep {
    /// No complete line buffered yet.
    Incomplete,
    /// The buffered line is not UTF-8; the connection is unusable.
    Bad,
    /// A line grew past [`MAX_LINE`] without a newline.
    Oversize,
    /// One complete line (newline stripped).
    Line(String),
}

fn take_frame(conn: &mut Conn) -> FrameStep {
    let Some(rel) = conn.read_buf[conn.scanned..]
        .iter()
        .position(|&b| b == b'\n')
    else {
        conn.scanned = conn.read_buf.len();
        if conn.scanned > MAX_LINE {
            return FrameStep::Oversize;
        }
        return FrameStep::Incomplete;
    };
    let end = conn.scanned + rel;
    let step = match std::str::from_utf8(&conn.read_buf[..end]) {
        Ok(line) => FrameStep::Line(line.to_string()),
        Err(_) => FrameStep::Bad,
    };
    conn.read_buf.drain(..=end);
    conn.scanned = 0;
    step
}

pub(crate) fn run(
    listener: Listener,
    engine: QueryEngine,
    max_inflight: usize,
) -> Result<ServeSummary> {
    let setup = |what: &'static str| move |e: std::io::Error| Error::io(what, e);
    listener
        .set_nonblocking(true)
        .map_err(setup("setting the listener non-blocking"))?;
    let poller = Poller::new().map_err(setup("creating the poller"))?;
    let (wake_tx, wake_rx) = UnixStream::pair().map_err(setup("creating the wake pipe"))?;
    wake_tx
        .set_nonblocking(true)
        .map_err(setup("configuring the wake pipe"))?;
    wake_rx
        .set_nonblocking(true)
        .map_err(setup("configuring the wake pipe"))?;
    poller
        .add(listener.as_raw_fd(), LISTENER, true, false)
        .map_err(setup("registering the listener"))?;
    poller
        .add(wake_rx.as_raw_fd(), WAKER, true, false)
        .map_err(setup("registering the wake pipe"))?;

    let engine = Arc::new(engine);
    let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
    let waker = Arc::new(Waker { tx: wake_tx });
    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    let workers: Vec<_> = (0..max_inflight.max(1))
        .map(|_| {
            let (engine, job_rx) = (Arc::clone(&engine), Arc::clone(&job_rx));
            let (completions, waker) = (Arc::clone(&completions), Arc::clone(&waker));
            std::thread::spawn(move || worker(&engine, &job_rx, &completions, &waker))
        })
        .collect();

    let mut reactor = Reactor {
        poller,
        listener,
        engine,
        waker_rx: wake_rx,
        completions,
        job_tx: Some(job_tx),
        conns: HashMap::new(),
        next_token: FIRST_CONN,
        connections: 0,
        requests: 0,
        jobs_inflight: 0,
        draining: false,
    };
    reactor.serve();
    drop(reactor.job_tx.take());
    for handle in workers {
        handle.join().ok();
    }
    // Workers are done, so no new dirty entries can appear.
    let snapshots_persisted = reactor.engine.persist_dirty();
    Ok(ServeSummary {
        connections: reactor.connections,
        requests: reactor.requests,
        snapshots_persisted,
    })
}

/// One pool thread: execute jobs until the channel closes.
fn worker(
    engine: &QueryEngine,
    jobs: &Mutex<mpsc::Receiver<Job>>,
    completions: &Mutex<Vec<Completion>>,
    waker: &Waker,
) {
    loop {
        // Holding the lock across `recv` is the shared-receiver idiom:
        // it serializes job pickup, not execution.
        let job = {
            let rx = jobs.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv()
        };
        let Ok(job) = job else {
            return;
        };
        let line = respond(engine, job.id, job.cmd);
        completions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((job.conn, job.seq, line));
        waker.wake();
    }
}

/// Executes one pooled command; errors become typed envelopes.
fn respond(engine: &QueryEngine, id: u64, cmd: JobCmd) -> String {
    let error_line = |e: &Error| {
        engine.metrics().incr("server.errors", 1);
        wire::encode_err(id, e)
    };
    match cmd {
        JobCmd::Query(req) => match engine.execute(&req) {
            Ok(outcome) => wire::encode_ok(id, req_name(&req), outcome.cached, &outcome.output),
            Err(e) => error_line(&e),
        },
        JobCmd::Watch(req) => {
            let mut buf = Vec::new();
            match failapi::watch::run(&req, &mut buf) {
                Ok(_) => match String::from_utf8(buf) {
                    Ok(output) => wire::encode_ok(id, "watch", false, &output),
                    Err(_) => error_line(&Error::run("watch produced non-UTF8 output")),
                },
                Err(e) => error_line(&e),
            }
        }
    }
}

fn req_name(req: &QueryRequest) -> &'static str {
    match req.cmd {
        failapi::QueryCmd::Report(_) => "report",
        failapi::QueryCmd::Compare { .. } => "compare",
    }
}

struct Reactor {
    poller: Poller,
    listener: Listener,
    engine: Arc<QueryEngine>,
    waker_rx: UnixStream,
    completions: Arc<Mutex<Vec<Completion>>>,
    job_tx: Option<mpsc::Sender<Job>>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    connections: u64,
    requests: u64,
    jobs_inflight: usize,
    draining: bool,
}

impl Reactor {
    fn serve(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.poller.wait(&mut events, -1).is_err() {
                break;
            }
            for &ev in &events {
                match ev.token {
                    LISTENER => self.accept_burst(),
                    WAKER => self.drain_waker(),
                    token => {
                        if ev.readable {
                            self.on_readable(token);
                        }
                        if ev.writable {
                            self.try_flush(token);
                        }
                    }
                }
            }
            self.drain_completions();
            self.sweep();
            let all_flushed = self.conns.values().all(Conn::flushed);
            if self.draining && self.jobs_inflight == 0 && all_flushed {
                break;
            }
        }
    }

    fn accept_burst(&mut self) {
        if self.draining {
            return;
        }
        loop {
            let stream = match self.listener.accept() {
                Ok(s) => s.into_low_latency(),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Transient (fd pressure, peer reset between accept
                // and now): level-triggered polling retries next tick.
                Err(_) => break,
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let token = self.next_token;
            self.next_token += 1;
            if self
                .poller
                .add(stream.as_raw_fd(), token, true, false)
                .is_err()
            {
                continue;
            }
            self.connections += 1;
            self.engine.metrics().incr("server.connections", 1);
            self.conns.insert(token, Conn::new(stream));
        }
    }

    fn drain_waker(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            match (&self.waker_rx).read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn on_readable(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.dead || conn.peer_eof {
            return;
        }
        let mut chunk = [0u8; READ_CHUNK];
        let start = conn.read_buf.len();
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.peer_eof = true;
                    break;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    if conn.read_buf.len() - start >= READ_BURST {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
        self.process_frames(token);
    }

    /// Carves complete request lines off a connection's read buffer
    /// and dispatches each one. Stops at the first incomplete frame,
    /// on connection state changes, and during drain (buffered
    /// requests past the shutdown are dropped, matching the
    /// half-close semantics of the threaded server).
    fn process_frames(&mut self, token: u64) {
        loop {
            let step = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if conn.dead || conn.close_after_flush {
                    return;
                }
                if self.draining {
                    conn.read_buf.clear();
                    conn.scanned = 0;
                    return;
                }
                take_frame(conn)
            };
            match step {
                FrameStep::Incomplete => return,
                FrameStep::Bad => {
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.dead = true;
                    }
                    return;
                }
                FrameStep::Oversize => {
                    let line = wire::encode_err(
                        0,
                        &Error::args(format!("request line exceeds {MAX_LINE} bytes")),
                    );
                    self.count_request();
                    self.engine.metrics().incr("server.errors", 1);
                    let seq = {
                        let Some(conn) = self.conns.get_mut(&token) else {
                            return;
                        };
                        conn.read_buf.clear();
                        conn.scanned = 0;
                        conn.close_after_flush = true;
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        seq
                    };
                    self.complete(token, seq, line);
                    return;
                }
                FrameStep::Line(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    self.dispatch(token, &line);
                }
            }
        }
    }

    fn count_request(&mut self) {
        self.requests += 1;
        self.engine.metrics().incr("server.requests", 1);
    }

    fn dispatch(&mut self, token: u64, line: &str) {
        let seq = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let seq = conn.next_seq;
            conn.next_seq += 1;
            seq
        };
        self.count_request();
        let (id, cmd) = wire::parse_request(line);
        let response = match cmd {
            Err(e) => {
                self.engine.metrics().incr("server.errors", 1);
                wire::encode_err(id, &e)
            }
            Ok(Command::Query(req)) => {
                self.submit(token, seq, id, JobCmd::Query(req));
                return;
            }
            Ok(Command::Watch(req)) => {
                self.submit(token, seq, id, JobCmd::Watch(req));
                return;
            }
            Ok(Command::Metrics) => {
                wire::encode_ok(id, "metrics", false, &self.engine.metrics().export())
            }
            Ok(Command::Logs) => wire::encode_ok(
                id,
                "logs",
                false,
                &failapi::render_catalog(&self.engine.catalog()),
            ),
            Ok(Command::Evict(source)) => {
                wire::encode_ok(id, "evict", false, &self.engine.evict(&source).render())
            }
            Ok(Command::Ping) => wire::encode_ok(id, "ping", false, "pong\n"),
            Ok(Command::Shutdown) => {
                let line = wire::encode_ok(id, "shutdown", false, "faild: shutting down\n");
                self.complete(token, seq, line);
                self.begin_drain();
                return;
            }
        };
        self.complete(token, seq, response);
    }

    fn submit(&mut self, conn: u64, seq: u64, id: u64, cmd: JobCmd) {
        let sent = self
            .job_tx
            .as_ref()
            .is_some_and(|tx| tx.send(Job { conn, seq, id, cmd }).is_ok());
        if sent {
            self.jobs_inflight += 1;
            if let Some(c) = self.conns.get_mut(&conn) {
                c.inflight += 1;
            }
        } else {
            // The pool is gone (shutdown race); answer in place.
            let line = wire::encode_err(id, &Error::run("faild is shutting down"));
            self.complete(conn, seq, line);
        }
    }

    /// Records one finished response and emits everything now in
    /// order, flushing opportunistically.
    fn complete(&mut self, token: u64, seq: u64, line: String) {
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            conn.done.insert(seq, line);
            while let Some(next) = conn.done.remove(&conn.next_emit) {
                conn.write_buf.extend_from_slice(next.as_bytes());
                conn.write_buf.push(b'\n');
                conn.next_emit += 1;
            }
        }
        self.try_flush(token);
    }

    fn try_flush(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.dead {
            return;
        }
        while conn.write_pos < conn.write_buf.len() {
            match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                Ok(0) => {
                    conn.dead = true;
                    return;
                }
                Ok(n) => conn.write_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
        if conn.flushed() {
            conn.write_buf.clear();
            conn.write_pos = 0;
        } else if conn.write_pos > LOW_WATER {
            // Reclaim the flushed prefix so the buffer cannot grow
            // without bound across partial writes.
            conn.write_buf.drain(..conn.write_pos);
            conn.write_pos = 0;
        }
        let backlog = conn.backlog();
        if backlog > HIGH_WATER {
            conn.paused = true;
        } else if backlog < LOW_WATER {
            conn.paused = false;
        }
    }

    fn drain_completions(&mut self) {
        let done: Vec<Completion> = {
            let mut list = self.completions.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *list)
        };
        for (token, seq, line) in done {
            self.jobs_inflight -= 1;
            let alive = match self.conns.get_mut(&token) {
                Some(conn) => {
                    conn.inflight -= 1;
                    true
                }
                // The connection died while its query ran; the
                // response has nowhere to go.
                None => false,
            };
            if alive {
                self.complete(token, seq, line);
            }
        }
    }

    fn begin_drain(&mut self) {
        if self.draining {
            return;
        }
        self.draining = true;
        self.poller.remove(self.listener.as_raw_fd()).ok();
        for conn in self.conns.values_mut() {
            conn.read_buf.clear();
            conn.scanned = 0;
        }
    }

    /// Re-registers interest to match each connection's state and
    /// drops finished or dead connections.
    fn sweep(&mut self) {
        let Reactor {
            poller,
            conns,
            draining,
            ..
        } = self;
        let draining = *draining;
        let mut doomed = Vec::new();
        for (&token, conn) in conns.iter_mut() {
            if conn.dead {
                doomed.push(token);
                continue;
            }
            let settled = conn.flushed() && conn.inflight == 0 && conn.done.is_empty();
            if settled && (conn.peer_eof || conn.close_after_flush || draining) {
                doomed.push(token);
                continue;
            }
            let read = !draining && !conn.peer_eof && !conn.paused && !conn.close_after_flush;
            let write = !conn.flushed();
            let fd = conn.stream.as_raw_fd();
            let ok = if !read && !write {
                // No interest at all: withdraw the descriptor — a
                // level-triggered EPOLLHUP cannot be masked and would
                // spin the loop while workers finish.
                if conn.registered {
                    poller.remove(fd).ok();
                    conn.registered = false;
                }
                true
            } else if !conn.registered {
                let added = poller.add(fd, token, read, write).is_ok();
                conn.registered = added;
                added
            } else if (read, write) != (conn.want_read, conn.want_write) {
                poller.modify(fd, token, read, write).is_ok()
            } else {
                true
            };
            if ok {
                conn.want_read = read;
                conn.want_write = write;
            } else {
                conn.dead = true;
                doomed.push(token);
            }
        }
        for token in doomed {
            if let Some(conn) = conns.remove(&token) {
                if conn.registered {
                    poller.remove(conn.stream.as_raw_fd()).ok();
                }
            }
        }
    }
}
