//! Endpoints, transports, and the [`serve`] entry points.
//!
//! The serving machinery itself lives in the private `reactor`
//! module: one
//! event-loop thread owns the listener and every client socket
//! (non-blocking, epoll-multiplexed), and a bounded worker pool of
//! `max_inflight` threads executes queries — so idle connections cost
//! zero CPU and a burst of expensive cold parses degrades to a queue
//! instead of a thundering herd.
//!
//! Shutdown is a protocol command: any client may send
//! `{"v":1,"id":N,"cmd":"shutdown"}`. The server answers it, stops
//! accepting, drops buffered-but-unparsed requests, lets every
//! in-flight request finish and flush, persists the engine's dirty
//! `.fsidx` snapshots, and returns a [`ServeSummary`].

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;

use failapi::QueryEngine;
use failtypes::{Error, JsonValue, Result};

/// Where the server listens (and clients connect).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket at this path.
    Unix(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7171` (port 0 picks a free one).
    Tcp(String),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

impl Endpoint {
    /// A Unix-socket endpoint.
    pub fn unix(path: impl Into<PathBuf>) -> Self {
        Endpoint::Unix(path.into())
    }

    /// A TCP endpoint.
    pub fn tcp(addr: impl Into<String>) -> Self {
        Endpoint::Tcp(addr.into())
    }

    /// Opens a client connection to this endpoint.
    pub(crate) fn connect_stream(&self) -> Result<Stream> {
        match self {
            Endpoint::Unix(path) => UnixStream::connect(path)
                .map(Stream::Unix)
                .map_err(|e| Error::run(format!("connecting to faild at {self}: {e}"))),
            Endpoint::Tcp(addr) => TcpStream::connect(addr)
                .map(Stream::Tcp)
                .map(Stream::into_low_latency)
                .map_err(|e| Error::run(format!("connecting to faild at {self}: {e}"))),
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Where to listen.
    pub endpoint: Endpoint,
    /// How many queries may execute concurrently (minimum 1) — the
    /// size of the worker pool; further requests queue. Responses are
    /// unaffected — only peak memory is.
    pub max_inflight: usize,
}

/// What a completed serve run did, reported after a graceful shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Requests answered (including error envelopes).
    pub requests: u64,
    /// `.fsidx` snapshots persisted at shutdown for logs the engine
    /// cold-parsed.
    pub snapshots_persisted: usize,
}

/// The `{"v":1,"ready":true,...}` line a wrapper prints to stdout once
/// the socket is bound, so scripts can wait for it before connecting.
pub fn ready_line(endpoint: &Endpoint) -> String {
    JsonValue::object()
        .field("v", 1u64)
        .field("ready", true)
        .field("endpoint", endpoint.to_string())
        .build()
        .render()
}

/// A duplex byte stream over either transport.
#[derive(Debug)]
pub(crate) enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    pub(crate) fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    pub(crate) fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_nonblocking(nonblocking),
            Stream::Tcp(s) => s.set_nonblocking(nonblocking),
        }
    }

    pub(crate) fn set_read_timeout(
        &self,
        timeout: Option<std::time::Duration>,
    ) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(timeout),
            Stream::Tcp(s) => s.set_read_timeout(timeout),
        }
    }

    /// Disables Nagle's algorithm on TCP streams (a no-op on Unix
    /// sockets): the protocol is strictly request/response with one
    /// small line each way, so batching writes only adds the
    /// delayed-ACK round trip to every query.
    pub(crate) fn into_low_latency(self) -> Stream {
        if let Stream::Tcp(s) = &self {
            s.set_nodelay(true).ok();
        }
        self
    }
}

impl AsRawFd for Stream {
    fn as_raw_fd(&self) -> RawFd {
        match self {
            Stream::Unix(s) => s.as_raw_fd(),
            Stream::Tcp(s) => s.as_raw_fd(),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

pub(crate) enum Listener {
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener),
}

impl Listener {
    pub(crate) fn bind(endpoint: &Endpoint) -> Result<Listener> {
        match endpoint {
            Endpoint::Unix(path) => {
                let listener = UnixListener::bind(path).or_else(|_| {
                    // A stale socket file from a crashed server blocks
                    // the bind; remove it and retry once.
                    std::fs::remove_file(path).ok();
                    UnixListener::bind(path)
                })
                .map_err(|e| Error::run(format!("binding {}: {e}", path.display())))?;
                Ok(Listener::Unix(listener, path.clone()))
            }
            Endpoint::Tcp(addr) => TcpListener::bind(addr)
                .map(Listener::Tcp)
                .map_err(|e| Error::run(format!("binding {addr}: {e}"))),
        }
    }

    /// The endpoint actually bound (TCP port 0 resolves here).
    pub(crate) fn bound_endpoint(&self) -> Result<Endpoint> {
        match self {
            Listener::Unix(_, path) => Ok(Endpoint::Unix(path.clone())),
            Listener::Tcp(listener) => listener
                .local_addr()
                .map(|a| Endpoint::Tcp(a.to_string()))
                .map_err(|e| Error::io("resolving the bound address", e)),
        }
    }

    pub(crate) fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        match self {
            Listener::Unix(listener, _) => listener.set_nonblocking(nonblocking),
            Listener::Tcp(listener) => listener.set_nonblocking(nonblocking),
        }
    }

    pub(crate) fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Unix(listener, _) => listener.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(listener) => listener.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }
}

impl AsRawFd for Listener {
    fn as_raw_fd(&self) -> RawFd {
        match self {
            Listener::Unix(listener, _) => listener.as_raw_fd(),
            Listener::Tcp(listener) => listener.as_raw_fd(),
        }
    }
}

/// Runs `faild` to completion with a fresh [`QueryEngine`]: binds the
/// endpoint, calls `ready` with the resolved address (print this to
/// stdout so clients can wait for it), then serves until a client
/// sends `shutdown`. In-flight requests finish, dirty `.fsidx`
/// snapshots are persisted, and the summary is returned.
///
/// # Errors
///
/// Fails only on bind/setup problems; per-connection I/O errors drop
/// that connection and per-request errors become typed error envelopes.
pub fn serve(config: ServerConfig, ready: impl FnOnce(&Endpoint)) -> Result<ServeSummary> {
    serve_with_engine(config, QueryEngine::new(), ready)
}

/// [`serve`] with a caller-built engine — the hook for configuring
/// the render-cache byte budget (`QueryEngine::with_cache_bytes`,
/// the `--cache-bytes` flag) or pre-warming caches before binding.
///
/// # Errors
///
/// As [`serve`].
pub fn serve_with_engine(
    config: ServerConfig,
    engine: QueryEngine,
    ready: impl FnOnce(&Endpoint),
) -> Result<ServeSummary> {
    let listener = Listener::bind(&config.endpoint)?;
    let bound = listener.bound_endpoint()?;
    ready(&bound);
    let summary = crate::reactor::run(listener, engine, config.max_inflight);
    if let Endpoint::Unix(path) = &bound {
        std::fs::remove_file(path).ok();
    }
    summary
}
