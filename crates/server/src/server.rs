//! The accept loop, connection handlers, and graceful shutdown.
//!
//! One thread per connection; query execution is additionally bounded
//! by a counting gate (`max_inflight`), so a burst of expensive cold
//! parses from many clients degrades to a queue instead of a thundering
//! herd — correctness never depends on the gate, only peak memory does.
//!
//! Shutdown is a protocol command: any client may send
//! `{"v":1,"id":N,"cmd":"shutdown"}`. The server stops accepting,
//! half-closes the read side of every open connection (which wakes any
//! handler blocked in a read with a clean EOF — no per-connection poll
//! timeouts), lets every in-flight request finish, persists the
//! engine's dirty `.fsidx` snapshots, and returns a [`ServeSummary`].

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use failapi::wire::{self, Command};
use failapi::QueryEngine;
use failtypes::{Error, JsonValue, Result};

/// Where the server listens (and clients connect).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket at this path.
    Unix(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7171` (port 0 picks a free one).
    Tcp(String),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

impl Endpoint {
    /// A Unix-socket endpoint.
    pub fn unix(path: impl Into<PathBuf>) -> Self {
        Endpoint::Unix(path.into())
    }

    /// A TCP endpoint.
    pub fn tcp(addr: impl Into<String>) -> Self {
        Endpoint::Tcp(addr.into())
    }

    /// Opens a client connection to this endpoint.
    pub(crate) fn connect_stream(&self) -> Result<Stream> {
        match self {
            Endpoint::Unix(path) => UnixStream::connect(path)
                .map(Stream::Unix)
                .map_err(|e| Error::run(format!("connecting to faild at {self}: {e}"))),
            Endpoint::Tcp(addr) => TcpStream::connect(addr)
                .map(Stream::Tcp)
                .map(Stream::into_low_latency)
                .map_err(|e| Error::run(format!("connecting to faild at {self}: {e}"))),
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Where to listen.
    pub endpoint: Endpoint,
    /// How many queries may execute concurrently (minimum 1); further
    /// requests queue. Responses are unaffected — only peak memory is.
    pub max_inflight: usize,
}

/// What a completed serve run did, reported after a graceful shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Requests answered (including error envelopes).
    pub requests: u64,
    /// `.fsidx` snapshots persisted at shutdown for logs the engine
    /// cold-parsed.
    pub snapshots_persisted: usize,
}

/// The `{"v":1,"ready":true,...}` line a wrapper prints to stdout once
/// the socket is bound, so scripts can wait for it before connecting.
pub fn ready_line(endpoint: &Endpoint) -> String {
    JsonValue::object()
        .field("v", 1u64)
        .field("ready", true)
        .field("endpoint", endpoint.to_string())
        .build()
        .render()
}

/// A duplex byte stream over either transport.
#[derive(Debug)]
pub(crate) enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    pub(crate) fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    /// Half-closes the read side, waking a handler blocked in a read
    /// with a clean EOF while leaving its in-flight response writable.
    fn shutdown_read(&self) {
        match self {
            Stream::Unix(s) => drop(s.shutdown(Shutdown::Read)),
            Stream::Tcp(s) => drop(s.shutdown(Shutdown::Read)),
        }
    }

    /// Disables Nagle's algorithm on TCP streams (a no-op on Unix
    /// sockets): the protocol is strictly request/response with one
    /// small line each way, so batching writes only adds the
    /// delayed-ACK round trip to every query.
    pub(crate) fn into_low_latency(self) -> Stream {
        if let Stream::Tcp(s) = &self {
            s.set_nodelay(true).ok();
        }
        self
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

enum Listener {
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener),
}

impl Listener {
    fn bind(endpoint: &Endpoint) -> Result<Listener> {
        match endpoint {
            Endpoint::Unix(path) => {
                let listener = UnixListener::bind(path).or_else(|_| {
                    // A stale socket file from a crashed server blocks
                    // the bind; remove it and retry once.
                    std::fs::remove_file(path).ok();
                    UnixListener::bind(path)
                })
                .map_err(|e| Error::run(format!("binding {}: {e}", path.display())))?;
                Ok(Listener::Unix(listener, path.clone()))
            }
            Endpoint::Tcp(addr) => TcpListener::bind(addr)
                .map(Listener::Tcp)
                .map_err(|e| Error::run(format!("binding {addr}: {e}"))),
        }
    }

    /// The endpoint actually bound (TCP port 0 resolves here).
    fn bound_endpoint(&self) -> Result<Endpoint> {
        match self {
            Listener::Unix(_, path) => Ok(Endpoint::Unix(path.clone())),
            Listener::Tcp(listener) => listener
                .local_addr()
                .map(|a| Endpoint::Tcp(a.to_string()))
                .map_err(|e| Error::io("resolving the bound address", e)),
        }
    }

    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Unix(listener, _) => listener.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(listener) => listener.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }
}

/// A counting gate bounding concurrent query execution.
struct Gate {
    slots: Mutex<usize>,
    freed: Condvar,
}

impl Gate {
    fn new(slots: usize) -> Gate {
        Gate {
            slots: Mutex::new(slots.max(1)),
            freed: Condvar::new(),
        }
    }

    fn run<T>(&self, work: impl FnOnce() -> T) -> T {
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        while *slots == 0 {
            slots = self
                .freed
                .wait(slots)
                .unwrap_or_else(|e| e.into_inner());
        }
        *slots -= 1;
        drop(slots);
        let result = work();
        *self.slots.lock().unwrap_or_else(|e| e.into_inner()) += 1;
        self.freed.notify_one();
        result
    }
}

struct Shared {
    engine: QueryEngine,
    gate: Gate,
    shutdown: AtomicBool,
    requests: AtomicU64,
    bound: Endpoint,
    /// Read-half clones of every open connection, so shutdown can wake
    /// blocked readers by half-closing them instead of making every
    /// read spin on a poll timeout.
    open: Mutex<HashMap<u64, Stream>>,
}

impl Shared {
    /// Executes one decoded command; returns the response line and
    /// whether it was a shutdown request.
    fn respond(&self, id: u64, cmd: Command) -> (String, bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.engine.metrics().incr("server.requests", 1);
        match cmd {
            Command::Query(req) => {
                let line = match self.gate.run(|| self.engine.execute(&req)) {
                    Ok(outcome) => {
                        wire::encode_ok(id, req_name(&req), outcome.cached, &outcome.output)
                    }
                    Err(e) => self.error_line(id, &e),
                };
                (line, false)
            }
            Command::Watch(req) => {
                let line = self.gate.run(|| {
                    let mut buf = Vec::new();
                    match failapi::watch::run(&req, &mut buf) {
                        Ok(_) => match String::from_utf8(buf) {
                            Ok(output) => wire::encode_ok(id, "watch", false, &output),
                            Err(_) => self
                                .error_line(id, &Error::run("watch produced non-UTF8 output")),
                        },
                        Err(e) => self.error_line(id, &e),
                    }
                });
                (line, false)
            }
            Command::Metrics => {
                // The live collector: engine cache counters plus the
                // server's own, exported as the standard NDJSON trace.
                let export = self.engine.metrics().export();
                (wire::encode_ok(id, "metrics", false, &export), false)
            }
            Command::Ping => (wire::encode_ok(id, "ping", false, "pong\n"), false),
            Command::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                // Unblock the acceptor with a throwaway connection.
                let _ = self.bound.connect_stream();
                (
                    wire::encode_ok(id, "shutdown", false, "faild: shutting down\n"),
                    true,
                )
            }
        }
    }

    fn error_line(&self, id: u64, e: &Error) -> String {
        self.engine.metrics().incr("server.errors", 1);
        wire::encode_err(id, e)
    }
}

fn req_name(req: &failapi::QueryRequest) -> &'static str {
    match req.cmd {
        failapi::QueryCmd::Report(_) => "report",
        failapi::QueryCmd::Compare { .. } => "compare",
    }
}

/// Runs `faild` to completion: binds the endpoint, calls `ready` with
/// the resolved address (print this to stdout so clients can wait for
/// it), then serves until a client sends `shutdown`. In-flight requests
/// finish, dirty `.fsidx` snapshots are persisted, and the summary is
/// returned.
///
/// # Errors
///
/// Fails only on bind/setup problems; per-connection I/O errors drop
/// that connection and per-request errors become typed error envelopes.
pub fn serve(config: ServerConfig, ready: impl FnOnce(&Endpoint)) -> Result<ServeSummary> {
    let listener = Listener::bind(&config.endpoint)?;
    let bound = listener.bound_endpoint()?;
    let shared = Arc::new(Shared {
        engine: QueryEngine::new(),
        gate: Gate::new(config.max_inflight),
        shutdown: AtomicBool::new(false),
        requests: AtomicU64::new(0),
        bound: bound.clone(),
        open: Mutex::new(HashMap::new()),
    });
    ready(&bound);

    let mut connections: u64 = 0;
    let mut handlers = Vec::new();
    let mut accept_errors = 0u32;
    while !shared.shutdown.load(Ordering::SeqCst) {
        let stream = match listener.accept() {
            Ok(s) => {
                accept_errors = 0;
                s.into_low_latency()
            }
            Err(_) => {
                // Transient accept failures happen under fd pressure;
                // a persistent streak means the listener is gone.
                accept_errors += 1;
                if accept_errors > 100 {
                    break;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break; // the shutdown wake-up connection
        }
        connections += 1;
        shared.engine.metrics().incr("server.connections", 1);
        let shared = Arc::clone(&shared);
        let id = connections;
        handlers.push(std::thread::spawn(move || handle(stream, &shared, id)));
    }
    // Wake every handler blocked in a read: half-close the read side of
    // each registered connection, which surfaces as a clean EOF.
    {
        let mut open = shared.open.lock().unwrap_or_else(|e| e.into_inner());
        for (_, stream) in open.drain() {
            stream.shutdown_read();
        }
    }
    for handler in handlers {
        handler.join().ok();
    }
    let snapshots_persisted = shared.engine.persist_dirty();
    if let Endpoint::Unix(path) = &bound {
        std::fs::remove_file(path).ok();
    }
    Ok(ServeSummary {
        connections,
        requests: shared.requests.load(Ordering::Relaxed),
        snapshots_persisted,
    })
}

/// One connection: read request lines, write response lines, until EOF
/// or shutdown. Reads block — an idle connection costs nothing; a
/// shutdown elsewhere wakes this handler by half-closing the read side
/// of its registered stream (a clean EOF), not via poll timeouts.
fn handle(stream: Stream, shared: &Shared, id: u64) {
    if let Ok(registered) = stream.try_clone() {
        let mut open = shared.open.lock().unwrap_or_else(|e| e.into_inner());
        open.insert(id, registered);
    }
    // The shutdown sweep drains the registry after the flag is set; a
    // handler registering after the sweep must notice the flag itself.
    if shared.shutdown.load(Ordering::SeqCst) {
        deregister(shared, id);
        return;
    }
    serve_connection(stream, shared);
    deregister(shared, id);
}

fn deregister(shared: &Shared, id: u64) {
    let mut open = shared.open.lock().unwrap_or_else(|e| e.into_inner());
    open.remove(&id);
}

fn serve_connection(stream: Stream, shared: &Shared) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        // A blocking read_line only returns a partial line right before
        // EOF; loop on Interrupted so a signal cannot split a frame.
        let complete = loop {
            match reader.read_line(&mut line) {
                Ok(0) => break false, // EOF (or shutdown half-close)
                Ok(_) => {
                    if line.ends_with('\n') {
                        break true;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break false,
            }
        };
        if !complete {
            return;
        }
        if line.trim().is_empty() {
            continue;
        }
        let (id, cmd) = wire::parse_request(&line);
        let (response, is_shutdown) = match cmd {
            Ok(cmd) => shared.respond(id, cmd),
            Err(e) => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                shared.engine.metrics().incr("server.requests", 1);
                (shared.error_line(id, &e), false)
            }
        };
        if writeln!(writer, "{response}").and_then(|()| writer.flush()).is_err() {
            return;
        }
        if is_shutdown {
            return;
        }
    }
}
