//! Benchmark harness and paper-figure regeneration for the `failscope`
//! reproduction.
//!
//! * [`experiments`] regenerates every table and figure of the paper's
//!   evaluation (Table I-III, Figs. 2-12, and the
//!   performance-error-proportionality walkthrough) and compares the
//!   measured values against the paper's, plus the ablation studies
//!   behind the simulator's design choices.
//! * [`check`] is the paper-vs-measured comparison framework.
//! * [`logstore`] memoizes simulated logs process-wide so each
//!   `(model, seed)` log is simulated exactly once and shared as an
//!   `Arc`.
//! * [`runner`] executes the experiment catalog on a worker pool with
//!   declaration-order collection, so parallel output is byte-identical
//!   to serial.
//! * The `repro` binary prints any (or all) of the experiments:
//!   `cargo run -p failbench --bin repro -- all`.
//! * The Criterion benches (`cargo bench -p failbench`) measure the
//!   regeneration pipelines themselves.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod check;
pub mod experiments;
pub mod logstore;
pub mod runner;

pub use check::{Check, Experiment, Tolerance};
pub use logstore::LogStore;
