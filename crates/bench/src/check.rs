//! The paper-vs-measured check framework used by the `repro` binary and
//! the EXPERIMENTS.md generator.

use std::fmt;

/// How a measured value is compared against the paper's value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Absolute difference at most this much.
    Abs(f64),
    /// Relative difference at most this fraction of the paper value.
    Rel(f64),
    /// Measured value must fall inside `[lo, hi]` (for "more than X"-style
    /// claims); the paper value is display-only.
    Range(f64, f64),
}

/// One paper-vs-measured comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// What is being compared.
    pub label: String,
    /// The value the paper reports (or implies).
    pub paper: f64,
    /// The value measured on the regenerated data.
    pub measured: f64,
    /// The acceptance band.
    pub tolerance: Tolerance,
}

impl Check {
    /// Creates a check with an absolute tolerance.
    pub fn abs(label: impl Into<String>, paper: f64, measured: f64, tol: f64) -> Self {
        Check {
            label: label.into(),
            paper,
            measured,
            tolerance: Tolerance::Abs(tol),
        }
    }

    /// Creates a check with a relative tolerance.
    pub fn rel(label: impl Into<String>, paper: f64, measured: f64, tol: f64) -> Self {
        Check {
            label: label.into(),
            paper,
            measured,
            tolerance: Tolerance::Rel(tol),
        }
    }

    /// Creates a range check ("the paper says more than X / roughly
    /// between lo and hi").
    pub fn range(label: impl Into<String>, paper: f64, measured: f64, lo: f64, hi: f64) -> Self {
        Check {
            label: label.into(),
            paper,
            measured,
            tolerance: Tolerance::Range(lo, hi),
        }
    }

    /// Whether the measured value is inside the acceptance band.
    pub fn passes(&self) -> bool {
        match self.tolerance {
            Tolerance::Abs(tol) => (self.measured - self.paper).abs() <= tol,
            Tolerance::Rel(tol) => {
                (self.measured - self.paper).abs() <= tol * self.paper.abs().max(f64::MIN_POSITIVE)
            }
            Tolerance::Range(lo, hi) => self.measured >= lo && self.measured <= hi,
        }
    }
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "  {:<52} paper {:>10.3}  measured {:>10.3}  {}",
            self.label,
            self.paper,
            self.measured,
            if self.passes() { "ok" } else { "MISMATCH" }
        )
    }
}

/// One regenerated experiment: a table or figure of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct Experiment {
    /// Stable identifier (`fig2`, `table3`, ...).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Paper-vs-measured checks.
    pub checks: Vec<Check>,
    /// The regenerated rows/series exactly as the figure would plot them.
    pub lines: Vec<String>,
}

impl Experiment {
    /// Whether every check passes.
    pub fn passes(&self) -> bool {
        self.checks.iter().all(Check::passes)
    }

    /// Renders the experiment as the `repro` binary prints it.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        for line in &self.lines {
            let _ = writeln!(out, "  {line}");
        }
        if !self.checks.is_empty() {
            let _ = writeln!(out, "  --");
        }
        for check in &self.checks {
            let _ = writeln!(out, "{check}");
        }
        let _ = writeln!(
            out,
            "  => {}",
            if self.passes() { "REPRODUCED" } else { "NOT REPRODUCED" }
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_tolerance() {
        assert!(Check::abs("x", 10.0, 10.4, 0.5).passes());
        assert!(!Check::abs("x", 10.0, 10.6, 0.5).passes());
    }

    #[test]
    fn rel_tolerance() {
        assert!(Check::rel("x", 100.0, 104.0, 0.05).passes());
        assert!(!Check::rel("x", 100.0, 106.0, 0.05).passes());
        // Relative tolerance around zero never divides by zero.
        assert!(Check::rel("x", 0.0, 0.0, 0.1).passes());
    }

    #[test]
    fn range_tolerance() {
        assert!(Check::range("x", 70.0, 72.4, 70.0, 80.0).passes());
        assert!(!Check::range("x", 70.0, 69.0, 70.0, 80.0).passes());
        assert!(!Check::range("x", 70.0, 81.0, 70.0, 80.0).passes());
    }

    #[test]
    fn experiment_render() {
        let exp = Experiment {
            id: "figX",
            title: "test",
            checks: vec![Check::abs("value", 1.0, 1.0, 0.1)],
            lines: vec!["series: 1 2 3".into()],
        };
        assert!(exp.passes());
        let text = exp.render();
        assert!(text.contains("figX"));
        assert!(text.contains("series: 1 2 3"));
        assert!(text.contains("REPRODUCED"));
        let bad = Experiment {
            id: "figY",
            title: "bad",
            checks: vec![Check::abs("value", 1.0, 9.0, 0.1)],
            lines: vec![],
        };
        assert!(!bad.passes());
        assert!(bad.render().contains("NOT REPRODUCED"));
    }
}
