//! Deterministic parallel experiment runner.
//!
//! Runs a catalog of experiment constructors on a scoped worker pool
//! (via [`failstats::par_map_ordered`]) and returns the results in
//! **declaration order**, so the rendered output of a parallel run is
//! byte-identical to the serial run at any thread count.
//!
//! The process-wide thread count is a single atomic knob: the `repro`
//! binary's `--threads N` flag calls [`set_threads`], and everything
//! that fans out — the catalog runner here, the seed-sweep averages in
//! [`crate::experiments`] — reads [`threads`]. Zero (the initial
//! value) means "use whatever the host offers".

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::check::Experiment;

/// An experiment id paired with the function that produces it, listed
/// without being executed.
pub type CatalogEntry = (&'static str, fn() -> Experiment);

static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker count; `0` restores the default
/// (host parallelism).
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::Relaxed);
}

/// The current worker count: the value from [`set_threads`], or the
/// host's available parallelism when unset.
pub fn threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => failstats::available_threads(),
        n => n,
    }
}

/// Runs every catalog entry with the process-wide [`threads`] count.
pub fn run_catalog(entries: &[CatalogEntry]) -> Vec<Experiment> {
    run_catalog_with(entries, threads())
}

/// Runs every catalog entry on up to `threads` workers, returning the
/// experiments in the order they are listed.
///
/// `threads <= 1` degenerates to a plain serial loop; higher counts
/// produce the same `Vec` because results are collected by index, and
/// every experiment derives its randomness from fixed seeds through
/// the shared [`crate::logstore::LogStore`].
pub fn run_catalog_with(entries: &[CatalogEntry], threads: usize) -> Vec<Experiment> {
    failstats::par_map_ordered(entries.len(), threads, |i| (entries[i].1)())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments;

    #[test]
    fn threads_knob_round_trips() {
        // Don't disturb other tests: restore the default afterwards.
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }

    #[test]
    fn catalog_order_is_preserved_at_any_thread_count() {
        let entries: Vec<CatalogEntry> = experiments::catalog()
            .into_iter()
            .take(4)
            .collect();
        let serial = run_catalog_with(&entries, 1);
        let parallel = run_catalog_with(&entries, 4);
        let ids: Vec<&str> = serial.iter().map(|e| e.id).collect();
        assert_eq!(ids, entries.iter().map(|e| e.0).collect::<Vec<_>>());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.render(), p.render(), "{} diverged", s.id);
        }
    }
}
