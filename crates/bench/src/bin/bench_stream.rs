//! Benchmarks the streaming subsystem against the batch pipeline and
//! verifies their equivalence, writing `BENCH_stream.json`.
//!
//! Usage:
//!
//! ```sh
//! cargo run -p failbench --bin bench_stream --release           # default path
//! cargo run -p failbench --bin bench_stream -- --json PATH
//! ```
//!
//! Three measurements per calibrated model (Tsubame 2.5 and 3.0):
//!
//! 1. **batch** — building the full `LogView` index from a finished
//!    log, the cost the batch report pipeline pays;
//! 2. **stream** — feeding the same records through
//!    `failwatch::WatchState::ingest_batch` (index + sketches +
//!    windows + EWMAs), records *moved* in as a live source delivers
//!    them, with the deferred sorted-run merges materialized inside the
//!    timed region;
//! 3. **watch** — a full `failwatch::run` replay with drift detection
//!    and the injected MTTR-regression scenario, checking that the
//!    canonical alert fires.
//!
//! A scaling sweep (1k/10k/100k/1M synthetic records over one year)
//! records the per-size rec/s curve, which amortized-O(1) ingest keeps
//! near flat; the `scaled_*` fields gate the ~100k tier that
//! `scripts/verify.sh` enforces a throughput floor on.
//!
//! Equivalence is checked the same way the test suite does: category
//! partitions, month buckets and sorted TTRs must be identical, and
//! MTBF / mean gap / MTTR must match the batch analyses bit for bit.
//! Exits non-zero when any equivalence or alert check fails.

use std::time::Instant;

use failscope::{LogView, TbfAnalysis, TtrAnalysis};
use failsim::{ReplayClock, ScenarioBuilder, Simulator, SystemModel};
use failtypes::{AlertKind, FailureLog};
use failwatch::{
    Baseline, DriftConfig, DriftDetector, SimSource, StateConfig, WatchConfig, WatchState,
};

/// Timing repetitions; the reported seconds are for the fastest pass.
const REPS: usize = 10;

fn main() {
    let mut json_path = String::from("BENCH_stream.json");
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => match iter.next() {
                Some(path) => json_path = path,
                None => {
                    eprintln!("--json needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`; usage: bench_stream [--json PATH]");
                std::process::exit(2);
            }
        }
    }

    let mut total_records = 0usize;
    let mut batch_seconds = 0.0f64;
    let mut stream_seconds = 0.0f64;
    let mut all_equivalent = true;
    let mut all_exact = true;

    for model in [SystemModel::tsubame2(), SystemModel::tsubame3()] {
        let log = Simulator::new(model.clone(), 42)
            .generate()
            .expect("calibrated model simulates");
        total_records += log.len();

        let batch = best_of(REPS, || {
            let view = LogView::new(&log);
            assert!(view.len() == log.len());
        });
        let stream = time_stream_ingest(REPS, &log);
        batch_seconds += batch;
        stream_seconds += stream;

        let state = ingest_all(&log);
        let (equivalent, exact) = check_equivalence(&log, &state);
        all_equivalent &= equivalent;
        all_exact &= exact;
        println!(
            "{}: {} records | batch index {:.1} us | stream ingest {:.1} us | equivalent: {equivalent}",
            log.spec().name(),
            log.len(),
            batch * 1e6,
            stream * 1e6,
        );
    }

    // Scaled throughput: a synthetic ~100k-record year so the
    // records-per-second figure is not dominated by the 1,235-record
    // canonical logs. Past the sketch exactness capacity quantile
    // estimates carry rank error, so equivalence at this scale is the
    // structural check only (partitions, buckets, sorted TTRs).
    const SCALED_REPS: usize = 5;
    let scaled_log = scale_log(0.08);
    let scaled_records = scaled_log.len();
    assert!(
        scaled_records >= 100_000,
        "scaled log too small: {scaled_records} records"
    );
    // The equivalence ingest doubles as an untimed warm-up pass, so
    // first-touch page faults on the process's first large allocations
    // never land inside the timed region.
    let scaled_state = ingest_all(&scaled_log);
    let scaled_equivalent = structures_match(&scaled_log, &scaled_state);
    drop(scaled_state);
    let scaled_batch_seconds = best_of(SCALED_REPS, || {
        let view = LogView::new(&scaled_log);
        assert!(view.len() == scaled_log.len());
    });
    let scaled_stream_seconds = time_stream_ingest(SCALED_REPS, &scaled_log);
    let scaled_rate = scaled_records as f64 / scaled_stream_seconds.max(f64::MIN_POSITIVE);
    println!(
        "scaled: {} records | batch index {:.1} ms | stream ingest {:.1} ms | {:.0} rec/s | equivalent: {scaled_equivalent}",
        scaled_records,
        scaled_batch_seconds * 1e3,
        scaled_stream_seconds * 1e3,
        scaled_rate,
    );

    // Per-size scaling curve: four synthetic years at ~1k/10k/100k/1M
    // records. Amortized-O(1) ingest keeps rec/s near flat across three
    // orders of magnitude (the old O(n) sorted-insert path collapsed
    // ~13x between the first and last tier).
    let mut scaling_rows = Vec::new();
    let mut all_tiers_equivalent = true;
    for mtbf_hours in [8.76, 0.876, 0.0876, 0.00876] {
        let tier_log = scale_log(mtbf_hours);
        let reps = if tier_log.len() >= 500_000 { 3 } else { SCALED_REPS };
        let tier_state = ingest_all(&tier_log);
        let tier_equivalent = structures_match(&tier_log, &tier_state);
        drop(tier_state);
        let seconds = time_stream_ingest(reps, &tier_log);
        let rate = tier_log.len() as f64 / seconds.max(f64::MIN_POSITIVE);
        all_tiers_equivalent &= tier_equivalent;
        println!(
            "tier: {} records | stream ingest {:.1} ms | {:.0} rec/s | equivalent: {tier_equivalent}",
            tier_log.len(),
            seconds * 1e3,
            rate,
        );
        scaling_rows.push(format!(
            "{{\"records\": {}, \"stream_seconds\": {seconds:.6}, \
             \"records_per_second\": {rate:.0}, \"equivalent\": {tier_equivalent}}}",
            tier_log.len(),
        ));
    }

    // Full watch replay with the injected regression scenario, run
    // under a trace collector so the loop's own counters (records
    // ingested, alerts raised, sketch compactions) land in the JSON.
    let collector = failtrace::Collector::new();
    let start = Instant::now();
    let mut source = SimSource::new(SystemModel::tsubame2(), 42, ReplayClock::unpaced())
        .expect("simulates")
        .with_mttr_injection(5.0, 0.5);
    let baseline = Baseline::from_model(SystemModel::tsubame2(), 1).expect("simulates");
    let detector = DriftDetector::new(baseline, DriftConfig::default());
    let config = WatchConfig::builder()
        .trace(collector.clone())
        .build()
        .expect("default watch config is valid");
    let mut sink = Vec::new();
    let outcome = failwatch::run(&mut source, Some(detector), &config, &mut sink)
        .expect("watch replay runs");
    let watch_seconds = start.elapsed().as_secs_f64();
    let regression_alerts = outcome
        .alerts
        .iter()
        .filter(|a| a.kind == AlertKind::MttrRegression)
        .count();
    println!(
        "watch replay: {} records, {} alert(s), {} MTTR-regression, {:.3} s",
        outcome.records,
        outcome.alerts.len(),
        regression_alerts,
        watch_seconds
    );

    let records_per_second = total_records as f64 / stream_seconds.max(f64::MIN_POSITIVE);
    let trace = collector.to_json(true).render();
    let json = format!(
        "{{\n  \"records\": {total_records},\n  \"batch_seconds\": {batch_seconds:.6},\n  \
         \"stream_seconds\": {stream_seconds:.6},\n  \
         \"stream_records_per_second\": {records_per_second:.0},\n  \
         \"equivalent\": {all_equivalent},\n  \"sketches_exact\": {all_exact},\n  \
         \"scaled_records\": {scaled_records},\n  \
         \"scaled_batch_seconds\": {scaled_batch_seconds:.6},\n  \
         \"scaled_stream_seconds\": {scaled_stream_seconds:.6},\n  \
         \"scaled_stream_records_per_second\": {scaled_rate:.0},\n  \
         \"scaled_equivalent\": {scaled_equivalent},\n  \
         \"scaling\": [\n    {scaling}\n  ],\n  \
         \"watch_replay_seconds\": {watch_seconds:.6},\n  \
         \"injected_regression_alerts\": {regression_alerts},\n  \
         \"trace\": {trace}\n}}\n",
        scaling = scaling_rows.join(",\n    "),
    );
    match std::fs::write(&json_path, &json) {
        Ok(()) => println!("wrote {json_path}"),
        Err(err) => {
            eprintln!("failed to write {json_path}: {err}");
            std::process::exit(1);
        }
    }
    if !all_equivalent {
        eprintln!("streaming state diverged from the batch pipeline");
        std::process::exit(1);
    }
    if !scaled_equivalent || !all_tiers_equivalent {
        eprintln!("scaled streaming state diverged structurally from the batch index");
        std::process::exit(1);
    }
    if regression_alerts == 0 {
        eprintln!("injected MTTR regression did not alert");
        std::process::exit(1);
    }
}

fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// A one-year synthetic fleet whose record count is ~`8760 / mtbf_hours`
/// (the scaling-tier generator).
fn scale_log(mtbf_hours: f64) -> FailureLog {
    let model = ScenarioBuilder::new("bench-scale")
        .nodes(1408)
        .gpus_per_node(4)
        .system_mtbf_hours(mtbf_hours)
        .window_days(365)
        .build()
        .expect("scaled scenario parameters are valid");
    Simulator::new(model, 42)
        .generate()
        .expect("scaled scenario simulates")
}

/// Times batched stream ingest with records *moved* into the state, the
/// way a live source hands them over — the record copies are prepared
/// outside the timed region, and the deferred sorted-run merges are
/// materialized inside it so every cost of the stream path is counted.
fn time_stream_ingest(reps: usize, log: &FailureLog) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let records = log.records().to_vec();
        let start = Instant::now();
        let mut state = WatchState::for_log(log, StateConfig::default());
        state.ingest_batch(records).expect("valid in-order records");
        state.materialize();
        assert!(state.len() == log.len());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn ingest_all(log: &FailureLog) -> WatchState {
    let mut state = WatchState::for_log(log, StateConfig::default());
    state
        .ingest_batch(log.records().to_vec())
        .expect("valid in-order records");
    state
}

/// Incremental index vs the batch one: category partitions, month
/// buckets, sorted TTRs, and per-slot/per-node tallies identical. Holds
/// at any scale, unlike sketch-backed estimates.
fn structures_match(log: &FailureLog, state: &WatchState) -> bool {
    let view = LogView::new(log);
    let sv = state.view();
    sv.category_indices() == view.category_indices()
        && sv.month_ttrs() == view.month_ttrs()
        && sv.ttrs_sorted() == view.ttrs_sorted()
        && sv.slot_counts() == view.slot_counts()
        && sv.node_counts() == view.node_counts()
}

/// Record-by-record state vs the batch pipeline: structures identical,
/// headline estimates bit-identical. Returns (equivalent, sketches
/// still exact).
fn check_equivalence(log: &FailureLog, state: &WatchState) -> (bool, bool) {
    let tbf = TbfAnalysis::from_log(log).expect("non-empty log");
    let ttr = TtrAnalysis::from_log(log).expect("non-empty log");
    let bitwise = state.mtbf_hours().map(f64::to_bits) == Some(tbf.mtbf_hours().to_bits())
        && state.mean_gap_hours().map(f64::to_bits) == Some(tbf.mean_gap_hours().to_bits())
        && state.mttr_hours().map(f64::to_bits) == Some(ttr.mttr_hours().to_bits());
    (structures_match(log, state) && bitwise, state.sketches_exact())
}
