//! Regenerates the paper's tables and figures and prints paper-vs-measured
//! comparisons.
//!
//! Usage:
//!
//! ```sh
//! cargo run -p failbench --bin repro -- all        # every experiment
//! cargo run -p failbench --bin repro -- fig6 fig9  # specific ones
//! cargo run -p failbench --bin repro -- ablations  # design ablations
//! cargo run -p failbench --bin repro -- list       # list ids
//! ```
//!
//! Exits non-zero when any requested experiment fails its checks.

use failbench::experiments::{self, ablations, extensions, ALL_IDS};
use failbench::Experiment;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repro [all | ablations | extensions | list | <id>...]");
        eprintln!("ids: {}", ALL_IDS.join(", "));
        std::process::exit(2);
    }
    if args.iter().any(|a| a == "list") {
        for id in ALL_IDS {
            println!("{id}");
        }
        for exp in ablations::all() {
            println!("{}", exp.id);
        }
        for exp in extensions::all() {
            println!("{}", exp.id);
        }
        return;
    }

    let mut selected: Vec<Experiment> = Vec::new();
    for arg in &args {
        match arg.as_str() {
            "all" => {
                selected.extend(ALL_IDS.iter().map(|id| {
                    experiments::run(id).expect("ALL_IDS entries are valid")
                }));
                selected.extend(ablations::all());
                selected.extend(extensions::all());
            }
            "ablations" => selected.extend(ablations::all()),
            "extensions" => selected.extend(extensions::all()),
            id => match experiments::run(id) {
                Some(exp) => selected.push(exp),
                None => {
                    // Maybe it names an ablation.
                    match ablations::all()
                        .into_iter()
                        .chain(extensions::all())
                        .find(|e| e.id == id)
                    {
                        Some(exp) => selected.push(exp),
                        None => {
                            eprintln!("unknown experiment `{id}`; try `repro list`");
                            std::process::exit(2);
                        }
                    }
                }
            },
        }
    }
    selected.dedup_by(|a, b| a.id == b.id);

    let mut failed = 0;
    for exp in &selected {
        println!("{}", exp.render());
        if !exp.passes() {
            failed += 1;
        }
    }
    println!(
        "{} of {} experiments reproduced",
        selected.len() - failed,
        selected.len()
    );
    if failed > 0 {
        std::process::exit(1);
    }
}
