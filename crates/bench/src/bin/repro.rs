//! Regenerates the paper's tables and figures and prints paper-vs-measured
//! comparisons.
//!
//! Usage:
//!
//! ```sh
//! cargo run -p failbench --bin repro -- all             # every experiment
//! cargo run -p failbench --bin repro -- fig6 fig9       # specific ones
//! cargo run -p failbench --bin repro -- ablations       # design ablations
//! cargo run -p failbench --bin repro -- list            # list ids (runs nothing)
//! cargo run -p failbench --bin repro -- all --threads 4 # bounded worker pool
//! cargo run -p failbench --bin repro -- bench           # serial-vs-parallel timing
//! ```
//!
//! Experiments run on a worker pool (default: all host cores; bound it
//! with `--threads N`). Results are collected in declaration order and
//! every log comes from the shared, seeded
//! [`LogStore`], so the output is byte-identical
//! to a serial run at any thread count.
//!
//! `bench` times a cold serial pass against a cold parallel pass over
//! the full catalog, verifies the outputs match byte for byte, and
//! writes `BENCH_pipeline.json` (override the path with `--json PATH`).
//!
//! Exits non-zero when any requested experiment fails its checks.

use std::sync::mpsc;
use std::thread;
use std::time::Instant;

use failapi::{wire, OutputFormat, QueryEngine, QueryRequest, QuerySource};
use failbench::experiments;
use failbench::runner::{self, CatalogEntry};
use failbench::LogStore;
use failscope::{LogView, SectionCtx};
use failserver::client::Connection;
use failserver::{Endpoint, ServerConfig};
use failsim::{Simulator, SystemModel};
use failtrace::Collector;
use failtypes::JsonValue;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut args: Vec<String> = Vec::new();
    let mut threads = 0usize; // 0 = host parallelism
    let mut json_path = String::from("BENCH_pipeline.json");
    let mut iter = raw.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threads" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => threads = n,
                None => usage("--threads needs a positive integer"),
            },
            "--json" => match iter.next() {
                Some(path) => json_path = path.clone(),
                None => usage("--json needs a path"),
            },
            "--help" | "-h" => usage(""),
            _ => args.push(arg.clone()),
        }
    }
    if args.is_empty() {
        usage("no experiments requested");
    }
    if threads > 0 {
        runner::set_threads(threads);
    }

    let catalog = experiments::catalog();
    if args.iter().any(|a| a == "list") {
        for (id, _) in &catalog {
            println!("{id}");
        }
        return;
    }
    if args.iter().any(|a| a == "bench") {
        bench(&catalog, &json_path);
        return;
    }

    let mut selected: Vec<CatalogEntry> = Vec::new();
    for arg in &args {
        match arg.as_str() {
            "all" => selected.extend(&catalog),
            "ablations" => {
                selected.extend(catalog.iter().filter(|e| e.0.starts_with("ablate_")));
            }
            "extensions" => {
                selected.extend(catalog.iter().filter(|e| e.0.starts_with("ext_")));
            }
            id => match catalog.iter().find(|e| e.0 == id) {
                Some(entry) => selected.push(*entry),
                None => {
                    eprintln!("unknown experiment `{id}`; try `repro list`");
                    std::process::exit(2);
                }
            },
        }
    }
    let mut seen = Vec::new();
    selected.retain(|(id, _)| {
        let fresh = !seen.contains(id);
        seen.push(*id);
        fresh
    });

    let results = runner::run_catalog(&selected);
    let mut failed = 0;
    for exp in &results {
        println!("{}", exp.render());
        if !exp.passes() {
            failed += 1;
        }
    }
    println!(
        "{} of {} experiments reproduced",
        results.len() - failed,
        results.len()
    );
    if failed > 0 {
        std::process::exit(1);
    }
}

/// Times a cold serial pass vs. a cold parallel pass over the whole
/// catalog and records the comparison as JSON.
fn bench(catalog: &[CatalogEntry], json_path: &str) {
    let store = LogStore::global();
    let threads = runner::threads();

    store.clear();
    let start = Instant::now();
    let serial = runner::run_catalog_with(catalog, 1);
    let serial_seconds = start.elapsed().as_secs_f64();
    let serial_sims = store.simulations();

    store.clear();
    let start = Instant::now();
    let parallel = runner::run_catalog_with(catalog, threads);
    let parallel_seconds = start.elapsed().as_secs_f64();

    let identical = serial.len() == parallel.len()
        && serial
            .iter()
            .zip(&parallel)
            .all(|(s, p)| s.render() == p.render());
    let speedup = serial_seconds / parallel_seconds.max(f64::MIN_POSITIVE);

    println!("pipeline bench: {} experiments", catalog.len());
    println!("  logs simulated per pass: {serial_sims} (exactly once each)");
    println!("  serial   (1 thread):  {serial_seconds:.3} s");
    println!("  parallel ({threads} threads): {parallel_seconds:.3} s");
    println!("  speedup: {speedup:.2}x, outputs identical: {identical}");

    // Per-section render timings over the canonical Tsubame-2 log,
    // driven by the same registry the report pipeline dispatches on. The
    // whole pass runs under a trace collector, whose timed export is
    // folded into the JSON artifact below.
    let collector = Collector::new();
    let section_log = Simulator::new(SystemModel::tsubame2(), 42)
        .generate_traced(Some(&collector))
        .expect("calibrated model simulates");
    let view = LogView::new_traced(&section_log, Some(&collector));
    let ctx = SectionCtx::with_trace(&view, &collector);
    let mut section_rows = Vec::new();
    println!("  per-section render (best of 5, canonical T2):");
    for section in failscope::SECTIONS {
        let text_seconds = best_of(5, || {
            std::hint::black_box((section.text)(&ctx));
        });
        let json_seconds = best_of(5, || {
            std::hint::black_box((section.json)(&ctx).render());
        });
        println!(
            "    {:<12} text {:>8.1} us | json {:>8.1} us",
            section.id,
            text_seconds * 1e6,
            json_seconds * 1e6
        );
        section_rows.push(
            JsonValue::object()
                .field("id", section.id)
                .field("text_seconds", text_seconds)
                .field("json_seconds", json_seconds)
                .build(),
        );
    }

    // Parse-path bench: serialize a ~110k-record synthetic year once,
    // then time the serial chunked parser, the parallel chunked parser,
    // and the transparent-gzip ingest path over the same bytes. The
    // parallel output is verified byte-identical to serial before any
    // rate is reported; `parse_records_per_second` (the parallel plain-
    // text rate) is the figure scripts/verify.sh gates on.
    const PARSE_REPS: usize = 5;
    let parse_log = {
        let model = failsim::ScenarioBuilder::new("bench-scale")
            .nodes(1408)
            .gpus_per_node(4)
            .system_mtbf_hours(0.08)
            .window_days(365)
            .build()
            .expect("scaled scenario parameters are valid");
        Simulator::new(model, 42)
            .generate()
            .expect("scaled scenario simulates")
    };
    let parse_records = parse_log.len();
    let parse_text = faillog::to_string(&parse_log).expect("serializes");
    let parse_gzip = faillog::gzip_compress(parse_text.as_bytes());
    let serial_opts = faillog::ParseOptions::serial();
    let parallel_opts = faillog::ParseOptions::default();
    let serial_reparse = faillog::from_str_with(&parse_text, &serial_opts).expect("parses");
    let parallel_reparse = faillog::from_str_with(&parse_text, &parallel_opts).expect("parses");
    let parse_identical = faillog::to_string(&serial_reparse).expect("serializes")
        == faillog::to_string(&parallel_reparse).expect("serializes");
    drop((serial_reparse, parallel_reparse));
    let parse_serial_seconds = best_of(PARSE_REPS, || {
        std::hint::black_box(faillog::from_str_with(&parse_text, &serial_opts).expect("parses"));
    });
    let parse_parallel_seconds = best_of(PARSE_REPS, || {
        std::hint::black_box(faillog::from_str_with(&parse_text, &parallel_opts).expect("parses"));
    });
    let parse_gzip_seconds = best_of(PARSE_REPS, || {
        let inflated = faillog::gzip_decompress(&parse_gzip).expect("inflates");
        let text = String::from_utf8(inflated).expect("log text is UTF-8");
        std::hint::black_box(faillog::from_str_with(&text, &parallel_opts).expect("parses"));
    });
    let parse_serial_rate = parse_records as f64 / parse_serial_seconds.max(f64::MIN_POSITIVE);
    let parse_parallel_rate =
        parse_records as f64 / parse_parallel_seconds.max(f64::MIN_POSITIVE);
    let parse_gzip_rate = parse_records as f64 / parse_gzip_seconds.max(f64::MIN_POSITIVE);
    let parse_speedup = parse_serial_seconds / parse_parallel_seconds.max(f64::MIN_POSITIVE);
    println!(
        "  parse bench: {parse_records} records ({} bytes plain, {} gzip)",
        parse_text.len(),
        parse_gzip.len()
    );
    println!(
        "    serial   (1 thread):  {:.1} ms | {:.0} rec/s",
        parse_serial_seconds * 1e3,
        parse_serial_rate
    );
    println!(
        "    parallel ({} threads): {:.1} ms | {:.0} rec/s | speedup {parse_speedup:.2}x",
        parallel_opts.threads,
        parse_parallel_seconds * 1e3,
        parse_parallel_rate
    );
    println!(
        "    gzip     ({} threads): {:.1} ms | {:.0} rec/s | identical: {parse_identical}",
        parallel_opts.threads,
        parse_gzip_seconds * 1e3,
        parse_gzip_rate
    );
    let parse_json = JsonValue::object()
        .field("records", parse_records)
        .field("bytes", parse_text.len())
        .field("gzip_bytes", parse_gzip.len())
        .field("threads", parallel_opts.threads)
        .field("serial_seconds", parse_serial_seconds)
        .field("parallel_seconds", parse_parallel_seconds)
        .field("gzip_seconds", parse_gzip_seconds)
        .field("serial_records_per_second", parse_serial_rate as u64)
        .field("parallel_records_per_second", parse_parallel_rate as u64)
        .field("gzip_records_per_second", parse_gzip_rate as u64)
        .field("speedup", parse_speedup)
        .field("identical_output", parse_identical)
        .build();

    // Filter-pushdown bench: the same scaled year parsed with a
    // representative predicate pushed into the chunked parser. The
    // filtered parse is verified identical to the post-hoc filter of an
    // unfiltered parse before any rate is reported;
    // `filter_records_per_second` (input records the filtered parser
    // consumes per second) is the figure scripts/verify.sh gates on —
    // the pushdown must stay within 15% of plain parse throughput.
    const FILTER_EXPR: &str = "category == gpu && ttr > 24";
    let filter_pred = failfilter::compile(FILTER_EXPR).expect("bench predicate compiles");
    let filter_opts = faillog::ParseOptions::default().filter(filter_pred.clone());
    let filtered_parse = faillog::from_str_with(&parse_text, &filter_opts).expect("parses");
    let filter_kept = filtered_parse.len();
    let filter_identical = {
        let full = faillog::from_str_with(&parse_text, &parallel_opts).expect("parses");
        let (spec, window) = (full.spec().clone(), full.window());
        filtered_parse == full.filtered(|r| filter_pred.matches(r, &spec, window))
    };
    drop(filtered_parse);
    let filter_seconds = best_of(PARSE_REPS, || {
        std::hint::black_box(faillog::from_str_with(&parse_text, &filter_opts).expect("parses"));
    });
    let filter_rate = parse_records as f64 / filter_seconds.max(f64::MIN_POSITIVE);
    let filter_overhead = filter_seconds / parse_parallel_seconds.max(f64::MIN_POSITIVE);
    println!(
        "  filter bench: `{FILTER_EXPR}` kept {filter_kept} of {parse_records} records"
    );
    println!(
        "    filtered ({} threads): {:.1} ms | {:.0} rec/s | {:.2}x unfiltered | identical: {filter_identical}",
        parallel_opts.threads,
        filter_seconds * 1e3,
        filter_rate,
        filter_overhead
    );
    let filter_json = JsonValue::object()
        .field("expression", FILTER_EXPR)
        .field("records_in", parse_records)
        .field("records_kept", filter_kept)
        .field("threads", parallel_opts.threads)
        .field("filtered_seconds", filter_seconds)
        .field("unfiltered_seconds", parse_parallel_seconds)
        .field("filtered_records_per_second", filter_rate as u64)
        .field("overhead", filter_overhead)
        .field("identical_output", filter_identical)
        .build();

    // Snapshot-path bench: persist the same scaled year's index as a
    // `.fsidx` snapshot, then time the cold path (parse + build the
    // index) against the warm path (validate + decode the snapshot),
    // and the same comparison end-to-end through the nine analysis
    // sections. Warm output is verified byte-identical to cold before
    // any speedup is reported; the render stage is shared by both
    // sides, so the load-stage speedup is what `.fsidx` actually buys
    // (and what scripts/verify.sh gates on).
    const ANALYSIS_SECTIONS: &str =
        "header,categories,spatial,involvement,tbf,ttr,availability,survival,seasonal";
    let idx_dir = std::env::temp_dir().join("failbench-index-bench");
    std::fs::create_dir_all(&idx_dir).expect("temp dir");
    let idx_path = idx_dir.join("year.fslog");
    std::fs::write(&idx_path, &parse_text).expect("writes bench log");
    let snapshot_bytes = failindex::save(
        failindex::snapshot_path(&idx_path),
        &LogView::new(&parse_log),
        failindex::SourceInfo::of_bytes(parse_text.as_bytes()),
    )
    .expect("saves snapshot");
    let idx_sections = failscope::select_sections(ANALYSIS_SECTIONS).expect("valid sections");
    let open_warm = || match failindex::open_indexed(&idx_path, None).expect("opens") {
        failindex::IndexedLoad::Exact(snap) => snap,
        other => panic!("bench snapshot must hit exactly, got {other:?}"),
    };
    let cold_render = {
        let view = LogView::new(&parse_log);
        failscope::render_text_sections(&idx_sections, &SectionCtx::new(&view), threads)
    };
    let warm_render = {
        let snap = open_warm();
        failscope::render_text_sections(&idx_sections, &SectionCtx::new(&snap), threads)
    };
    let index_identical = warm_render == cold_render;
    let cold_load_seconds = best_of(PARSE_REPS, || {
        let log = faillog::load(&idx_path).expect("parses");
        std::hint::black_box(LogView::new(&log));
    });
    let warm_load_seconds = best_of(PARSE_REPS, || {
        std::hint::black_box(open_warm());
    });
    let cold_report_seconds = best_of(PARSE_REPS, || {
        let log = faillog::load(&idx_path).expect("parses");
        let view = LogView::new(&log);
        std::hint::black_box(failscope::render_text_sections(
            &idx_sections,
            &SectionCtx::new(&view),
            threads,
        ));
    });
    let warm_report_seconds = best_of(PARSE_REPS, || {
        let snap = open_warm();
        std::hint::black_box(failscope::render_text_sections(
            &idx_sections,
            &SectionCtx::new(&snap),
            threads,
        ));
    });
    std::fs::remove_dir_all(&idx_dir).ok();
    let index_load_speedup = cold_load_seconds / warm_load_seconds.max(f64::MIN_POSITIVE);
    let index_report_speedup = cold_report_seconds / warm_report_seconds.max(f64::MIN_POSITIVE);
    println!(
        "  index bench: {parse_records} records ({} bytes log, {snapshot_bytes} bytes .fsidx)",
        parse_text.len()
    );
    println!(
        "    load   cold {:.1} ms | warm {:.1} ms | speedup {index_load_speedup:.2}x",
        cold_load_seconds * 1e3,
        warm_load_seconds * 1e3
    );
    println!(
        "    report cold {:.1} ms | warm {:.1} ms | speedup {index_report_speedup:.2}x | identical: {index_identical}",
        cold_report_seconds * 1e3,
        warm_report_seconds * 1e3
    );
    let index_json = JsonValue::object()
        .field("records", parse_records)
        .field("log_bytes", parse_text.len())
        .field("snapshot_bytes", snapshot_bytes)
        .field("threads", threads)
        .field("cold_load_seconds", cold_load_seconds)
        .field("warm_load_seconds", warm_load_seconds)
        .field("load_speedup", index_load_speedup)
        .field("cold_report_seconds", cold_report_seconds)
        .field("warm_report_seconds", warm_report_seconds)
        .field("report_speedup", index_report_speedup)
        .field("identical_output", index_identical)
        .build();

    // Query-server bench: start `faild` in-process on a loopback TCP
    // socket, replay a mixed report/compare workload from four
    // concurrent clients, and check every response byte-identical to
    // the local `failapi` path (the path the CLI itself routes
    // through), cold and warm. `server_queries_per_second` (the warm
    // concurrent rate) is the figure scripts/verify.sh gates on; the
    // graceful shutdown must persist a `.fsidx` snapshot for each log
    // the server cold-parsed.
    const SERVER_CLIENTS: usize = 4;
    const SERVER_WARM_QUERIES_PER_CLIENT: usize = 64;
    let srv_dir = std::env::temp_dir().join("failbench-server-bench");
    std::fs::create_dir_all(&srv_dir).expect("temp dir");
    let srv_t2 = srv_dir.join("tsubame2.fslog");
    let srv_t3 = srv_dir.join("tsubame3.fslog");
    let t3_log = Simulator::new(SystemModel::tsubame3(), 42)
        .generate()
        .expect("calibrated model simulates");
    faillog::save(srv_t2.to_str().expect("utf-8 path"), &section_log).expect("writes bench log");
    faillog::save(srv_t3.to_str().expect("utf-8 path"), &t3_log).expect("writes bench log");
    let server_records = section_log.len() + t3_log.len();
    let srv_requests: Vec<QueryRequest> = vec![
        QueryRequest::report(QuerySource::file(srv_t2.to_str().expect("utf-8 path")))
            .sections(ANALYSIS_SECTIONS),
        QueryRequest::report(QuerySource::file(srv_t3.to_str().expect("utf-8 path")))
            .sections(ANALYSIS_SECTIONS)
            .format(OutputFormat::Json),
        QueryRequest::report(QuerySource::file(srv_t2.to_str().expect("utf-8 path")))
            .sections("tbf,ttr")
            .where_expr("category == gpu && ttr > 24"),
        QueryRequest::compare(
            srv_t2.to_str().expect("utf-8 path"),
            srv_t3.to_str().expect("utf-8 path"),
        ),
    ];
    let srv_expected: Vec<String> = srv_requests
        .iter()
        .map(|req| QueryEngine::new().execute(req).expect("local query").output)
        .collect();

    let (srv_tx, srv_rx) = mpsc::channel();
    let srv_handle = thread::spawn(move || {
        failserver::serve(
            ServerConfig {
                endpoint: Endpoint::tcp("127.0.0.1:0"),
                max_inflight: SERVER_CLIENTS,
            },
            move |bound| {
                srv_tx.send(bound.clone()).expect("report bound endpoint");
            },
        )
    });
    let srv_bound = srv_rx.recv().expect("server binds");

    let mut server_identical = true;
    let cold_start = Instant::now();
    {
        let mut conn = Connection::connect(&srv_bound).expect("connects");
        for (i, req) in srv_requests.iter().enumerate() {
            let resp = conn
                .roundtrip(&wire::encode_query(i as u64, req))
                .expect("cold roundtrip");
            server_identical &= resp.output == srv_expected[i];
        }
    }
    let server_cold_seconds = cold_start.elapsed().as_secs_f64();

    let warm_start = Instant::now();
    thread::scope(|s| {
        let clients: Vec<_> = (0..SERVER_CLIENTS)
            .map(|client| {
                let (bound, requests, expected) = (&srv_bound, &srv_requests, &srv_expected);
                s.spawn(move || {
                    let mut conn = Connection::connect(bound).expect("connects");
                    let mut identical = true;
                    // Stagger the walk so the four clients hit
                    // different requests at the same moment.
                    for step in 0..SERVER_WARM_QUERIES_PER_CLIENT {
                        let i = (step + client) % requests.len();
                        let resp = conn
                            .roundtrip(&wire::encode_query(i as u64, &requests[i]))
                            .expect("warm roundtrip");
                        identical &= resp.output == expected[i];
                    }
                    identical
                })
            })
            .collect();
        for client in clients {
            server_identical &= client.join().expect("client thread");
        }
    });
    let server_warm_seconds = warm_start.elapsed().as_secs_f64();
    let server_warm_queries = SERVER_CLIENTS * SERVER_WARM_QUERIES_PER_CLIENT;
    let server_rate = server_warm_queries as f64 / server_warm_seconds.max(f64::MIN_POSITIVE);

    // Connection-scaling tier: 64 concurrently-open connections each
    // replaying warm queries. The reactor multiplexes every socket on
    // one event-loop thread, so the open-connection count should move
    // per-query latency (queueing) but not correctness or collapse
    // throughput; p50/p99 per-query latency make the queueing visible.
    const SCALE_CLIENTS: usize = 64;
    const SCALE_QUERIES_PER_CLIENT: usize = 8;
    let scale_start = Instant::now();
    let mut scale_latencies: Vec<f64> = thread::scope(|s| {
        let clients: Vec<_> = (0..SCALE_CLIENTS)
            .map(|client| {
                let (bound, requests, expected) = (&srv_bound, &srv_requests, &srv_expected);
                s.spawn(move || {
                    let mut conn = Connection::connect(bound).expect("connects");
                    let mut latencies = Vec::with_capacity(SCALE_QUERIES_PER_CLIENT);
                    let mut identical = true;
                    for step in 0..SCALE_QUERIES_PER_CLIENT {
                        let i = (step + client) % requests.len();
                        let one = Instant::now();
                        let resp = conn
                            .roundtrip(&wire::encode_query(i as u64, &requests[i]))
                            .expect("scaled roundtrip");
                        latencies.push(one.elapsed().as_secs_f64());
                        identical &= resp.output == expected[i];
                    }
                    (latencies, identical)
                })
            })
            .collect();
        clients
            .into_iter()
            .flat_map(|client| {
                let (latencies, identical) = client.join().expect("scaled client thread");
                server_identical &= identical;
                latencies
            })
            .collect()
    });
    let scale_seconds = scale_start.elapsed().as_secs_f64();
    let scale_queries = SCALE_CLIENTS * SCALE_QUERIES_PER_CLIENT;
    let scale_rate = scale_queries as f64 / scale_seconds.max(f64::MIN_POSITIVE);
    scale_latencies.sort_by(|a, b| a.total_cmp(b));
    let percentile = |q: f64| -> f64 {
        let idx = ((scale_latencies.len() - 1) as f64 * q).round() as usize;
        scale_latencies[idx]
    };
    let (scale_p50, scale_p99) = (percentile(0.50), percentile(0.99));

    {
        let mut conn = Connection::connect(&srv_bound).expect("connects");
        conn.roundtrip(&wire::encode_simple(0, "shutdown"))
            .expect("shutdown roundtrip");
    }
    let server_snapshots = srv_handle
        .join()
        .expect("server thread")
        .expect("server shuts down cleanly")
        .snapshots_persisted;
    std::fs::remove_dir_all(&srv_dir).ok();
    println!(
        "  server bench: {SERVER_CLIENTS} clients x {SERVER_WARM_QUERIES_PER_CLIENT} warm queries over 2 logs ({server_records} records)"
    );
    println!(
        "    cold {:.1} ms ({} queries) | warm {:.1} ms | {:.0} queries/s | snapshots persisted: {server_snapshots} | identical: {server_identical}",
        server_cold_seconds * 1e3,
        srv_requests.len(),
        server_warm_seconds * 1e3,
        server_rate
    );
    println!(
        "    scaled: {SCALE_CLIENTS} connections x {SCALE_QUERIES_PER_CLIENT} warm queries | {:.0} queries/s | p50 {:.2} ms | p99 {:.2} ms",
        scale_rate,
        scale_p50 * 1e3,
        scale_p99 * 1e3
    );
    let server_json = JsonValue::object()
        .field("logs", 2u64)
        .field("records", server_records)
        .field("clients", SERVER_CLIENTS)
        .field("cold_queries", srv_requests.len())
        .field("warm_queries", server_warm_queries)
        .field("cold_seconds", server_cold_seconds)
        .field("warm_seconds", server_warm_seconds)
        .field("queries_per_second", server_rate as u64)
        .field("scale_connections", SCALE_CLIENTS)
        .field("scale_queries", scale_queries)
        .field("scale_seconds", scale_seconds)
        .field("scale_queries_per_second", scale_rate as u64)
        .field("scale_p50_ms", scale_p50 * 1e3)
        .field("scale_p99_ms", scale_p99 * 1e3)
        .field("snapshots_persisted", server_snapshots)
        .field("identical_output", server_identical)
        .build();

    let mut json = JsonValue::object()
        .field("experiments", catalog.len())
        // The serial pass always runs on 1 thread and the parallel pass
        // on `parallel_threads` workers; `detected_cores` is what the
        // host reports, so a ~1x speedup on a 1-core machine is
        // self-explanatory in the artifact.
        .field("detected_cores", failstats::available_threads())
        .field("serial_threads", 1)
        .field("parallel_threads", threads)
        .field("logs_simulated", serial_sims)
        .field("serial_seconds", serial_seconds)
        .field("parallel_seconds", parallel_seconds)
        .field("speedup", speedup)
        .field("identical_output", identical)
        .field("parse", parse_json)
        .field("parse_records_per_second", parse_parallel_rate as u64)
        .field("filter", filter_json)
        .field("filter_records_per_second", filter_rate as u64)
        .field("index", index_json)
        .field("index_load_speedup_x100", (index_load_speedup * 100.0) as u64)
        .field("index_report_speedup_x100", (index_report_speedup * 100.0) as u64)
        .field("server", server_json)
        .field("server_queries_per_second", server_rate as u64)
        .field("server_scaled_queries_per_second", scale_rate as u64)
        .field("sections", JsonValue::Array(section_rows))
        .field("trace", collector.to_json(true))
        .build()
        .render();
    json.push('\n');
    match std::fs::write(json_path, &json) {
        Ok(()) => println!("  wrote {json_path}"),
        Err(err) => {
            eprintln!("failed to write {json_path}: {err}");
            std::process::exit(1);
        }
    }
    if !identical {
        eprintln!("parallel output diverged from serial");
        std::process::exit(1);
    }
    if !parse_identical {
        eprintln!("parallel parse diverged from serial");
        std::process::exit(1);
    }
    if !filter_identical {
        eprintln!("filtered parse diverged from the post-hoc filter");
        std::process::exit(1);
    }
    if !index_identical {
        eprintln!("warm snapshot report diverged from the cold parse");
        std::process::exit(1);
    }
    if !server_identical {
        eprintln!("server responses diverged from the local query path");
        std::process::exit(1);
    }
    if server_snapshots != 2 {
        eprintln!("server shutdown persisted {server_snapshots} snapshots, expected 2");
        std::process::exit(1);
    }
}

fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("error: {problem}");
    }
    eprintln!(
        "usage: repro [--threads N] [--json PATH] \
         [all | ablations | extensions | list | bench | <id>...]"
    );
    eprintln!(
        "ids: {}",
        experiments::catalog()
            .iter()
            .map(|e| e.0)
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}
