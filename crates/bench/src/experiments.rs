//! Regeneration of every table and figure in the paper's evaluation.
//!
//! Each function generates the calibrated logs (canonical seeds 42/43),
//! runs the corresponding `failscope` analysis, and returns an
//! [`Experiment`] with the regenerated rows/series and the
//! paper-vs-measured checks. `EXPERIMENTS.md` is the rendered archive of
//! exactly this output.

use failscope::{
    class_mtbf_hours, per_category_tbf, per_category_ttr, CategoryBreakdown, InvolvementTable,
    LocusBreakdown, MultiGpuTemporal, NodeDistribution, PepComparison, SeasonalAnalysis,
    SlotDistribution, TbfAnalysis, TtrAnalysis,
};
use std::sync::Arc;

use failsim::{ClusteringMode, NodeSelection, Simulator, SlotSkew, SystemModel, TbfModel};
use failtypes::{
    ComponentClass, Domain, FailureLog, SoftwareLocus, SystemSpec, T2Category,
    T3Category,
};

use crate::check::{Check, Experiment};
use crate::logstore::LogStore;
use crate::runner::{self, CatalogEntry};

/// Canonical seed for the Tsubame-2 log.
pub const T2_SEED: u64 = 42;
/// Canonical seed for the Tsubame-3 log.
pub const T3_SEED: u64 = 43;

/// The canonical pair of generated logs, shared from the process-wide
/// [`LogStore`]: each is simulated exactly once per process, and every
/// experiment holds the same `Arc` — no record vectors are cloned.
pub fn standard_logs() -> (Arc<FailureLog>, Arc<FailureLog>) {
    let store = LogStore::global();
    (
        store.get(&SystemModel::tsubame2(), T2_SEED),
        store.get(&SystemModel::tsubame3(), T3_SEED),
    )
}

/// Averages a per-log statistic over `n` seeds of a model, using the
/// process-wide thread count ([`crate::runner::threads`]).
fn seed_average(
    model: impl Fn() -> SystemModel + Sync,
    base_seed: u64,
    n: u64,
    f: impl Fn(&FailureLog) -> f64 + Sync,
) -> f64 {
    seed_average_with(model, base_seed, n, runner::threads(), f)
}

/// Averages a per-log statistic over `n` seeds of a model on up to
/// `threads` workers.
///
/// Seed `s` of the sweep is `base_seed + s * 997` regardless of thread
/// count, logs come from the shared [`LogStore`], and the per-seed
/// values are reduced **in seed order**, so the average is bit-identical
/// at any `threads` value.
pub fn seed_average_with(
    model: impl Fn() -> SystemModel + Sync,
    base_seed: u64,
    n: u64,
    threads: usize,
    f: impl Fn(&FailureLog) -> f64 + Sync,
) -> f64 {
    let store = LogStore::global();
    let values = failstats::par_map_ordered(n as usize, threads, |s| {
        let log = store.get(&model(), base_seed + s as u64 * 997);
        f(&log)
    });
    values.iter().sum::<f64>() / n as f64
}

/// All experiment ids in paper order.
pub const ALL_IDS: &[&str] = &[
    "table1", "table2", "fig2", "fig3", "fig4", "fig5", "table3", "fig6", "fig7", "fig8", "fig9",
    "fig10", "fig11", "fig12", "pep",
];

/// Runs one experiment by id.
///
/// Returns `None` for an unknown id.
pub fn run(id: &str) -> Option<Experiment> {
    Some(match id {
        "table1" => table1(),
        "table2" => table2(),
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig4" => fig4(),
        "fig5" => fig5(),
        "table3" => table3(),
        "fig6" => fig6(),
        "fig7" => fig7(),
        "fig8" => fig8(),
        "fig9" => fig9(),
        "fig10" => fig10(),
        "fig11" => fig11(),
        "fig12" => fig12(),
        "pep" => pep(),
        _ => return None,
    })
}

/// Every experiment in the workspace — the paper figures in
/// [`ALL_IDS`] order, then the design [`ablations`], then the
/// [`extensions`] — as `(id, constructor)` pairs, listed **without
/// executing anything**.
///
/// This is what the `repro` binary and the parallel runner iterate:
/// resolving an id is a string comparison, and running the catalog on
/// N threads preserves exactly this order.
pub fn catalog() -> Vec<CatalogEntry> {
    vec![
        ("table1", table1 as fn() -> Experiment),
        ("table2", table2),
        ("fig2", fig2),
        ("fig3", fig3),
        ("fig4", fig4),
        ("fig5", fig5),
        ("table3", table3),
        ("fig6", fig6),
        ("fig7", fig7),
        ("fig8", fig8),
        ("fig9", fig9),
        ("fig10", fig10),
        ("fig11", fig11),
        ("fig12", fig12),
        ("pep", pep),
        ("ablate_node_selection", ablations::node_selection),
        ("ablate_slot_skew", ablations::slot_skew),
        ("ablate_tbf_family", ablations::tbf_family),
        ("ablate_tbf_quantile", ablations::tbf_quantile),
        ("ext_overlap", extensions::overlap),
        ("ext_survival", extensions::survival),
        ("ext_racks", extensions::racks),
    ]
}

/// Table I — node configurations of the two systems.
pub fn table1() -> Experiment {
    let t2 = SystemSpec::tsubame2();
    let t3 = SystemSpec::tsubame3();
    let lines = vec![
        format!("{:<22} {:>28} {:>28}", "", "Tsubame-2", "Tsubame-3"),
        format!("{:<22} {:>28} {:>28}", "CPU", t2.cpu_model(), t3.cpu_model()),
        format!(
            "{:<22} {:>28} {:>28}",
            "Cores per CPU",
            t2.cores_per_cpu(),
            t3.cores_per_cpu()
        ),
        format!("{:<22} {:>28} {:>28}", "Num CPUs", t2.cpus_per_node(), t3.cpus_per_node()),
        format!(
            "{:<22} {:>26}GB {:>26}GB",
            "Memory per Node",
            t2.memory_per_node_gb(),
            t3.memory_per_node_gb()
        ),
        format!("{:<22} {:>28} {:>28}", "GPU", t2.gpu_model(), t3.gpu_model()),
        format!("{:<22} {:>28} {:>28}", "Num GPUs", t2.gpus_per_node(), t3.gpus_per_node()),
        format!(
            "{:<22} {:>26}GB {:>26}GB",
            "SSD",
            t2.ssd_per_node_gb(),
            t3.ssd_per_node_gb()
        ),
        format!("{:<22} {:>28} {:>28}", "Interconnect", t2.interconnect(), t3.interconnect()),
    ];
    let checks = vec![
        Check::abs("T2 GPUs per node", 3.0, t2.gpus_per_node() as f64, 0.0),
        Check::abs("T3 GPUs per node", 4.0, t3.gpus_per_node() as f64, 0.0),
        Check::abs("T2 CPU+GPU components (Sec. III)", 7040.0, t2.component_count() as f64, 0.0),
        Check::abs("T3 CPU+GPU components (Sec. III)", 3240.0, t3.component_count() as f64, 0.0),
        Check::abs("T2 Rpeak (PFLOP/s)", 2.3, t2.rpeak_pflops(), 0.0),
        Check::abs("T3 Rpeak (PFLOP/s)", 12.1, t3.rpeak_pflops(), 0.0),
    ];
    Experiment {
        id: "table1",
        title: "Tsubame-2 and Tsubame-3 node configurations",
        checks,
        lines,
    }
}

/// Table II — failure category vocabularies.
pub fn table2() -> Experiment {
    let t2: Vec<&str> = T2Category::ALL.iter().map(|c| c.label()).collect();
    let t3: Vec<&str> = T3Category::ALL.iter().map(|c| c.label()).collect();
    let lines = vec![
        format!("Tsubame-2 ({}): {}", t2.len(), t2.join(", ")),
        format!("Tsubame-3 ({}): {}", t3.len(), t3.join(", ")),
    ];
    let checks = vec![
        Check::abs("T2 category count", 17.0, t2.len() as f64, 0.0),
        Check::abs("T3 category count", 16.0, t3.len() as f64, 0.0),
    ];
    Experiment {
        id: "table2",
        title: "Failure categories reported in the logs",
        checks,
        lines,
    }
}

/// Fig. 2 — failure category breakdowns.
pub fn fig2() -> Experiment {
    let (t2, t3) = standard_logs();
    let b2 = CategoryBreakdown::from_log(&t2);
    let b3 = CategoryBreakdown::from_log(&t3);
    let mut lines = vec!["(a) Tsubame-2".to_string()];
    lines.extend(b2.shares().iter().map(|s| {
        format!("  {:<16} {:>5.2}%  ({})", s.category.label(), s.fraction * 100.0, s.count)
    }));
    lines.push("(b) Tsubame-3".to_string());
    lines.extend(b3.shares().iter().map(|s| {
        format!("  {:<16} {:>5.2}%  ({})", s.category.label(), s.fraction * 100.0, s.count)
    }));
    let checks = vec![
        Check::abs(
            "T2 GPU share (%)",
            44.37,
            b2.fraction_of(T2Category::Gpu.into()) * 100.0,
            0.1,
        ),
        Check::abs(
            "T2 CPU share (%)",
            1.78,
            b2.fraction_of(T2Category::Cpu.into()) * 100.0,
            0.1,
        ),
        Check::abs(
            "T3 Software share (%)",
            50.59,
            b3.fraction_of(T3Category::Software.into()) * 100.0,
            0.1,
        ),
        Check::abs(
            "T3 GPU share (%)",
            27.81,
            b3.fraction_of(T3Category::Gpu.into()) * 100.0,
            0.1,
        ),
        Check::abs(
            "T3 CPU share (%)",
            3.25,
            b3.fraction_of(T3Category::Cpu.into()) * 100.0,
            0.1,
        ),
        Check::abs("T2 total failures", 897.0, b2.total() as f64, 0.0),
        Check::abs("T3 total failures", 338.0, b3.total() as f64, 0.0),
    ];
    Experiment {
        id: "fig2",
        title: "Failure category breakdown (GPU tops T2, software tops T3)",
        checks,
        lines,
    }
}

/// Fig. 3 — Tsubame-3 software failure root loci.
pub fn fig3() -> Experiment {
    let (_, t3) = standard_logs();
    let b = LocusBreakdown::from_log(&t3);
    let lines: Vec<String> = b
        .shares()
        .iter()
        .map(|s| format!("{:<22} {:>5.2}%  ({})", s.locus.label(), s.fraction * 100.0, s.count))
        .collect();
    let checks = vec![
        Check::abs("software failures with loci", 171.0, b.total() as f64, 0.0),
        Check::abs(
            "GPU-driver problems share (%)",
            43.0,
            b.fraction_of(SoftwareLocus::GpuDriverProblem) * 100.0,
            1.5,
        ),
        Check::abs("unknown-cause share (%)", 20.0, b.unknown_fraction() * 100.0, 1.5),
        Check::abs("distinct loci (top 16)", 16.0, b.shares().len() as f64, 0.0),
        Check::range(
            "kernel panics are relatively low (count)",
            3.0,
            b.shares()
                .iter()
                .find(|s| s.locus == SoftwareLocus::KernelPanic)
                .map_or(0.0, |s| s.count as f64),
            0.0,
            8.0,
        ),
    ];
    Experiment {
        id: "fig3",
        title: "Tsubame-3 software failures break down by root locus",
        checks,
        lines,
    }
}

/// Fig. 4 — failures per node.
pub fn fig4() -> Experiment {
    let (t2, t3) = standard_logs();
    let d2 = NodeDistribution::from_log(&t2);
    let d3 = NodeDistribution::from_log(&t3);
    let mut lines = Vec::new();
    for (name, d) in [("Tsubame-2", &d2), ("Tsubame-3", &d3)] {
        lines.push(format!(
            "{name}: {} failing nodes of {}",
            d.failing_nodes(),
            d.total_nodes()
        ));
        for (failures, nodes) in d.histogram().iter().take(8) {
            lines.push(format!(
                "  {failures} failure(s): {:>5.1}% of failing nodes ({nodes})",
                d.fraction_with_exactly(failures) * 100.0
            ));
        }
        if d.max_failures_on_a_node() > 8 {
            lines.push(format!("  ... up to {} failures on one node", d.max_failures_on_a_node()));
        }
    }
    // The 3-failure ratio is noisy on a single seed: average it.
    let f3_t2 = seed_average(SystemModel::tsubame2, 1000, 8, |log| {
        NodeDistribution::from_log(log).fraction_with_exactly(3)
    });
    let f3_t3 = seed_average(SystemModel::tsubame3, 2000, 8, |log| {
        NodeDistribution::from_log(log).fraction_with_exactly(3)
    });
    let checks = vec![
        Check::abs(
            "T2 nodes with exactly one failure (%)",
            60.0,
            d2.fraction_with_exactly(1) * 100.0,
            6.0,
        ),
        Check::abs(
            "T3 nodes with more than one failure (%)",
            60.0,
            d3.fraction_with_multiple() * 100.0,
            8.0,
        ),
        Check::abs(
            "T2 nodes with two failures (%)",
            10.0,
            d2.fraction_with_exactly(2) * 100.0,
            5.0,
        ),
        Check::abs(
            "T3 nodes with two failures (%)",
            10.0,
            d3.fraction_with_exactly(2) * 100.0,
            5.0,
        ),
        Check::range(
            "T3/T2 three-failure share ratio (~1.5x)",
            1.5,
            f3_t3 / f3_t2,
            1.15,
            2.1,
        ),
        Check::range(
            "T2 multi-node software/hardware ratio (paper 1/352)",
            1.0 / 352.0,
            seed_average(SystemModel::tsubame2, 5000, 8, |log| {
                let d = NodeDistribution::from_log(log);
                d.multi_node_software_failures() as f64
                    / d.multi_node_hardware_failures().max(1) as f64
            }),
            0.0,
            0.08,
        ),
        Check::range(
            "T3 multi-failure-node software/hardware ratio (95/104)",
            95.0 / 104.0,
            d3.multi_node_software_failures() as f64
                / d3.multi_node_hardware_failures().max(1) as f64,
            0.5,
            1.6,
        ),
    ];
    Experiment {
        id: "fig4",
        title: "Most T2 nodes see one failure; most T3 nodes see more",
        checks,
        lines,
    }
}

/// Fig. 5 — per-GPU-slot failure distribution.
pub fn fig5() -> Experiment {
    let (t2, t3) = standard_logs();
    let s2 = SlotDistribution::from_log(&t2);
    let s3 = SlotDistribution::from_log(&t3);
    let mut lines = Vec::new();
    for (name, s) in [("Tsubame-2", &s2), ("Tsubame-3", &s3)] {
        lines.push(format!("{name} ({} slot involvements):", s.total_involvements()));
        for share in s.shares() {
            lines.push(format!(
                "  {}: {:>5.1}% ({:+.0}% vs mean)",
                share.slot,
                share.fraction * 100.0,
                (share.relative_to_mean - 1.0) * 100.0
            ));
        }
    }
    let c2: Vec<f64> = s2.shares().iter().map(|s| s.count as f64).collect();
    // Tsubame-3 has only ~100 slot involvements, so its ratio checks are
    // seed-averaged (the canonical-seed series above is what one draw of
    // the figure looks like).
    let t3_ratio = seed_average(SystemModel::tsubame3, 43, 8, |log| {
        let c: Vec<f64> = SlotDistribution::from_log(log)
            .shares()
            .iter()
            .map(|s| s.count as f64)
            .collect();
        (c[0] + c[3]) / (c[1] + c[2]).max(1.0)
    });
    let t3_outer_above_mean = seed_average(SystemModel::tsubame3, 43, 8, |log| {
        let s = SlotDistribution::from_log(log);
        f64::from(s.shares()[0].relative_to_mean > 1.0 && s.shares()[3].relative_to_mean > 1.0)
    });
    let checks = vec![
        Check::abs(
            "T2 GPU1 excess over GPU0/GPU2 (%)",
            20.0,
            (c2[1] / ((c2[0] + c2[2]) / 2.0) - 1.0) * 100.0,
            10.0,
        ),
        Check::range(
            "T3 outer slots (0,3) / inner slots (1,2) ratio (seed-avg)",
            1.9,
            t3_ratio,
            1.4,
            2.6,
        ),
        Check::range(
            "T3 GPU0 and GPU3 above the mean (fraction of seeds)",
            1.0,
            t3_outer_above_mean,
            0.75,
            1.0,
        ),
    ];
    Experiment {
        id: "fig5",
        title: "Different GPU slots fail at different rates",
        checks,
        lines,
    }
}

/// Table III — number of GPUs involved in node failures.
pub fn table3() -> Experiment {
    let (t2, t3) = standard_logs();
    let i2 = InvolvementTable::from_log(&t2);
    let i3 = InvolvementTable::from_log(&t3);
    let mut lines = vec![format!("{:<8} {:>18} {:>18}", "#GPUs", "Tsubame-3", "Tsubame-2")];
    for k in 1..=4u8 {
        let fmt_cell = |t: &InvolvementTable, k: u8, exists: bool| {
            if exists {
                format!("{} ({:.2}%)", t.count_of(k), t.rows().iter().find(|r| r.gpus == k).map_or(0.0, |r| r.fraction * 100.0))
            } else {
                "N/A".to_string()
            }
        };
        lines.push(format!(
            "{:<8} {:>18} {:>18}",
            k,
            fmt_cell(&i3, k, true),
            fmt_cell(&i2, k, k <= 3),
        ));
    }
    lines.push(format!("{:<8} {:>18} {:>18}", "Total", i3.known(), i2.known()));
    let checks = vec![
        Check::abs("T2 single-GPU failures", 112.0, i2.count_of(1) as f64, 0.0),
        Check::abs("T2 double-GPU failures", 128.0, i2.count_of(2) as f64, 0.0),
        Check::abs("T2 triple-GPU failures", 128.0, i2.count_of(3) as f64, 0.0),
        Check::abs("T2 known-involvement total", 368.0, i2.known() as f64, 0.0),
        Check::abs("T3 single-GPU failures", 75.0, i3.count_of(1) as f64, 0.0),
        Check::abs("T3 double-GPU failures", 4.0, i3.count_of(2) as f64, 0.0),
        Check::abs("T3 triple-GPU failures", 2.0, i3.count_of(3) as f64, 0.0),
        Check::abs("T3 quadruple-GPU failures", 0.0, i3.count_of(4) as f64, 0.0),
        Check::abs("T2 multi-GPU share (%)", 69.56, i2.multi_gpu_fraction() * 100.0, 0.5),
        Check::abs("T3 single-GPU share (%)", 92.6, i3.rows()[0].fraction * 100.0, 0.5),
    ];
    Experiment {
        id: "table3",
        title: "GPUs involved per failure: ~70% multi on T2, >92% single on T3",
        checks,
        lines,
    }
}

fn cdf_line(label: &str, ecdf: &failstats::Ecdf) -> String {
    let pts: Vec<String> = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99]
        .iter()
        .map(|&p| format!("p{:02.0}={:.1}h", p * 100.0, ecdf.quantile(p)))
        .collect();
    format!("{label}: {}", pts.join("  "))
}

/// Fig. 6 — CDF of time between failures + component-class MTBF.
pub fn fig6() -> Experiment {
    let (t2, t3) = standard_logs();
    let a2 = TbfAnalysis::from_log(&t2).expect("897 failures");
    let a3 = TbfAnalysis::from_log(&t3).expect("338 failures");
    let gpu2 = class_mtbf_hours(&t2, ComponentClass::Gpu).expect("GPU failures exist");
    let gpu3 = class_mtbf_hours(&t3, ComponentClass::Gpu).expect("GPU failures exist");
    let cpu2 = class_mtbf_hours(&t2, ComponentClass::Cpu).expect("CPU failures exist");
    let cpu3 = class_mtbf_hours(&t3, ComponentClass::Cpu).expect("CPU failures exist");
    let (lo2, hi2) = a2.mtbf_ci_hours(0.95);
    let (lo3, hi3) = a3.mtbf_ci_hours(0.95);
    let lines = vec![
        cdf_line("T2 TBF CDF", a2.ecdf()),
        cdf_line("T3 TBF CDF", a3.ecdf()),
        format!(
            "MTBF 95% CIs: T2 {:.1}-{:.1} h, T3 {:.1}-{:.1} h (disjoint: the 4x gain is unambiguous)",
            lo2, hi2, lo3, hi3
        ),
        format!(
            "class MTBF (h): GPU {gpu2:.1} -> {gpu3:.1} ({:.1}x), CPU {cpu2:.1} -> {cpu3:.1} ({:.1}x)",
            gpu3 / gpu2,
            cpu3 / cpu2
        ),
        "note: the paper reports GPU MTBF 21.94 -> 226.48 h and CPU MTBF".to_string(),
        "537.6 -> 1593.6 h under its own (unstated) event accounting; with".to_string(),
        "window/event-count accounting the *ratios* (~10x GPU, ~3x CPU) are".to_string(),
        "the comparable quantity and are checked below.".to_string(),
    ];
    let checks = vec![
        Check::abs("T2 MTBF (h) (~15)", 15.0, a2.mtbf_hours(), 0.6),
        Check::range("T3 MTBF (h) (more than 70)", 70.0, a3.mtbf_hours(), 70.0, 80.0),
        Check::range(
            "MTBF improvement factor (more than 4x)",
            4.0,
            a3.mtbf_hours() / a2.mtbf_hours(),
            4.0,
            5.5,
        ),
        Check::abs("T2 TBF p75 (h)", 20.0, a2.p75_hours(), 3.0),
        Check::abs("T3 TBF p75 (h)", 93.0, a3.p75_hours(), 10.0),
        Check::range("GPU MTBF improvement (~10x)", 10.0, gpu3 / gpu2, 5.0, 13.0),
        Check::range("CPU MTBF improvement (~3x)", 3.0, cpu3 / cpu2, 1.8, 4.5),
    ];
    Experiment {
        id: "fig6",
        title: "TBF distribution: T3's MTBF is >4x T2's, with a longer tail",
        checks,
        lines,
    }
}

/// Fig. 7 — TBF distribution per failure type.
pub fn fig7() -> Experiment {
    let (t2, t3) = standard_logs();
    let mut lines = Vec::new();
    let mut checks = Vec::new();
    for (name, log) in [("Tsubame-2", &t2), ("Tsubame-3", &t3)] {
        lines.push(format!("{name} (sorted by mean TBF; n >= 5 events):"));
        let rows = per_category_tbf(log, 5);
        for row in &rows {
            lines.push(format!(
                "  {:<16} mean {:>7.1}h  q1 {:>7.1}h  med {:>7.1}h  q3 {:>7.1}h",
                row.category.label(),
                row.summary.mean(),
                row.summary.q1(),
                row.summary.median(),
                row.summary.q3()
            ));
        }
        // The dominant (GPU/software) categories sit at the top of the
        // sort; memory and CPU sit lower with bigger medians.
        let top_is_dominant = rows
            .first()
            .is_some_and(|r| r.category.is_gpu() || r.category.is_software());
        checks.push(Check::range(
            format!("{name}: most frequent type has the smallest mean TBF"),
            1.0,
            f64::from(top_is_dominant),
            1.0,
            1.0,
        ));
        let med = |class: ComponentClass| {
            rows.iter()
                .find(|r| r.category.component_class() == class)
                .map(|r| r.summary.median())
        };
        if let (Some(gpu), Some(mem)) = (med(ComponentClass::Gpu), med(ComponentClass::Memory)) {
            checks.push(Check::range(
                format!("{name}: memory median TBF / GPU median TBF (higher)"),
                5.0,
                mem / gpu,
                2.0,
                f64::INFINITY,
            ));
        }
    }
    Experiment {
        id: "fig7",
        title: "Per-category TBF: GPU/software shortest, memory/CPU longest",
        checks,
        lines,
    }
}

/// Fig. 8 — temporal clustering of multi-GPU failures.
pub fn fig8() -> Experiment {
    // Clustering is a distributional property: average over seeds, and
    // compare against the independent-assignment ablation.
    let n = 10;
    let cv_on = seed_average(SystemModel::tsubame2, 100, n, |log| {
        MultiGpuTemporal::from_log(log, 96.0).expect("256 multi events").report.cv
    });
    let factor_on = seed_average(SystemModel::tsubame2, 100, n, |log| {
        MultiGpuTemporal::from_log(log, 96.0).expect("256 multi events").clustering_factor()
    });
    let independent = || {
        let mut m = SystemModel::tsubame2();
        m.clustering = ClusteringMode::Independent;
        m
    };
    let cv_off = seed_average(independent, 100, n, |log| {
        MultiGpuTemporal::from_log(log, 96.0).expect("256 multi events").report.cv
    });
    let (t2, _) = standard_logs();
    let t = MultiGpuTemporal::from_log(&t2, 96.0).expect("256 multi events");
    let lines = vec![
        format!(
            "canonical T2 log: {} multi-GPU failures, CV {:.2}, dispersion {:.2}, burstiness {:+.2}",
            t.report.events, t.report.cv, t.report.dispersion_index, t.report.burstiness
        ),
        format!(
            "P(next multi-GPU failure within 96 h) = {:.0}% vs {:.0}% memoryless baseline",
            t.follow_up_probability * 100.0,
            t.poisson_baseline * 100.0
        ),
        format!("seed-averaged CV: clustered {cv_on:.2} vs independent ablation {cv_off:.2}"),
    ];
    let checks = vec![
        Check::range("multi-GPU inter-arrival CV (> 1 = clustered)", 1.0, cv_on, 1.02, 3.0),
        Check::range(
            "quick follow-up vs memoryless baseline (> 1)",
            1.0,
            factor_on,
            1.01,
            3.0,
        ),
        Check::range(
            "independent ablation CV (~1, no clustering)",
            1.0,
            cv_off,
            0.85,
            1.12,
        ),
        Check::range("clustered CV exceeds ablation CV", 1.0, cv_on / cv_off, 1.01, 3.0),
    ];
    Experiment {
        id: "fig8",
        title: "Multi-GPU failures arrive in temporal clusters",
        checks,
        lines,
    }
}

/// Fig. 9 — CDF of time to recovery.
pub fn fig9() -> Experiment {
    let (t2, t3) = standard_logs();
    let a2 = TtrAnalysis::from_log(&t2).expect("non-empty");
    let a3 = TtrAnalysis::from_log(&t3).expect("non-empty");
    let lines = vec![
        cdf_line("T2 TTR CDF", a2.ecdf()),
        cdf_line("T3 TTR CDF", a3.ecdf()),
    ];
    let checks = vec![
        Check::abs("T2 MTTR (h) (~55)", 55.0, a2.mttr_hours(), 8.0),
        Check::abs("T3 MTTR (h) (~55)", 55.0, a3.mttr_hours(), 8.0),
        Check::abs(
            "MTTR difference between generations (h) (~0)",
            0.0,
            a3.mttr_hours() - a2.mttr_hours(),
            8.0,
        ),
        Check::range(
            "median TTR ratio T2/T3 (similar shapes)",
            1.0,
            a2.median_hours() / a3.median_hours(),
            0.6,
            1.6,
        ),
    ];
    Experiment {
        id: "fig9",
        title: "TTR distribution: MTTR ~55 h on both generations",
        checks,
        lines,
    }
}

/// Fig. 10 — TTR distribution per failure type.
pub fn fig10() -> Experiment {
    let (t2, t3) = standard_logs();
    let mut lines = Vec::new();
    for (name, log) in [("Tsubame-2", &t2), ("Tsubame-3", &t3)] {
        lines.push(format!("{name} (sorted by mean TTR):"));
        for row in per_category_ttr(log) {
            lines.push(format!(
                "  {:<16} share {:>5.2}%  mean {:>6.1}h  q1 {:>6.1}h  med {:>6.1}h  q3 {:>6.1}h  max {:>6.1}h",
                row.category.label(),
                row.share_of_failures * 100.0,
                row.summary.mean(),
                row.summary.q1(),
                row.summary.median(),
                row.summary.q3(),
                row.summary.max()
            ));
        }
    }
    let hw2 = failscope::domain_ttr_spread(&t2, Domain::Hardware).expect("hardware failures");
    let sw2 = failscope::domain_ttr_spread(&t2, Domain::Software).expect("software failures");
    let hw3 = failscope::domain_ttr_spread(&t3, Domain::Hardware).expect("hardware failures");
    let sw3 = failscope::domain_ttr_spread(&t3, Domain::Software).expect("software failures");
    let pb = per_category_ttr(&t3)
        .into_iter()
        .find(|r| r.category == T3Category::PowerBoard.into())
        .expect("power-board failures");
    let ssd = per_category_ttr(&t2)
        .into_iter()
        .find(|r| r.category == T2Category::Ssd.into())
        .expect("SSD failures");
    // The per-seed maximum of 3 power-board samples is very noisy; use
    // the seed-averaged maxima for the tail checks.
    let pb_max = seed_average(SystemModel::tsubame3, 3000, 8, |log| {
        per_category_ttr(log)
            .into_iter()
            .find(|r| r.category == T3Category::PowerBoard.into())
            .map_or(0.0, |r| r.summary.max())
    });
    let ssd_max = seed_average(SystemModel::tsubame2, 4000, 8, |log| {
        per_category_ttr(log)
            .into_iter()
            .find(|r| r.category == T2Category::Ssd.into())
            .map_or(0.0, |r| r.summary.max())
    });
    let checks = vec![
        Check::range("T2 hardware/software TTR spread ratio (>1)", 1.5, hw2 / sw2, 1.05, 5.0),
        Check::range("T3 hardware/software TTR spread ratio (>1)", 1.5, hw3 / sw3, 1.05, 5.0),
        Check::abs("T3 power-board share (%) (~1)", 1.0, pb.share_of_failures * 100.0, 0.3),
        Check::range("T3 power-board max TTR (h) (up to ~230)", 230.0, pb_max, 120.0, 400.0),
        Check::abs("T2 SSD share (%) (~4)", 4.0, ssd.share_of_failures * 100.0, 0.3),
        Check::range("T2 SSD max TTR (h) (up to ~290)", 290.0, ssd_max, 160.0, 480.0),
    ];
    Experiment {
        id: "fig10",
        title: "Per-category TTR: rare categories can be the costliest",
        checks,
        lines,
    }
}

/// Fig. 11 — monthly TTR distributions.
pub fn fig11() -> Experiment {
    let (t2, t3) = standard_logs();
    let mut lines = Vec::new();
    for (name, log) in [("Tsubame-2", &t2), ("Tsubame-3", &t3)] {
        let s = SeasonalAnalysis::from_log(log);
        let by_month = s.mean_ttr_by_calendar_month();
        let cells: Vec<String> = failtypes::Month::all()
            .map(|m| match by_month[m.index()] {
                Some(v) => format!("{}={:.0}h", m.name(), v),
                None => format!("{}=-", m.name()),
            })
            .collect();
        lines.push(format!("{name} mean TTR by month: {}", cells.join(" ")));
    }
    // Half-year deltas averaged over seeds.
    let delta2 = seed_average(SystemModel::tsubame2, 500, 8, |log| {
        let (h1, h2) = SeasonalAnalysis::from_log(log).half_year_ttr_means().expect("both halves");
        h2 - h1
    });
    let delta3 = seed_average(SystemModel::tsubame3, 600, 8, |log| {
        let (h1, h2) = SeasonalAnalysis::from_log(log).half_year_ttr_means().expect("both halves");
        h2 - h1
    });
    lines.push(format!(
        "seed-averaged Jul-Dec minus Jan-Jun mean TTR: T2 {delta2:+.1} h, T3 {delta3:+.1} h"
    ));
    let checks = vec![
        Check::range("T2 second-half TTR uplift (h) (positive)", 5.0, delta2, 0.5, 20.0),
        Check::range("T3 second-half TTR delta (h) (~none)", 0.0, delta3, -8.0, 8.0),
    ];
    Experiment {
        id: "fig11",
        title: "Monthly TTR: a second-half uplift only on Tsubame-2",
        checks,
        lines,
    }
}

/// Fig. 12 — failures per month and the density/TTR (non-)correlation.
pub fn fig12() -> Experiment {
    let (t2, t3) = standard_logs();
    let mut lines = Vec::new();
    for (name, log) in [("Tsubame-2", &t2), ("Tsubame-3", &t3)] {
        let s = SeasonalAnalysis::from_log(log);
        let series: Vec<String> = s
            .buckets()
            .iter()
            .map(|b| format!("{}-{:02}:{}", b.year, b.month.number(), b.failures))
            .collect();
        lines.push(format!("{name} monthly failures: {}", series.join(" ")));
    }
    let corr = seed_average(SystemModel::tsubame3, 700, 8, |log| {
        SeasonalAnalysis::from_log(log)
            .density_ttr_correlation()
            .expect("enough months")
            .abs()
    });
    let corr2 = seed_average(SystemModel::tsubame2, 800, 8, |log| {
        SeasonalAnalysis::from_log(log)
            .density_ttr_correlation()
            .expect("enough months")
            .abs()
    });
    lines.push(format!(
        "seed-averaged |corr(monthly failures, monthly mean TTR)|: T2 {corr2:.2}, T3 {corr:.2}"
    ));
    let s2 = SeasonalAnalysis::from_log(&t2);
    let counts = s2.monthly_failure_counts();
    let spread = *counts.iter().max().expect("non-empty") as f64
        / (*counts.iter().filter(|&&c| c > 0).min().expect("non-empty") as f64);
    let checks = vec![
        Check::range("T2 monthly count max/min spread (> 1)", 2.0, spread, 1.2, 10.0),
        Check::range("T2 |density-TTR correlation| (~0)", 0.0, corr2, 0.0, 0.4),
        Check::range("T3 |density-TTR correlation| (~0)", 0.0, corr, 0.0, 0.4),
    ];
    Experiment {
        id: "fig12",
        title: "Monthly failure counts vary; density does not predict TTR",
        checks,
        lines,
    }
}

/// Performance-error-proportionality — the paper's proposed metric.
pub fn pep() -> Experiment {
    let (t2, t3) = standard_logs();
    let c = PepComparison::new(&t2, &t3).expect("both logs analysable");
    let lines = vec![
        format!(
            "T2: Rpeak {:.1} PF, MTBF {:.1} h -> {:.0} EFLOP per failure-free period",
            c.older.rpeak_pflops,
            c.older.mtbf_hours,
            c.older.exaflop_per_failure_free_period()
        ),
        format!(
            "T3: Rpeak {:.1} PF, MTBF {:.1} h -> {:.0} EFLOP per failure-free period",
            c.newer.rpeak_pflops,
            c.newer.mtbf_hours,
            c.newer.exaflop_per_failure_free_period()
        ),
        format!(
            "factors: compute {:.2}x (paper quotes ~8x capability), MTBF {:.2}x, PEP {:.2}x",
            c.compute_factor(),
            c.mtbf_factor(),
            c.pep_factor()
        ),
    ];
    let checks = vec![
        Check::abs("compute factor by Rpeak", 5.26, c.compute_factor(), 0.05),
        Check::range("MTBF factor (more than 4x)", 4.0, c.mtbf_factor(), 4.0, 5.5),
        Check::range(
            "PEP factor (compute x MTBF)",
            24.0,
            c.pep_factor(),
            20.0,
            30.0,
        ),
        Check::range(
            "reliability lags compute (MTBF factor < compute factor... paper's point, 1=true)",
            1.0,
            f64::from(c.reliability_lags_compute()),
            1.0,
            1.0,
        ),
    ];
    Experiment {
        id: "pep",
        title: "Performance-error-proportionality across generations",
        checks,
        lines,
    }
}

/// Analyses beyond the paper's figures, driven by its discussion
/// sections; regenerated and checked like the figures.
pub mod extensions {
    use super::*;
    use failscope::{node_lifetimes, AvailabilityAnalysis, NodeSurvival, RackDistribution};

    /// RQ5 implication: with MTTR comparable to MTBF, repairs overlap.
    pub fn overlap() -> Experiment {
        let (t2, t3) = standard_logs();
        let a2 = AvailabilityAnalysis::from_log(&t2).expect("non-empty");
        let a3 = AvailabilityAnalysis::from_log(&t3).expect("non-empty");
        // Little's law cross-check: L = λ·W.
        let little = |log: &FailureLog, a: &AvailabilityAnalysis| {
            let rate = log.len() as f64 / log.window().duration().get();
            let mttr = TtrAnalysis::from_log(log).expect("non-empty").mttr_hours();
            a.mean_concurrent_repairs() / (rate * mttr)
        };
        let lines = vec![
            format!(
                "T2: {:.0}% of failures arrive on open repairs; mean {:.2} concurrent (max {})",
                a2.overlap_probability() * 100.0,
                a2.mean_concurrent_repairs(),
                a2.max_concurrent_repairs()
            ),
            format!(
                "T3: {:.0}% of failures arrive on open repairs; mean {:.2} concurrent (max {})",
                a3.overlap_probability() * 100.0,
                a3.mean_concurrent_repairs(),
                a3.max_concurrent_repairs()
            ),
        ];
        let checks = vec![
            Check::range(
                "T2 overlap probability (MTTR ~ 3.6 MTBF in flight)",
                0.9,
                a2.overlap_probability(),
                0.5,
                1.0,
            ),
            Check::range("T3 overlap probability", 0.4, a3.overlap_probability(), 0.2, 0.7),
            Check::abs("T2 Little's-law consistency (L/λW)", 1.0, little(&t2, &a2), 0.1),
            Check::abs("T3 Little's-law consistency (L/λW)", 1.0, little(&t3, &a3), 0.1),
        ];
        Experiment {
            id: "ext_overlap",
            title: "Repairs overlap: the RQ5 concurrency warning quantified",
            checks,
            lines,
        }
    }

    /// Node time-to-first-failure survival across generations.
    pub fn survival() -> Experiment {
        let (t2, t3) = standard_logs();
        let s2 = NodeSurvival::from_log(&t2).expect("nodes exist");
        let s3 = NodeSurvival::from_log(&t3).expect("nodes exist");
        let lr = failstats::log_rank(&node_lifetimes(&t2), &node_lifetimes(&t3))
            .expect("events exist");
        let lines = vec![
            format!(
                "T2: {} of {} nodes failed; S(5000 h) = {:.3}",
                s2.observed_failures(),
                t2.spec().nodes(),
                s2.survival_at(5000.0)
            ),
            format!(
                "T3: {} of {} nodes failed; S(5000 h) = {:.3}",
                s3.observed_failures(),
                t3.spec().nodes(),
                s3.survival_at(5000.0)
            ),
            format!("log-rank chi2 = {:.1}, p = {:.4}", lr.statistic, lr.p_value),
        ];
        let checks = vec![
            Check::range(
                "T2 node survival at 5000 h is below T3's (ratio)",
                0.9,
                s2.survival_at(5000.0) / s3.survival_at(5000.0),
                0.6,
                0.999,
            ),
            Check::range("log-rank separates the generations (p < 0.05)", 0.0, lr.p_value, 0.0, 0.05),
        ];
        Experiment {
            id: "ext_survival",
            title: "Node survival: newer-generation nodes fail later",
            checks,
            lines,
        }
    }

    /// Related-work claim: rack-level failure non-uniformity persists.
    pub fn racks() -> Experiment {
        let (t2, t3) = standard_logs();
        let mut lines = Vec::new();
        let mut checks = Vec::new();
        for (name, log) in [("T2", &t2), ("T3", &t3)] {
            let d = RackDistribution::from_log(log);
            let test = d.uniformity_test().expect("non-empty");
            let k = (d.shares().len() as f64 * 0.2).round().max(1.0) as usize;
            lines.push(format!(
                "{name}: chi2 = {:.0} over {} racks (p = {:.4}); top {} racks hold {:.0}%",
                test.statistic,
                d.shares().len(),
                test.p_value,
                k,
                d.top_rack_share(k) * 100.0
            ));
            checks.push(Check::range(
                format!("{name}: rack uniformity rejected (p < 0.01)"),
                0.0,
                test.p_value,
                0.0,
                0.01,
            ));
        }
        Experiment {
            id: "ext_racks",
            title: "Failures are non-uniform across racks on both systems",
            checks,
            lines,
        }
    }

    /// All extension experiments.
    pub fn all() -> Vec<Experiment> {
        vec![overlap(), survival(), racks()]
    }
}

/// The ablation studies backing the simulator's design choices.
pub mod ablations {
    use super::*;
    use failstats::fit::{select_best_family, Family};

    /// Node-selection ablation: uniform placement cannot reproduce
    /// Fig. 4's repeat-offender tail; the defective pool and the Polya
    /// urn both can, but only the pool matches the one-failure share.
    pub fn node_selection() -> Experiment {
        let make = |selection: NodeSelection| {
            let mut m = SystemModel::tsubame2();
            m.node_selection = selection;
            m
        };
        let stats = |m: SystemModel| {
            let log = Simulator::new(m, 42).generate().expect("valid model");
            let d = NodeDistribution::from_log(&log);
            (
                d.fraction_with_exactly(1) * 100.0,
                d.max_failures_on_a_node() as f64,
            )
        };
        let (f1_pool, max_pool) = stats(SystemModel::tsubame2());
        let (f1_uni, max_uni) = stats(make(NodeSelection::Uniform));
        let (f1_urn, max_urn) = stats(make(NodeSelection::PolyaUrn {
            base: failsim::calib::urn::BASE,
            reinforcement: failsim::calib::urn::REINFORCEMENT,
        }));
        let lines = vec![
            format!("defective pool: {f1_pool:.1}% single-failure nodes, deepest node {max_pool}"),
            format!("uniform:        {f1_uni:.1}% single-failure nodes, deepest node {max_uni}"),
            format!("polya urn:      {f1_urn:.1}% single-failure nodes, deepest node {max_urn}"),
        ];
        let checks = vec![
            Check::abs("pool hits the ~60% single-failure anchor", 60.0, f1_pool, 6.0),
            Check::range("uniform overshoots the anchor", 75.0, f1_uni, 68.0, 100.0),
            Check::range("uniform lacks a deep tail (max <= 5)", 5.0, max_uni, 0.0, 5.0),
            Check::range("pool has a deep tail (max > 8)", 10.0, max_pool, 8.0, 100.0),
        ];
        Experiment {
            id: "ablate_node_selection",
            title: "Fig. 4 needs a defective pool, not uniform placement",
            checks,
            lines,
        }
    }

    /// Slot-skew ablation: uniform slots cannot reproduce Fig. 5.
    pub fn slot_skew() -> Experiment {
        // ~100 T3 slot involvements per log: average the ratio over
        // seeds on both arms.
        let ratio_of = |log: &FailureLog| {
            let c: Vec<f64> = SlotDistribution::from_log(log)
                .shares()
                .iter()
                .map(|s| s.count as f64)
                .collect();
            (c[0] + c[3]) / (c[1] + c[2]).max(1.0)
        };
        let skewed = seed_average(SystemModel::tsubame3, 43, 8, ratio_of);
        let flat = seed_average(
            || {
                let mut m = SystemModel::tsubame3();
                m.slot_skew = SlotSkew::Uniform;
                m
            },
            43,
            8,
            ratio_of,
        );
        let lines = vec![
            format!("calibrated skew: seed-averaged outer/inner = {skewed:.2}"),
            format!("uniform slots:   seed-averaged outer/inner = {flat:.2}"),
        ];
        let checks = vec![
            Check::range("calibrated skew shows Fig. 5's imbalance", 1.9, skewed, 1.4, 2.6),
            Check::range("uniform slots stay balanced", 1.0, flat, 0.6, 1.4),
        ];
        Experiment {
            id: "ablate_slot_skew",
            title: "Fig. 5 needs calibrated slot weights",
            checks,
            lines,
        }
    }

    /// TBF-family ablation: which family fits each system's gaps best.
    pub fn tbf_family() -> Experiment {
        let (t2, t3) = standard_logs();
        let gaps = |log: &FailureLog| {
            let times: Vec<f64> = log.times().map(|h| h.get()).collect();
            failstats::inter_arrival_times(&times)
                .into_iter()
                .filter(|&g| g > 0.0)
                .collect::<Vec<f64>>()
        };
        let g2 = gaps(&t2);
        let g3 = gaps(&t3);
        let ranked2 = select_best_family(&g2);
        let ranked3 = select_best_family(&g3);
        let name = |r: &[failstats::fit::FittedModel]| r[0].family;
        let lines = vec![
            format!(
                "T2 best family by AIC: {} (then {})",
                ranked2[0].family,
                ranked2.iter().skip(1).map(|m| m.family.name()).collect::<Vec<_>>().join(", ")
            ),
            format!(
                "T3 best family by AIC: {} (then {})",
                ranked3[0].family,
                ranked3.iter().skip(1).map(|m| m.family.name()).collect::<Vec<_>>().join(", ")
            ),
        ];
        // T2 gaps are exponential; any family that embeds the exponential
        // (gamma/Weibull at shape ~1) may edge it out by luck, but the
        // exponential must be within a few AIC units of the best.
        let exp_gap = ranked2
            .iter()
            .find(|m| m.family == Family::Exponential)
            .map(|m| m.aic - ranked2[0].aic)
            .unwrap_or(f64::INFINITY);
        let t3_best_not_exp = f64::from(name(&ranked3) != Family::Exponential);
        let checks = vec![
            Check::range("T2: exponential within 6 AIC of best", 0.0, exp_gap, 0.0, 6.0),
            Check::range(
                "T3: best family is not exponential (gamma-shaped)",
                1.0,
                t3_best_not_exp,
                1.0,
                1.0,
            ),
        ];
        Experiment {
            id: "ablate_tbf_family",
            title: "T2 gaps are memoryless; T3 gaps need a shape parameter",
            checks,
            lines,
        }
    }

    /// Arrival-model ablation: replacing T3's gamma arrivals with
    /// exponential misses the p75 anchor.
    pub fn tbf_quantile() -> Experiment {
        let mut exp_model = SystemModel::tsubame3();
        exp_model.tbf = TbfModel::Exponential;
        let p75_exp = seed_average(move || exp_model.clone(), 43, 8, |log| {
            TbfAnalysis::from_log(log).expect("338 failures").p75_hours()
        });
        let p75_gamma = seed_average(SystemModel::tsubame3, 43, 8, |log| {
            TbfAnalysis::from_log(log).expect("338 failures").p75_hours()
        });
        let lines = vec![
            format!("gamma arrivals:       seed-averaged p75 = {p75_gamma:.1} h (paper: 93 h)"),
            format!("exponential ablation: seed-averaged p75 = {p75_exp:.1} h"),
        ];
        let checks = vec![
            Check::abs("gamma arrivals hit the 93 h anchor", 93.0, p75_gamma, 7.0),
            Check::range("exponential overshoots the anchor", 100.0, p75_exp, 96.0, 115.0),
        ];
        Experiment {
            id: "ablate_tbf_quantile",
            title: "Fig. 6's T3 p75 anchor requires gamma arrivals",
            checks,
            lines,
        }
    }

    /// All ablations.
    pub fn all() -> Vec<Experiment> {
        vec![node_selection(), slot_skew(), tbf_family(), tbf_quantile()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ids_resolve() {
        for id in ALL_IDS {
            assert!(run(id).is_some(), "unknown id {id}");
        }
        assert!(run("nope").is_none());
    }

    #[test]
    fn standard_logs_are_simulated_exactly_once() {
        let (a2, a3) = standard_logs();
        let (b2, b3) = standard_logs();
        // The same allocation is shared, not an equal clone.
        assert!(Arc::ptr_eq(&a2, &b2));
        assert!(Arc::ptr_eq(&a3, &b3));
        assert_eq!(a2.len(), 897);
        assert_eq!(a3.len(), 338);
        // Exactly-once invariant on the shared store: every distinct
        // (model, seed) key was simulated once, however many experiments
        // and threads have already run in this process.
        let store = LogStore::global();
        assert_eq!(store.simulations(), store.entries());
    }

    #[test]
    fn catalog_lists_without_running_and_covers_every_id() {
        let entries = catalog();
        let ids: Vec<&str> = entries.iter().map(|e| e.0).collect();
        assert_eq!(&ids[..ALL_IDS.len()], ALL_IDS, "figures come first, in paper order");
        assert_eq!(entries.len(), ALL_IDS.len() + 4 + 3);
        // Each constructor produces the experiment its id promises.
        for (id, make) in entries {
            assert_eq!(make().id, id);
        }
    }

    #[test]
    fn seed_average_is_bit_identical_at_any_thread_count() {
        let stat = |log: &FailureLog| log.len() as f64 / 100.0 + 0.1;
        let serial = seed_average_with(SystemModel::tsubame3, 9000, 4, 1, stat);
        for threads in [2, 4, 8] {
            let parallel = seed_average_with(SystemModel::tsubame3, 9000, 4, threads, stat);
            assert_eq!(serial.to_bits(), parallel.to_bits(), "threads = {threads}");
        }
    }

    #[test]
    fn every_experiment_reproduces() {
        for id in ALL_IDS {
            let exp = run(id).expect("known id");
            assert!(
                exp.passes(),
                "{id} failed:\n{}",
                exp.render()
            );
        }
    }

    #[test]
    fn ablations_reproduce() {
        for exp in ablations::all() {
            assert!(exp.passes(), "{} failed:\n{}", exp.id, exp.render());
        }
    }

    #[test]
    fn extensions_reproduce() {
        for exp in extensions::all() {
            assert!(exp.passes(), "{} failed:\n{}", exp.id, exp.render());
        }
    }
}
