//! Process-wide memoized store of simulated failure logs.
//!
//! Every consumer of a `(model, seed)` log — the paper-figure
//! experiments, the seed-sweep averages, the Criterion benches, the
//! `repro` binary — fetches it through [`LogStore::global`], so each
//! distinct log is simulated **exactly once per process** and shared as
//! an [`Arc<FailureLog>`] with no cloning of record vectors.
//!
//! The store counts simulations and cache hits so tests (and the
//! `repro bench` mode) can assert the exactly-once invariant:
//! [`LogStore::simulations`] must equal [`LogStore::entries`] no matter
//! how many experiments ran or how many threads raced on the same key.
//!
//! Concurrency: the map itself is guarded by a [`parking_lot::Mutex`]
//! held only long enough to clone a per-key cell; the simulation runs
//! outside that lock inside the cell's [`OnceLock`], so two threads
//! racing on *different* keys simulate in parallel while two threads
//! racing on the *same* key serialize on the cell and share one result.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use failsim::{Simulator, SystemModel};
use failtypes::FailureLog;
use parking_lot::Mutex;

type Key = (String, u64);
type Cell = Arc<OnceLock<Arc<FailureLog>>>;

/// Memoized cache of simulated logs keyed by `(model, seed)`, plus
/// on-disk logs keyed by path (served from warm `.fsidx` snapshots
/// when one validates).
pub struct LogStore {
    cells: Mutex<BTreeMap<Key, Cell>>,
    file_cells: Mutex<BTreeMap<String, Cell>>,
    simulations: AtomicU64,
    loads: AtomicU64,
    snapshot_hits: AtomicU64,
    hits: AtomicU64,
}

impl LogStore {
    /// Creates an empty store.
    pub const fn new() -> Self {
        LogStore {
            cells: Mutex::new(BTreeMap::new()),
            file_cells: Mutex::new(BTreeMap::new()),
            simulations: AtomicU64::new(0),
            loads: AtomicU64::new(0),
            snapshot_hits: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// The process-wide store shared by all experiments.
    pub fn global() -> &'static LogStore {
        static STORE: LogStore = LogStore::new();
        &STORE
    }

    /// Returns the log for `(model, seed)`, simulating it on first use
    /// and sharing the cached [`Arc`] thereafter.
    ///
    /// The key is the model's `Debug` rendering plus the seed, so two
    /// structurally identical models (e.g. `SystemModel::tsubame3()`
    /// built twice) share one entry while any calibration difference —
    /// an ablation arm, a mitigation variant — gets its own.
    ///
    /// # Panics
    ///
    /// Panics if the model fails validation; every calibrated model in
    /// this workspace is valid by construction.
    pub fn get(&self, model: &SystemModel, seed: u64) -> Arc<FailureLog> {
        let key = (format!("{model:?}"), seed);
        let cell = {
            let mut cells = self.cells.lock();
            Arc::clone(cells.entry(key).or_default())
        };
        if let Some(log) = cell.get() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(log);
        }
        Arc::clone(cell.get_or_init(|| {
            self.simulations.fetch_add(1, Ordering::Relaxed);
            Arc::new(
                Simulator::new(model.clone(), seed)
                    .generate()
                    .expect("calibrated system models always validate"),
            )
        }))
    }

    /// Returns the log stored at `path`, parsing it on first use and
    /// sharing the cached [`Arc`] thereafter. Before parsing, a warm
    /// `.fsidx` snapshot next to the file is consulted (see
    /// [`failindex::open_indexed`]): an exact hit reconstructs the log
    /// with zero parsing, a prefix hit parses only the appended tail.
    ///
    /// # Errors
    ///
    /// Propagates read/parse errors for the log itself; snapshot
    /// problems silently fall back to a cold parse.
    pub fn get_path(&self, path: &str) -> failtypes::Result<Arc<FailureLog>> {
        let cell = {
            let mut cells = self.file_cells.lock();
            Arc::clone(cells.entry(path.to_string()).or_default())
        };
        if let Some(log) = cell.get() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(log));
        }
        let log = match failindex::open_indexed(path, None)? {
            failindex::IndexedLoad::Exact(snap) => {
                self.snapshot_hits.fetch_add(1, Ordering::Relaxed);
                snap.into_view().to_log()
            }
            failindex::IndexedLoad::Extended { snapshot, .. } => {
                self.snapshot_hits.fetch_add(1, Ordering::Relaxed);
                snapshot.into_view().to_log()
            }
            failindex::IndexedLoad::Cold { .. } => faillog::load(path)
                .map_err(|e| failtypes::Error::run(format!("{path}: {e}")))?,
        };
        self.loads.fetch_add(1, Ordering::Relaxed);
        Ok(Arc::clone(cell.get_or_init(|| Arc::new(log))))
    }

    /// Number of distinct `(model, seed)` keys ever requested.
    pub fn entries(&self) -> u64 {
        self.cells.lock().len() as u64
    }

    /// Number of simulations actually run — equals [`Self::entries`]
    /// when the exactly-once invariant holds.
    pub fn simulations(&self) -> u64 {
        self.simulations.load(Ordering::Relaxed)
    }

    /// Number of requests served from cache without simulating.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of file logs materialized (by any path: snapshot or
    /// cold parse).
    pub fn loads(&self) -> u64 {
        self.loads.load(Ordering::Relaxed)
    }

    /// Number of file loads served from a warm `.fsidx` snapshot
    /// instead of a full parse.
    pub fn snapshot_hits(&self) -> u64 {
        self.snapshot_hits.load(Ordering::Relaxed)
    }

    /// Drops every cached log and resets the counters (used by the
    /// benchmark harness to time cold runs).
    pub fn clear(&self) {
        self.cells.lock().clear();
        self.file_cells.lock().clear();
        self.simulations.store(0, Ordering::Relaxed);
        self.loads.store(0, Ordering::Relaxed);
        self.snapshot_hits.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
    }
}

impl Default for LogStore {
    fn default() -> Self {
        LogStore::new()
    }
}

impl std::fmt::Debug for LogStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogStore")
            .field("entries", &self.entries())
            .field("simulations", &self.simulations())
            .field("loads", &self.loads())
            .field("snapshot_hits", &self.snapshot_hits())
            .field("hits", &self.hits())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_simulates_once_and_shares_the_arc() {
        let store = LogStore::new();
        let model = SystemModel::tsubame3();
        let a = store.get(&model, 43);
        let b = store.get(&model, 43);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.simulations(), 1);
        assert_eq!(store.entries(), 1);
        assert_eq!(store.hits(), 1);
        assert_eq!(a.len(), 338);
    }

    #[test]
    fn distinct_models_and_seeds_get_distinct_entries() {
        let store = LogStore::new();
        let t3 = store.get(&SystemModel::tsubame3(), 43);
        let t3b = store.get(&SystemModel::tsubame3(), 44);
        let t2 = store.get(&SystemModel::tsubame2(), 43);
        assert!(!Arc::ptr_eq(&t3, &t3b));
        assert!(!Arc::ptr_eq(&t3, &t2));
        assert_eq!(store.entries(), 3);
        assert_eq!(store.simulations(), 3);
    }

    #[test]
    fn file_logs_memoize_and_consult_warm_snapshots() {
        let dir = std::env::temp_dir().join("failbench-logstore-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
        let text = faillog::to_string(&log).unwrap();
        let path = dir.join("store.fslog");
        std::fs::write(&path, &text).unwrap();
        let p = path.to_str().unwrap();

        // Cold parse, then memoized.
        let store = LogStore::new();
        let a = store.get_path(p).unwrap();
        let b = store.get_path(p).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((store.loads(), store.snapshot_hits(), store.hits()), (1, 0, 1));
        assert_eq!(a.len(), 338);

        // With a snapshot on disk, a fresh store serves it warm.
        let mut view = failscope::StreamView::for_log(&log);
        view.extend(log.records().iter().cloned()).unwrap();
        failindex::save(
            failindex::snapshot_path(&path),
            &view,
            failindex::SourceInfo::of_bytes(text.as_bytes()),
        )
        .unwrap();
        let warm_store = LogStore::new();
        let c = warm_store.get_path(p).unwrap();
        assert_eq!((warm_store.loads(), warm_store.snapshot_hits()), (1, 1));
        assert_eq!(c.records(), a.records());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_fetches_of_one_key_simulate_once() {
        let store = LogStore::new();
        let model = SystemModel::tsubame3();
        let logs = failstats::par_map_ordered(8, 8, |_| store.get(&model, 43));
        for log in &logs {
            assert!(Arc::ptr_eq(&logs[0], log));
        }
        assert_eq!(store.simulations(), 1);
        assert_eq!(store.entries(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let store = LogStore::new();
        let first = store.get(&SystemModel::tsubame3(), 43);
        store.clear();
        assert_eq!(store.entries(), 0);
        assert_eq!(store.simulations(), 0);
        let second = store.get(&SystemModel::tsubame3(), 43);
        assert!(!Arc::ptr_eq(&first, &second));
        assert_eq!(*first, *second, "re-simulation is deterministic");
    }
}
