//! Benchmarks of the mitigation policies built on top of the analyses:
//! checkpoint planning, spare-pool simulation, slot-aware scheduling, and
//! proactive-recovery evaluation.
//!
//! Run with `cargo bench -p failbench --bench mitigation`.

use criterion::{criterion_group, criterion_main, Criterion};
use failmitigate::{
    default_proactive_ttr, evaluate_policy, evaluate_proactive, simulate_inventory,
    AllocationPolicy, CheckpointPlan, Predictor, SlotRiskModel, SparePolicy,
};
use failsim::{Simulator, SystemModel};
use failtypes::ComponentClass;
use std::hint::black_box;
use std::time::Duration;

fn bench_mitigation(c: &mut Criterion) {
    let log = Simulator::new(SystemModel::tsubame3(), 43)
        .generate()
        .expect("valid model");

    let mut group = c.benchmark_group("mitigation");
    group.bench_function("checkpoint_plan_from_log", |b| {
        b.iter(|| {
            let plan = CheckpointPlan::from_log(black_box(&log), 0.25).expect("valid");
            black_box(plan.daly_interval_hours())
        })
    });

    let policy = SparePolicy::from_log(&log, ComponentClass::Gpu, 14.0 * 24.0).expect("GPUs fail");
    group.bench_function("spare_inventory_sim_1y", |b| {
        b.iter(|| simulate_inventory(black_box(policy), 4, 8760.0, black_box(7)))
    });

    let risk = SlotRiskModel::from_log(&log).expect("slot data");
    let jobs: Vec<(usize, f64)> = (0..500).map(|i| (1 + i % 4, 24.0)).collect();
    group.bench_function("scheduler_policy_eval_500_jobs", |b| {
        b.iter(|| {
            evaluate_policy(
                black_box(&risk),
                AllocationPolicy::RiskAware,
                black_box(&jobs),
            )
        })
    });

    let predictor = Predictor::new(0.6, 0.85).expect("valid rates");
    group.bench_function("proactive_recovery_eval", |b| {
        b.iter(|| {
            evaluate_proactive(
                black_box(&log),
                black_box(predictor),
                default_proactive_ttr,
                4.0,
            )
            .expect("non-empty")
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    targets = bench_mitigation
}
criterion_main!(benches);
