//! One Criterion bench per table/figure of the paper: measures the time
//! to regenerate the experiment (generate the calibrated logs, run the
//! analysis, evaluate the paper-vs-measured checks) and asserts on every
//! iteration that the experiment still reproduces.
//!
//! Run with `cargo bench -p failbench --bench figures`.

use criterion::{criterion_group, criterion_main, Criterion};
use failbench::experiments::{self, ablations, extensions, ALL_IDS};
use std::hint::black_box;
use std::time::Duration;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    for &id in ALL_IDS {
        group.bench_function(id, |b| {
            b.iter(|| {
                let exp = experiments::run(black_box(id)).expect("known id");
                assert!(exp.passes(), "{id} stopped reproducing");
                black_box(exp)
            })
        });
    }
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    let names: Vec<&'static str> = ablations::all().iter().map(|e| e.id).collect();
    for (i, name) in names.into_iter().enumerate() {
        group.bench_function(name, |b| {
            b.iter(|| {
                let exp = ablations::all().into_iter().nth(i).expect("fixed list");
                assert!(exp.passes(), "{name} stopped reproducing");
                black_box(exp)
            })
        });
    }
    group.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions");
    let names: Vec<&'static str> = extensions::all().iter().map(|e| e.id).collect();
    for (i, name) in names.into_iter().enumerate() {
        group.bench_function(name, |b| {
            b.iter(|| {
                let exp = extensions::all().into_iter().nth(i).expect("fixed list");
                assert!(exp.passes(), "{name} stopped reproducing");
                black_box(exp)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    targets = bench_figures, bench_ablations, bench_extensions
}
criterion_main!(benches);
