//! Microbenchmarks of the building blocks behind the figures: log
//! generation, serialization, the analysis kernels, and the statistics
//! substrate.
//!
//! Run with `cargo bench -p failbench --bench pipeline`.

use criterion::{criterion_group, criterion_main, Criterion};
use failbench::{experiments, runner};
use failscope::{
    per_category_tbf, per_category_ttr, AvailabilityAnalysis, CategoryBreakdown, LogView,
    NodeDistribution, SeasonalAnalysis, TbfAnalysis, TtrAnalysis,
};
use failsim::{ScenarioBuilder, Simulator, SystemModel};
use failstats::{bootstrap_ci, bootstrap_ci_parallel, fit, ks_test_dist, ContinuousDist, Ecdf};
use std::hint::black_box;
use std::time::Duration;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group.bench_function("tsubame2_log", |b| {
        b.iter(|| {
            Simulator::new(SystemModel::tsubame2(), black_box(42))
                .generate()
                .expect("valid model")
        })
    });
    group.bench_function("tsubame3_log", |b| {
        b.iter(|| {
            Simulator::new(SystemModel::tsubame3(), black_box(43))
                .generate()
                .expect("valid model")
        })
    });
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    // How generation cost scales with the failure count (fixed window,
    // decreasing MTBF) and with the fleet size.
    let mut group = c.benchmark_group("scaling");
    for failures in [1_000u32, 10_000, 50_000] {
        let mtbf = 365.0 * 24.0 / failures as f64;
        group.bench_function(format!("generate_{failures}_failures"), |b| {
            let model = ScenarioBuilder::new("scale")
                .window_days(365)
                .system_mtbf_hours(mtbf)
                .build()
                .expect("valid scenario");
            b.iter(|| {
                Simulator::new(model.clone(), black_box(1))
                    .generate()
                    .expect("valid model")
            })
        });
    }
    for nodes in [1_000u32, 10_000, 100_000] {
        group.bench_function(format!("generate_{nodes}_node_fleet"), |b| {
            let model = ScenarioBuilder::new("fleet")
                .nodes(nodes)
                .window_days(120)
                .system_mtbf_hours(10.0)
                .build()
                .expect("valid scenario");
            b.iter(|| {
                Simulator::new(model.clone(), black_box(2))
                    .generate()
                    .expect("valid model")
            })
        });
    }
    group.finish();
}

fn bench_serialization(c: &mut Criterion) {
    let log = Simulator::new(SystemModel::tsubame2(), 42)
        .generate()
        .expect("valid model");
    let text = faillog::to_string(&log).expect("serializes");
    let mut group = c.benchmark_group("faillog");
    group.bench_function("write_897_records", |b| {
        b.iter(|| faillog::to_string(black_box(&log)).expect("serializes"))
    });
    group.bench_function("parse_897_records", |b| {
        b.iter(|| faillog::from_str(black_box(&text)).expect("parses"))
    });
    group.bench_function("anonymize_897_records", |b| {
        b.iter(|| faillog::anonymize_nodes(black_box(&log), black_box(7)))
    });
    group.finish();
}

fn bench_analyses(c: &mut Criterion) {
    let log = Simulator::new(SystemModel::tsubame2(), 42)
        .generate()
        .expect("valid model");
    let mut group = c.benchmark_group("analysis");
    group.bench_function("category_breakdown", |b| {
        b.iter(|| CategoryBreakdown::from_log(black_box(&log)))
    });
    group.bench_function("node_distribution", |b| {
        b.iter(|| NodeDistribution::from_log(black_box(&log)))
    });
    group.bench_function("tbf_analysis", |b| {
        b.iter(|| TbfAnalysis::from_log(black_box(&log)).expect("897 failures"))
    });
    group.bench_function("ttr_analysis", |b| {
        b.iter(|| TtrAnalysis::from_log(black_box(&log)).expect("non-empty"))
    });
    group.bench_function("per_category_ttr", |b| {
        b.iter(|| per_category_ttr(black_box(&log)))
    });
    group.bench_function("seasonal_analysis", |b| {
        b.iter(|| SeasonalAnalysis::from_log(black_box(&log)))
    });
    group.bench_function("full_report", |b| {
        b.iter(|| failscope::render_report(black_box(&log)))
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let log = Simulator::new(SystemModel::tsubame2(), 42)
        .generate()
        .expect("valid model");
    let mut group = c.benchmark_group("engine");

    // The indexed-view refactor: build every per-analysis index once...
    group.bench_function("logview_build", |b| {
        b.iter(|| LogView::new(black_box(&log)))
    });
    // ...versus what the analyses did before — each re-scanning and
    // re-sorting the raw log on its own.
    group.bench_function("resort_per_analysis", |b| {
        b.iter(|| {
            let log = black_box(&log);
            (
                TtrAnalysis::from_log(log),
                TbfAnalysis::from_log(log),
                per_category_ttr(log),
                per_category_tbf(log, 5),
                AvailabilityAnalysis::from_log(log),
                SeasonalAnalysis::from_log(log),
            )
        })
    });

    // View-backed report vs. the same report re-deriving everything.
    group.bench_function("report_via_view", |b| {
        b.iter(|| failscope::render_report(black_box(&log)))
    });

    group.finish();
}

fn bench_repro_pipeline(c: &mut Criterion) {
    // The full experiment catalog, serial vs. parallel. Logs are warmed
    // in the shared LogStore first so this isolates analysis/runner cost
    // (the cold-start comparison is `repro bench`).
    let catalog = experiments::catalog();
    let threads = failstats::available_threads();
    let _ = runner::run_catalog_with(&catalog, 1); // warm the store
    let mut group = c.benchmark_group("repro_pipeline");
    group.bench_function("pipeline_serial", |b| {
        b.iter(|| runner::run_catalog_with(black_box(&catalog), 1))
    });
    group.bench_function(format!("pipeline_parallel_{threads}t"), |b| {
        b.iter(|| runner::run_catalog_with(black_box(&catalog), threads))
    });
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    use rand::SeedableRng;
    let truth = failstats::Weibull::new(1.4, 70.0).expect("valid params");
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let sample: Vec<f64> = (0..2000).map(|_| truth.sample(&mut rng)).collect();

    let mut group = c.benchmark_group("stats");
    group.bench_function("ecdf_build_2k", |b| {
        b.iter(|| Ecdf::new(black_box(sample.clone())).expect("non-empty"))
    });
    group.bench_function("weibull_mle_2k", |b| {
        b.iter(|| fit::fit_weibull(black_box(&sample)).expect("converges"))
    });
    group.bench_function("gamma_mle_2k", |b| {
        b.iter(|| fit::fit_gamma(black_box(&sample)).expect("converges"))
    });
    group.bench_function("ks_test_2k", |b| {
        b.iter(|| ks_test_dist(black_box(&sample), black_box(&truth)).expect("non-empty"))
    });
    let mean_stat = |d: &[f64]| d.iter().sum::<f64>() / d.len() as f64;
    group.bench_function("bootstrap_serial_500", |b| {
        b.iter(|| bootstrap_ci(black_box(&sample), mean_stat, 500, 0.95, 1).expect("valid"))
    });
    group.bench_function("bootstrap_parallel_500x4", |b| {
        b.iter(|| {
            bootstrap_ci_parallel(black_box(&sample), mean_stat, 500, 0.95, 1, 4).expect("valid")
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    targets = bench_generation, bench_scaling, bench_serialization, bench_analyses,
        bench_engine, bench_repro_pipeline, bench_stats
}
criterion_main!(benches);
