//! RQ3 — simultaneous multi-GPU failures (Table III).

use failtypes::FailureLog;
use serde::{Deserialize, Serialize};

use crate::{FleetIndex, LogView};

/// One row of Table III: how many GPU failures involved exactly `gpus`
/// GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InvolvementRow {
    /// Number of GPUs involved.
    pub gpus: u8,
    /// Number of failures with that involvement.
    pub count: usize,
    /// Share among failures with known involvement.
    pub fraction: f64,
}

/// The multi-GPU involvement table of a log (Table III).
///
/// # Examples
///
/// ```
/// use failscope::InvolvementTable;
/// use failsim::{Simulator, SystemModel};
///
/// let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
/// let table = InvolvementTable::from_log(&log);
/// // Table III: >92% of Tsubame-3 GPU failures involved a single GPU,
/// // and none involved all four.
/// assert!(table.rows()[0].fraction > 0.92);
/// assert_eq!(table.count_of(4), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvolvementTable {
    rows: Vec<InvolvementRow>,
    known: usize,
    unknown: usize,
}

impl InvolvementTable {
    /// Computes the table from the GPU failures of any [`FleetIndex`].
    pub fn from_index<V: FleetIndex + ?Sized>(index: &V) -> Self {
        let max_gpus = index.spec().gpus_per_node();
        let mut counts = vec![0usize; max_gpus as usize + 1];
        let mut unknown = 0;
        for rec in index.records().iter().filter(|r| r.category().is_gpu()) {
            let k = rec.gpus().len();
            if k == 0 {
                unknown += 1;
            } else if k <= max_gpus as usize {
                counts[k] += 1;
            }
        }
        let known: usize = counts.iter().sum();
        let rows = (1..=max_gpus)
            .map(|k| InvolvementRow {
                gpus: k,
                count: counts[k as usize],
                fraction: counts[k as usize] as f64 / known.max(1) as f64,
            })
            .collect();
        InvolvementTable {
            rows,
            known,
            unknown,
        }
    }

    /// [`InvolvementTable::from_index`], indexing the log once.
    #[doc(hidden)]
    pub fn from_log(log: &FailureLog) -> Self {
        Self::from_index(&LogView::new(log))
    }

    /// [`InvolvementTable::from_index`] on a prebuilt [`LogView`].
    #[doc(hidden)]
    pub fn from_view(view: &LogView<'_>) -> Self {
        Self::from_index(view)
    }

    /// Rows for 1..=gpus-per-node GPUs involved.
    pub fn rows(&self) -> &[InvolvementRow] {
        &self.rows
    }

    /// GPU failures with known involvement.
    pub const fn known(&self) -> usize {
        self.known
    }

    /// GPU failures without involvement data.
    pub const fn unknown(&self) -> usize {
        self.unknown
    }

    /// Count of failures involving exactly `gpus` GPUs.
    pub fn count_of(&self, gpus: u8) -> usize {
        self.rows
            .iter()
            .find(|r| r.gpus == gpus)
            .map_or(0, |r| r.count)
    }

    /// Share of known-involvement failures touching more than one GPU —
    /// the headline RQ3 number (~70% on Tsubame-2, < 8% on Tsubame-3).
    pub fn multi_gpu_fraction(&self) -> f64 {
        self.rows
            .iter()
            .filter(|r| r.gpus >= 2)
            .map(|r| r.fraction)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{Simulator, SystemModel};

    fn t2() -> FailureLog {
        Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap()
    }

    fn t3() -> FailureLog {
        Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap()
    }

    #[test]
    fn table3_t2_exact_counts() {
        let t = InvolvementTable::from_log(&t2());
        assert_eq!(t.count_of(1), 112);
        assert_eq!(t.count_of(2), 128);
        assert_eq!(t.count_of(3), 128);
        assert_eq!(t.known(), 368);
        assert_eq!(t.unknown(), 30);
        // ~70% multi-GPU.
        assert!((t.multi_gpu_fraction() - 0.6956).abs() < 0.001);
    }

    #[test]
    fn table3_t3_exact_counts() {
        let t = InvolvementTable::from_log(&t3());
        assert_eq!(t.count_of(1), 75);
        assert_eq!(t.count_of(2), 4);
        assert_eq!(t.count_of(3), 2);
        assert_eq!(t.count_of(4), 0);
        assert_eq!(t.known(), 81);
        assert_eq!(t.unknown(), 13);
        // >92% single-GPU.
        assert!(t.rows()[0].fraction > 0.92);
        assert!(t.multi_gpu_fraction() < 0.08);
    }

    #[test]
    fn fractions_sum_to_one_over_known() {
        for log in [t2(), t3()] {
            let t = InvolvementTable::from_log(&log);
            let sum: f64 = t.rows().iter().map(|r| r.fraction).sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn rows_cover_node_gpu_range() {
        let t = InvolvementTable::from_log(&t3());
        assert_eq!(t.rows().len(), 4); // 4 GPUs per Tsubame-3 node
        let t = InvolvementTable::from_log(&t2());
        assert_eq!(t.rows().len(), 3);
    }

    #[test]
    fn empty_log_table() {
        let log = t3().filtered(|_| false);
        let t = InvolvementTable::from_log(&log);
        assert_eq!(t.known(), 0);
        assert_eq!(t.unknown(), 0);
        assert_eq!(t.multi_gpu_fraction(), 0.0);
    }
}
