//! Operator-facing reports assembled from a typed section registry.
//!
//! The report is a fixed sequence of independent [`Section`]s, each a
//! pure function of a shared [`FleetIndex`] with **two** renderers: the
//! operator text block and a structured [`JsonValue`] with a stable
//! schema (documented per section in `DESIGN.md`). The registry is the
//! single source of truth — `failctl report`, `failctl compare`, the
//! bench binaries, and the test suites all dispatch through
//! [`SECTIONS`] instead of hand-wiring their own tables.
//!
//! [`render_text_sections`] / [`render_json_sections`] render any
//! selection on a worker pool and concatenate in declaration order, so
//! the output is byte-identical at every thread count;
//! [`render_report`] is the single-threaded whole-report entry point.

use std::fmt;
use std::fmt::Write as _;

use failtrace::Collector;
use failtypes::{FailureLog, JsonValue};

use crate::availability::AvailabilityAnalysis;
use crate::categories::{CategoryBreakdown, LocusBreakdown};
use crate::index::FleetIndex;
use crate::logview::LogView;
use crate::multigpu::InvolvementTable;
use crate::pep::PepComparison;
use crate::seasonal::SeasonalAnalysis;
use crate::spatial::{NodeDistribution, RackDistribution, SlotDistribution};
use crate::survival::NodeSurvival;
use crate::tbf::{per_category_tbf_index, TbfAnalysis};
use crate::temporal::MultiGpuTemporal;
use crate::ttr::{per_category_ttr_index, TtrAnalysis};

/// Shared context handed to every section renderer: the fleet index the
/// section reports on, plus an optional [`Collector`] whose contents the
/// [`METRICS_SECTION_ID`] section surfaces.
#[derive(Clone, Copy)]
pub struct SectionCtx<'a> {
    index: &'a (dyn FleetIndex + Sync),
    trace: Option<&'a Collector>,
}

impl<'a> SectionCtx<'a> {
    /// A context over `index` with no trace collector: the `metrics`
    /// section renders empty.
    pub fn new(index: &'a (dyn FleetIndex + Sync)) -> Self {
        SectionCtx { index, trace: None }
    }

    /// A context over `index` that also records section-render spans
    /// into `trace` and surfaces it through the `metrics` section.
    pub fn with_trace(index: &'a (dyn FleetIndex + Sync), trace: &'a Collector) -> Self {
        SectionCtx {
            index,
            trace: Some(trace),
        }
    }

    /// The fleet index the sections report on.
    pub fn index(&self) -> &'a dyn FleetIndex {
        self.index
    }

    /// The trace collector, when one is attached.
    pub fn trace(&self) -> Option<&'a Collector> {
        self.trace
    }
}

impl fmt::Debug for SectionCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SectionCtx")
            .field("records", &self.index.len())
            .field("traced", &self.trace.is_some())
            .finish_non_exhaustive()
    }
}

/// One report section: a stable machine id, a human title, and two
/// renderers over the shared [`SectionCtx`].
///
/// Both renderers must be pure functions of the context so the threaded
/// renderers stay byte-identical at any worker count. An empty section
/// renders as `""` / [`JsonValue::Null`].
#[derive(Debug, Clone, Copy)]
pub struct Section {
    /// Stable identifier — the `--sections` / JSON `"id"` vocabulary.
    pub id: &'static str,
    /// Human-readable title, carried on every JSON line.
    pub title: &'static str,
    /// Structured renderer (`null` when the section has nothing to say).
    pub json: fn(&SectionCtx<'_>) -> JsonValue,
    /// Plain-text renderer (`""` when the section has nothing to say).
    pub text: fn(&SectionCtx<'_>) -> String,
}

/// Stable id of the runtime self-measurement section, which renders the
/// attached [`Collector`] and is therefore computed serially *after*
/// every other section in a selection has finished.
pub const METRICS_SECTION_ID: &str = "metrics";

/// The report sections in print order. Each is independent, so the
/// threaded renderers can compute them concurrently.
pub const SECTIONS: &[Section] = &[
    Section {
        id: "header",
        title: "Reliability report",
        json: json_header,
        text: section_header,
    },
    Section {
        id: "categories",
        title: "Failure categories (RQ1)",
        json: json_categories,
        text: section_categories,
    },
    Section {
        id: "spatial",
        title: "Per-node and per-slot distribution (RQ2)",
        json: json_spatial,
        text: section_spatial,
    },
    Section {
        id: "involvement",
        title: "Multi-GPU involvement (RQ3)",
        json: json_involvement,
        text: section_involvement,
    },
    Section {
        id: "tbf",
        title: "Time between failures (RQ4)",
        json: json_tbf,
        text: section_tbf,
    },
    Section {
        id: "ttr",
        title: "Time to recovery (RQ5)",
        json: json_ttr,
        text: section_ttr_and_racks,
    },
    Section {
        id: "availability",
        title: "Repair overlap and availability",
        json: json_availability,
        text: section_availability,
    },
    Section {
        id: "survival",
        title: "Node survival",
        json: json_survival,
        text: section_survival,
    },
    Section {
        id: "seasonal",
        title: "Seasonal behaviour",
        json: json_seasonal,
        text: section_seasonal,
    },
    Section {
        id: METRICS_SECTION_ID,
        title: "Runtime metrics",
        json: json_metrics,
        text: section_metrics,
    },
];

/// Looks up one section by its stable id.
pub fn section_by_id(id: &str) -> Option<&'static Section> {
    SECTIONS.iter().find(|s| s.id == id)
}

/// Resolves a comma-separated id list (e.g. `"tbf,ttr"`) against the
/// registry, preserving the requested order.
///
/// # Errors
///
/// Rejects unknown or empty selections with a
/// [`failtypes::Error::Args`] naming the known vocabulary.
pub fn select_sections(spec: &str) -> failtypes::Result<Vec<&'static Section>> {
    let known = || {
        SECTIONS
            .iter()
            .map(|s| s.id)
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut out = Vec::new();
    for id in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        match section_by_id(id) {
            Some(section) => out.push(section),
            None => {
                return Err(failtypes::Error::args(format!(
                    "unknown section `{id}` (known: {})",
                    known()
                )))
            }
        }
    }
    if out.is_empty() {
        return Err(failtypes::Error::args(format!(
            "no sections selected (known: {})",
            known()
        )));
    }
    Ok(out)
}

/// Runs one section renderer, recording a `render.<id>` span (items =
/// output bytes) and bumping `report.sections_rendered` when the
/// context carries a trace collector. The `metrics` section itself is
/// never instrumented, so its counters stay deterministic.
fn rendered_instrumented(
    ctx: &SectionCtx<'_>,
    section: &Section,
    render: impl FnOnce() -> String,
) -> String {
    match ctx.trace() {
        Some(trace) if section.id != METRICS_SECTION_ID => {
            let mut span = trace.span(&format!("render.{}", section.id));
            let out = render();
            span.add_items(out.len() as u64);
            drop(span);
            trace.incr("report.sections_rendered", 1);
            out
        }
        _ => render(),
    }
}

/// Replaces the placeholder output of any `metrics` sections in the
/// selection with a serial render taken *after* the worker pool has
/// finished, so the self-measurement reflects every other section.
fn splice_metrics(
    sections: &[&Section],
    rendered: &mut [String],
    render: impl Fn(&Section) -> String,
) {
    for (slot, section) in rendered.iter_mut().zip(sections) {
        if section.id == METRICS_SECTION_ID {
            *slot = render(section);
        }
    }
}

/// Renders a section selection as the operator text report, computing
/// sections on up to `threads` workers and concatenating in selection
/// order — byte-identical at any thread count. The `metrics` section,
/// if selected, is rendered serially after the pool so it observes the
/// other sections' instrumentation.
pub fn render_text_sections(
    sections: &[&Section],
    ctx: &SectionCtx<'_>,
    threads: usize,
) -> String {
    let mut rendered = failstats::par_map_ordered(sections.len(), threads, |i| {
        let section = sections[i];
        if section.id == METRICS_SECTION_ID {
            String::new()
        } else {
            rendered_instrumented(ctx, section, || (section.text)(ctx))
        }
    });
    splice_metrics(sections, &mut rendered, |section| (section.text)(ctx));
    rendered.concat()
}

/// Renders a section selection as NDJSON — one
/// `{"id":...,"title":...,"data":...}` line per section, in selection
/// order, byte-identical at any thread count. Empty sections carry
/// `"data":null`; the `metrics` section is rendered serially after the
/// pool, like in [`render_text_sections`].
pub fn render_json_sections(
    sections: &[&Section],
    ctx: &SectionCtx<'_>,
    threads: usize,
) -> String {
    let json_line = |section: &Section| {
        let mut line = JsonValue::object()
            .field("id", section.id)
            .field("title", section.title)
            .field("data", (section.json)(ctx))
            .build()
            .render();
        line.push('\n');
        line
    };
    let mut rendered = failstats::par_map_ordered(sections.len(), threads, |i| {
        let section = sections[i];
        if section.id == METRICS_SECTION_ID {
            String::new()
        } else {
            rendered_instrumented(ctx, section, || json_line(section))
        }
    });
    splice_metrics(sections, &mut rendered, json_line);
    rendered.concat()
}

fn all_sections() -> Vec<&'static Section> {
    SECTIONS.iter().collect()
}

// ---------------------------------------------------------------------
// Text renderers (one per section, byte-stable).
// ---------------------------------------------------------------------

fn section_header(ctx: &SectionCtx<'_>) -> String {
    let index = ctx.index();
    let mut out = String::new();
    let _ = writeln!(out, "=== Reliability report: {} ===", index.spec().name());
    let _ = writeln!(
        out,
        "{} failures over {} ({:.0} days)",
        index.len(),
        index.window(),
        index.window().duration().days()
    );
    out
}

fn section_categories(ctx: &SectionCtx<'_>) -> String {
    let index = ctx.index();
    let mut out = String::new();
    let cats = CategoryBreakdown::from_index(index);
    let _ = writeln!(out, "\n-- Failure categories (RQ1) --");
    for share in cats.shares() {
        let _ = writeln!(
            out,
            "  {:<16} {:>5}  {:>6.2}%",
            share.category.label(),
            share.count,
            share.fraction * 100.0
        );
    }
    let loci = LocusBreakdown::from_index(index);
    if loci.total() > 0 {
        let _ = writeln!(out, "\n-- Software root loci (Fig. 3) --");
        for share in loci.shares() {
            let _ = writeln!(
                out,
                "  {:<22} {:>4}  {:>6.2}%",
                share.locus.label(),
                share.count,
                share.fraction * 100.0
            );
        }
    }
    out
}

fn section_spatial(ctx: &SectionCtx<'_>) -> String {
    let index = ctx.index();
    let mut out = String::new();
    let nodes = NodeDistribution::from_index(index);
    let _ = writeln!(out, "\n-- Per-node distribution (RQ2) --");
    let _ = writeln!(
        out,
        "  {} of {} nodes failed at least once",
        nodes.failing_nodes(),
        nodes.total_nodes()
    );
    let _ = writeln!(
        out,
        "  exactly 1 failure: {:>5.1}%   exactly 2: {:>5.1}%   more than 1: {:>5.1}%",
        nodes.fraction_with_exactly(1) * 100.0,
        nodes.fraction_with_exactly(2) * 100.0,
        nodes.fraction_with_multiple() * 100.0
    );
    let slots = SlotDistribution::from_index(index);
    if slots.total_involvements() > 0 {
        let _ = writeln!(out, "  GPU slot shares:");
        for s in slots.shares() {
            let _ = writeln!(
                out,
                "    {}: {:>5.1}% ({:+.0}% vs mean)",
                s.slot,
                s.fraction * 100.0,
                (s.relative_to_mean - 1.0) * 100.0
            );
        }
    }
    out
}

fn section_involvement(ctx: &SectionCtx<'_>) -> String {
    let index = ctx.index();
    let mut out = String::new();
    let inv = InvolvementTable::from_index(index);
    if inv.known() > 0 {
        let _ = writeln!(out, "\n-- Multi-GPU involvement (RQ3, Table III) --");
        for row in inv.rows() {
            let _ = writeln!(
                out,
                "  {} GPU(s): {:>4} ({:>5.2}%)",
                row.gpus,
                row.count,
                row.fraction * 100.0
            );
        }
        let _ = writeln!(out, "  unknown involvement: {}", inv.unknown());
    }
    out
}

fn section_tbf(ctx: &SectionCtx<'_>) -> String {
    let index = ctx.index();
    let mut out = String::new();
    if let Some(tbf) = TbfAnalysis::from_index(index) {
        let _ = writeln!(out, "\n-- Time between failures (RQ4) --");
        let (mtbf_lo, mtbf_hi) = tbf.mtbf_ci_hours(0.95);
        let _ = writeln!(
            out,
            "  MTBF {:.1} h (95% CI {:.1}-{:.1})   p25 {:.1} h   median {:.1} h   p75 {:.1} h",
            tbf.mtbf_hours(),
            mtbf_lo,
            mtbf_hi,
            tbf.quantile(0.25),
            tbf.quantile(0.5),
            tbf.p75_hours()
        );
        let rows = per_category_tbf_index(index, 5);
        for row in rows.iter().take(5) {
            let _ = writeln!(
                out,
                "  {:<16} mean TBF {:>8.1} h (n = {})",
                row.category.label(),
                row.summary.mean(),
                row.summary.n() + 1
            );
        }
    }

    if let Some(t) = MultiGpuTemporal::from_index(index, 96.0) {
        let _ = writeln!(
            out,
            "  multi-GPU clustering: CV {:.2}, follow-up within {:.0} h: {:.0}% (poisson {:.0}%)",
            t.report.cv,
            t.report.follow_up_window,
            t.follow_up_probability * 100.0,
            t.poisson_baseline * 100.0
        );
    }
    out
}

fn section_ttr_and_racks(ctx: &SectionCtx<'_>) -> String {
    let index = ctx.index();
    let mut out = String::new();
    if let Some(ttr) = TtrAnalysis::from_index(index) {
        let _ = writeln!(out, "\n-- Time to recovery (RQ5) --");
        let _ = writeln!(
            out,
            "  MTTR {:.1} h   median {:.1} h   p90 {:.1} h   max {:.1} h",
            ttr.mttr_hours(),
            ttr.median_hours(),
            ttr.quantile(0.9),
            ttr.max_hours()
        );
        let rows = per_category_ttr_index(index);
        if let Some(worst) = rows.last() {
            let _ = writeln!(
                out,
                "  slowest category: {} (mean {:.1} h, max {:.1} h, {:.1}% of failures)",
                worst.category.label(),
                worst.summary.mean(),
                worst.summary.max(),
                worst.share_of_failures * 100.0
            );
        }
    }

    // Rack-level distribution (related-work generalizability claim).
    let racks = RackDistribution::from_index(index);
    if let Some(test) = racks.uniformity_test() {
        let k = (racks.shares().len() as f64 * 0.2).round().max(1.0) as usize;
        let _ = writeln!(
            out,
            "  rack uniformity: chi2 = {:.0} (p = {:.3}) across {} racks; top {} racks hold {:.0}%",
            test.statistic,
            test.p_value,
            racks.shares().len(),
            k,
            racks.top_rack_share(k) * 100.0
        );
    }
    out
}

fn section_availability(ctx: &SectionCtx<'_>) -> String {
    let index = ctx.index();
    let mut out = String::new();
    if let Some(avail) = AvailabilityAnalysis::from_index(index) {
        let _ = writeln!(out, "\n-- Repair overlap and availability --");
        let _ = writeln!(
            out,
            "  {:.0}% of failures arrive with repairs still open; mean {:.2} concurrent (max {})",
            avail.overlap_probability() * 100.0,
            avail.mean_concurrent_repairs(),
            avail.max_concurrent_repairs()
        );
        let _ = writeln!(
            out,
            "  node availability {:.3}% ({:.0} node-hours lost)",
            avail.node_availability() * 100.0,
            avail.node_hours_lost()
        );
    }
    out
}

fn section_survival(ctx: &SectionCtx<'_>) -> String {
    let index = ctx.index();
    let mut out = String::new();
    if let Some(surv) = NodeSurvival::from_index(index) {
        let horizon = index.window().duration().get();
        let _ = writeln!(out, "\n-- Node survival (time to first failure) --");
        let _ = writeln!(
            out,
            "  {} of {} nodes failed at least once; S(quarter)={:.2} S(half)={:.2} S(end)={:.2}",
            surv.observed_failures(),
            surv.observed_failures() + surv.censored_nodes(),
            surv.survival_at(horizon * 0.25),
            surv.survival_at(horizon * 0.5),
            surv.survival_at(horizon)
        );
    }
    out
}

fn section_seasonal(ctx: &SectionCtx<'_>) -> String {
    let index = ctx.index();
    let mut out = String::new();
    let seasonal = SeasonalAnalysis::from_index(index);
    if let Some(r) = seasonal.density_ttr_correlation() {
        let _ = writeln!(out, "\n-- Seasonal (Figs. 11-12) --");
        let counts = seasonal.monthly_failure_counts();
        let _ = writeln!(
            out,
            "  monthly failures: min {} / max {} across {} months",
            counts.iter().min().unwrap_or(&0),
            counts.iter().max().unwrap_or(&0),
            counts.len()
        );
        let _ = writeln!(out, "  corr(failure count, mean TTR) = {r:+.2}");
        if let Some((h1, h2)) = seasonal.half_year_ttr_means() {
            let _ = writeln!(
                out,
                "  mean TTR Jan-Jun {h1:.1} h vs Jul-Dec {h2:.1} h"
            );
        }
    }
    out
}

// ---------------------------------------------------------------------
// JSON renderers (one per section, stable schema — see DESIGN.md).
// ---------------------------------------------------------------------

fn json_header(ctx: &SectionCtx<'_>) -> JsonValue {
    let index = ctx.index();
    JsonValue::object()
        .field("system", index.spec().name())
        .field("nodes", index.spec().nodes())
        .field("gpus_per_node", index.spec().gpus_per_node())
        .field("failures", index.len())
        .field("window", index.window().to_string())
        .field("days", index.window().duration().days())
        .build()
}

fn json_categories(ctx: &SectionCtx<'_>) -> JsonValue {
    let index = ctx.index();
    let cats = CategoryBreakdown::from_index(index);
    let loci = LocusBreakdown::from_index(index);
    JsonValue::object()
        .field(
            "categories",
            JsonValue::Array(
                cats.shares()
                    .iter()
                    .map(|s| {
                        JsonValue::object()
                            .field("category", s.category.label())
                            .field("count", s.count)
                            .field("fraction", s.fraction)
                            .build()
                    })
                    .collect(),
            ),
        )
        .field(
            "loci",
            JsonValue::Array(
                loci.shares()
                    .iter()
                    .map(|s| {
                        JsonValue::object()
                            .field("locus", s.locus.label())
                            .field("count", s.count)
                            .field("fraction", s.fraction)
                            .build()
                    })
                    .collect(),
            ),
        )
        .build()
}

fn json_spatial(ctx: &SectionCtx<'_>) -> JsonValue {
    let index = ctx.index();
    let nodes = NodeDistribution::from_index(index);
    let slots = SlotDistribution::from_index(index);
    JsonValue::object()
        .field(
            "nodes",
            JsonValue::object()
                .field("failing", nodes.failing_nodes())
                .field("total", nodes.total_nodes())
                .field("fraction_exactly_one", nodes.fraction_with_exactly(1))
                .field("fraction_exactly_two", nodes.fraction_with_exactly(2))
                .field("fraction_multiple", nodes.fraction_with_multiple())
                .build(),
        )
        .field(
            "slots",
            JsonValue::Array(
                slots
                    .shares()
                    .iter()
                    .map(|s| {
                        JsonValue::object()
                            .field("slot", s.slot.index())
                            .field("count", s.count)
                            .field("fraction", s.fraction)
                            .field("relative_to_mean", s.relative_to_mean)
                            .build()
                    })
                    .collect(),
            ),
        )
        .build()
}

fn json_involvement(ctx: &SectionCtx<'_>) -> JsonValue {
    let index = ctx.index();
    let inv = InvolvementTable::from_index(index);
    if inv.known() == 0 {
        return JsonValue::Null;
    }
    JsonValue::object()
        .field("known", inv.known())
        .field("unknown", inv.unknown())
        .field(
            "rows",
            JsonValue::Array(
                inv.rows()
                    .iter()
                    .map(|row| {
                        JsonValue::object()
                            .field("gpus", row.gpus)
                            .field("count", row.count)
                            .field("fraction", row.fraction)
                            .build()
                    })
                    .collect(),
            ),
        )
        .build()
}

fn json_tbf(ctx: &SectionCtx<'_>) -> JsonValue {
    let index = ctx.index();
    let tbf = TbfAnalysis::from_index(index);
    let temporal = MultiGpuTemporal::from_index(index, 96.0);
    if tbf.is_none() && temporal.is_none() {
        return JsonValue::Null;
    }
    let tbf_json = tbf.map_or(JsonValue::Null, |t| {
        let (lo, hi) = t.mtbf_ci_hours(0.95);
        JsonValue::object()
            .field("mtbf_hours", t.mtbf_hours())
            .field("mtbf_ci95_hours", JsonValue::array([lo, hi]))
            .field("p25_hours", t.quantile(0.25))
            .field("median_hours", t.quantile(0.5))
            .field("p75_hours", t.p75_hours())
            .field(
                "per_category",
                JsonValue::Array(
                    per_category_tbf_index(index, 5)
                        .iter()
                        .take(5)
                        .map(|row| {
                            JsonValue::object()
                                .field("category", row.category.label())
                                .field("mean_tbf_hours", row.summary.mean())
                                .field("events", row.summary.n() + 1)
                                .build()
                        })
                        .collect(),
                ),
            )
            .build()
    });
    let temporal_json = temporal.map_or(JsonValue::Null, |t| {
        JsonValue::object()
            .field("cv", t.report.cv)
            .field("follow_up_window_hours", t.report.follow_up_window)
            .field("follow_up_probability", t.follow_up_probability)
            .field("poisson_baseline", t.poisson_baseline)
            .build()
    });
    JsonValue::object()
        .field("tbf", tbf_json)
        .field("multi_gpu_clustering", temporal_json)
        .build()
}

fn json_ttr(ctx: &SectionCtx<'_>) -> JsonValue {
    let index = ctx.index();
    let ttr = TtrAnalysis::from_index(index);
    let racks = RackDistribution::from_index(index);
    let rack_test = racks.uniformity_test();
    if ttr.is_none() && rack_test.is_none() {
        return JsonValue::Null;
    }
    let ttr_json = ttr.map_or(JsonValue::Null, |t| {
        JsonValue::object()
            .field("mttr_hours", t.mttr_hours())
            .field("median_hours", t.median_hours())
            .field("p90_hours", t.quantile(0.9))
            .field("max_hours", t.max_hours())
            .field(
                "per_category",
                JsonValue::Array(
                    per_category_ttr_index(index)
                        .iter()
                        .map(|row| {
                            JsonValue::object()
                                .field("category", row.category.label())
                                .field("mean_hours", row.summary.mean())
                                .field("max_hours", row.summary.max())
                                .field("share_of_failures", row.share_of_failures)
                                .field("n", row.summary.n())
                                .build()
                        })
                        .collect(),
                ),
            )
            .build()
    });
    let racks_json = rack_test.map_or(JsonValue::Null, |test| {
        let k = (racks.shares().len() as f64 * 0.2).round().max(1.0) as usize;
        JsonValue::object()
            .field("chi2", test.statistic)
            .field("p_value", test.p_value)
            .field("racks", racks.shares().len())
            .field("top_racks", k)
            .field("top_share", racks.top_rack_share(k))
            .build()
    });
    JsonValue::object()
        .field("ttr", ttr_json)
        .field("racks", racks_json)
        .build()
}

fn json_availability(ctx: &SectionCtx<'_>) -> JsonValue {
    let index = ctx.index();
    AvailabilityAnalysis::from_index(index).map_or(JsonValue::Null, |a| {
        JsonValue::object()
            .field("overlap_probability", a.overlap_probability())
            .field("mean_concurrent_repairs", a.mean_concurrent_repairs())
            .field("max_concurrent_repairs", a.max_concurrent_repairs())
            .field("repair_busy_fraction", a.repair_busy_fraction())
            .field("node_hours_lost", a.node_hours_lost())
            .field("node_availability", a.node_availability())
            .build()
    })
}

fn json_survival(ctx: &SectionCtx<'_>) -> JsonValue {
    let index = ctx.index();
    NodeSurvival::from_index(index).map_or(JsonValue::Null, |s| {
        let horizon = index.window().duration().get();
        JsonValue::object()
            .field("observed_failures", s.observed_failures())
            .field("censored_nodes", s.censored_nodes())
            .field("survival_quarter", s.survival_at(horizon * 0.25))
            .field("survival_half", s.survival_at(horizon * 0.5))
            .field("survival_end", s.survival_at(horizon))
            .field("median_hours", s.median_hours())
            .build()
    })
}

fn json_seasonal(ctx: &SectionCtx<'_>) -> JsonValue {
    let index = ctx.index();
    let seasonal = SeasonalAnalysis::from_index(index);
    let Some(r) = seasonal.density_ttr_correlation() else {
        return JsonValue::Null;
    };
    let counts = seasonal.monthly_failure_counts();
    JsonValue::object()
        .field(
            "months",
            JsonValue::Array(
                seasonal
                    .buckets()
                    .iter()
                    .map(|b| {
                        JsonValue::object()
                            .field("year", b.year)
                            .field("month", b.month.number())
                            .field("failures", b.failures)
                            .field("mean_ttr_hours", b.ttr.map(|s| s.mean()))
                            .build()
                    })
                    .collect(),
            ),
        )
        .field("min_monthly_failures", counts.iter().min().copied())
        .field("max_monthly_failures", counts.iter().max().copied())
        .field("density_ttr_correlation", r)
        .field(
            "half_year_ttr_means",
            seasonal
                .half_year_ttr_means()
                .map_or(JsonValue::Null, |(h1, h2)| JsonValue::array([h1, h2])),
        )
        .build()
}

fn section_metrics(ctx: &SectionCtx<'_>) -> String {
    match ctx.trace() {
        Some(trace) if !trace.is_empty() => {
            format!("\n-- Runtime metrics --\n{}", trace.render_text())
        }
        _ => String::new(),
    }
}

fn json_metrics(ctx: &SectionCtx<'_>) -> JsonValue {
    match ctx.trace() {
        Some(trace) if !trace.is_empty() => trace.to_json(false),
        _ => JsonValue::Null,
    }
}

// ---------------------------------------------------------------------
// Whole-report entry points.
// ---------------------------------------------------------------------

/// Renders the full single-system reliability report (all five research
/// questions) as plain text.
///
/// # Examples
///
/// ```
/// use failsim::{Simulator, SystemModel};
///
/// let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
/// let text = failscope::render_report(&log);
/// assert!(text.contains("Failure categories"));
/// assert!(text.contains("MTBF"));
/// ```
pub fn render_report(log: &FailureLog) -> String {
    render_report_threaded(log, 1)
}

/// [`render_report`] with the sections rendered on up to `threads`
/// workers. The sections are concatenated in declaration order, so the
/// output is byte-identical to the serial render at any thread count.
pub fn render_report_threaded(log: &FailureLog, threads: usize) -> String {
    let view = LogView::new(log);
    render_text_sections(&all_sections(), &SectionCtx::new(&view), threads)
}

/// Renders the full report as NDJSON — one line per registry section,
/// byte-identical at every thread count.
///
/// # Examples
///
/// ```
/// use failsim::{Simulator, SystemModel};
///
/// let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
/// let ndjson = failscope::render_report_json(&log, 1);
/// assert_eq!(ndjson.lines().count(), failscope::SECTIONS.len());
/// assert!(ndjson.starts_with(r#"{"id":"header""#));
/// ```
pub fn render_report_json(log: &FailureLog, threads: usize) -> String {
    let view = LogView::new(log);
    render_json_sections(&all_sections(), &SectionCtx::new(&view), threads)
}

/// Renders the two-generation comparison (MTBF/MTTR factors and the
/// performance-error-proportionality argument).
pub fn render_comparison(older: &FailureLog, newer: &FailureLog) -> String {
    render_comparison_threaded(older, newer, 1)
}

/// [`render_comparison`] with the per-log analyses computed on up to
/// `threads` workers; output is identical at any thread count.
pub fn render_comparison_threaded(
    older: &FailureLog,
    newer: &FailureLog,
    threads: usize,
) -> String {
    let older_view = LogView::new(older);
    let newer_view = LogView::new(newer);
    let views = [&older_view, &newer_view];
    let ttrs = failstats::par_map_ordered(2, threads, |i| TtrAnalysis::from_index(views[i]));

    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Generation comparison: {} -> {} ===",
        older.spec().name(),
        newer.spec().name()
    );
    if let Some(c) = PepComparison::from_indexes(&older_view, &newer_view) {
        let _ = writeln!(out, "  compute (Rpeak): {:>6.2}x", c.compute_factor());
        let _ = writeln!(out, "  MTBF:            {:>6.2}x", c.mtbf_factor());
        let _ = writeln!(
            out,
            "  PEP (FLOP/MTBF): {:>6.2}x  ({:.0} -> {:.0} EFLOP per failure-free period)",
            c.pep_factor(),
            c.older.exaflop_per_failure_free_period(),
            c.newer.exaflop_per_failure_free_period()
        );
        if c.reliability_lags_compute() {
            let _ = writeln!(
                out,
                "  note: reliability improved more slowly than raw compute"
            );
        }
    }
    if let [Some(a), Some(b)] = &ttrs[..] {
        let _ = writeln!(
            out,
            "  MTTR: {:.1} h -> {:.1} h (time to recovery is not improving)",
            a.mttr_hours(),
            b.mttr_hours()
        );
    }
    out
}

/// The comparison as one structured JSON document (`"pep"` and
/// `"mttr_hours"` are `null` when the underlying analysis is undefined
/// for the pair).
pub fn comparison_json(older: &FailureLog, newer: &FailureLog, threads: usize) -> JsonValue {
    let older_view = LogView::new(older);
    let newer_view = LogView::new(newer);
    let views = [&older_view, &newer_view];
    let ttrs = failstats::par_map_ordered(2, threads, |i| TtrAnalysis::from_index(views[i]));

    let pep = PepComparison::from_indexes(&older_view, &newer_view).map_or(
        JsonValue::Null,
        |c| {
            JsonValue::object()
                .field("compute_factor", c.compute_factor())
                .field("mtbf_factor", c.mtbf_factor())
                .field("pep_factor", c.pep_factor())
                .field(
                    "older_eflop_per_period",
                    c.older.exaflop_per_failure_free_period(),
                )
                .field(
                    "newer_eflop_per_period",
                    c.newer.exaflop_per_failure_free_period(),
                )
                .field("reliability_lags_compute", c.reliability_lags_compute())
                .build()
        },
    );
    let mttr = if let [Some(a), Some(b)] = &ttrs[..] {
        JsonValue::object()
            .field("older", a.mttr_hours())
            .field("newer", b.mttr_hours())
            .build()
    } else {
        JsonValue::Null
    };
    JsonValue::object()
        .field("older", older.spec().name())
        .field("newer", newer.spec().name())
        .field("pep", pep)
        .field("mttr_hours", mttr)
        .build()
}

/// [`comparison_json`], rendered as a single newline-terminated JSON
/// line — the `failctl compare --format json` output.
pub fn render_comparison_json(older: &FailureLog, newer: &FailureLog, threads: usize) -> String {
    let mut line = comparison_json(older, newer, threads).render();
    line.push('\n');
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streamview::StreamView;
    use failsim::{Simulator, SystemModel};

    fn t3() -> FailureLog {
        Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap()
    }

    #[test]
    fn report_contains_all_sections() {
        let text = render_report(&t3());
        for needle in [
            "Reliability report: Tsubame-3",
            "Failure categories",
            "Software root loci",
            "Per-node distribution",
            "Multi-GPU involvement",
            "Time between failures",
            "Time to recovery",
            "Repair overlap and availability",
            "Node survival",
            "Seasonal",
        ] {
            assert!(text.contains(needle), "missing section {needle}\n{text}");
        }
    }

    #[test]
    fn t2_report_has_no_locus_section() {
        let log = Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap();
        let text = render_report(&log);
        assert!(!text.contains("Software root loci"));
        assert!(text.contains("GPU slot shares"));
    }

    #[test]
    fn threaded_render_is_byte_identical() {
        let log = Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap();
        let serial = render_report(&log);
        for threads in [2, 4, 8] {
            assert_eq!(serial, render_report_threaded(&log, threads));
        }
    }

    #[test]
    fn json_report_is_one_line_per_section_and_thread_identical() {
        let log = t3();
        let serial = render_report_json(&log, 1);
        for threads in [2, 4, 8] {
            assert_eq!(serial, render_report_json(&log, threads));
        }
        let lines: Vec<&str> = serial.lines().collect();
        assert_eq!(lines.len(), SECTIONS.len());
        for (line, section) in lines.iter().zip(SECTIONS) {
            assert!(
                line.starts_with(&format!(r#"{{"id":"{}","title":"#, section.id)),
                "line does not open with its section id: {line}"
            );
            assert!(line.ends_with('}'), "unterminated JSON line: {line}");
        }
    }

    #[test]
    fn registry_lookup_and_selection() {
        assert_eq!(section_by_id("tbf").map(|s| s.title), Some("Time between failures (RQ4)"));
        assert!(section_by_id("bogus").is_none());

        let picked = select_sections("ttr, header").expect("valid ids");
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].id, "ttr");
        assert_eq!(picked[1].id, "header");

        assert!(select_sections("header,bogus").is_err());
        assert!(select_sections(" , ").is_err());
    }

    #[test]
    fn selected_sections_render_just_those() {
        let log = t3();
        let view = LogView::new(&log);
        let picked = select_sections("header,tbf").expect("valid ids");
        let ctx = SectionCtx::new(&view);
        let text = render_text_sections(&picked, &ctx, 2);
        assert!(text.contains("Reliability report"));
        assert!(text.contains("Time between failures"));
        assert!(!text.contains("Time to recovery"));
        let json = render_json_sections(&picked, &ctx, 2);
        assert_eq!(json.lines().count(), 2);
    }

    #[test]
    fn sections_agree_between_batch_and_stream_views() {
        let log = t3();
        let view = LogView::new(&log);
        let mut sv = StreamView::for_log(&log);
        for rec in log.iter() {
            sv.push(rec.clone()).unwrap();
        }
        let batch = SectionCtx::new(&view);
        let stream = SectionCtx::new(&sv);
        for section in SECTIONS {
            assert_eq!(
                (section.json)(&batch).render(),
                (section.json)(&stream).render(),
                "JSON diverges for section {}",
                section.id
            );
            assert_eq!(
                (section.text)(&batch),
                (section.text)(&stream),
                "text diverges for section {}",
                section.id
            );
        }
    }

    #[test]
    fn comparison_report() {
        let t2 = Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap();
        let t3 = t3();
        let text = render_comparison(&t2, &t3);
        assert!(text.contains("compute (Rpeak)"));
        assert!(text.contains("MTTR"));
        assert!(text.contains("reliability improved more slowly"));
        assert_eq!(text, render_comparison_threaded(&t2, &t3, 4));

        let json = render_comparison_json(&t2, &t3, 1);
        assert_eq!(json, render_comparison_json(&t2, &t3, 4));
        assert!(json.contains(r#""pep":{"compute_factor":"#), "{json}");
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn empty_log_report_does_not_panic() {
        let log = t3().filtered(|_| false);
        let text = render_report(&log);
        assert!(text.contains("0 failures"));
        // Empty sections degrade to data:null on the JSON side.
        let json = render_report_json(&log, 1);
        assert!(json.contains(r#"{"id":"tbf","title":"Time between failures (RQ4)","data":null}"#));
        // Survival still has data: every node is a censored lifetime.
        assert!(json.contains(r#"{"id":"survival","title":"Node survival","data":{"observed_failures":0"#));
    }
}
