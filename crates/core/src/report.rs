//! Operator-facing plain-text reports assembled from the analyses.

use std::fmt::Write as _;

use failtypes::FailureLog;

use crate::categories::{CategoryBreakdown, LocusBreakdown};
use crate::multigpu::InvolvementTable;
use crate::pep::PepComparison;
use crate::seasonal::SeasonalAnalysis;
use crate::spatial::{NodeDistribution, SlotDistribution};
use crate::tbf::{per_category_tbf, TbfAnalysis};
use crate::temporal::MultiGpuTemporal;
use crate::ttr::{per_category_ttr, TtrAnalysis};

/// Renders the full single-system reliability report (all five research
/// questions) as plain text.
///
/// # Examples
///
/// ```
/// use failsim::{Simulator, SystemModel};
///
/// let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
/// let text = failscope::render_report(&log);
/// assert!(text.contains("Failure categories"));
/// assert!(text.contains("MTBF"));
/// ```
pub fn render_report(log: &FailureLog) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== Reliability report: {} ===", log.spec().name());
    let _ = writeln!(
        out,
        "{} failures over {} ({:.0} days)",
        log.len(),
        log.window(),
        log.window().duration().days()
    );

    // RQ1 — categories.
    let cats = CategoryBreakdown::from_log(log);
    let _ = writeln!(out, "\n-- Failure categories (RQ1) --");
    for share in cats.shares() {
        let _ = writeln!(
            out,
            "  {:<16} {:>5}  {:>6.2}%",
            share.category.label(),
            share.count,
            share.fraction * 100.0
        );
    }
    let loci = LocusBreakdown::from_log(log);
    if loci.total() > 0 {
        let _ = writeln!(out, "\n-- Software root loci (Fig. 3) --");
        for share in loci.shares() {
            let _ = writeln!(
                out,
                "  {:<22} {:>4}  {:>6.2}%",
                share.locus.label(),
                share.count,
                share.fraction * 100.0
            );
        }
    }

    // RQ2 — spatial.
    let nodes = NodeDistribution::from_log(log);
    let _ = writeln!(out, "\n-- Per-node distribution (RQ2) --");
    let _ = writeln!(
        out,
        "  {} of {} nodes failed at least once",
        nodes.failing_nodes(),
        nodes.total_nodes()
    );
    let _ = writeln!(
        out,
        "  exactly 1 failure: {:>5.1}%   exactly 2: {:>5.1}%   more than 1: {:>5.1}%",
        nodes.fraction_with_exactly(1) * 100.0,
        nodes.fraction_with_exactly(2) * 100.0,
        nodes.fraction_with_multiple() * 100.0
    );
    let slots = SlotDistribution::from_log(log);
    if slots.total_involvements() > 0 {
        let _ = writeln!(out, "  GPU slot shares:");
        for s in slots.shares() {
            let _ = writeln!(
                out,
                "    {}: {:>5.1}% ({:+.0}% vs mean)",
                s.slot,
                s.fraction * 100.0,
                (s.relative_to_mean - 1.0) * 100.0
            );
        }
    }

    // RQ3 — multi-GPU involvement.
    let inv = InvolvementTable::from_log(log);
    if inv.known() > 0 {
        let _ = writeln!(out, "\n-- Multi-GPU involvement (RQ3, Table III) --");
        for row in inv.rows() {
            let _ = writeln!(
                out,
                "  {} GPU(s): {:>4} ({:>5.2}%)",
                row.gpus,
                row.count,
                row.fraction * 100.0
            );
        }
        let _ = writeln!(out, "  unknown involvement: {}", inv.unknown());
    }

    // RQ4 — TBF.
    if let Some(tbf) = TbfAnalysis::from_log(log) {
        let _ = writeln!(out, "\n-- Time between failures (RQ4) --");
        let (mtbf_lo, mtbf_hi) = tbf.mtbf_ci_hours(0.95);
        let _ = writeln!(
            out,
            "  MTBF {:.1} h (95% CI {:.1}-{:.1})   p25 {:.1} h   median {:.1} h   p75 {:.1} h",
            tbf.mtbf_hours(),
            mtbf_lo,
            mtbf_hi,
            tbf.quantile(0.25),
            tbf.quantile(0.5),
            tbf.p75_hours()
        );
        let rows = per_category_tbf(log, 5);
        for row in rows.iter().take(5) {
            let _ = writeln!(
                out,
                "  {:<16} mean TBF {:>8.1} h (n = {})",
                row.category.label(),
                row.summary.mean(),
                row.summary.n() + 1
            );
        }
    }

    if let Some(t) = MultiGpuTemporal::from_log(log, 96.0) {
        let _ = writeln!(
            out,
            "  multi-GPU clustering: CV {:.2}, follow-up within {:.0} h: {:.0}% (poisson {:.0}%)",
            t.report.cv,
            t.report.follow_up_window,
            t.follow_up_probability * 100.0,
            t.poisson_baseline * 100.0
        );
    }

    // RQ5 — TTR.
    if let Some(ttr) = TtrAnalysis::from_log(log) {
        let _ = writeln!(out, "\n-- Time to recovery (RQ5) --");
        let _ = writeln!(
            out,
            "  MTTR {:.1} h   median {:.1} h   p90 {:.1} h   max {:.1} h",
            ttr.mttr_hours(),
            ttr.median_hours(),
            ttr.quantile(0.9),
            ttr.max_hours()
        );
        let rows = per_category_ttr(log);
        if let Some(worst) = rows.last() {
            let _ = writeln!(
                out,
                "  slowest category: {} (mean {:.1} h, max {:.1} h, {:.1}% of failures)",
                worst.category.label(),
                worst.summary.mean(),
                worst.summary.max(),
                worst.share_of_failures * 100.0
            );
        }
    }

    // Rack-level distribution (related-work generalizability claim).
    let racks = crate::spatial::RackDistribution::from_log(log);
    if let Some(test) = racks.uniformity_test() {
        let k = (racks.shares().len() as f64 * 0.2).round().max(1.0) as usize;
        let _ = writeln!(
            out,
            "  rack uniformity: chi2 = {:.0} (p = {:.3}) across {} racks; top {} racks hold {:.0}%",
            test.statistic,
            test.p_value,
            racks.shares().len(),
            k,
            racks.top_rack_share(k) * 100.0
        );
    }

    // Repair overlap / availability (RQ5 implication 1).
    if let Some(avail) = crate::availability::AvailabilityAnalysis::from_log(log) {
        let _ = writeln!(out, "\n-- Repair overlap and availability --");
        let _ = writeln!(
            out,
            "  {:.0}% of failures arrive with repairs still open; mean {:.2} concurrent (max {})",
            avail.overlap_probability() * 100.0,
            avail.mean_concurrent_repairs(),
            avail.max_concurrent_repairs()
        );
        let _ = writeln!(
            out,
            "  node availability {:.3}% ({:.0} node-hours lost)",
            avail.node_availability() * 100.0,
            avail.node_hours_lost()
        );
    }

    // Node survival.
    if let Some(surv) = crate::survival::NodeSurvival::from_log(log) {
        let horizon = log.window().duration().get();
        let _ = writeln!(out, "\n-- Node survival (time to first failure) --");
        let _ = writeln!(
            out,
            "  {} of {} nodes failed at least once; S(quarter)={:.2} S(half)={:.2} S(end)={:.2}",
            surv.observed_failures(),
            surv.observed_failures() + surv.censored_nodes(),
            surv.survival_at(horizon * 0.25),
            surv.survival_at(horizon * 0.5),
            surv.survival_at(horizon)
        );
    }

    // Seasonal.
    let seasonal = SeasonalAnalysis::from_log(log);
    if let Some(r) = seasonal.density_ttr_correlation() {
        let _ = writeln!(out, "\n-- Seasonal (Figs. 11-12) --");
        let counts = seasonal.monthly_failure_counts();
        let _ = writeln!(
            out,
            "  monthly failures: min {} / max {} across {} months",
            counts.iter().min().unwrap_or(&0),
            counts.iter().max().unwrap_or(&0),
            counts.len()
        );
        let _ = writeln!(out, "  corr(failure count, mean TTR) = {r:+.2}");
        if let Some((h1, h2)) = seasonal.half_year_ttr_means() {
            let _ = writeln!(
                out,
                "  mean TTR Jan-Jun {h1:.1} h vs Jul-Dec {h2:.1} h"
            );
        }
    }

    out
}

/// Renders the two-generation comparison (MTBF/MTTR factors and the
/// performance-error-proportionality argument).
pub fn render_comparison(older: &FailureLog, newer: &FailureLog) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Generation comparison: {} -> {} ===",
        older.spec().name(),
        newer.spec().name()
    );
    if let Some(c) = PepComparison::new(older, newer) {
        let _ = writeln!(out, "  compute (Rpeak): {:>6.2}x", c.compute_factor());
        let _ = writeln!(out, "  MTBF:            {:>6.2}x", c.mtbf_factor());
        let _ = writeln!(
            out,
            "  PEP (FLOP/MTBF): {:>6.2}x  ({:.0} -> {:.0} EFLOP per failure-free period)",
            c.pep_factor(),
            c.older.exaflop_per_failure_free_period(),
            c.newer.exaflop_per_failure_free_period()
        );
        if c.reliability_lags_compute() {
            let _ = writeln!(
                out,
                "  note: reliability improved more slowly than raw compute"
            );
        }
    }
    let (a, b) = (TtrAnalysis::from_log(older), TtrAnalysis::from_log(newer));
    if let (Some(a), Some(b)) = (a, b) {
        let _ = writeln!(
            out,
            "  MTTR: {:.1} h -> {:.1} h (time to recovery is not improving)",
            a.mttr_hours(),
            b.mttr_hours()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{Simulator, SystemModel};

    #[test]
    fn report_contains_all_sections() {
        let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
        let text = render_report(&log);
        for needle in [
            "Reliability report: Tsubame-3",
            "Failure categories",
            "Software root loci",
            "Per-node distribution",
            "Multi-GPU involvement",
            "Time between failures",
            "Time to recovery",
            "Repair overlap and availability",
            "Node survival",
            "Seasonal",
        ] {
            assert!(text.contains(needle), "missing section {needle}\n{text}");
        }
    }

    #[test]
    fn t2_report_has_no_locus_section() {
        let log = Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap();
        let text = render_report(&log);
        assert!(!text.contains("Software root loci"));
        assert!(text.contains("GPU slot shares"));
    }

    #[test]
    fn comparison_report() {
        let t2 = Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap();
        let t3 = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
        let text = render_comparison(&t2, &t3);
        assert!(text.contains("compute (Rpeak)"));
        assert!(text.contains("MTTR"));
        assert!(text.contains("reliability improved more slowly"));
    }

    #[test]
    fn empty_log_report_does_not_panic() {
        let log = Simulator::new(SystemModel::tsubame3(), 43)
            .generate()
            .unwrap()
            .filtered(|_| false);
        let text = render_report(&log);
        assert!(text.contains("0 failures"));
    }
}
