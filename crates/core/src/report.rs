//! Operator-facing plain-text reports assembled from the analyses.
//!
//! The report is a fixed sequence of independent sections, each a pure
//! function of a shared [`LogView`]. [`render_report_threaded`] renders
//! the sections on a worker pool and concatenates them in declaration
//! order, so the output is byte-identical at every thread count;
//! [`render_report`] is the single-threaded entry point.

use std::fmt::Write as _;

use failtypes::FailureLog;

use crate::categories::{CategoryBreakdown, LocusBreakdown};
use crate::logview::LogView;
use crate::multigpu::InvolvementTable;
use crate::pep::PepComparison;
use crate::seasonal::SeasonalAnalysis;
use crate::spatial::{NodeDistribution, SlotDistribution};
use crate::tbf::{per_category_tbf_view, TbfAnalysis};
use crate::temporal::MultiGpuTemporal;
use crate::ttr::{per_category_ttr_view, TtrAnalysis};

/// The report sections in print order. Each is independent, so the
/// threaded renderer can compute them concurrently.
const SECTIONS: &[fn(&LogView<'_>) -> String] = &[
    section_header,
    section_categories,
    section_spatial,
    section_involvement,
    section_tbf,
    section_ttr_and_racks,
    section_availability,
    section_survival,
    section_seasonal,
];

fn section_header(view: &LogView<'_>) -> String {
    let log = view.log();
    let mut out = String::new();
    let _ = writeln!(out, "=== Reliability report: {} ===", log.spec().name());
    let _ = writeln!(
        out,
        "{} failures over {} ({:.0} days)",
        log.len(),
        log.window(),
        log.window().duration().days()
    );
    out
}

fn section_categories(view: &LogView<'_>) -> String {
    let mut out = String::new();
    let cats = CategoryBreakdown::from_view(view);
    let _ = writeln!(out, "\n-- Failure categories (RQ1) --");
    for share in cats.shares() {
        let _ = writeln!(
            out,
            "  {:<16} {:>5}  {:>6.2}%",
            share.category.label(),
            share.count,
            share.fraction * 100.0
        );
    }
    let loci = LocusBreakdown::from_view(view);
    if loci.total() > 0 {
        let _ = writeln!(out, "\n-- Software root loci (Fig. 3) --");
        for share in loci.shares() {
            let _ = writeln!(
                out,
                "  {:<22} {:>4}  {:>6.2}%",
                share.locus.label(),
                share.count,
                share.fraction * 100.0
            );
        }
    }
    out
}

fn section_spatial(view: &LogView<'_>) -> String {
    let mut out = String::new();
    let nodes = NodeDistribution::from_view(view);
    let _ = writeln!(out, "\n-- Per-node distribution (RQ2) --");
    let _ = writeln!(
        out,
        "  {} of {} nodes failed at least once",
        nodes.failing_nodes(),
        nodes.total_nodes()
    );
    let _ = writeln!(
        out,
        "  exactly 1 failure: {:>5.1}%   exactly 2: {:>5.1}%   more than 1: {:>5.1}%",
        nodes.fraction_with_exactly(1) * 100.0,
        nodes.fraction_with_exactly(2) * 100.0,
        nodes.fraction_with_multiple() * 100.0
    );
    let slots = SlotDistribution::from_view(view);
    if slots.total_involvements() > 0 {
        let _ = writeln!(out, "  GPU slot shares:");
        for s in slots.shares() {
            let _ = writeln!(
                out,
                "    {}: {:>5.1}% ({:+.0}% vs mean)",
                s.slot,
                s.fraction * 100.0,
                (s.relative_to_mean - 1.0) * 100.0
            );
        }
    }
    out
}

fn section_involvement(view: &LogView<'_>) -> String {
    let mut out = String::new();
    let inv = InvolvementTable::from_log(view.log());
    if inv.known() > 0 {
        let _ = writeln!(out, "\n-- Multi-GPU involvement (RQ3, Table III) --");
        for row in inv.rows() {
            let _ = writeln!(
                out,
                "  {} GPU(s): {:>4} ({:>5.2}%)",
                row.gpus,
                row.count,
                row.fraction * 100.0
            );
        }
        let _ = writeln!(out, "  unknown involvement: {}", inv.unknown());
    }
    out
}

fn section_tbf(view: &LogView<'_>) -> String {
    let mut out = String::new();
    if let Some(tbf) = TbfAnalysis::from_view(view) {
        let _ = writeln!(out, "\n-- Time between failures (RQ4) --");
        let (mtbf_lo, mtbf_hi) = tbf.mtbf_ci_hours(0.95);
        let _ = writeln!(
            out,
            "  MTBF {:.1} h (95% CI {:.1}-{:.1})   p25 {:.1} h   median {:.1} h   p75 {:.1} h",
            tbf.mtbf_hours(),
            mtbf_lo,
            mtbf_hi,
            tbf.quantile(0.25),
            tbf.quantile(0.5),
            tbf.p75_hours()
        );
        let rows = per_category_tbf_view(view, 5);
        for row in rows.iter().take(5) {
            let _ = writeln!(
                out,
                "  {:<16} mean TBF {:>8.1} h (n = {})",
                row.category.label(),
                row.summary.mean(),
                row.summary.n() + 1
            );
        }
    }

    if let Some(t) = MultiGpuTemporal::from_view(view, 96.0) {
        let _ = writeln!(
            out,
            "  multi-GPU clustering: CV {:.2}, follow-up within {:.0} h: {:.0}% (poisson {:.0}%)",
            t.report.cv,
            t.report.follow_up_window,
            t.follow_up_probability * 100.0,
            t.poisson_baseline * 100.0
        );
    }
    out
}

fn section_ttr_and_racks(view: &LogView<'_>) -> String {
    let mut out = String::new();
    if let Some(ttr) = TtrAnalysis::from_view(view) {
        let _ = writeln!(out, "\n-- Time to recovery (RQ5) --");
        let _ = writeln!(
            out,
            "  MTTR {:.1} h   median {:.1} h   p90 {:.1} h   max {:.1} h",
            ttr.mttr_hours(),
            ttr.median_hours(),
            ttr.quantile(0.9),
            ttr.max_hours()
        );
        let rows = per_category_ttr_view(view);
        if let Some(worst) = rows.last() {
            let _ = writeln!(
                out,
                "  slowest category: {} (mean {:.1} h, max {:.1} h, {:.1}% of failures)",
                worst.category.label(),
                worst.summary.mean(),
                worst.summary.max(),
                worst.share_of_failures * 100.0
            );
        }
    }

    // Rack-level distribution (related-work generalizability claim).
    let racks = crate::spatial::RackDistribution::from_view(view);
    if let Some(test) = racks.uniformity_test() {
        let k = (racks.shares().len() as f64 * 0.2).round().max(1.0) as usize;
        let _ = writeln!(
            out,
            "  rack uniformity: chi2 = {:.0} (p = {:.3}) across {} racks; top {} racks hold {:.0}%",
            test.statistic,
            test.p_value,
            racks.shares().len(),
            k,
            racks.top_rack_share(k) * 100.0
        );
    }
    out
}

fn section_availability(view: &LogView<'_>) -> String {
    let mut out = String::new();
    if let Some(avail) = crate::availability::AvailabilityAnalysis::from_view(view) {
        let _ = writeln!(out, "\n-- Repair overlap and availability --");
        let _ = writeln!(
            out,
            "  {:.0}% of failures arrive with repairs still open; mean {:.2} concurrent (max {})",
            avail.overlap_probability() * 100.0,
            avail.mean_concurrent_repairs(),
            avail.max_concurrent_repairs()
        );
        let _ = writeln!(
            out,
            "  node availability {:.3}% ({:.0} node-hours lost)",
            avail.node_availability() * 100.0,
            avail.node_hours_lost()
        );
    }
    out
}

fn section_survival(view: &LogView<'_>) -> String {
    let mut out = String::new();
    let log = view.log();
    if let Some(surv) = crate::survival::NodeSurvival::from_log(log) {
        let horizon = log.window().duration().get();
        let _ = writeln!(out, "\n-- Node survival (time to first failure) --");
        let _ = writeln!(
            out,
            "  {} of {} nodes failed at least once; S(quarter)={:.2} S(half)={:.2} S(end)={:.2}",
            surv.observed_failures(),
            surv.observed_failures() + surv.censored_nodes(),
            surv.survival_at(horizon * 0.25),
            surv.survival_at(horizon * 0.5),
            surv.survival_at(horizon)
        );
    }
    out
}

fn section_seasonal(view: &LogView<'_>) -> String {
    let mut out = String::new();
    let seasonal = SeasonalAnalysis::from_view(view);
    if let Some(r) = seasonal.density_ttr_correlation() {
        let _ = writeln!(out, "\n-- Seasonal (Figs. 11-12) --");
        let counts = seasonal.monthly_failure_counts();
        let _ = writeln!(
            out,
            "  monthly failures: min {} / max {} across {} months",
            counts.iter().min().unwrap_or(&0),
            counts.iter().max().unwrap_or(&0),
            counts.len()
        );
        let _ = writeln!(out, "  corr(failure count, mean TTR) = {r:+.2}");
        if let Some((h1, h2)) = seasonal.half_year_ttr_means() {
            let _ = writeln!(
                out,
                "  mean TTR Jan-Jun {h1:.1} h vs Jul-Dec {h2:.1} h"
            );
        }
    }
    out
}

/// Renders the full single-system reliability report (all five research
/// questions) as plain text.
///
/// # Examples
///
/// ```
/// use failsim::{Simulator, SystemModel};
///
/// let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
/// let text = failscope::render_report(&log);
/// assert!(text.contains("Failure categories"));
/// assert!(text.contains("MTBF"));
/// ```
pub fn render_report(log: &FailureLog) -> String {
    render_report_threaded(log, 1)
}

/// [`render_report`] with the sections rendered on up to `threads`
/// workers. The sections are concatenated in declaration order, so the
/// output is byte-identical to the serial render at any thread count.
pub fn render_report_threaded(log: &FailureLog, threads: usize) -> String {
    let view = LogView::new(log);
    failstats::par_map_ordered(SECTIONS.len(), threads, |i| SECTIONS[i](&view)).concat()
}

/// Renders the two-generation comparison (MTBF/MTTR factors and the
/// performance-error-proportionality argument).
pub fn render_comparison(older: &FailureLog, newer: &FailureLog) -> String {
    render_comparison_threaded(older, newer, 1)
}

/// [`render_comparison`] with the per-log analyses computed on up to
/// `threads` workers; output is identical at any thread count.
pub fn render_comparison_threaded(
    older: &FailureLog,
    newer: &FailureLog,
    threads: usize,
) -> String {
    let logs = [older, newer];
    let ttrs = failstats::par_map_ordered(2, threads, |i| TtrAnalysis::from_log(logs[i]));

    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Generation comparison: {} -> {} ===",
        older.spec().name(),
        newer.spec().name()
    );
    if let Some(c) = PepComparison::new(older, newer) {
        let _ = writeln!(out, "  compute (Rpeak): {:>6.2}x", c.compute_factor());
        let _ = writeln!(out, "  MTBF:            {:>6.2}x", c.mtbf_factor());
        let _ = writeln!(
            out,
            "  PEP (FLOP/MTBF): {:>6.2}x  ({:.0} -> {:.0} EFLOP per failure-free period)",
            c.pep_factor(),
            c.older.exaflop_per_failure_free_period(),
            c.newer.exaflop_per_failure_free_period()
        );
        if c.reliability_lags_compute() {
            let _ = writeln!(
                out,
                "  note: reliability improved more slowly than raw compute"
            );
        }
    }
    if let [Some(a), Some(b)] = &ttrs[..] {
        let _ = writeln!(
            out,
            "  MTTR: {:.1} h -> {:.1} h (time to recovery is not improving)",
            a.mttr_hours(),
            b.mttr_hours()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{Simulator, SystemModel};

    #[test]
    fn report_contains_all_sections() {
        let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
        let text = render_report(&log);
        for needle in [
            "Reliability report: Tsubame-3",
            "Failure categories",
            "Software root loci",
            "Per-node distribution",
            "Multi-GPU involvement",
            "Time between failures",
            "Time to recovery",
            "Repair overlap and availability",
            "Node survival",
            "Seasonal",
        ] {
            assert!(text.contains(needle), "missing section {needle}\n{text}");
        }
    }

    #[test]
    fn t2_report_has_no_locus_section() {
        let log = Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap();
        let text = render_report(&log);
        assert!(!text.contains("Software root loci"));
        assert!(text.contains("GPU slot shares"));
    }

    #[test]
    fn threaded_render_is_byte_identical() {
        let log = Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap();
        let serial = render_report(&log);
        for threads in [2, 4, 8] {
            assert_eq!(serial, render_report_threaded(&log, threads));
        }
    }

    #[test]
    fn comparison_report() {
        let t2 = Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap();
        let t3 = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
        let text = render_comparison(&t2, &t3);
        assert!(text.contains("compute (Rpeak)"));
        assert!(text.contains("MTTR"));
        assert!(text.contains("reliability improved more slowly"));
        assert_eq!(text, render_comparison_threaded(&t2, &t3, 4));
    }

    #[test]
    fn empty_log_report_does_not_panic() {
        let log = Simulator::new(SystemModel::tsubame3(), 43)
            .generate()
            .unwrap()
            .filtered(|_| false);
        let text = render_report(&log);
        assert!(text.contains("0 failures"));
    }
}
