//! RQ5 — time to recovery (Figs. 9 and 10).

use failstats::{Ecdf, Summary};
use failtypes::{Category, Domain, FailureLog};
use serde::{Deserialize, Serialize};

use crate::{FleetIndex, LogView};

/// System-wide time-to-recovery analysis (Fig. 9).
///
/// # Examples
///
/// ```
/// use failscope::TtrAnalysis;
/// use failsim::{Simulator, SystemModel};
///
/// let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
/// let ttr = TtrAnalysis::from_log(&log).unwrap();
/// // Fig. 9: MTTR ≈ 55 h.
/// assert!((ttr.mttr_hours() - 55.0).abs() < 12.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TtrAnalysis {
    ecdf: Ecdf,
}

impl TtrAnalysis {
    /// Computes the analysis from any [`FleetIndex`], reusing its
    /// pre-sorted TTR sample instead of re-sorting; `None` when no
    /// failures are indexed.
    pub fn from_index<V: FleetIndex + ?Sized>(index: &V) -> Option<Self> {
        Some(TtrAnalysis {
            ecdf: Ecdf::from_sorted(index.ttrs_sorted().to_vec())?,
        })
    }

    /// [`TtrAnalysis::from_index`], indexing the log once; `None` for
    /// empty logs.
    #[doc(hidden)]
    pub fn from_log(log: &FailureLog) -> Option<Self> {
        Self::from_index(&LogView::new(log))
    }

    /// [`TtrAnalysis::from_index`] on a prebuilt [`LogView`].
    #[doc(hidden)]
    pub fn from_view(view: &LogView<'_>) -> Option<Self> {
        Self::from_index(view)
    }

    /// Mean time to recovery.
    pub fn mttr_hours(&self) -> f64 {
        self.ecdf.mean()
    }

    /// Median time to recovery.
    pub fn median_hours(&self) -> f64 {
        self.ecdf.quantile(0.5)
    }

    /// Arbitrary TTR quantile.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        self.ecdf.quantile(p)
    }

    /// Longest observed recovery.
    pub fn max_hours(&self) -> f64 {
        self.ecdf.max()
    }

    /// The empirical CDF (Fig. 9's curve).
    pub fn ecdf(&self) -> &Ecdf {
        &self.ecdf
    }
}

/// One row of the per-category TTR table (Fig. 10).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoryTtr {
    /// The failure category.
    pub category: Category,
    /// Share of all failures in this category.
    pub share_of_failures: f64,
    /// Box-plot summary of the recovery times.
    pub summary: Summary,
}

/// Per-category TTR distributions from any [`FleetIndex`], reusing its
/// time-ordered category partitions; rows are sorted by ascending mean
/// TTR (the order Fig. 10 plots). Every category with at least one
/// failure appears.
pub fn per_category_ttr_index<V: FleetIndex + ?Sized>(index: &V) -> Vec<CategoryTtr> {
    let total = index.len().max(1) as f64;
    let mut out: Vec<CategoryTtr> = index
        .category_indices()
        .keys()
        .filter_map(|&category| {
            let ttrs = index.category_ttrs(category);
            Summary::from_data(&ttrs).map(|summary| CategoryTtr {
                category,
                share_of_failures: ttrs.len() as f64 / total,
                summary,
            })
        })
        .collect();
    out.sort_by(|a, b| {
        a.summary
            .mean()
            .partial_cmp(&b.summary.mean())
            .expect("means are finite")
    });
    out
}

/// [`per_category_ttr_index`], indexing the log once.
pub fn per_category_ttr(log: &FailureLog) -> Vec<CategoryTtr> {
    per_category_ttr_index(&LogView::new(log))
}

/// [`per_category_ttr_index`] on a prebuilt [`LogView`].
pub fn per_category_ttr_view(view: &LogView<'_>) -> Vec<CategoryTtr> {
    per_category_ttr_index(view)
}

/// Count-weighted mean of the per-domain TTR interquartile ranges — a
/// scalar for Fig. 10's "hardware repairs have a higher spread than
/// software repairs" claim.
pub fn domain_ttr_spread_index<V: FleetIndex + ?Sized>(index: &V, domain: Domain) -> Option<f64> {
    let rows = per_category_ttr_index(index);
    let mut weighted = 0.0;
    let mut weight = 0.0;
    for row in rows {
        if row.category.domain() == domain {
            let n = row.summary.n() as f64;
            weighted += row.summary.iqr() * n;
            weight += n;
        }
    }
    (weight > 0.0).then(|| weighted / weight)
}

/// [`domain_ttr_spread_index`], indexing the log once.
pub fn domain_ttr_spread(log: &FailureLog, domain: Domain) -> Option<f64> {
    domain_ttr_spread_index(&LogView::new(log), domain)
}

/// Categories that are individually rare but expensive to repair:
/// share of failures below `max_share` and maximum TTR above
/// `min_max_ttr_hours` (the paper's power-board / SSD examples).
pub fn rare_but_costly_index<V: FleetIndex + ?Sized>(
    index: &V,
    max_share: f64,
    min_max_ttr_hours: f64,
) -> Vec<CategoryTtr> {
    per_category_ttr_index(index)
        .into_iter()
        .filter(|row| row.share_of_failures <= max_share && row.summary.max() >= min_max_ttr_hours)
        .collect()
}

/// [`rare_but_costly_index`], indexing the log once.
pub fn rare_but_costly(
    log: &FailureLog,
    max_share: f64,
    min_max_ttr_hours: f64,
) -> Vec<CategoryTtr> {
    rare_but_costly_index(&LogView::new(log), max_share, min_max_ttr_hours)
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{Simulator, SystemModel};
    use failtypes::{T2Category, T3Category};

    fn t2() -> FailureLog {
        Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap()
    }

    fn t3() -> FailureLog {
        Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap()
    }

    #[test]
    fn fig9_mttr_similar_on_both_systems() {
        let a2 = TtrAnalysis::from_log(&t2()).unwrap();
        let a3 = TtrAnalysis::from_log(&t3()).unwrap();
        assert!((a2.mttr_hours() - 55.0).abs() < 10.0, "T2 {}", a2.mttr_hours());
        assert!((a3.mttr_hours() - 55.0).abs() < 10.0, "T3 {}", a3.mttr_hours());
        // The distributions are similar in shape: medians within a factor.
        let ratio = a2.median_hours() / a3.median_hours();
        assert!((0.6..1.6).contains(&ratio), "median ratio {ratio}");
    }

    #[test]
    fn fig9_mttr_comparable_to_mtbf_on_t3() {
        // RQ5 discussion: MTTR is comparable to MTBF, so repairs overlap
        // new failures.
        let log = t3();
        let mttr = TtrAnalysis::from_log(&log).unwrap().mttr_hours();
        let mtbf = crate::tbf::TbfAnalysis::from_log(&log).unwrap().mtbf_hours();
        assert!(mttr > 0.5 * mtbf, "mttr {mttr} vs mtbf {mtbf}");
    }

    #[test]
    fn fig10_order_and_spread() {
        let rows = per_category_ttr(&t3());
        assert!(!rows.is_empty());
        for w in rows.windows(2) {
            assert!(w[0].summary.mean() <= w[1].summary.mean());
        }
        // Hardware repairs have higher IQR than software repairs.
        let hw = domain_ttr_spread(&t3(), Domain::Hardware).unwrap();
        let sw = domain_ttr_spread(&t3(), Domain::Software).unwrap();
        assert!(hw > sw, "hw {hw} sw {sw}");
    }

    #[test]
    fn fig10_power_board_is_rare_but_costly() {
        // Power-Board: ~1% of Tsubame-3 failures but repairs can exceed
        // 100+ hours.
        let rows = per_category_ttr(&t3());
        let pb = rows
            .iter()
            .find(|r| r.category == Category::T3(T3Category::PowerBoard))
            .unwrap();
        assert!(pb.share_of_failures < 0.02);
        assert!(pb.summary.max() > 80.0, "max {}", pb.summary.max());

        let costly = rare_but_costly(&t3(), 0.02, 80.0);
        assert!(costly.iter().any(|r| r.category == Category::T3(T3Category::PowerBoard)));
    }

    #[test]
    fn fig10_ssd_tail_on_t2() {
        // SSD: ~4% of Tsubame-2 failures, repairs reaching hundreds of
        // hours.
        let rows = per_category_ttr(&t2());
        let ssd = rows
            .iter()
            .find(|r| r.category == Category::T2(T2Category::Ssd))
            .unwrap();
        assert!((ssd.share_of_failures - 0.04).abs() < 0.005);
        assert!(ssd.summary.max() > 150.0, "max {}", ssd.summary.max());
    }

    #[test]
    fn shares_sum_to_one() {
        let rows = per_category_ttr(&t2());
        let sum: f64 = rows.iter().map(|r| r.share_of_failures).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn low_mean_does_not_imply_low_spread() {
        // Fig. 10: categories with low average TTR do not necessarily
        // have the lowest spread — verify the ordering of means and IQRs
        // differ somewhere.
        let rows = per_category_ttr(&t2());
        let mean_order: Vec<Category> = rows.iter().map(|r| r.category).collect();
        let mut iqr_keys: Vec<(f64, Category)> =
            rows.iter().map(|r| (r.summary.iqr(), r.category)).collect();
        iqr_keys.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let iqr_order: Vec<Category> = iqr_keys.into_iter().map(|(_, c)| c).collect();
        assert_ne!(mean_order, iqr_order);
    }

    #[test]
    fn degenerate_logs() {
        let empty = t3().filtered(|_| false);
        assert!(TtrAnalysis::from_log(&empty).is_none());
        assert!(per_category_ttr(&empty).is_empty());
        assert!(domain_ttr_spread(&empty, Domain::Hardware).is_none());
        assert!(rare_but_costly(&empty, 0.1, 10.0).is_empty());
    }
}
