//! An incrementally built counterpart to [`LogView`](crate::LogView).
//!
//! [`StreamView`] maintains the same indexes a [`crate::LogView`] builds
//! in one batch pass — time-ordered times, sorted repair durations,
//! category partitions, node/slot/rack counts, month buckets — but
//! accepts records **one at a time** (or in whole chunks via
//! [`StreamView::extend`]) as a live stream delivers them. After pushing
//! every record of a log in time order, each index is equal to the
//! batch one (the streaming equivalence suite in `tests/` asserts this
//! per model/seed), so online consumers such as `failwatch` inherit the
//! batch pipeline's semantics for free.
//!
//! # Cost model
//!
//! The write path is amortized O(1) per record and allocation-free in
//! the steady state. Every index except the two order statistics is a
//! plain append (`Vec::push` / `BTreeMap` bump). The sorted repair and
//! recovery arrays use a *deferred-merge* design ([`SortedRun`]): new
//! values append to a small unsorted tail, and the tail is merged into
//! the main sorted run only when
//!
//! * the tail outgrows an adaptive threshold (`max(64, run_len / 8)`),
//!   in which case `push` sorts the tail and merges it **in place** with
//!   a backward two-pointer pass — since the threshold grows linearly
//!   with the run, total merge work over an n-record stream is O(n),
//!   i.e. amortized O(1) per record on top of the O(log tail) sort
//!   share (amortized O(log n) per record all in); or
//! * a reader actually asks for the materialized array
//!   ([`StreamView::ttrs_sorted`] and friends, including every
//!   [`FleetIndex`](crate::FleetIndex) consumer), in which case the
//!   read pays one bounded merge — O(run + tail) — whose result is
//!   cached until the next write, so summary refreshes between ingest
//!   bursts cost one merge, not one per access.
//!
//! The old design kept the arrays always-sorted with binary-search
//! `Vec::insert`, an O(n) memmove per record and O(n²) over the stream
//! — fine for the paper's 1,235-record field logs, ruinous at the
//! production event rates the streaming subsystem targets.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::OnceLock;

use failtypes::{
    Category, FailureLog, FailureRecord, Generation, InvalidRecordError, Month, NodeId,
    ObservationWindow, SoftwareLocus, SystemSpec,
};

/// Error from [`StreamView::push`].
#[derive(Debug, Clone, PartialEq)]
pub enum StreamViewError {
    /// The record's failure time precedes the previously pushed record;
    /// streams must deliver records in time order.
    OutOfOrder {
        /// Time of the previously pushed record, hours.
        prev: f64,
        /// Time of the rejected record, hours.
        time: f64,
    },
    /// The record violates a log invariant for this system.
    Invalid(InvalidRecordError),
}

impl fmt::Display for StreamViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamViewError::OutOfOrder { prev, time } => write!(
                f,
                "out-of-order record: time {time} h after a record at {prev} h"
            ),
            StreamViewError::Invalid(e) => write!(f, "invalid record: {e}"),
        }
    }
}

impl Error for StreamViewError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StreamViewError::Invalid(e) => Some(e),
            StreamViewError::OutOfOrder { .. } => None,
        }
    }
}

impl From<InvalidRecordError> for StreamViewError {
    fn from(e: InvalidRecordError) -> Self {
        StreamViewError::Invalid(e)
    }
}

impl From<StreamViewError> for failtypes::Error {
    fn from(e: StreamViewError) -> Self {
        failtypes::Error::other("stream state error", e)
    }
}

/// Tail appends below this length never trigger an eager merge, so tiny
/// streams behave like a plain sorted `Vec`.
const MERGE_FLOOR: usize = 64;

/// An ascending order statistic maintained by deferred merging: a
/// sorted main `run`, a small unsorted `tail` of recent appends, and a
/// lazily materialized `run ∪ tail` cache for `&self` readers.
///
/// Invariants: `run` is always sorted ascending; `merged`, when set,
/// holds the sorted union of `run` and `tail` (writers take it back
/// into `run` before touching either part, so it is never stale).
#[derive(Debug, Default)]
struct SortedRun {
    run: Vec<f64>,
    tail: Vec<f64>,
    merged: OnceLock<Vec<f64>>,
}

impl Clone for SortedRun {
    fn clone(&self) -> Self {
        // Clone through the materialized form: the clone starts with an
        // empty tail and no cache, which keeps the invariants local.
        SortedRun {
            run: self.as_slice().to_vec(),
            tail: Vec::new(),
            merged: OnceLock::new(),
        }
    }
}

impl PartialEq for SortedRun {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl SortedRun {
    /// Wraps an already-sorted vector as the main run (no tail, no
    /// cache) — the zero-copy path for loading persisted order
    /// statistics. The caller guarantees ascending order.
    fn from_sorted(run: Vec<f64>) -> Self {
        debug_assert!(run.windows(2).all(|w| w[0] <= w[1]));
        SortedRun {
            run,
            tail: Vec::new(),
            merged: OnceLock::new(),
        }
    }

    /// Appends one value — O(1) amortized. Eagerly merges once the tail
    /// passes the adaptive threshold, keeping reads bounded.
    fn push(&mut self, x: f64) {
        self.promote();
        // Fast path: values arriving in ascending order (clamped
        // recoveries late in a stream, pre-sorted replays) extend the
        // run directly and never touch the tail.
        if self.tail.is_empty() && self.run.last().is_none_or(|&last| last <= x) {
            self.run.push(x);
            return;
        }
        self.tail.push(x);
        if self.tail.len() >= MERGE_FLOOR.max(self.run.len() / 8) {
            self.merge_in_place();
        }
    }

    /// Takes a previously materialized cache back as the main run, so
    /// read work is never repeated by the writer.
    fn promote(&mut self) {
        if let Some(full) = self.merged.take() {
            self.run = full;
            self.tail.clear();
        }
    }

    /// Forces the pending tail into the run now (writer-side, in
    /// place); readers after this are zero-cost slices.
    fn materialize(&mut self) {
        self.promote();
        if !self.tail.is_empty() {
            self.merge_in_place();
        }
    }

    /// Sorts the tail and merges it into `run` with one backward pass —
    /// no scratch allocation beyond the run's own growth.
    fn merge_in_place(&mut self) {
        self.tail.sort_unstable_by(f64::total_cmp);
        let n = self.run.len();
        let t = self.tail.len();
        self.run.resize(n + t, 0.0);
        let (mut i, mut j) = (n, t);
        for k in (0..n + t).rev() {
            if j == 0 {
                break; // run[..i] is already in place
            }
            if i > 0 && self.run[i - 1] > self.tail[j - 1] {
                self.run[k] = self.run[i - 1];
                i -= 1;
            } else {
                self.run[k] = self.tail[j - 1];
                j -= 1;
            }
        }
        self.tail.clear();
    }

    /// The full sorted array. Zero-cost when no appends are pending;
    /// otherwise pays one merge into a cache shared by later readers
    /// (writes invalidate it via [`SortedRun::promote`]).
    fn as_slice(&self) -> &[f64] {
        if self.tail.is_empty() {
            return &self.run;
        }
        self.merged.get_or_init(|| {
            let mut tail = self.tail.clone();
            tail.sort_unstable_by(f64::total_cmp);
            let mut full = Vec::with_capacity(self.run.len() + tail.len());
            let (mut i, mut j) = (0, 0);
            while i < self.run.len() && j < tail.len() {
                if self.run[i] <= tail[j] {
                    full.push(self.run[i]);
                    i += 1;
                } else {
                    full.push(tail[j]);
                    j += 1;
                }
            }
            full.extend_from_slice(&self.run[i..]);
            full.extend_from_slice(&tail[j..]);
            full
        })
    }
}

/// Incrementally maintained indexes over a record stream, mirroring
/// [`crate::LogView`] field for field.
///
/// # Examples
///
/// ```
/// use failscope::{LogView, StreamView};
/// use failsim::{Simulator, SystemModel};
///
/// let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
/// let mut sv = StreamView::for_log(&log);
/// sv.extend(log.records().to_vec()).unwrap();
/// let bv = LogView::new(&log);
/// assert_eq!(sv.times(), bv.times());
/// assert_eq!(sv.ttrs_sorted(), bv.ttrs_sorted());
/// assert_eq!(sv.month_ttrs(), bv.month_ttrs());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StreamView {
    generation: Generation,
    spec: SystemSpec,
    window: ObservationWindow,
    months: Vec<(i32, Month)>,
    /// Months index of the last pushed record; time order makes the
    /// bucket index monotone, so each push scans forward from here.
    month_cursor: usize,
    records: Vec<FailureRecord>,
    times: Vec<f64>,
    ttrs_sorted: SortedRun,
    recoveries: Vec<f64>,
    recoveries_sorted: SortedRun,
    category_indices: BTreeMap<Category, Vec<u32>>,
    locus_counts: BTreeMap<SoftwareLocus, usize>,
    node_counts: BTreeMap<NodeId, u64>,
    slot_counts: Vec<usize>,
    rack_counts: Vec<usize>,
    gpu_involvements: usize,
    multi_gpu_times: Vec<f64>,
    month_ttrs: Vec<Vec<f64>>,
}

/// The persisted payload of a [`StreamView`] — exactly the state a
/// `failindex` snapshot stores on disk, with the cheaply re-derivable
/// arrays left out.
///
/// `times` and `recoveries` are reconstructed from the records in one
/// pass, and the month buckets from `month_counts`: records arrive in
/// time order, so each month's repair durations are a contiguous run of
/// the record sequence and per-month *counts* fully determine the
/// bucketing. [`StreamView::from_parts`] performs the reconstruction.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewParts {
    /// The system generation.
    pub generation: Generation,
    /// The system spec.
    pub spec: SystemSpec,
    /// The observation window.
    pub window: ObservationWindow,
    /// Records in time order.
    pub records: Vec<FailureRecord>,
    /// Repair durations sorted ascending (one per record).
    pub ttrs_sorted: Vec<f64>,
    /// Window-clamped recovery times sorted ascending (one per record).
    pub recoveries_sorted: Vec<f64>,
    /// Record indices partitioned by category.
    pub category_indices: BTreeMap<Category, Vec<u32>>,
    /// Software root-locus counts.
    pub locus_counts: BTreeMap<SoftwareLocus, usize>,
    /// Failure counts per node.
    pub node_counts: BTreeMap<NodeId, u64>,
    /// GPU-failure involvements per slot.
    pub slot_counts: Vec<usize>,
    /// Failure counts per rack.
    pub rack_counts: Vec<usize>,
    /// Total per-GPU involvements.
    pub gpu_involvements: usize,
    /// Arrival times of multi-GPU failures.
    pub multi_gpu_times: Vec<f64>,
    /// Records per `window.months()` bucket, in month order.
    pub month_counts: Vec<usize>,
}

impl StreamView {
    /// An empty view for a system described by `spec` over `window`.
    pub fn new(generation: Generation, spec: SystemSpec, window: ObservationWindow) -> Self {
        let months = window.months();
        let slots = spec.gpus_per_node() as usize;
        let racks = spec.racks() as usize;
        StreamView {
            generation,
            spec,
            window,
            month_ttrs: vec![Vec::new(); months.len()],
            months,
            month_cursor: 0,
            records: Vec::new(),
            times: Vec::new(),
            ttrs_sorted: SortedRun::default(),
            recoveries: Vec::new(),
            recoveries_sorted: SortedRun::default(),
            category_indices: BTreeMap::new(),
            locus_counts: BTreeMap::new(),
            node_counts: BTreeMap::new(),
            slot_counts: vec![0; slots],
            rack_counts: vec![0; racks],
            gpu_involvements: 0,
            multi_gpu_times: Vec::new(),
        }
    }

    /// An empty view shaped like `log` (same generation, spec, window).
    pub fn for_log(log: &FailureLog) -> Self {
        StreamView::new(log.generation(), log.spec().clone(), log.window())
    }

    /// Decomposes the view into the persistable [`ViewParts`] payload,
    /// materializing the sorted arrays. The inverse of
    /// [`StreamView::from_parts`].
    pub fn into_parts(mut self) -> ViewParts {
        self.materialize();
        ViewParts {
            generation: self.generation,
            spec: self.spec,
            window: self.window,
            records: self.records,
            ttrs_sorted: self.ttrs_sorted.run,
            recoveries_sorted: self.recoveries_sorted.run,
            category_indices: self.category_indices,
            locus_counts: self.locus_counts,
            node_counts: self.node_counts,
            slot_counts: self.slot_counts,
            rack_counts: self.rack_counts,
            gpu_involvements: self.gpu_involvements,
            multi_gpu_times: self.multi_gpu_times,
            month_counts: self.month_ttrs.iter().map(Vec::len).collect(),
        }
    }

    /// Reassembles a view from persisted [`ViewParts`], re-deriving the
    /// arrays the payload omits (`times`, `recoveries`, the per-month
    /// buckets) in O(n) — no sorting, no re-validation of individual
    /// records (the caller vouches for the payload, e.g. via a
    /// checksum). In debug builds the result is additionally asserted
    /// equal to a full per-record rebuild.
    ///
    /// # Errors
    ///
    /// Returns [`failtypes::Error::Run`] when the payload's shapes are
    /// inconsistent (array lengths not matching the record count, month
    /// buckets not matching the window, tallies not matching the spec)
    /// — the signal for a snapshot loader to fall back to a cold parse.
    pub fn from_parts(parts: ViewParts) -> Result<Self, failtypes::Error> {
        let ViewParts {
            generation,
            spec,
            window,
            records,
            ttrs_sorted,
            recoveries_sorted,
            category_indices,
            locus_counts,
            node_counts,
            slot_counts,
            rack_counts,
            gpu_involvements,
            multi_gpu_times,
            month_counts,
        } = parts;
        let n = records.len();
        let months = window.months();
        let shape_err = |what: &str| {
            failtypes::Error::run(format!("inconsistent snapshot payload: {what}"))
        };
        if ttrs_sorted.len() != n || recoveries_sorted.len() != n {
            return Err(shape_err("sorted arrays do not match the record count"));
        }
        if month_counts.len() != months.len() {
            return Err(shape_err("month buckets do not match the window"));
        }
        if month_counts.iter().sum::<usize>() != n {
            return Err(shape_err("month bucket totals do not match the record count"));
        }
        if slot_counts.len() != spec.gpus_per_node() as usize
            || rack_counts.len() != spec.racks() as usize
        {
            return Err(shape_err("per-slot/per-rack tallies do not match the spec"));
        }
        if category_indices.values().map(Vec::len).sum::<usize>() != n {
            return Err(shape_err("category partitions do not match the record count"));
        }
        let ascending = |xs: &[f64]| xs.windows(2).all(|w| w[0] <= w[1]);
        if !ascending(&ttrs_sorted) || !ascending(&recoveries_sorted) {
            return Err(shape_err("sorted arrays are not in ascending order"));
        }

        let window_hours = window.duration().get();
        let times: Vec<f64> = records.iter().map(|r| r.time().get()).collect();
        let recoveries: Vec<f64> = records
            .iter()
            .map(|r| r.recovery_time().get().min(window_hours))
            .collect();
        // Time order makes each month bucket a contiguous run of the
        // record sequence, so the stored counts slice it back apart.
        let mut month_ttrs: Vec<Vec<f64>> = Vec::with_capacity(months.len());
        let mut offset = 0usize;
        for &count in &month_counts {
            month_ttrs.push(
                records[offset..offset + count]
                    .iter()
                    .map(|r| r.ttr().get())
                    .collect(),
            );
            offset += count;
        }
        let month_cursor = month_counts
            .iter()
            .rposition(|&c| c > 0)
            .unwrap_or(0);

        let view = StreamView {
            generation,
            spec,
            window,
            months,
            month_cursor,
            times,
            ttrs_sorted: SortedRun::from_sorted(ttrs_sorted),
            recoveries,
            recoveries_sorted: SortedRun::from_sorted(recoveries_sorted),
            category_indices,
            locus_counts,
            node_counts,
            slot_counts,
            rack_counts,
            gpu_involvements,
            multi_gpu_times,
            month_ttrs,
            records,
        };
        #[cfg(debug_assertions)]
        {
            let mut rebuilt =
                StreamView::new(view.generation, view.spec.clone(), view.window);
            for rec in view.records.iter().cloned() {
                rebuilt
                    .push(rec)
                    .map_err(|e| shape_err(&format!("records do not revalidate: {e}")))?;
            }
            debug_assert!(
                rebuilt == view,
                "from_parts diverged from a per-record rebuild"
            );
        }
        Ok(view)
    }

    /// Validates and incorporates one record, updating every index.
    ///
    /// Amortized O(1): every index update is an append; the sorted
    /// arrays defer their merge work (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns [`StreamViewError::Invalid`] if the record violates an
    /// invariant, [`StreamViewError::OutOfOrder`] if its time precedes
    /// the last pushed record. The view is unchanged on error.
    pub fn push(&mut self, rec: FailureRecord) -> Result<(), StreamViewError> {
        rec.validate(self.generation, &self.spec, self.window)?;
        let time = rec.time().get();
        if let Some(&prev) = self.times.last() {
            if time < prev {
                return Err(StreamViewError::OutOfOrder { prev, time });
            }
        }

        let i = self.records.len() as u32;
        let ttr = rec.ttr().get();
        let window_hours = self.window.duration().get();
        self.times.push(time);
        self.ttrs_sorted.push(ttr);
        let recovery = rec.recovery_time().get().min(window_hours);
        self.recoveries.push(recovery);
        self.recoveries_sorted.push(recovery);
        self.category_indices
            .entry(rec.category())
            .or_default()
            .push(i);
        if let Some(locus) = rec.locus() {
            *self.locus_counts.entry(locus).or_insert(0) += 1;
        }
        *self.node_counts.entry(rec.node()).or_insert(0) += 1;
        self.rack_counts[self.spec.rack_of(rec.node()).index() as usize] += 1;
        if rec.category().is_gpu() {
            self.gpu_involvements += rec.gpus().len().max(1);
            for slot in rec.gpus() {
                if (slot.index() as usize) < self.slot_counts.len() {
                    self.slot_counts[slot.index() as usize] += 1;
                }
            }
            if rec.is_multi_gpu() {
                self.multi_gpu_times.push(time);
            }
        }
        // Time order makes the month bucket monotone: scan forward from
        // the cursor instead of from the start of the window.
        let ym = self.window.date_of(rec.time()).year_month();
        if let Some(off) = self.months[self.month_cursor..].iter().position(|&m| m == ym) {
            self.month_cursor += off;
            self.month_ttrs[self.month_cursor].push(ttr);
        }
        self.records.push(rec);
        Ok(())
    }

    /// Validates and incorporates a whole chunk of records in time
    /// order, the batched mirror of [`StreamView::push`]. Returns the
    /// number of records accepted.
    ///
    /// The resulting view is identical to pushing each record
    /// individually; batching exists so sources can hand over whole
    /// chunks without per-record call overhead.
    ///
    /// # Errors
    ///
    /// As [`StreamView::push`]; records before the offending one remain
    /// incorporated (callers needing atomicity should validate the
    /// whole chunk first).
    pub fn extend<I>(&mut self, records: I) -> Result<usize, StreamViewError>
    where
        I: IntoIterator<Item = FailureRecord>,
    {
        let mut accepted = 0;
        for rec in records {
            self.push(rec)?;
            accepted += 1;
        }
        Ok(accepted)
    }

    /// Forces any deferred sorted-array merge work now, so subsequent
    /// reads of [`ttrs_sorted`](StreamView::ttrs_sorted) /
    /// [`recoveries_sorted`](StreamView::recoveries_sorted) are
    /// zero-cost slices. Useful right before handing the view to a
    /// batch of analyses (the watch loop calls this at refresh
    /// boundaries); never required for correctness.
    pub fn materialize(&mut self) {
        self.ttrs_sorted.materialize();
        self.recoveries_sorted.materialize();
    }

    /// Snapshots the accumulated records as a validated [`FailureLog`],
    /// so any batch analysis can run on the live state.
    pub fn to_log(&self) -> FailureLog {
        FailureLog::with_spec(
            self.generation,
            self.spec.clone(),
            self.window,
            self.records.clone(),
        )
        .expect("pushed records were validated")
    }

    /// Rebuilds the view keeping only the records `keep` accepts,
    /// re-deriving every index from scratch so the result is
    /// indistinguishable from a view that only ever ingested the
    /// matching records. This is how a `--where` predicate composes
    /// with persisted (always unfiltered) index snapshots: decode the
    /// snapshot, then filter the decoded view.
    ///
    /// Records are visited in ingest order, so the filtered view's
    /// record order — and therefore any report rendered from it — is
    /// byte-identical to a cold filtered parse of the same log.
    pub fn filtered(&self, mut keep: impl FnMut(&FailureRecord) -> bool) -> StreamView {
        let mut out = StreamView::new(self.generation, self.spec.clone(), self.window);
        for rec in &self.records {
            if keep(rec) {
                out.push(rec.clone()).expect("subset of a valid view is valid");
            }
        }
        out
    }

    /// The system generation this view is indexed for.
    pub const fn generation(&self) -> Generation {
        self.generation
    }

    /// The system spec this view is indexed for.
    pub const fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// The observation window.
    pub const fn window(&self) -> ObservationWindow {
        self.window
    }

    /// The accumulated records, in arrival (time) order.
    pub fn records(&self) -> &[FailureRecord] {
        &self.records
    }

    /// Number of records pushed so far.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Failure times in hours, in arrival order.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Repair durations in hours, sorted ascending.
    ///
    /// Zero-cost when no appends are pending; otherwise the first call
    /// after a write pays one bounded merge (see the module docs).
    pub fn ttrs_sorted(&self) -> &[f64] {
        self.ttrs_sorted.as_slice()
    }

    /// Repair-completion times clamped to the window, in arrival order.
    pub fn recoveries(&self) -> &[f64] {
        &self.recoveries
    }

    /// Repair-completion times clamped to the window, sorted ascending.
    ///
    /// Same read cost model as [`ttrs_sorted`](StreamView::ttrs_sorted).
    pub fn recoveries_sorted(&self) -> &[f64] {
        self.recoveries_sorted.as_slice()
    }

    /// Record indices partitioned by category, each in time order.
    pub fn category_indices(&self) -> &BTreeMap<Category, Vec<u32>> {
        &self.category_indices
    }

    /// Number of failures in one category.
    pub fn category_count(&self, category: Category) -> usize {
        self.category_indices.get(&category).map_or(0, Vec::len)
    }

    /// The failure times of one category, in time order.
    pub fn category_times(&self, category: Category) -> Vec<f64> {
        self.category_indices
            .get(&category)
            .map_or_else(Vec::new, |idx| {
                idx.iter().map(|&i| self.times[i as usize]).collect()
            })
    }

    /// The repair durations of one category, in time order.
    pub fn category_ttrs(&self, category: Category) -> Vec<f64> {
        self.category_indices
            .get(&category)
            .map_or_else(Vec::new, |idx| {
                idx.iter()
                    .map(|&i| self.records[i as usize].ttr().get())
                    .collect()
            })
    }

    /// Software root-locus counts over records that carry one.
    pub fn locus_counts(&self) -> &BTreeMap<SoftwareLocus, usize> {
        &self.locus_counts
    }

    /// Failure counts per node (only failing nodes appear).
    pub fn node_counts(&self) -> &BTreeMap<NodeId, u64> {
        &self.node_counts
    }

    /// GPU-failure involvements per slot, indexed by slot number.
    pub fn slot_counts(&self) -> &[usize] {
        &self.slot_counts
    }

    /// Failure counts per rack, indexed by rack number.
    pub fn rack_counts(&self) -> &[usize] {
        &self.rack_counts
    }

    /// Total per-GPU involvements (a failure touching 3 GPUs counts 3;
    /// unknown involvement counts 1).
    pub const fn gpu_involvements(&self) -> usize {
        self.gpu_involvements
    }

    /// Arrival times of multi-GPU failures, in time order.
    pub fn multi_gpu_times(&self) -> &[f64] {
        &self.multi_gpu_times
    }

    /// Repair durations bucketed by the `(year, month)` of the failure,
    /// aligned with `window.months()`.
    pub fn month_ttrs(&self) -> &[Vec<f64>] {
        &self.month_ttrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LogView;
    use failsim::{Simulator, SystemModel};
    use failtypes::Hours;

    fn feed(log: &FailureLog) -> StreamView {
        let mut sv = StreamView::for_log(log);
        sv.extend(log.records().to_vec()).unwrap();
        sv
    }

    fn assert_matches_batch(sv: &StreamView, bv: &LogView) {
        assert_eq!(sv.len(), bv.len());
        assert_eq!(sv.times(), bv.times());
        assert_eq!(sv.ttrs_sorted(), bv.ttrs_sorted());
        assert_eq!(sv.recoveries(), bv.recoveries());
        assert_eq!(sv.recoveries_sorted(), bv.recoveries_sorted());
        assert_eq!(sv.category_indices(), bv.category_indices());
        assert_eq!(sv.locus_counts(), bv.locus_counts());
        assert_eq!(sv.node_counts(), bv.node_counts());
        assert_eq!(sv.slot_counts(), bv.slot_counts());
        assert_eq!(sv.rack_counts(), bv.rack_counts());
        assert_eq!(sv.gpu_involvements(), bv.gpu_involvements());
        assert_eq!(sv.multi_gpu_times(), bv.multi_gpu_times());
        assert_eq!(sv.month_ttrs(), bv.month_ttrs());
    }

    #[test]
    fn filtered_rebuild_matches_a_filter_first_ingest() {
        let log = Simulator::new(SystemModel::tsubame3(), 17).generate().unwrap();
        let full = feed(&log);
        let keep = |r: &FailureRecord| r.category().is_gpu() && r.ttr().get() > 24.0;
        let filtered = full.filtered(keep);
        // Oracle: a view that only ever saw the matching records.
        let mut oracle = StreamView::for_log(&log);
        oracle
            .extend(log.records().iter().filter(|r| keep(r)).cloned())
            .unwrap();
        assert!(!filtered.is_empty() && filtered.len() < full.len());
        assert_eq!(filtered.records(), oracle.records());
        let (mut filtered, mut oracle) = (filtered, oracle);
        filtered.materialize();
        oracle.materialize();
        assert_eq!(filtered.to_log(), oracle.to_log());
        assert_eq!(filtered.ttrs_sorted(), oracle.ttrs_sorted());
        assert_eq!(filtered.category_indices(), oracle.category_indices());
        assert_eq!(filtered.month_ttrs(), oracle.month_ttrs());
        // And against the batch view of the equivalently filtered log.
        let sub = faillog::from_str(&faillog::to_string(&filtered.to_log()).unwrap()).unwrap();
        assert_matches_batch(&filtered, &LogView::new(&sub));
    }

    #[test]
    fn matches_batch_view_on_every_index() {
        for (model, seed) in [
            (SystemModel::tsubame2(), 42),
            (SystemModel::tsubame3(), 43),
        ] {
            let log = Simulator::new(model, seed).generate().unwrap();
            let sv = feed(&log);
            let bv = LogView::new(&log);
            assert_matches_batch(&sv, &bv);
        }
    }

    #[test]
    fn sorted_run_deferred_merge_equals_incremental_insert() {
        // Interleave reads and writes so every SortedRun path runs: the
        // ascending fast path, tail appends, eager in-place merges, the
        // lazy read-side merge cache, and promotion back into the run.
        let mut run = SortedRun::default();
        let mut reference = Vec::new();
        let mut x = 0.5f64;
        for i in 0..2000 {
            x = (x * 997.0 + 0.1).rem_euclid(513.0); // deterministic scatter
            run.push(x);
            let pos = reference.partition_point(|&y: &f64| y <= x);
            reference.insert(pos, x);
            if i % 37 == 0 {
                assert_eq!(run.as_slice(), reference.as_slice(), "at push {i}");
            }
        }
        assert_eq!(run.as_slice(), reference.as_slice());
        run.materialize();
        assert_eq!(run.as_slice(), reference.as_slice());
        // Ascending fast path after materialization.
        run.push(1e9);
        reference.push(1e9);
        assert_eq!(run.as_slice(), reference.as_slice());
        // Clones compare equal whatever their internal layout.
        let cloned = run.clone();
        assert_eq!(cloned, run);
        assert_eq!(cloned.as_slice(), reference.as_slice());
    }

    #[test]
    fn extend_in_chunks_equals_per_record_push(){
        let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
        let mut chunked = StreamView::for_log(&log);
        for chunk in log.records().chunks(7) {
            let accepted = chunked.extend(chunk.to_vec()).unwrap();
            assert_eq!(accepted, chunk.len());
        }
        let per_record = feed(&log);
        assert_eq!(chunked, per_record);
        assert_matches_batch(&chunked, &LogView::new(&log));
    }

    #[test]
    fn reads_between_writes_stay_consistent() {
        // Alternating reads and writes exercises the lazy merge cache
        // and its promotion; every intermediate read must equal the
        // batch view over the same prefix.
        let log = Simulator::new(SystemModel::tsubame3(), 7).generate().unwrap();
        let mut sv = StreamView::for_log(&log);
        for (i, rec) in log.records().iter().enumerate() {
            sv.push(rec.clone()).unwrap();
            if i % 97 == 0 {
                let prefix = FailureLog::new(
                    log.generation(),
                    log.window(),
                    log.records()[..=i].to_vec(),
                )
                .unwrap();
                assert_eq!(sv.ttrs_sorted(), LogView::new(&prefix).ttrs_sorted());
            }
        }
    }

    #[test]
    fn snapshot_log_equals_source_log() {
        let log = Simulator::new(SystemModel::tsubame3(), 7).generate().unwrap();
        let sv = feed(&log);
        assert_eq!(sv.to_log(), log);
    }

    #[test]
    fn rejects_out_of_order_and_invalid_records() {
        let log = Simulator::new(SystemModel::tsubame3(), 7).generate().unwrap();
        let mut sv = StreamView::for_log(&log);
        sv.push(log.records()[5].clone()).unwrap();
        let err = sv.push(log.records()[0].clone()).unwrap_err();
        assert!(matches!(err, StreamViewError::OutOfOrder { .. }), "{err}");
        assert_eq!(sv.len(), 1, "view unchanged on error");

        let mut bad = log.records()[6].clone();
        bad = FailureRecord::new(
            bad.id(),
            Hours::new(-1.0),
            bad.ttr(),
            bad.category(),
            bad.node(),
        );
        let err = sv.push(bad).unwrap_err();
        assert!(matches!(err, StreamViewError::Invalid(_)), "{err}");
        assert!(err.source().is_some());
        assert_eq!(sv.len(), 1);
    }

    #[test]
    fn parts_roundtrip_preserves_every_index_and_extends() {
        for (model, seed) in [
            (SystemModel::tsubame2(), 42),
            (SystemModel::tsubame3(), 43),
        ] {
            let log = Simulator::new(model, seed).generate().unwrap();
            let sv = feed(&log);
            let parts = sv.clone().into_parts();
            assert_eq!(parts.records.len(), log.len());
            assert_eq!(parts.month_counts.iter().sum::<usize>(), log.len());
            let restored = StreamView::from_parts(parts).unwrap();
            assert_eq!(restored, sv);
            assert_matches_batch(&restored, &LogView::new(&log));
        }
    }

    #[test]
    fn from_parts_extends_like_a_live_view() {
        // Restore from a prefix, extend with the rest: identical to one
        // continuous stream (the snapshot prefix-extension invariant).
        let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
        let cut = log.len() / 2;
        let mut prefix = StreamView::for_log(&log);
        prefix.extend(log.records()[..cut].to_vec()).unwrap();
        let mut restored = StreamView::from_parts(prefix.into_parts()).unwrap();
        restored.extend(log.records()[cut..].to_vec()).unwrap();
        assert_eq!(restored, feed(&log));
    }

    #[test]
    fn from_parts_rejects_inconsistent_shapes() {
        let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
        let good = feed(&log).into_parts();
        let mut dropped_ttr = good.clone();
        dropped_ttr.ttrs_sorted.pop();
        let mut bad_months = good.clone();
        bad_months.month_counts.pop();
        let mut bad_month_total = good.clone();
        if let Some(first) = bad_month_total.month_counts.first_mut() {
            *first += 1;
        }
        let mut bad_slots = good.clone();
        bad_slots.slot_counts.push(0);
        let mut unsorted = good.clone();
        unsorted.ttrs_sorted.reverse();
        let mut bad_partition = good.clone();
        bad_partition.category_indices.values_mut().next().unwrap().pop();
        for parts in [
            dropped_ttr,
            bad_months,
            bad_month_total,
            bad_slots,
            unsorted,
            bad_partition,
        ] {
            let err = StreamView::from_parts(parts).unwrap_err();
            assert!(err.to_string().contains("snapshot payload"), "{err}");
        }
        assert!(StreamView::from_parts(good).is_ok());
    }

    #[test]
    fn equal_times_are_accepted() {
        let log = Simulator::new(SystemModel::tsubame3(), 7).generate().unwrap();
        let mut sv = StreamView::for_log(&log);
        let rec = log.records()[0].clone();
        sv.push(rec.clone()).unwrap();
        let dup = FailureRecord::new(
            rec.id() + 1,
            rec.time(),
            rec.ttr(),
            rec.category(),
            rec.node(),
        );
        sv.push(dup).unwrap();
        assert_eq!(sv.len(), 2);
    }
}
