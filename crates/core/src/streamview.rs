//! An incrementally built counterpart to [`LogView`](crate::LogView).
//!
//! [`StreamView`] maintains the same indexes a [`crate::LogView`] builds
//! in one batch pass — time-ordered times, sorted repair durations,
//! category partitions, node/slot/rack counts, month buckets — but
//! accepts records **one at a time** as a live stream delivers them.
//! After pushing every record of a log in time order, each index is
//! equal to the batch one (the streaming equivalence suite in `tests/`
//! asserts this per model/seed), so online consumers such as `failwatch`
//! inherit the batch pipeline's semantics for free.
//!
//! Sorted arrays are maintained by binary-search insertion; each push is
//! `O(n)` worst case on the sorted arrays, which is far below the cost
//! of re-sorting per record and irrelevant at field-log sizes (hundreds
//! to thousands of failures over years).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use failtypes::{
    Category, FailureLog, FailureRecord, Generation, InvalidRecordError, Month, NodeId,
    ObservationWindow, SoftwareLocus, SystemSpec,
};

/// Error from [`StreamView::push`].
#[derive(Debug, Clone, PartialEq)]
pub enum StreamViewError {
    /// The record's failure time precedes the previously pushed record;
    /// streams must deliver records in time order.
    OutOfOrder {
        /// Time of the previously pushed record, hours.
        prev: f64,
        /// Time of the rejected record, hours.
        time: f64,
    },
    /// The record violates a log invariant for this system.
    Invalid(InvalidRecordError),
}

impl fmt::Display for StreamViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamViewError::OutOfOrder { prev, time } => write!(
                f,
                "out-of-order record: time {time} h after a record at {prev} h"
            ),
            StreamViewError::Invalid(e) => write!(f, "invalid record: {e}"),
        }
    }
}

impl Error for StreamViewError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StreamViewError::Invalid(e) => Some(e),
            StreamViewError::OutOfOrder { .. } => None,
        }
    }
}

impl From<InvalidRecordError> for StreamViewError {
    fn from(e: InvalidRecordError) -> Self {
        StreamViewError::Invalid(e)
    }
}

impl From<StreamViewError> for failtypes::Error {
    fn from(e: StreamViewError) -> Self {
        failtypes::Error::other("stream state error", e)
    }
}

/// Incrementally maintained indexes over a record stream, mirroring
/// [`crate::LogView`] field for field.
///
/// # Examples
///
/// ```
/// use failscope::{LogView, StreamView};
/// use failsim::{Simulator, SystemModel};
///
/// let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
/// let mut sv = StreamView::new(log.generation(), log.spec().clone(), log.window());
/// for rec in log.iter() {
///     sv.push(rec.clone()).unwrap();
/// }
/// let bv = LogView::new(&log);
/// assert_eq!(sv.times(), bv.times());
/// assert_eq!(sv.ttrs_sorted(), bv.ttrs_sorted());
/// assert_eq!(sv.month_ttrs(), bv.month_ttrs());
/// ```
#[derive(Debug, Clone)]
pub struct StreamView {
    generation: Generation,
    spec: SystemSpec,
    window: ObservationWindow,
    months: Vec<(i32, Month)>,
    records: Vec<FailureRecord>,
    times: Vec<f64>,
    ttrs_sorted: Vec<f64>,
    recoveries: Vec<f64>,
    recoveries_sorted: Vec<f64>,
    category_indices: BTreeMap<Category, Vec<u32>>,
    locus_counts: BTreeMap<SoftwareLocus, usize>,
    node_counts: BTreeMap<NodeId, u64>,
    slot_counts: Vec<usize>,
    rack_counts: Vec<usize>,
    gpu_involvements: usize,
    multi_gpu_times: Vec<f64>,
    month_ttrs: Vec<Vec<f64>>,
}

/// Inserts `x` into an ascending `Vec` at its binary-search position.
fn sorted_insert(v: &mut Vec<f64>, x: f64) {
    let pos = v.partition_point(|&y| y <= x);
    v.insert(pos, x);
}

impl StreamView {
    /// An empty view for a system described by `spec` over `window`.
    pub fn new(generation: Generation, spec: SystemSpec, window: ObservationWindow) -> Self {
        let months = window.months();
        let slots = spec.gpus_per_node() as usize;
        let racks = spec.racks() as usize;
        StreamView {
            generation,
            spec,
            window,
            month_ttrs: vec![Vec::new(); months.len()],
            months,
            records: Vec::new(),
            times: Vec::new(),
            ttrs_sorted: Vec::new(),
            recoveries: Vec::new(),
            recoveries_sorted: Vec::new(),
            category_indices: BTreeMap::new(),
            locus_counts: BTreeMap::new(),
            node_counts: BTreeMap::new(),
            slot_counts: vec![0; slots],
            rack_counts: vec![0; racks],
            gpu_involvements: 0,
            multi_gpu_times: Vec::new(),
        }
    }

    /// An empty view shaped like `log` (same generation, spec, window).
    pub fn for_log(log: &FailureLog) -> Self {
        StreamView::new(log.generation(), log.spec().clone(), log.window())
    }

    /// Validates and incorporates one record, updating every index.
    ///
    /// # Errors
    ///
    /// Returns [`StreamViewError::Invalid`] if the record violates an
    /// invariant, [`StreamViewError::OutOfOrder`] if its time precedes
    /// the last pushed record. The view is unchanged on error.
    pub fn push(&mut self, rec: FailureRecord) -> Result<(), StreamViewError> {
        rec.validate(self.generation, &self.spec, self.window)?;
        let time = rec.time().get();
        if let Some(&prev) = self.times.last() {
            if time < prev {
                return Err(StreamViewError::OutOfOrder { prev, time });
            }
        }

        let i = self.records.len() as u32;
        let ttr = rec.ttr().get();
        let window_hours = self.window.duration().get();
        self.times.push(time);
        sorted_insert(&mut self.ttrs_sorted, ttr);
        let recovery = rec.recovery_time().get().min(window_hours);
        self.recoveries.push(recovery);
        sorted_insert(&mut self.recoveries_sorted, recovery);
        self.category_indices
            .entry(rec.category())
            .or_default()
            .push(i);
        if let Some(locus) = rec.locus() {
            *self.locus_counts.entry(locus).or_insert(0) += 1;
        }
        *self.node_counts.entry(rec.node()).or_insert(0) += 1;
        self.rack_counts[self.spec.rack_of(rec.node()).index() as usize] += 1;
        if rec.category().is_gpu() {
            self.gpu_involvements += rec.gpus().len().max(1);
            for slot in rec.gpus() {
                if (slot.index() as usize) < self.slot_counts.len() {
                    self.slot_counts[slot.index() as usize] += 1;
                }
            }
            if rec.is_multi_gpu() {
                self.multi_gpu_times.push(time);
            }
        }
        let date = self.window.date_of(rec.time());
        if let Some(idx) = self.months.iter().position(|&m| m == date.year_month()) {
            self.month_ttrs[idx].push(ttr);
        }
        self.records.push(rec);
        Ok(())
    }

    /// Snapshots the accumulated records as a validated [`FailureLog`],
    /// so any batch analysis can run on the live state.
    pub fn to_log(&self) -> FailureLog {
        FailureLog::with_spec(
            self.generation,
            self.spec.clone(),
            self.window,
            self.records.clone(),
        )
        .expect("pushed records were validated")
    }

    /// The system generation this view is indexed for.
    pub const fn generation(&self) -> Generation {
        self.generation
    }

    /// The system spec this view is indexed for.
    pub const fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// The observation window.
    pub const fn window(&self) -> ObservationWindow {
        self.window
    }

    /// The accumulated records, in arrival (time) order.
    pub fn records(&self) -> &[FailureRecord] {
        &self.records
    }

    /// Number of records pushed so far.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Failure times in hours, in arrival order.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Repair durations in hours, sorted ascending.
    pub fn ttrs_sorted(&self) -> &[f64] {
        &self.ttrs_sorted
    }

    /// Repair-completion times clamped to the window, in arrival order.
    pub fn recoveries(&self) -> &[f64] {
        &self.recoveries
    }

    /// Repair-completion times clamped to the window, sorted ascending.
    pub fn recoveries_sorted(&self) -> &[f64] {
        &self.recoveries_sorted
    }

    /// Record indices partitioned by category, each in time order.
    pub fn category_indices(&self) -> &BTreeMap<Category, Vec<u32>> {
        &self.category_indices
    }

    /// Number of failures in one category.
    pub fn category_count(&self, category: Category) -> usize {
        self.category_indices.get(&category).map_or(0, Vec::len)
    }

    /// The failure times of one category, in time order.
    pub fn category_times(&self, category: Category) -> Vec<f64> {
        self.category_indices
            .get(&category)
            .map_or_else(Vec::new, |idx| {
                idx.iter().map(|&i| self.times[i as usize]).collect()
            })
    }

    /// The repair durations of one category, in time order.
    pub fn category_ttrs(&self, category: Category) -> Vec<f64> {
        self.category_indices
            .get(&category)
            .map_or_else(Vec::new, |idx| {
                idx.iter()
                    .map(|&i| self.records[i as usize].ttr().get())
                    .collect()
            })
    }

    /// Software root-locus counts over records that carry one.
    pub fn locus_counts(&self) -> &BTreeMap<SoftwareLocus, usize> {
        &self.locus_counts
    }

    /// Failure counts per node (only failing nodes appear).
    pub fn node_counts(&self) -> &BTreeMap<NodeId, u64> {
        &self.node_counts
    }

    /// GPU-failure involvements per slot, indexed by slot number.
    pub fn slot_counts(&self) -> &[usize] {
        &self.slot_counts
    }

    /// Failure counts per rack, indexed by rack number.
    pub fn rack_counts(&self) -> &[usize] {
        &self.rack_counts
    }

    /// Total per-GPU involvements (a failure touching 3 GPUs counts 3;
    /// unknown involvement counts 1).
    pub const fn gpu_involvements(&self) -> usize {
        self.gpu_involvements
    }

    /// Arrival times of multi-GPU failures, in time order.
    pub fn multi_gpu_times(&self) -> &[f64] {
        &self.multi_gpu_times
    }

    /// Repair durations bucketed by the `(year, month)` of the failure,
    /// aligned with `window.months()`.
    pub fn month_ttrs(&self) -> &[Vec<f64>] {
        &self.month_ttrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LogView;
    use failsim::{Simulator, SystemModel};
    use failtypes::Hours;

    fn feed(log: &FailureLog) -> StreamView {
        let mut sv = StreamView::for_log(log);
        for rec in log.iter() {
            sv.push(rec.clone()).unwrap();
        }
        sv
    }

    #[test]
    fn matches_batch_view_on_every_index() {
        for (model, seed) in [
            (SystemModel::tsubame2(), 42),
            (SystemModel::tsubame3(), 43),
        ] {
            let log = Simulator::new(model, seed).generate().unwrap();
            let sv = feed(&log);
            let bv = LogView::new(&log);
            assert_eq!(sv.len(), bv.len());
            assert_eq!(sv.times(), bv.times());
            assert_eq!(sv.ttrs_sorted(), bv.ttrs_sorted());
            assert_eq!(sv.recoveries(), bv.recoveries());
            assert_eq!(sv.recoveries_sorted(), bv.recoveries_sorted());
            assert_eq!(sv.category_indices(), bv.category_indices());
            assert_eq!(sv.locus_counts(), bv.locus_counts());
            assert_eq!(sv.node_counts(), bv.node_counts());
            assert_eq!(sv.slot_counts(), bv.slot_counts());
            assert_eq!(sv.rack_counts(), bv.rack_counts());
            assert_eq!(sv.gpu_involvements(), bv.gpu_involvements());
            assert_eq!(sv.multi_gpu_times(), bv.multi_gpu_times());
            assert_eq!(sv.month_ttrs(), bv.month_ttrs());
        }
    }

    #[test]
    fn snapshot_log_equals_source_log() {
        let log = Simulator::new(SystemModel::tsubame3(), 7).generate().unwrap();
        let sv = feed(&log);
        assert_eq!(sv.to_log(), log);
    }

    #[test]
    fn rejects_out_of_order_and_invalid_records() {
        let log = Simulator::new(SystemModel::tsubame3(), 7).generate().unwrap();
        let mut sv = StreamView::for_log(&log);
        sv.push(log.records()[5].clone()).unwrap();
        let err = sv.push(log.records()[0].clone()).unwrap_err();
        assert!(matches!(err, StreamViewError::OutOfOrder { .. }), "{err}");
        assert_eq!(sv.len(), 1, "view unchanged on error");

        let mut bad = log.records()[6].clone();
        bad = FailureRecord::new(
            bad.id(),
            Hours::new(-1.0),
            bad.ttr(),
            bad.category(),
            bad.node(),
        );
        let err = sv.push(bad).unwrap_err();
        assert!(matches!(err, StreamViewError::Invalid(_)), "{err}");
        assert!(err.source().is_some());
        assert_eq!(sv.len(), 1);
    }

    #[test]
    fn equal_times_are_accepted() {
        let log = Simulator::new(SystemModel::tsubame3(), 7).generate().unwrap();
        let mut sv = StreamView::for_log(&log);
        let rec = log.records()[0].clone();
        sv.push(rec.clone()).unwrap();
        let dup = FailureRecord::new(
            rec.id() + 1,
            rec.time(),
            rec.ttr(),
            rec.category(),
            rec.node(),
        );
        sv.push(dup).unwrap();
        assert_eq!(sv.len(), 2);
    }
}
