//! Performance-error-proportionality (PEP): the paper's proposed
//! benchmarking metric — useful work per failure-free period, e.g. total
//! FLOP per MTBF.

use failtypes::FailureLog;
use serde::{Deserialize, Serialize};

use crate::tbf::TbfAnalysis;
use crate::{FleetIndex, LogView};

/// The performance-error-proportionality of one system.
///
/// # Examples
///
/// ```
/// use failscope::Pep;
/// use failsim::{Simulator, SystemModel};
///
/// let t2 = Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap();
/// let t3 = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
/// let (p2, p3) = (Pep::from_log(&t2).unwrap(), Pep::from_log(&t3).unwrap());
/// // Tsubame-3 does far more useful work per failure-free period.
/// assert!(p3.flop_per_failure_free_period() > 10.0 * p2.flop_per_failure_free_period());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pep {
    /// Theoretical peak in PFLOP/s.
    pub rpeak_pflops: f64,
    /// System MTBF in hours.
    pub mtbf_hours: f64,
}

impl Pep {
    /// Computes the metric from any [`FleetIndex`]; `None` with fewer
    /// than two failures.
    pub fn from_index<V: FleetIndex + ?Sized>(index: &V) -> Option<Self> {
        let tbf = TbfAnalysis::from_index(index)?;
        Some(Pep {
            rpeak_pflops: index.spec().rpeak_pflops(),
            mtbf_hours: tbf.mtbf_hours(),
        })
    }

    /// [`Pep::from_index`], indexing the log once.
    #[doc(hidden)]
    pub fn from_log(log: &FailureLog) -> Option<Self> {
        Self::from_index(&LogView::new(log))
    }

    /// [`Pep::from_index`] on a prebuilt [`LogView`].
    #[doc(hidden)]
    pub fn from_view(view: &LogView<'_>) -> Option<Self> {
        Self::from_index(view)
    }

    /// Maximum useful computation during a mean failure-free period:
    /// `Rpeak × MTBF`, in FLOP.
    pub fn flop_per_failure_free_period(&self) -> f64 {
        self.rpeak_pflops * 1e15 * self.mtbf_hours * 3600.0
    }

    /// The same quantity in exaFLOP, a readable magnitude for reports.
    pub fn exaflop_per_failure_free_period(&self) -> f64 {
        self.flop_per_failure_free_period() / 1e18
    }
}

/// The cross-generation PEP comparison the paper walks through: compute
/// grew ~8x (the paper's figure; ~5.3x by Rpeak), MTBF grew ~4x, so
/// useful work per failure-free period grew multiplicatively.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PepComparison {
    /// The older system's metric.
    pub older: Pep,
    /// The newer system's metric.
    pub newer: Pep,
}

impl PepComparison {
    /// Builds the comparison from two indexes (possibly of different
    /// concrete types — e.g. a batch [`LogView`] against a live
    /// [`crate::StreamView`]); `None` when either side is too small.
    pub fn from_indexes<A, B>(older: &A, newer: &B) -> Option<Self>
    where
        A: FleetIndex + ?Sized,
        B: FleetIndex + ?Sized,
    {
        Some(PepComparison {
            older: Pep::from_index(older)?,
            newer: Pep::from_index(newer)?,
        })
    }

    /// [`PepComparison::from_indexes`], indexing both logs once; `None`
    /// when either log is too small.
    pub fn new(older: &FailureLog, newer: &FailureLog) -> Option<Self> {
        Self::from_indexes(&LogView::new(older), &LogView::new(newer))
    }

    /// Compute-capability ratio (newer / older) by Rpeak.
    pub fn compute_factor(&self) -> f64 {
        self.newer.rpeak_pflops / self.older.rpeak_pflops
    }

    /// MTBF improvement factor (newer / older).
    pub fn mtbf_factor(&self) -> f64 {
        self.newer.mtbf_hours / self.older.mtbf_hours
    }

    /// PEP improvement factor — the product of the two.
    pub fn pep_factor(&self) -> f64 {
        self.newer.flop_per_failure_free_period() / self.older.flop_per_failure_free_period()
    }

    /// The paper's observation that reliability does not scale with
    /// compute: `true` when MTBF grew more slowly than Rpeak.
    pub fn reliability_lags_compute(&self) -> bool {
        self.mtbf_factor() < self.compute_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{Simulator, SystemModel};

    fn comparison() -> PepComparison {
        let t2 = Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap();
        let t3 = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
        PepComparison::new(&t2, &t3).unwrap()
    }

    #[test]
    fn factors_match_paper() {
        let c = comparison();
        // Rpeak: 12.1 / 2.3 ≈ 5.26 (the paper quotes ~8x compute).
        assert!((c.compute_factor() - 5.26).abs() < 0.01);
        // MTBF: ≈ 72.4 / 15.3 ≈ 4.7 ("more than 4x improvement").
        assert!(c.mtbf_factor() > 4.0 && c.mtbf_factor() < 5.2);
        // PEP improves by the product.
        assert!(
            (c.pep_factor() - c.compute_factor() * c.mtbf_factor()).abs()
                < 1e-9 * c.pep_factor()
        );
    }

    #[test]
    fn reliability_lags_compute_on_tsubame() {
        // The paper's resilience-proportionality point: MTBF grew less
        // than raw compute.
        let c = comparison();
        assert!(c.reliability_lags_compute());
    }

    #[test]
    fn flop_magnitudes() {
        let c = comparison();
        // T2: 2.3 PF · 15.3 h ≈ 0.127 ZFLOP? Sanity: 2.3e15 · 55080 s.
        let t2 = c.older.flop_per_failure_free_period();
        assert!((t2 - 2.3e15 * c.older.mtbf_hours * 3600.0).abs() < 1e9);
        assert!(c.older.exaflop_per_failure_free_period() > 100.0);
        assert!(c.newer.exaflop_per_failure_free_period() > 1000.0);
    }

    #[test]
    fn too_small_logs_are_none() {
        let t3 = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
        let empty = t3.filtered(|_| false);
        assert!(Pep::from_log(&empty).is_none());
        assert!(PepComparison::new(&empty, &t3).is_none());
        assert!(PepComparison::new(&t3, &empty).is_none());
    }
}
