//! RQ1 — distribution of failure categories (Figs. 2 and 3).

use failtypes::{Category, ComponentClass, Domain, FailureLog, SoftwareLocus};
use serde::{Deserialize, Serialize};

use crate::{FleetIndex, LogView};

/// One row of a category breakdown: a category, its count, and its share
/// of all failures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoryShare {
    /// The failure category.
    pub category: Category,
    /// Number of failures in this category.
    pub count: usize,
    /// Share of all failures, `0..=1`.
    pub fraction: f64,
}

/// The per-category failure breakdown of a log (Fig. 2).
///
/// # Examples
///
/// ```
/// use failscope::CategoryBreakdown;
/// use failsim::{Simulator, SystemModel};
///
/// let log = Simulator::new(SystemModel::tsubame2(), 1).generate().unwrap();
/// let breakdown = CategoryBreakdown::from_log(&log);
/// // Fig. 2a: GPU is the top Tsubame-2 category at 44.37%.
/// let top = &breakdown.shares()[0];
/// assert_eq!(top.category.label(), "GPU");
/// assert!((top.fraction - 0.4437).abs() < 0.001);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoryBreakdown {
    shares: Vec<CategoryShare>,
    total: usize,
}

impl CategoryBreakdown {
    /// Computes the breakdown from any [`FleetIndex`], reusing its
    /// category partitions; rows are sorted by descending count.
    pub fn from_index<V: FleetIndex + ?Sized>(index: &V) -> Self {
        let total = index.len();
        let mut shares: Vec<CategoryShare> = index
            .category_indices()
            .iter()
            .map(|(&category, indices)| CategoryShare {
                category,
                count: indices.len(),
                fraction: indices.len() as f64 / total.max(1) as f64,
            })
            .collect();
        shares.sort_by(|a, b| b.count.cmp(&a.count).then(a.category.cmp(&b.category)));
        CategoryBreakdown { shares, total }
    }

    /// Computes the breakdown, indexing the log once.
    #[doc(hidden)]
    pub fn from_log(log: &FailureLog) -> Self {
        Self::from_index(&LogView::new(log))
    }

    /// Computes the breakdown from a prebuilt [`LogView`].
    #[doc(hidden)]
    pub fn from_view(view: &LogView<'_>) -> Self {
        Self::from_index(view)
    }

    /// Rows sorted by descending count.
    pub fn shares(&self) -> &[CategoryShare] {
        &self.shares
    }

    /// Total failures in the log.
    pub const fn total(&self) -> usize {
        self.total
    }

    /// The share of one category (zero when absent).
    pub fn fraction_of(&self, category: Category) -> f64 {
        self.shares
            .iter()
            .find(|s| s.category == category)
            .map_or(0.0, |s| s.fraction)
    }

    /// The count of one category (zero when absent).
    pub fn count_of(&self, category: Category) -> usize {
        self.shares
            .iter()
            .find(|s| s.category == category)
            .map_or(0, |s| s.count)
    }

    /// Share of failures whose component class is GPU — the paper's
    /// headline comparison against CPU failures.
    pub fn gpu_fraction(&self) -> f64 {
        self.shares
            .iter()
            .filter(|s| s.category.is_gpu())
            .map(|s| s.fraction)
            .sum()
    }

    /// Share of failures whose component class is CPU.
    pub fn cpu_fraction(&self) -> f64 {
        self.shares
            .iter()
            .filter(|s| s.category.is_cpu())
            .map(|s| s.fraction)
            .sum()
    }
}

/// The per-component-class breakdown, uniform across generations.
///
/// Fig. 2 uses each system's own category vocabulary; the paper's
/// cross-generation statements ("GPU failures are significantly higher in
/// number than CPU failures on both systems") compare on the shared
/// [`ComponentClass`] axis, which this type provides.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassBreakdown {
    counts: Vec<(ComponentClass, usize)>,
    total: usize,
}

impl ClassBreakdown {
    /// Computes the breakdown from any [`FleetIndex`]; every class
    /// appears (possibly with zero).
    pub fn from_index<V: FleetIndex + ?Sized>(index: &V) -> Self {
        let mut counts: Vec<(ComponentClass, usize)> =
            ComponentClass::ALL.iter().map(|&c| (c, 0)).collect();
        for (category, indices) in index.category_indices() {
            let class = category.component_class();
            if let Some(entry) = counts.iter_mut().find(|(c, _)| *c == class) {
                entry.1 += indices.len();
            }
        }
        ClassBreakdown {
            counts,
            total: index.len(),
        }
    }

    /// Computes the breakdown, indexing the log once.
    #[doc(hidden)]
    pub fn from_log(log: &FailureLog) -> Self {
        Self::from_index(&LogView::new(log))
    }

    /// Computes the breakdown from a prebuilt [`LogView`].
    #[doc(hidden)]
    pub fn from_view(view: &LogView<'_>) -> Self {
        Self::from_index(view)
    }

    /// `(class, count)` rows in the canonical class order.
    pub fn counts(&self) -> &[(ComponentClass, usize)] {
        &self.counts
    }

    /// Count for one class.
    pub fn count_of(&self, class: ComponentClass) -> usize {
        self.counts
            .iter()
            .find(|(c, _)| *c == class)
            .map_or(0, |(_, n)| *n)
    }

    /// Share of one class among all failures.
    pub fn fraction_of(&self, class: ComponentClass) -> f64 {
        self.count_of(class) as f64 / self.total.max(1) as f64
    }

    /// Total failures.
    pub const fn total(&self) -> usize {
        self.total
    }
}

/// Hardware/software/unknown domain split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DomainBreakdown {
    /// Hardware-domain failures.
    pub hardware: usize,
    /// Software-domain failures.
    pub software: usize,
    /// Unknown-domain failures.
    pub unknown: usize,
}

impl DomainBreakdown {
    /// Computes the split from any [`FleetIndex`].
    pub fn from_index<V: FleetIndex + ?Sized>(index: &V) -> Self {
        let mut out = DomainBreakdown {
            hardware: 0,
            software: 0,
            unknown: 0,
        };
        for (category, indices) in index.category_indices() {
            match category.domain() {
                Domain::Hardware => out.hardware += indices.len(),
                Domain::Software => out.software += indices.len(),
                Domain::Unknown => out.unknown += indices.len(),
            }
        }
        out
    }

    /// Computes the split, indexing the log once.
    #[doc(hidden)]
    pub fn from_log(log: &FailureLog) -> Self {
        Self::from_index(&LogView::new(log))
    }

    /// Computes the split from a prebuilt [`LogView`].
    #[doc(hidden)]
    pub fn from_view(view: &LogView<'_>) -> Self {
        Self::from_index(view)
    }

    /// Total failures.
    pub fn total(&self) -> usize {
        self.hardware + self.software + self.unknown
    }

    /// Software share of all failures.
    pub fn software_fraction(&self) -> f64 {
        self.software as f64 / self.total().max(1) as f64
    }
}

/// One row of the software root-locus breakdown (Fig. 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocusShare {
    /// The root locus.
    pub locus: SoftwareLocus,
    /// Number of software failures with this locus.
    pub count: usize,
    /// Share among software failures with a recorded locus.
    pub fraction: f64,
}

/// The root-locus breakdown of software failures (Fig. 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocusBreakdown {
    shares: Vec<LocusShare>,
    total: usize,
}

impl LocusBreakdown {
    /// Computes the breakdown from any [`FleetIndex`] over records that
    /// carry a root locus, sorted by descending count.
    pub fn from_index<V: FleetIndex + ?Sized>(index: &V) -> Self {
        let total: usize = index.locus_counts().values().sum();
        let mut shares: Vec<LocusShare> = index
            .locus_counts()
            .iter()
            .map(|(&locus, &count)| LocusShare {
                locus,
                count,
                fraction: count as f64 / total.max(1) as f64,
            })
            .collect();
        shares.sort_by(|a, b| b.count.cmp(&a.count).then(a.locus.cmp(&b.locus)));
        LocusBreakdown { shares, total }
    }

    /// Computes the breakdown, indexing the log once.
    #[doc(hidden)]
    pub fn from_log(log: &FailureLog) -> Self {
        Self::from_index(&LogView::new(log))
    }

    /// Computes the breakdown from a prebuilt [`LogView`].
    #[doc(hidden)]
    pub fn from_view(view: &LogView<'_>) -> Self {
        Self::from_index(view)
    }

    /// Rows sorted by descending count.
    pub fn shares(&self) -> &[LocusShare] {
        &self.shares
    }

    /// Software failures with a recorded locus.
    pub const fn total(&self) -> usize {
        self.total
    }

    /// Share of the given locus (zero when absent).
    pub fn fraction_of(&self, locus: SoftwareLocus) -> f64 {
        self.shares
            .iter()
            .find(|s| s.locus == locus)
            .map_or(0.0, |s| s.fraction)
    }

    /// Share of GPU-driver-related loci (the paper's ≈ 43% group, plus
    /// the CUDA/GPUDirect causes this crate classifies alongside it).
    pub fn gpu_driver_related_fraction(&self) -> f64 {
        self.shares
            .iter()
            .filter(|s| s.locus.is_gpu_driver_related())
            .map(|s| s.fraction)
            .sum()
    }

    /// Share of failures with no known cause (the paper's ≈ 20%).
    pub fn unknown_fraction(&self) -> f64 {
        self.fraction_of(SoftwareLocus::UnknownCause)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{Simulator, SystemModel};
    use failtypes::{T2Category, T3Category};

    fn t2() -> FailureLog {
        Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap()
    }

    fn t3() -> FailureLog {
        Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap()
    }

    #[test]
    fn fig2a_t2_anchors() {
        let b = CategoryBreakdown::from_log(&t2());
        assert_eq!(b.total(), 897);
        assert!((b.fraction_of(Category::T2(T2Category::Gpu)) - 0.4437).abs() < 0.001);
        assert!((b.fraction_of(Category::T2(T2Category::Cpu)) - 0.0178).abs() < 0.001);
        assert!((b.fraction_of(Category::T2(T2Category::Ssd)) - 0.04).abs() < 0.002);
        // GPU failures vastly outnumber CPU failures.
        assert!(b.gpu_fraction() > 10.0 * b.cpu_fraction());
    }

    #[test]
    fn fig2b_t3_anchors() {
        let b = CategoryBreakdown::from_log(&t3());
        assert_eq!(b.total(), 338);
        assert!((b.fraction_of(Category::T3(T3Category::Software)) - 0.5059).abs() < 0.001);
        assert!((b.fraction_of(Category::T3(T3Category::Gpu)) - 0.2781).abs() < 0.001);
        assert!((b.fraction_of(Category::T3(T3Category::Cpu)) - 0.0325).abs() < 0.001);
        // Top category flips from GPU (T2) to Software (T3).
        assert_eq!(b.shares()[0].category, Category::T3(T3Category::Software));
        assert_eq!(b.shares()[1].category, Category::T3(T3Category::Gpu));
    }

    #[test]
    fn shares_are_sorted_and_sum_to_one() {
        for log in [t2(), t3()] {
            let b = CategoryBreakdown::from_log(&log);
            let sum: f64 = b.shares().iter().map(|s| s.fraction).sum();
            assert!((sum - 1.0).abs() < 1e-9);
            for w in b.shares().windows(2) {
                assert!(w[0].count >= w[1].count);
            }
        }
    }

    #[test]
    fn absent_category_is_zero() {
        let b = CategoryBreakdown::from_log(&t3());
        assert_eq!(b.fraction_of(Category::T2(T2Category::Fan)), 0.0);
        assert_eq!(b.count_of(Category::T2(T2Category::Fan)), 0);
    }

    #[test]
    fn class_breakdown_compares_across_generations() {
        use failtypes::ComponentClass;
        let b2 = ClassBreakdown::from_log(&t2());
        let b3 = ClassBreakdown::from_log(&t3());
        // GPU >> CPU on both systems, on the shared axis.
        assert!(b2.fraction_of(ComponentClass::Gpu) > 10.0 * b2.fraction_of(ComponentClass::Cpu));
        assert!(b3.fraction_of(ComponentClass::Gpu) > 5.0 * b3.fraction_of(ComponentClass::Cpu));
        // The software class grows across generations (driver + Software
        // + Lustre on T3 vs OtherSW/PBS/VM on T2).
        assert!(
            b3.fraction_of(ComponentClass::Software) > b2.fraction_of(ComponentClass::Software)
        );
        // Every failure lands in exactly one class.
        let sum2: usize = b2.counts().iter().map(|(_, n)| n).sum();
        assert_eq!(sum2, b2.total());
        assert_eq!(b2.counts().len(), ComponentClass::ALL.len());
        // Absent classes report zero.
        let empty = t3().filtered(|_| false);
        let be = ClassBreakdown::from_log(&empty);
        assert_eq!(be.count_of(ComponentClass::Gpu), 0);
        assert_eq!(be.fraction_of(ComponentClass::Gpu), 0.0);
    }

    #[test]
    fn domain_split_t3_is_software_majority() {
        let d = DomainBreakdown::from_log(&t3());
        assert_eq!(d.total(), 338);
        // Software + GPUDriver + Lustre = 171 + 10 + 4 = 185.
        assert_eq!(d.software, 185);
        assert!(d.software_fraction() > 0.5);
    }

    #[test]
    fn domain_split_t2_is_hardware_majority() {
        let d = DomainBreakdown::from_log(&t2());
        assert!(d.hardware > d.software);
        // Down is the only unknown-domain T2 category (22 events).
        assert_eq!(d.unknown, 22);
    }

    #[test]
    fn fig3_locus_anchors() {
        let b = LocusBreakdown::from_log(&t3());
        assert_eq!(b.total(), 171);
        // ~43% GPU-driver problems, ~20% unknown.
        assert!((b.fraction_of(SoftwareLocus::GpuDriverProblem) - 0.43).abs() < 0.01);
        assert!((b.unknown_fraction() - 0.20).abs() < 0.01);
        // Top row is the GPU-driver bucket.
        assert_eq!(b.shares()[0].locus, SoftwareLocus::GpuDriverProblem);
        assert!(b.gpu_driver_related_fraction() >= b.fraction_of(SoftwareLocus::GpuDriverProblem));
    }

    #[test]
    fn locus_breakdown_of_t2_is_empty() {
        let b = LocusBreakdown::from_log(&t2());
        assert_eq!(b.total(), 0);
        assert!(b.shares().is_empty());
        assert_eq!(b.unknown_fraction(), 0.0);
    }

    #[test]
    fn empty_log_breakdowns() {
        let log = t3().filtered(|_| false);
        let b = CategoryBreakdown::from_log(&log);
        assert_eq!(b.total(), 0);
        assert!(b.shares().is_empty());
        let d = DomainBreakdown::from_log(&log);
        assert_eq!(d.software_fraction(), 0.0);
    }
}
