//! Fig. 8 — temporal distribution of multi-GPU failures within nodes.
//!
//! The paper's observation: a failure in which multiple GPUs of a node
//! failed simultaneously is likely to be followed by another such failure
//! soon after. This module quantifies that with point-process burstiness
//! measures and a direct conditional-probability comparison.

use failstats::BurstinessReport;
use failtypes::FailureLog;
use serde::{Deserialize, Serialize};

use crate::{FleetIndex, LogView};

/// Temporal-clustering analysis of multi-GPU failures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiGpuTemporal {
    /// Burstiness of the multi-GPU failure sequence.
    pub report: BurstinessReport,
    /// Probability that a multi-GPU failure is followed by another one
    /// within the follow-up window.
    pub follow_up_probability: f64,
    /// The probability the same window would capture under a memoryless
    /// (exponential) arrival process with the observed mean gap — the
    /// "no clustering" baseline.
    pub poisson_baseline: f64,
}

impl MultiGpuTemporal {
    /// Computes the analysis from any [`FleetIndex`] with the given
    /// follow-up window in hours, reusing the index's multi-GPU arrival
    /// times.
    ///
    /// Returns `None` when the log has fewer than three multi-GPU
    /// failures (the paper's Tsubame-2 has hundreds).
    ///
    /// # Panics
    ///
    /// Panics if `follow_up_hours` is not positive.
    pub fn from_index<V: FleetIndex + ?Sized>(index: &V, follow_up_hours: f64) -> Option<Self> {
        Self::from_times(
            index.multi_gpu_times(),
            index.window().duration().get(),
            follow_up_hours,
        )
    }

    /// [`MultiGpuTemporal::from_index`], indexing the log once.
    ///
    /// # Panics
    ///
    /// Panics if `follow_up_hours` is not positive.
    #[doc(hidden)]
    pub fn from_log(log: &FailureLog, follow_up_hours: f64) -> Option<Self> {
        Self::from_index(&LogView::new(log), follow_up_hours)
    }

    /// [`MultiGpuTemporal::from_index`] on a prebuilt [`LogView`].
    ///
    /// # Panics
    ///
    /// Panics if `follow_up_hours` is not positive.
    #[doc(hidden)]
    pub fn from_view(view: &LogView<'_>, follow_up_hours: f64) -> Option<Self> {
        Self::from_index(view, follow_up_hours)
    }

    fn from_times(times: &[f64], horizon: f64, follow_up_hours: f64) -> Option<Self> {
        // Count windows sized to hold a handful of events on average.
        let count_window = (horizon / (times.len().max(1) as f64 / 4.0)).max(1.0);
        let report =
            failstats::burstiness_report(times, horizon, count_window, follow_up_hours)?;
        let gaps = failstats::inter_arrival_times(times);
        let mean_gap = failstats::mean(&gaps)?;
        Some(MultiGpuTemporal {
            report,
            follow_up_probability: report.short_gap_fraction,
            poisson_baseline: 1.0 - (-follow_up_hours / mean_gap).exp(),
        })
    }

    /// How much more likely a quick follow-up is than the memoryless
    /// baseline (1.0 = no clustering).
    pub fn clustering_factor(&self) -> f64 {
        if self.poisson_baseline > 0.0 {
            self.follow_up_probability / self.poisson_baseline
        } else {
            1.0
        }
    }

    /// `true` when the sequence is bursty by every measure (CV above 1,
    /// dispersion above 1, positive burstiness).
    pub fn is_clustered(&self) -> bool {
        self.report.cv > 1.0 && self.report.dispersion_index > 1.0 && self.report.burstiness > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{ClusteringMode, Simulator, SystemModel};

    #[test]
    fn fig8_t2_multi_gpu_failures_cluster() {
        // Average across seeds: clustering is a distributional property.
        let clustered: usize =
            failstats::par_map_ordered(10, failstats::available_threads(), |seed| {
                let log = Simulator::new(SystemModel::tsubame2(), 100 + seed as u64)
                    .generate()
                    .unwrap();
                let t = MultiGpuTemporal::from_log(&log, 96.0).unwrap();
                usize::from(t.report.cv > 1.0)
            })
            .iter()
            .sum();
        assert!(clustered >= 8, "only {clustered}/10 runs showed CV > 1");
    }

    #[test]
    fn fig8_follow_up_beats_poisson_baseline() {
        let factors = failstats::par_map_ordered(10, failstats::available_threads(), |seed| {
            let log = Simulator::new(SystemModel::tsubame2(), 200 + seed as u64)
                .generate()
                .unwrap();
            MultiGpuTemporal::from_log(&log, 96.0).unwrap().clustering_factor()
        });
        let mean = failstats::mean(&factors).unwrap();
        assert!(mean > 1.05, "mean clustering factor {mean}");
    }

    #[test]
    fn ablation_independent_assignment_is_not_clustered() {
        let mut model = SystemModel::tsubame2();
        model.clustering = ClusteringMode::Independent;
        let cvs = failstats::par_map_ordered(10, failstats::available_threads(), |seed| {
            let log = Simulator::new(model.clone(), 300 + seed as u64).generate().unwrap();
            MultiGpuTemporal::from_log(&log, 96.0).unwrap().report.cv
        });
        let mean_cv = failstats::mean(&cvs).unwrap();
        // Thinned renewal arrivals: CV stays near 1.
        assert!(
            (mean_cv - 1.0).abs() < 0.2,
            "independent assignment mean CV {mean_cv}"
        );
    }

    #[test]
    fn clustered_exceeds_independent() {
        let pairs = failstats::par_map_ordered(10, failstats::available_threads(), |seed| {
            let on = Simulator::new(SystemModel::tsubame2(), 400 + seed as u64)
                .generate()
                .unwrap();
            let mut model = SystemModel::tsubame2();
            model.clustering = ClusteringMode::Independent;
            let off = Simulator::new(model, 400 + seed as u64).generate().unwrap();
            (
                MultiGpuTemporal::from_log(&on, 96.0).unwrap().report.cv,
                MultiGpuTemporal::from_log(&off, 96.0).unwrap().report.cv,
            )
        });
        let mut sum_on = 0.0;
        let mut sum_off = 0.0;
        for (on, off) in pairs {
            sum_on += on;
            sum_off += off;
        }
        assert!(sum_on > sum_off, "on {sum_on} off {sum_off}");
    }

    #[test]
    fn t3_has_too_few_multi_gpu_failures_for_strong_claims() {
        // Tsubame-3 has only 6 multi-GPU failures; the analysis still
        // runs but the paper makes the clustering claim on Tsubame-2.
        let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
        let t = MultiGpuTemporal::from_log(&log, 96.0);
        assert!(t.is_some());
        assert_eq!(t.unwrap().report.events, 6);
    }

    #[test]
    fn empty_sequences_are_none() {
        let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
        let none = log.filtered(|r| !r.is_multi_gpu());
        assert!(MultiGpuTemporal::from_log(&none, 96.0).is_none());
    }
}
