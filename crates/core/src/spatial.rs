//! RQ2 — spatial distribution of failures: per-node occupancy (Fig. 4)
//! and per-GPU-slot distribution (Fig. 5).

use failstats::{chi_square_gof, ChiSquareTest, CountHistogram};
use failtypes::{Domain, FailureLog, GpuSlot, RackId};
use serde::{Deserialize, Serialize};

use crate::{FleetIndex, LogView};

/// Per-node failure-count distribution (Fig. 4).
///
/// # Examples
///
/// ```
/// use failscope::NodeDistribution;
/// use failsim::{Simulator, SystemModel};
///
/// let log = Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap();
/// let dist = NodeDistribution::from_log(&log);
/// // Fig. 4a: ~60% of failing Tsubame-2 nodes saw exactly one failure.
/// assert!((dist.fraction_with_exactly(1) - 0.6).abs() < 0.06);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeDistribution {
    histogram: CountHistogram,
    failing_nodes: usize,
    total_nodes: u32,
    /// Failures on multi-failure nodes, split by domain — the paper's
    /// "352 hardware and 1 software" observation for Tsubame-2.
    multi_node_hardware: usize,
    multi_node_software: usize,
}

impl NodeDistribution {
    /// Computes the distribution from any [`FleetIndex`], reusing its
    /// per-node counts.
    pub fn from_index<V: FleetIndex + ?Sized>(index: &V) -> Self {
        let counts = index.node_counts();
        let histogram: CountHistogram = counts.values().copied().collect();
        let mut multi_node_hardware = 0;
        let mut multi_node_software = 0;
        for rec in index.records() {
            if counts[&rec.node()] > 1 {
                match rec.category().domain() {
                    Domain::Hardware => multi_node_hardware += 1,
                    Domain::Software => multi_node_software += 1,
                    Domain::Unknown => {}
                }
            }
        }
        NodeDistribution {
            failing_nodes: counts.len(),
            histogram,
            total_nodes: index.spec().nodes(),
            multi_node_hardware,
            multi_node_software,
        }
    }

    /// Computes the distribution, indexing the log once.
    #[doc(hidden)]
    pub fn from_log(log: &FailureLog) -> Self {
        Self::from_index(&LogView::new(log))
    }

    /// Computes the distribution from a prebuilt [`LogView`].
    #[doc(hidden)]
    pub fn from_view(view: &LogView<'_>) -> Self {
        Self::from_index(view)
    }

    /// Fraction of failing nodes with exactly `k` failures.
    pub fn fraction_with_exactly(&self, k: u64) -> f64 {
        self.histogram.fraction_of(k)
    }

    /// Fraction of failing nodes with more than one failure.
    pub fn fraction_with_multiple(&self) -> f64 {
        self.histogram.fraction_above(1)
    }

    /// Number of nodes with at least one failure.
    pub const fn failing_nodes(&self) -> usize {
        self.failing_nodes
    }

    /// Number of nodes in the system.
    pub const fn total_nodes(&self) -> u32 {
        self.total_nodes
    }

    /// Largest per-node failure count.
    pub fn max_failures_on_a_node(&self) -> u64 {
        self.histogram.max_value().unwrap_or(0)
    }

    /// The underlying `(failures, node count)` histogram, ascending.
    pub fn histogram(&self) -> &CountHistogram {
        &self.histogram
    }

    /// Hardware-domain failures that landed on multi-failure nodes.
    pub const fn multi_node_hardware_failures(&self) -> usize {
        self.multi_node_hardware
    }

    /// Software-domain failures that landed on multi-failure nodes.
    pub const fn multi_node_software_failures(&self) -> usize {
        self.multi_node_software
    }
}

/// One GPU slot's failure share (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotShare {
    /// The slot.
    pub slot: GpuSlot,
    /// GPU-failure involvements on this slot.
    pub count: usize,
    /// Share among all slot involvements.
    pub fraction: f64,
    /// Count relative to the per-slot mean (1.0 = average slot).
    pub relative_to_mean: f64,
}

/// Per-GPU-slot failure distribution within a node (Fig. 5).
///
/// Counts every slot involvement: a failure touching GPUs 0 and 3 adds
/// one to each slot, matching how the paper counts per-GPU failures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotDistribution {
    shares: Vec<SlotShare>,
    total_involvements: usize,
}

impl SlotDistribution {
    /// Computes the distribution from any [`FleetIndex`], reusing its
    /// per-slot counts.
    pub fn from_index<V: FleetIndex + ?Sized>(index: &V) -> Self {
        let counts = index.slot_counts();
        let slots = counts.len();
        let total: usize = counts.iter().sum();
        let mean = total as f64 / slots.max(1) as f64;
        let shares = counts
            .iter()
            .enumerate()
            .map(|(i, &count)| SlotShare {
                slot: GpuSlot::new(i as u8),
                count,
                fraction: count as f64 / total.max(1) as f64,
                relative_to_mean: if mean > 0.0 { count as f64 / mean } else { 0.0 },
            })
            .collect();
        SlotDistribution {
            shares,
            total_involvements: total,
        }
    }

    /// Computes the distribution, indexing the log once.
    #[doc(hidden)]
    pub fn from_log(log: &FailureLog) -> Self {
        Self::from_index(&LogView::new(log))
    }

    /// Computes the distribution from a prebuilt [`LogView`].
    #[doc(hidden)]
    pub fn from_view(view: &LogView<'_>) -> Self {
        Self::from_index(view)
    }

    /// Per-slot rows in slot order.
    pub fn shares(&self) -> &[SlotShare] {
        &self.shares
    }

    /// All slot involvements counted.
    pub const fn total_involvements(&self) -> usize {
        self.total_involvements
    }

    /// Ratio of the largest to the smallest slot count (∞-safe: returns
    /// `None` when a slot has zero involvements or there are no slots).
    pub fn imbalance_ratio(&self) -> Option<f64> {
        let max = self.shares.iter().map(|s| s.count).max()?;
        let min = self.shares.iter().map(|s| s.count).min()?;
        (min > 0).then(|| max as f64 / min as f64)
    }
}

/// One rack's failure share.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackShare {
    /// The rack.
    pub rack: RackId,
    /// Failures on nodes of this rack.
    pub count: usize,
    /// Nodes housed in the rack (partial final racks are smaller).
    pub nodes: u32,
}

/// Rack-level failure distribution.
///
/// The paper's generalizability discussion: "the non-uniform distribution
/// of failures among racks is also present in multi-GPU-per-node
/// systems". [`RackDistribution::uniformity_test`] makes that claim
/// testable: a chi-square of the per-rack counts against the rack sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RackDistribution {
    shares: Vec<RackShare>,
    total: usize,
}

impl RackDistribution {
    /// Computes the distribution from any [`FleetIndex`], reusing its
    /// per-rack counts (every rack appears, including failure-free
    /// ones).
    pub fn from_index<V: FleetIndex + ?Sized>(index: &V) -> Self {
        let spec = index.spec();
        let shares = index
            .rack_counts()
            .iter()
            .enumerate()
            .map(|(i, &count)| RackShare {
                rack: RackId::new(i as u32),
                count,
                nodes: spec.rack_nodes(RackId::new(i as u32)).count() as u32,
            })
            .collect();
        RackDistribution {
            shares,
            total: index.len(),
        }
    }

    /// Counts failures per rack, indexing the log once.
    #[doc(hidden)]
    pub fn from_log(log: &FailureLog) -> Self {
        Self::from_index(&LogView::new(log))
    }

    /// Computes the distribution from a prebuilt [`LogView`].
    #[doc(hidden)]
    pub fn from_view(view: &LogView<'_>) -> Self {
        Self::from_index(view)
    }

    /// Per-rack rows in rack order.
    pub fn shares(&self) -> &[RackShare] {
        &self.shares
    }

    /// Total failures counted.
    pub const fn total(&self) -> usize {
        self.total
    }

    /// Chi-square test of the per-rack counts against a size-proportional
    /// uniform distribution. Rejection means the racks fail non-uniformly.
    ///
    /// Returns `None` when the log is empty or has fewer than two racks.
    pub fn uniformity_test(&self) -> Option<ChiSquareTest> {
        let observed: Vec<u64> = self.shares.iter().map(|s| s.count as u64).collect();
        let expected: Vec<f64> = self.shares.iter().map(|s| s.nodes as f64).collect();
        chi_square_gof(&observed, &expected)
    }

    /// Fraction of all failures on the busiest `k` racks.
    pub fn top_rack_share(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut counts: Vec<usize> = self.shares.iter().map(|s| s.count).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        counts.iter().take(k).sum::<usize>() as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{Simulator, SystemModel};

    fn t2() -> FailureLog {
        Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap()
    }

    fn t3() -> FailureLog {
        Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap()
    }

    #[test]
    fn fig4_t2_anchors() {
        let d = NodeDistribution::from_log(&t2());
        // ~60% exactly one, ~10% exactly two.
        assert!(
            (d.fraction_with_exactly(1) - 0.60).abs() < 0.06,
            "f1 = {}",
            d.fraction_with_exactly(1)
        );
        assert!(
            (d.fraction_with_exactly(2) - 0.10).abs() < 0.05,
            "f2 = {}",
            d.fraction_with_exactly(2)
        );
        assert!(d.failing_nodes() > 0);
        assert!(d.failing_nodes() as u32 <= d.total_nodes());
    }

    #[test]
    fn fig4_t3_anchors() {
        let d = NodeDistribution::from_log(&t3());
        // ~60% of failing Tsubame-3 nodes saw more than one failure.
        assert!(
            (d.fraction_with_multiple() - 0.60).abs() < 0.08,
            "f>1 = {}",
            d.fraction_with_multiple()
        );
        assert!((d.fraction_with_exactly(2) - 0.10).abs() < 0.05);
    }

    #[test]
    fn fig4_three_failure_ratio() {
        // Averages over seeds to tame small-sample noise; Tsubame-3's
        // three-failure share is ~1.5x Tsubame-2's.
        let avg = |gen: fn() -> SystemModel| -> f64 {
            failstats::par_map_ordered(8, failstats::available_threads(), |s| {
                let log = Simulator::new(gen(), 1000 + s as u64).generate().unwrap();
                NodeDistribution::from_log(&log).fraction_with_exactly(3)
            })
            .iter()
            .sum::<f64>()
                / 8.0
        };
        let ratio = avg(SystemModel::tsubame3) / avg(SystemModel::tsubame2);
        assert!((1.15..2.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn t2_multi_failure_nodes_are_hardware_dominated() {
        // The paper: 352 hardware and 1 software failure on Tsubame-2
        // multi-failure nodes. The fresh-node rule makes software
        // recurrences rare; hardware dominates by a wide margin.
        let d = NodeDistribution::from_log(&t2());
        assert!(
            d.multi_node_hardware_failures() > 30 * d.multi_node_software_failures().max(1),
            "hw {} sw {}",
            d.multi_node_hardware_failures(),
            d.multi_node_software_failures()
        );
    }

    #[test]
    fn t3_multi_failure_nodes_mix_domains() {
        // The paper: 104 hardware and 95 software on Tsubame-3.
        let d = NodeDistribution::from_log(&t3());
        let hw = d.multi_node_hardware_failures() as f64;
        let sw = d.multi_node_software_failures() as f64;
        assert!(sw > 0.5 * hw, "hw {hw} sw {sw}");
    }

    #[test]
    fn fig5_t2_slot_skew() {
        let d = SlotDistribution::from_log(&t2());
        assert_eq!(d.shares().len(), 3);
        let c: Vec<usize> = d.shares().iter().map(|s| s.count).collect();
        // GPU 1 ≈ 20% above GPU 0 / GPU 2.
        let mid_vs_edge = c[1] as f64 / ((c[0] + c[2]) as f64 / 2.0);
        assert!((mid_vs_edge - 1.2).abs() < 0.12, "ratio {mid_vs_edge}");
        assert!(d.total_involvements() > 700); // 112 + 2·128 + 3·128
    }

    #[test]
    fn fig5_t3_slot_skew() {
        // Only ~100 slot involvements exist on Tsubame-3, so a single
        // seed is noisy; accumulate across seeds.
        let mut c = [0usize; 4];
        let per_seed = failstats::par_map_ordered(8, failstats::available_threads(), |seed| {
            let log = Simulator::new(SystemModel::tsubame3(), 43 + seed as u64 * 997)
                .generate()
                .unwrap();
            let d = SlotDistribution::from_log(&log);
            assert_eq!(d.shares().len(), 4);
            let mut counts = [0usize; 4];
            for (i, share) in d.shares().iter().enumerate() {
                counts[i] = share.count;
            }
            counts
        });
        for counts in per_seed {
            for (i, count) in counts.into_iter().enumerate() {
                c[i] += count;
            }
        }
        // Outer slots (0, 3) considerably above inner (1, 2).
        assert!(c[0] + c[3] > (c[1] + c[2]) * 3 / 2, "counts {c:?}");
    }

    #[test]
    fn slot_fractions_sum_to_one() {
        let d = SlotDistribution::from_log(&t2());
        let sum: f64 = d.shares().iter().map(|s| s.fraction).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        let mean: f64 =
            d.shares().iter().map(|s| s.relative_to_mean).sum::<f64>() / d.shares().len() as f64;
        assert!((mean - 1.0).abs() < 1e-9);
        assert!(d.imbalance_ratio().unwrap() >= 1.0);
    }

    #[test]
    fn racks_fail_non_uniformly_on_both_systems() {
        // The related-work claim: rack-level non-uniformity persists on
        // multi-GPU-per-node systems.
        for (log, racks) in [(t2(), 44u32), (t3(), 15u32)] {
            let d = RackDistribution::from_log(&log);
            assert_eq!(d.shares().len(), racks as usize);
            let total: usize = d.shares().iter().map(|s| s.count).sum();
            assert_eq!(total, d.total());
            let test = d.uniformity_test().expect("non-empty");
            assert!(
                test.rejects_at(0.01),
                "{} racks look uniform (p = {})",
                racks,
                test.p_value
            );
        }
    }

    #[test]
    fn hot_racks_hold_disproportionate_share() {
        let d = RackDistribution::from_log(&t2());
        // The busiest 30% of racks hold well over 30% of failures.
        let k = (d.shares().len() as f64 * 0.3).round() as usize;
        let share = d.top_rack_share(k);
        assert!(share > 0.45, "top {k} racks hold {share}");
    }

    #[test]
    fn uniform_placement_passes_the_uniformity_test() {
        let mut model = SystemModel::tsubame2();
        model.node_selection = failsim::NodeSelection::Uniform;
        model.software_prefers_fresh_nodes = false;
        // A single seed can reject at 1% by luck; demand most seeds pass.
        let passes: usize = failstats::par_map_ordered(8, failstats::available_threads(), |seed| {
            let log = Simulator::new(model.clone(), 9000 + seed as u64).generate().unwrap();
            let d = RackDistribution::from_log(&log);
            usize::from(!d.uniformity_test().expect("non-empty").rejects_at(0.01))
        })
        .iter()
        .sum();
        assert!(passes >= 6, "only {passes}/8 uniform runs looked uniform");
    }

    #[test]
    fn empty_log_distributions() {
        let log = t3().filtered(|_| false);
        let d = NodeDistribution::from_log(&log);
        assert_eq!(d.failing_nodes(), 0);
        assert_eq!(d.fraction_with_exactly(1), 0.0);
        assert_eq!(d.max_failures_on_a_node(), 0);
        let s = SlotDistribution::from_log(&log);
        assert_eq!(s.total_involvements(), 0);
        assert!(s.imbalance_ratio().is_none());
        let r = RackDistribution::from_log(&log);
        assert!(r.uniformity_test().is_none());
        assert_eq!(r.top_rack_share(3), 0.0);
    }
}
