//! RQ4 — time between failures (Figs. 6 and 7).

use failstats::{Ecdf, Summary};
use failtypes::{Category, ComponentClass, FailureLog};
use serde::{Deserialize, Serialize};

use crate::{FleetIndex, LogView};

/// System-wide time-between-failures analysis (Fig. 6).
///
/// # Examples
///
/// ```
/// use failscope::TbfAnalysis;
/// use failsim::{Simulator, SystemModel};
///
/// let log = Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap();
/// let tbf = TbfAnalysis::from_log(&log).unwrap();
/// // Fig. 6: Tsubame-2 MTBF ≈ 15 h; 75% of failures within ~20 h.
/// assert!((tbf.mtbf_hours() - 15.3).abs() < 0.1);
/// assert!((tbf.p75_hours() - 20.0).abs() < 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TbfAnalysis {
    ecdf: Ecdf,
    mtbf_hours: f64,
    window_hours: f64,
    failures: usize,
}

impl TbfAnalysis {
    /// Computes the analysis from any [`FleetIndex`], reusing its time
    /// array; `None` for logs with fewer than two failures (no
    /// inter-arrival times exist).
    pub fn from_index<V: FleetIndex + ?Sized>(index: &V) -> Option<Self> {
        let gaps = failstats::inter_arrival_times(index.times());
        let ecdf = Ecdf::new(gaps)?;
        let window_hours = index.window().duration().get();
        Some(TbfAnalysis {
            ecdf,
            // The paper's MTBF: observation window over failure count.
            mtbf_hours: window_hours / index.len() as f64,
            window_hours,
            failures: index.len(),
        })
    }

    /// Computes the analysis, indexing the log once.
    #[doc(hidden)]
    pub fn from_log(log: &FailureLog) -> Option<Self> {
        Self::from_index(&LogView::new(log))
    }

    /// Computes the analysis from a prebuilt [`LogView`].
    #[doc(hidden)]
    pub fn from_view(view: &LogView<'_>) -> Option<Self> {
        Self::from_index(view)
    }

    /// MTBF as the paper computes it: window length / failure count.
    pub const fn mtbf_hours(&self) -> f64 {
        self.mtbf_hours
    }

    /// Mean of the observed inter-arrival gaps (close to, but not
    /// identical with, [`TbfAnalysis::mtbf_hours`]).
    pub fn mean_gap_hours(&self) -> f64 {
        self.ecdf.mean()
    }

    /// 75th percentile of the TBF distribution — Fig. 6's anchor point
    /// (20 h on Tsubame-2, 93 h on Tsubame-3).
    pub fn p75_hours(&self) -> f64 {
        self.ecdf.quantile(0.75)
    }

    /// Arbitrary TBF quantile.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        self.ecdf.quantile(p)
    }

    /// The empirical CDF (Fig. 6's curve).
    pub fn ecdf(&self) -> &Ecdf {
        &self.ecdf
    }

    /// Number of failures behind the analysis.
    pub const fn failures(&self) -> usize {
        self.failures
    }

    /// Observation-window length in hours.
    pub const fn window_hours(&self) -> f64 {
        self.window_hours
    }

    /// Exact (Garwood) confidence interval for the MTBF, from the Poisson
    /// rate interval of `failures` events over the window.
    ///
    /// Returns `(lower, upper)` in hours.
    ///
    /// # Panics
    ///
    /// Panics if `level` is outside `(0, 1)`.
    pub fn mtbf_ci_hours(&self, level: f64) -> (f64, f64) {
        let ci = failstats::poisson_rate_ci(self.failures as u64, self.window_hours, level)
            .expect("window is positive and level validated by the callee");
        ci.mtbf_interval()
    }
}

/// Per-component-class MTBF from any [`FleetIndex`], counting failure
/// *events* of that class (window / event count). Returns `None` when
/// the class never failed.
///
/// The paper's per-class numbers: GPU MTBF improved ~10× from Tsubame-2
/// to Tsubame-3 while the GPU count only halved; CPU MTBF improved ~3×.
pub fn class_mtbf_hours_index<V: FleetIndex + ?Sized>(
    index: &V,
    class: ComponentClass,
) -> Option<f64> {
    let count: usize = index
        .category_indices()
        .iter()
        .filter(|(category, _)| category.component_class() == class)
        .map(|(_, indices)| indices.len())
        .sum();
    (count > 0).then(|| index.window().duration().get() / count as f64)
}

/// [`class_mtbf_hours_index`], indexing the log once.
pub fn class_mtbf_hours(log: &FailureLog, class: ComponentClass) -> Option<f64> {
    class_mtbf_hours_index(&LogView::new(log), class)
}

/// [`class_mtbf_hours_index`] on a prebuilt [`LogView`].
pub fn class_mtbf_hours_view(view: &LogView<'_>, class: ComponentClass) -> Option<f64> {
    class_mtbf_hours_index(view, class)
}

/// GPU MTBF from any [`FleetIndex`], counting each involved GPU
/// separately (a failure touching 3 GPUs counts three times; unknown
/// involvement counts once). Returns `None` when no GPU failures exist.
pub fn gpu_involvement_mtbf_hours_index<V: FleetIndex + ?Sized>(index: &V) -> Option<f64> {
    let count = index.gpu_involvements();
    (count > 0).then(|| index.window().duration().get() / count as f64)
}

/// [`gpu_involvement_mtbf_hours_index`], indexing the log once.
pub fn gpu_involvement_mtbf_hours(log: &FailureLog) -> Option<f64> {
    gpu_involvement_mtbf_hours_index(&LogView::new(log))
}

/// [`gpu_involvement_mtbf_hours_index`] on a prebuilt [`LogView`].
pub fn gpu_involvement_mtbf_hours_view(view: &LogView<'_>) -> Option<f64> {
    gpu_involvement_mtbf_hours_index(view)
}

/// One row of the per-category TBF table (Fig. 7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoryTbf {
    /// The failure category.
    pub category: Category,
    /// Box-plot summary of the inter-arrival times between consecutive
    /// failures of this category.
    pub summary: Summary,
}

/// Per-category TBF distributions from any [`FleetIndex`], reusing its
/// time-ordered category partitions; rows are sorted by ascending mean
/// TBF (the order Fig. 7 plots).
///
/// Categories with fewer than `min_events` failures are skipped — their
/// inter-arrival statistics would be noise.
pub fn per_category_tbf_index<V: FleetIndex + ?Sized>(
    index: &V,
    min_events: usize,
) -> Vec<CategoryTbf> {
    let mut out = Vec::new();
    for (&category, indices) in index.category_indices() {
        if indices.len() < min_events.max(2) {
            continue;
        }
        let times = index.category_times(category);
        let gaps = failstats::inter_arrival_times(&times);
        if let Some(summary) = Summary::from_data(&gaps) {
            out.push(CategoryTbf { category, summary });
        }
    }
    out.sort_by(|a, b| {
        a.summary
            .mean()
            .partial_cmp(&b.summary.mean())
            .expect("means are finite")
    });
    out
}

/// [`per_category_tbf_index`], indexing the log once.
pub fn per_category_tbf(log: &FailureLog, min_events: usize) -> Vec<CategoryTbf> {
    per_category_tbf_index(&LogView::new(log), min_events)
}

/// [`per_category_tbf_index`] on a prebuilt [`LogView`].
pub fn per_category_tbf_view(view: &LogView<'_>, min_events: usize) -> Vec<CategoryTbf> {
    per_category_tbf_index(view, min_events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{Simulator, SystemModel};
    use failtypes::{T2Category, T3Category};

    fn t2() -> FailureLog {
        Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap()
    }

    fn t3() -> FailureLog {
        Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap()
    }

    #[test]
    fn fig6_mtbf_anchors() {
        let a2 = TbfAnalysis::from_log(&t2()).unwrap();
        assert!((a2.mtbf_hours() - 15.3).abs() < 0.1);
        assert!((a2.p75_hours() - 20.0).abs() < 3.0, "T2 p75 {}", a2.p75_hours());

        let a3 = TbfAnalysis::from_log(&t3()).unwrap();
        assert!((a3.mtbf_hours() - 72.4).abs() < 0.2);
        assert!((a3.p75_hours() - 93.0).abs() < 10.0, "T3 p75 {}", a3.p75_hours());

        // More than 4x MTBF improvement across generations.
        assert!(a3.mtbf_hours() / a2.mtbf_hours() > 4.0);
    }

    #[test]
    fn mtbf_confidence_intervals_bracket_the_estimate() {
        let a2 = TbfAnalysis::from_log(&t2()).unwrap();
        let (lo, hi) = a2.mtbf_ci_hours(0.95);
        assert!(lo < a2.mtbf_hours() && a2.mtbf_hours() < hi);
        // 897 events: the interval is tight (under ±10%).
        assert!(hi / lo < 1.2, "({lo}, {hi})");

        let a3 = TbfAnalysis::from_log(&t3()).unwrap();
        let (lo3, hi3) = a3.mtbf_ci_hours(0.95);
        assert!(lo3 < a3.mtbf_hours() && a3.mtbf_hours() < hi3);
        // Fewer events -> relatively wider interval than T2's.
        assert!(hi3 / lo3 > hi / lo);
        // The generations' intervals do not overlap: the 4x improvement
        // is statistically unambiguous.
        assert!(lo3 > hi);
    }

    #[test]
    fn fig6_t3_has_longer_tail() {
        let a2 = TbfAnalysis::from_log(&t2()).unwrap();
        let a3 = TbfAnalysis::from_log(&t3()).unwrap();
        // The T3 CDF extends to much larger gaps.
        assert!(a3.quantile(0.95) > 2.0 * a2.quantile(0.95));
        assert!(a3.ecdf().max() > a2.ecdf().max());
    }

    #[test]
    fn class_mtbf_improvements() {
        let t2 = t2();
        let t3 = t3();
        let gpu2 = class_mtbf_hours(&t2, ComponentClass::Gpu).unwrap();
        let gpu3 = class_mtbf_hours(&t3, ComponentClass::Gpu).unwrap();
        // Event-level GPU MTBF: 13728/398 ≈ 34.5 vs 24456/94 ≈ 260.
        assert!((gpu2 - 34.5).abs() < 0.5, "gpu2 {gpu2}");
        assert!((gpu3 - 260.2).abs() < 1.0, "gpu3 {gpu3}");
        // Far larger improvement than the 2x reduction in GPU count.
        assert!(gpu3 / gpu2 > 5.0);

        let cpu2 = class_mtbf_hours(&t2, ComponentClass::Cpu).unwrap();
        let cpu3 = class_mtbf_hours(&t3, ComponentClass::Cpu).unwrap();
        // ~3x CPU improvement, matching the paper's relative claim.
        let ratio = cpu3 / cpu2;
        assert!((1.8..4.0).contains(&ratio), "cpu ratio {ratio}");
    }

    #[test]
    fn involvement_mtbf_is_below_event_mtbf_on_t2() {
        // Multi-GPU failures make per-GPU MTBF lower than per-event MTBF.
        let log = t2();
        let event = class_mtbf_hours(&log, ComponentClass::Gpu).unwrap();
        let involvement = gpu_involvement_mtbf_hours(&log).unwrap();
        assert!(involvement < event);
        // 13728 h / (112 + 256 + 384 + 30) ≈ 17.6 h.
        assert!((involvement - 17.55).abs() < 0.3, "{involvement}");
    }

    #[test]
    fn fig7_gpu_and_software_have_lowest_median_tbf() {
        // The most frequent categories have the shortest inter-arrivals.
        let rows = per_category_tbf(&t3(), 5);
        assert!(!rows.is_empty());
        assert_eq!(rows[0].category, Category::T3(T3Category::Software));
        assert_eq!(rows[1].category, Category::T3(T3Category::Gpu));
        // Ascending mean order.
        for w in rows.windows(2) {
            assert!(w[0].summary.mean() <= w[1].summary.mean());
        }
    }

    #[test]
    fn fig7_memory_and_cpu_have_higher_median_tbf() {
        let rows = per_category_tbf(&t2(), 5);
        let median_of = |cat: Category| {
            rows.iter()
                .find(|r| r.category == cat)
                .map(|r| r.summary.median())
        };
        let gpu = median_of(Category::T2(T2Category::Gpu)).unwrap();
        let memory = median_of(Category::T2(T2Category::Memory)).unwrap();
        let cpu = median_of(Category::T2(T2Category::Cpu)).unwrap();
        assert!(memory > 3.0 * gpu);
        assert!(cpu > 3.0 * gpu);
    }

    #[test]
    fn min_events_filters_rare_categories() {
        let rows = per_category_tbf(&t3(), 50);
        // Only Software (171) and GPU (94) have ≥ 50 events.
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn degenerate_logs() {
        let empty = t3().filtered(|_| false);
        assert!(TbfAnalysis::from_log(&empty).is_none());
        assert!(class_mtbf_hours(&empty, ComponentClass::Gpu).is_none());
        assert!(gpu_involvement_mtbf_hours(&empty).is_none());
        assert!(per_category_tbf(&empty, 2).is_empty());

        let single = t3().filtered(|r| r.id() == 0);
        assert!(TbfAnalysis::from_log(&single).is_none());
    }
}
