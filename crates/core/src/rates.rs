//! Failure-rate trends over the system's life.
//!
//! Field studies routinely ask whether a system's failure rate is
//! improving (maturation, proactive replacements) or degrading (wear-out)
//! over the observation period. This module provides rolling failure
//! rates and the Laplace trend test for homogeneous-Poisson arrivals.

use failtypes::FailureLog;
use serde::{Deserialize, Serialize};

use failstats::special::std_normal_cdf;

/// One bin of the rolling failure rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateBin {
    /// Bin start, hours from window start.
    pub start_hours: f64,
    /// Bin width in hours (the last bin may be shorter).
    pub width_hours: f64,
    /// Failures in the bin.
    pub failures: usize,
    /// Failures per hour.
    pub rate_per_hour: f64,
}

/// Rolling failure rate over fixed-width bins.
///
/// Returns an empty vector for an empty log; the last bin is truncated at
/// the window end.
///
/// # Panics
///
/// Panics if `bin_hours` is not positive.
pub fn rolling_rate(log: &FailureLog, bin_hours: f64) -> Vec<RateBin> {
    assert!(bin_hours > 0.0, "bin width must be positive");
    let horizon = log.window().duration().get();
    let bins = (horizon / bin_hours).ceil() as usize;
    let mut counts = vec![0usize; bins];
    for rec in log.iter() {
        let idx = ((rec.time().get() / bin_hours) as usize).min(bins.saturating_sub(1));
        counts[idx] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, failures)| {
            let start = i as f64 * bin_hours;
            let width = (horizon - start).min(bin_hours);
            RateBin {
                start_hours: start,
                width_hours: width,
                failures,
                rate_per_hour: failures as f64 / width,
            }
        })
        .collect()
}

/// The result of the Laplace trend test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaplaceTrend {
    /// The Laplace statistic `U` (standard normal under no trend).
    pub u: f64,
    /// Two-sided p-value against "no trend".
    pub p_value: f64,
}

impl LaplaceTrend {
    /// `true` when the failure rate is significantly *increasing*
    /// (failures concentrate late in the window) at significance `alpha`.
    pub fn increasing_at(&self, alpha: f64) -> bool {
        self.u > 0.0 && self.p_value < alpha
    }

    /// `true` when the failure rate is significantly *decreasing*
    /// (reliability growth) at significance `alpha`.
    pub fn decreasing_at(&self, alpha: f64) -> bool {
        self.u < 0.0 && self.p_value < alpha
    }
}

/// Laplace centroid test for a trend in the failure arrival process:
/// `U = (mean(tᵢ) − T/2) / (T / sqrt(12 n))`, standard normal when the
/// process is homogeneous Poisson.
///
/// Returns `None` for logs with fewer than two failures.
pub fn laplace_trend(log: &FailureLog) -> Option<LaplaceTrend> {
    let n = log.len();
    if n < 2 {
        return None;
    }
    let horizon = log.window().duration().get();
    let mean_t: f64 = log.times().map(|h| h.get()).sum::<f64>() / n as f64;
    let u = (mean_t - horizon / 2.0) / (horizon / (12.0 * n as f64).sqrt());
    let p = 2.0 * (1.0 - std_normal_cdf(u.abs()));
    Some(LaplaceTrend {
        u,
        p_value: p.clamp(0.0, 1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{Simulator, SystemModel};
    use failtypes::{
        Category, Date, FailureLog, FailureRecord, Generation, Hours, NodeId, ObservationWindow,
        T3Category,
    };

    fn log_with_times(times: &[f64]) -> FailureLog {
        let window = ObservationWindow::new(
            Date::new(2020, 1, 1).unwrap(),
            Date::new(2021, 1, 1).unwrap(),
        )
        .unwrap();
        let recs = times
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                FailureRecord::new(
                    i as u32,
                    Hours::new(t),
                    Hours::new(1.0),
                    Category::T3(T3Category::Gpu),
                    NodeId::new(0),
                )
            })
            .collect();
        FailureLog::new(Generation::Tsubame3, window, recs).unwrap()
    }

    #[test]
    fn rolling_rate_bins_and_counts() {
        let log = log_with_times(&[10.0, 20.0, 800.0]);
        let bins = rolling_rate(&log, 730.0);
        assert_eq!(bins.len(), 13); // 8784 h / 730 h
        assert_eq!(bins[0].failures, 2);
        assert_eq!(bins[1].failures, 1);
        assert!((bins[0].rate_per_hour - 2.0 / 730.0).abs() < 1e-12);
        let total: usize = bins.iter().map(|b| b.failures).sum();
        assert_eq!(total, 3);
        // Last bin is truncated: 8784 - 12*730 = 24 h.
        assert!((bins[12].width_hours - 24.0).abs() < 1e-9);
    }

    #[test]
    fn laplace_detects_late_concentration() {
        // All failures in the last 10% of the year.
        let times: Vec<f64> = (0..50).map(|i| 8000.0 + i as f64 * 10.0).collect();
        let t = laplace_trend(&log_with_times(&times)).unwrap();
        assert!(t.increasing_at(0.001), "U = {}", t.u);
        assert!(!t.decreasing_at(0.05));
    }

    #[test]
    fn laplace_detects_early_concentration() {
        let times: Vec<f64> = (0..50).map(|i| 10.0 + i as f64 * 10.0).collect();
        let t = laplace_trend(&log_with_times(&times)).unwrap();
        assert!(t.decreasing_at(0.001), "U = {}", t.u);
    }

    #[test]
    fn laplace_accepts_homogeneous_arrivals() {
        // The calibrated models are (mildly modulated) stationary
        // processes: no strong trend.
        let log = Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap();
        let t = laplace_trend(&log).unwrap();
        assert!(t.u.abs() < 3.0, "U = {}", t.u);
    }

    #[test]
    fn degenerate_logs() {
        let log = log_with_times(&[5.0]);
        assert!(laplace_trend(&log).is_none());
        let empty = log.filtered(|_| false);
        assert!(laplace_trend(&empty).is_none());
        let bins = rolling_rate(&empty, 100.0);
        assert!(bins.iter().all(|b| b.failures == 0));
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn rolling_rate_rejects_zero_bin() {
        let log = log_with_times(&[5.0]);
        let _ = rolling_rate(&log, 0.0);
    }
}
