//! Repair overlap and availability.
//!
//! RQ5's first implication: "the MTTR is very comparable to MTBF and
//! hence, it is likely that multiple concurrent failures might impact the
//! handling/repair of previous failures". This module quantifies exactly
//! that: how many repairs run concurrently, how often a new failure lands
//! while earlier repairs are still open, and what the failures cost in
//! node availability.

use failtypes::FailureLog;
use serde::{Deserialize, Serialize};

use crate::{FleetIndex, LogView};

/// Repair-overlap and availability metrics of one log.
///
/// # Examples
///
/// ```
/// use failscope::AvailabilityAnalysis;
/// use failsim::{Simulator, SystemModel};
///
/// let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
/// let a = AvailabilityAnalysis::from_log(&log).unwrap();
/// // MTTR ~ 0.75 MTBF on Tsubame-3: repairs frequently overlap.
/// assert!(a.overlap_probability() > 0.3);
/// assert!(a.node_availability() > 0.95);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityAnalysis {
    failures: usize,
    window_hours: f64,
    nodes: u32,
    total_repair_hours: f64,
    overlapping_arrivals: usize,
    mean_concurrent_repairs: f64,
    max_concurrent_repairs: usize,
    busy_fraction: f64,
}

impl AvailabilityAnalysis {
    /// Computes the metrics from any [`FleetIndex`]; `None` when no
    /// failures are indexed.
    ///
    /// Exploits the index's time order twice: overlapping arrivals come
    /// from a single running maximum over earlier repair ends (`O(n)`
    /// instead of `O(n²)`), and the sweep events come from merging the
    /// pre-sorted start and end arrays instead of sorting `2n` events.
    pub fn from_index<V: FleetIndex + ?Sized>(index: &V) -> Option<Self> {
        if index.is_empty() {
            return None;
        }
        let window_hours = index.window().duration().get();
        let n = index.len();
        let starts = index.times();
        let ends = index.recoveries();

        // Records are time-sorted, so an arrival overlaps an earlier
        // repair exactly when it lands before the running max of earlier
        // repair ends.
        let mut overlapping_arrivals = 0;
        let mut max_end = f64::NEG_INFINITY;
        for i in 0..n {
            if starts[i] < max_end {
                overlapping_arrivals += 1;
            }
            max_end = max_end.max(ends[i]);
        }

        // Merge the sorted starts and sorted ends into one sweep-line
        // event sequence, with ends before starts at equal times.
        let ends_sorted = index.recoveries_sorted();
        let mut current = 0i64;
        let mut max_concurrent = 0i64;
        let mut weighted_hours = 0.0;
        let mut busy_hours = 0.0;
        let mut prev_t = 0.0;
        let (mut si, mut ei) = (0usize, 0usize);
        while si < n || ei < n {
            let take_end = ei < n && (si >= n || ends_sorted[ei] <= starts[si]);
            let (t, delta) = if take_end {
                ei += 1;
                (ends_sorted[ei - 1], -1i64)
            } else {
                si += 1;
                (starts[si - 1], 1i64)
            };
            let span = (t - prev_t).max(0.0);
            weighted_hours += current as f64 * span;
            if current > 0 {
                busy_hours += span;
            }
            current += delta;
            max_concurrent = max_concurrent.max(current);
            prev_t = t;
        }

        let total_repair_hours: f64 = (0..n).map(|i| ends[i] - starts[i]).sum();
        Some(AvailabilityAnalysis {
            failures: n,
            window_hours,
            nodes: index.spec().nodes(),
            total_repair_hours,
            overlapping_arrivals,
            mean_concurrent_repairs: weighted_hours / window_hours,
            max_concurrent_repairs: max_concurrent as usize,
            busy_fraction: busy_hours / window_hours,
        })
    }

    /// [`AvailabilityAnalysis::from_index`], indexing the log once;
    /// `None` for an empty log.
    #[doc(hidden)]
    pub fn from_log(log: &FailureLog) -> Option<Self> {
        Self::from_index(&LogView::new(log))
    }

    /// [`AvailabilityAnalysis::from_index`] on a prebuilt [`LogView`].
    #[doc(hidden)]
    pub fn from_view(view: &LogView<'_>) -> Option<Self> {
        Self::from_index(view)
    }

    /// Probability that a failure arrives while at least one earlier
    /// repair is still in progress — the RQ5 overlap concern.
    pub fn overlap_probability(&self) -> f64 {
        self.overlapping_arrivals as f64 / self.failures as f64
    }

    /// Time-averaged number of repairs in progress (Little's law:
    /// arrival rate x MTTR).
    pub const fn mean_concurrent_repairs(&self) -> f64 {
        self.mean_concurrent_repairs
    }

    /// The most repairs ever in progress simultaneously.
    pub const fn max_concurrent_repairs(&self) -> usize {
        self.max_concurrent_repairs
    }

    /// Fraction of the window with at least one repair in progress.
    pub const fn repair_busy_fraction(&self) -> f64 {
        self.busy_fraction
    }

    /// Node-hours lost to repairs (each failure takes one node down for
    /// its TTR).
    pub const fn node_hours_lost(&self) -> f64 {
        self.total_repair_hours
    }

    /// System-wide node availability: `1 - lost / (nodes x window)`.
    pub fn node_availability(&self) -> f64 {
        1.0 - self.total_repair_hours / (self.nodes as f64 * self.window_hours)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{Simulator, SystemModel};
    use failtypes::{
        Category, Date, FailureRecord, Generation, Hours, NodeId, ObservationWindow, T3Category,
    };

    fn tiny_log(records: Vec<(f64, f64)>) -> FailureLog {
        let window = ObservationWindow::new(
            Date::new(2020, 1, 1).unwrap(),
            Date::new(2020, 12, 31).unwrap(),
        )
        .unwrap();
        let recs = records
            .into_iter()
            .enumerate()
            .map(|(i, (t, ttr))| {
                FailureRecord::new(
                    i as u32,
                    Hours::new(t),
                    Hours::new(ttr),
                    Category::T3(T3Category::Gpu),
                    NodeId::new(i as u32 % 540),
                )
            })
            .collect();
        FailureLog::new(Generation::Tsubame3, window, recs).unwrap()
    }

    #[test]
    fn disjoint_repairs_have_no_overlap() {
        let log = tiny_log(vec![(0.0, 10.0), (100.0, 10.0), (200.0, 10.0)]);
        let a = AvailabilityAnalysis::from_log(&log).unwrap();
        assert_eq!(a.overlap_probability(), 0.0);
        assert_eq!(a.max_concurrent_repairs(), 1);
        assert!((a.node_hours_lost() - 30.0).abs() < 1e-9);
        let window = 365.0 * 24.0;
        assert!((a.repair_busy_fraction() - 30.0 / window).abs() < 1e-9);
        assert!((a.mean_concurrent_repairs() - 30.0 / window).abs() < 1e-9);
    }

    #[test]
    fn nested_repairs_overlap() {
        let log = tiny_log(vec![(0.0, 100.0), (10.0, 10.0), (50.0, 100.0)]);
        let a = AvailabilityAnalysis::from_log(&log).unwrap();
        // Both later failures land inside the first repair.
        assert!((a.overlap_probability() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(a.max_concurrent_repairs(), 2);
    }

    #[test]
    fn little_law_on_generated_logs() {
        // Mean concurrent repairs = arrival rate x mean repair time.
        let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
        let a = AvailabilityAnalysis::from_log(&log).unwrap();
        let rate = log.len() as f64 / log.window().duration().get();
        let mttr = crate::ttr::TtrAnalysis::from_log(&log).unwrap().mttr_hours();
        let expected = rate * mttr;
        assert!(
            (a.mean_concurrent_repairs() - expected).abs() < 0.1 * expected,
            "L = {} vs λW = {expected}",
            a.mean_concurrent_repairs()
        );
    }

    #[test]
    fn rq5_overlap_is_substantial_on_both_systems() {
        // MTTR ≈ MTBF (T2) and MTTR ≈ 0.75 MTBF (T3): overlap is the
        // norm, exactly the paper's warning.
        for (model, seed) in [(SystemModel::tsubame2(), 42u64), (SystemModel::tsubame3(), 43)]
        {
            let log = Simulator::new(model, seed).generate().unwrap();
            let a = AvailabilityAnalysis::from_log(&log).unwrap();
            assert!(
                a.overlap_probability() > 0.3,
                "overlap {}",
                a.overlap_probability()
            );
            assert!(a.max_concurrent_repairs() >= 2);
        }
    }

    #[test]
    fn t2_concurrency_far_exceeds_t3() {
        // T2: ~3.5 repairs in flight on average; T3: ~0.75.
        let t2 = Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap();
        let t3 = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
        let a2 = AvailabilityAnalysis::from_log(&t2).unwrap();
        let a3 = AvailabilityAnalysis::from_log(&t3).unwrap();
        assert!(a2.mean_concurrent_repairs() > 2.0 * a3.mean_concurrent_repairs());
    }

    #[test]
    fn availability_is_high_but_not_perfect() {
        let log = Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap();
        let a = AvailabilityAnalysis::from_log(&log).unwrap();
        let avail = a.node_availability();
        assert!(avail > 0.99 && avail < 1.0, "availability {avail}");
        assert!(a.node_hours_lost() > 0.0);
    }

    #[test]
    fn empty_log_is_none() {
        let log = Simulator::new(SystemModel::tsubame3(), 43)
            .generate()
            .unwrap()
            .filtered(|_| false);
        assert!(AvailabilityAnalysis::from_log(&log).is_none());
    }
}
