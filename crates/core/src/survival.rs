//! Node survival analysis: time to first failure per node, with
//! right-censoring for nodes that never failed in the window.
//!
//! Complements RQ2: the Fig. 4 histogram says how *often* nodes fail;
//! the survival curve says how *soon*. This mirrors the survival-analysis
//! methodology of the Titan GPU-lifetimes study the paper cites as
//! related work.

use std::collections::BTreeMap;

use failstats::{KaplanMeier, Lifetime};
use failtypes::{FailureLog, NodeId};
use serde::{Deserialize, Serialize};

use crate::{FleetIndex, LogView};

/// Extracts the per-node time-to-first-failure lifetimes of any
/// [`FleetIndex`] (one per node; censored at the window end for nodes
/// that never failed) — the input both [`NodeSurvival`] and cross-system
/// comparisons via [`failstats::log_rank`] consume.
///
/// Records are time-sorted, so the first occurrence of a node in the
/// record sequence is its first failure.
pub fn node_lifetimes_index<V: FleetIndex + ?Sized>(index: &V) -> Vec<Lifetime> {
    let horizon = index.window().duration().get();
    let mut first: BTreeMap<NodeId, f64> = BTreeMap::new();
    for rec in index.records() {
        first.entry(rec.node()).or_insert_with(|| rec.time().get());
    }
    let total_nodes = index.spec().nodes() as usize;
    let mut lifetimes: Vec<Lifetime> = first.values().map(|&t| Lifetime::observed(t)).collect();
    let censored = total_nodes.saturating_sub(first.len());
    lifetimes.extend(std::iter::repeat_n(Lifetime::censored(horizon), censored));
    lifetimes
}

/// [`node_lifetimes_index`], indexing the log once.
pub fn node_lifetimes(log: &FailureLog) -> Vec<Lifetime> {
    node_lifetimes_index(&LogView::new(log))
}

/// Kaplan–Meier analysis of node time-to-first-failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSurvival {
    km: KaplanMeier,
    observed_failures: usize,
    censored_nodes: usize,
}

impl NodeSurvival {
    /// Fits the estimator from any [`FleetIndex`]: every node
    /// contributes one lifetime — the offset of its first failure, or a
    /// censored observation at the window end if it never failed.
    ///
    /// Returns `None` for systems with zero nodes (impossible for
    /// validated logs).
    pub fn from_index<V: FleetIndex + ?Sized>(index: &V) -> Option<Self> {
        let lifetimes = node_lifetimes_index(index);
        let observed = lifetimes.iter().filter(|l| l.observed).count();
        Some(NodeSurvival {
            km: KaplanMeier::fit(&lifetimes)?,
            observed_failures: observed,
            censored_nodes: lifetimes.len() - observed,
        })
    }

    /// [`NodeSurvival::from_index`], indexing the log once.
    #[doc(hidden)]
    pub fn from_log(log: &FailureLog) -> Option<Self> {
        Self::from_index(&LogView::new(log))
    }

    /// [`NodeSurvival::from_index`] on a prebuilt [`LogView`].
    #[doc(hidden)]
    pub fn from_view(view: &LogView<'_>) -> Option<Self> {
        Self::from_index(view)
    }

    /// The fitted Kaplan–Meier curve.
    pub fn curve(&self) -> &KaplanMeier {
        &self.km
    }

    /// Probability a node survives its first `t` hours without any
    /// failure.
    pub fn survival_at(&self, t: f64) -> f64 {
        self.km.survival_at(t)
    }

    /// Nodes that failed at least once.
    pub const fn observed_failures(&self) -> usize {
        self.observed_failures
    }

    /// Nodes that never failed (censored at the window end).
    pub const fn censored_nodes(&self) -> usize {
        self.censored_nodes
    }

    /// Median node time-to-first-failure; `None` when most nodes never
    /// failed.
    pub fn median_hours(&self) -> Option<f64> {
        self.km.median_survival()
    }

    /// Mean failure-free node hours over the first `horizon` hours.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is not positive.
    pub fn restricted_mean_hours(&self, horizon: f64) -> f64 {
        self.km.restricted_mean(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{Simulator, SystemModel};

    fn t2() -> FailureLog {
        Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap()
    }

    fn t3() -> FailureLog {
        Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap()
    }

    #[test]
    fn counts_add_up() {
        let log = t3();
        let s = NodeSurvival::from_log(&log).unwrap();
        assert_eq!(
            s.observed_failures() + s.censored_nodes(),
            log.spec().nodes() as usize
        );
        assert_eq!(s.curve().n(), log.spec().nodes() as usize);
    }

    #[test]
    fn survival_is_monotone_and_bounded() {
        let s = NodeSurvival::from_log(&t2()).unwrap();
        let horizon = 13_728.0;
        let mut prev = 1.0;
        for i in 0..20 {
            let t = horizon * i as f64 / 19.0;
            let v = s.survival_at(t);
            assert!(v <= prev + 1e-12);
            assert!((0.0..=1.0).contains(&v));
            prev = v;
        }
    }

    #[test]
    fn most_nodes_survive_the_whole_window() {
        // Both systems: the majority of nodes never fail, so the curve
        // ends above 0.5 and the median is undefined.
        for log in [t2(), t3()] {
            let s = NodeSurvival::from_log(&log).unwrap();
            let horizon = log.window().duration().get();
            assert!(s.survival_at(horizon) > 0.5);
            assert!(s.median_hours().is_none());
        }
    }

    #[test]
    fn t2_nodes_fail_sooner_than_t3_nodes() {
        // T2 has 2.6x the nodes but 2.7x the failures, and a hot pool;
        // its early-life survival is lower.
        let s2 = NodeSurvival::from_log(&t2()).unwrap();
        let s3 = NodeSurvival::from_log(&t3()).unwrap();
        // Compare at the same absolute age.
        assert!(s2.survival_at(5_000.0) < s3.survival_at(5_000.0));
    }

    #[test]
    fn restricted_mean_reflects_reliability() {
        let log = t3();
        let s = NodeSurvival::from_log(&log).unwrap();
        let horizon = log.window().duration().get();
        let rmst = s.restricted_mean_hours(horizon);
        // Mean failure-free time is positive, below the horizon, and
        // large (most nodes never fail).
        assert!(rmst > 0.6 * horizon && rmst < horizon, "rmst {rmst}");
    }

    #[test]
    fn log_rank_separates_the_generations_per_node_hazard() {
        // Per-node failure hazard differs between the systems; the
        // log-rank test over the node lifetimes picks it up.
        let a = node_lifetimes(&t2());
        let b = node_lifetimes(&t3());
        let test = failstats::log_rank(&a, &b).unwrap();
        assert!(test.rejects_at(0.05), "p = {}", test.p_value);
    }

    #[test]
    fn lifetimes_cover_every_node() {
        let log = t3();
        let lt = node_lifetimes(&log);
        assert_eq!(lt.len(), 540);
        let horizon = log.window().duration().get();
        for l in &lt {
            assert!(l.duration >= 0.0 && l.duration <= horizon);
            if !l.observed {
                assert_eq!(l.duration, horizon);
            }
        }
    }

    #[test]
    fn empty_log_is_all_censored() {
        let log = t3().filtered(|_| false);
        let s = NodeSurvival::from_log(&log).unwrap();
        assert_eq!(s.observed_failures(), 0);
        assert_eq!(s.censored_nodes(), 540);
        assert_eq!(s.survival_at(1e9), 1.0);
    }
}
