//! `failscope` — failure and repair analysis for supercomputers with
//! multi-GPU compute nodes.
//!
//! This crate is the primary contribution of the workspace: a toolkit
//! that answers the five research questions of the DSN 2021 field study
//! *"Examining Failures and Repairs on Supercomputers with Multi-GPU
//! Compute Nodes"* (Taherin, Patel, Georgakoudis, Laguna, Tiwari) on any
//! [`failtypes::FailureLog`]:
//!
//! | RQ | Question | Entry points |
//! |----|----------|--------------|
//! | RQ1 | Which failure types dominate? (Figs. 2-3) | [`CategoryBreakdown`], [`DomainBreakdown`], [`LocusBreakdown`] |
//! | RQ2 | Do some nodes/GPU slots fail more? (Figs. 4-5) | [`NodeDistribution`], [`SlotDistribution`] |
//! | RQ3 | Do multiple GPUs fail simultaneously? (Table III) | [`InvolvementTable`] |
//! | RQ4 | How are failures spaced in time? (Figs. 6-8) | [`TbfAnalysis`], [`per_category_tbf`], [`MultiGpuTemporal`] |
//! | RQ5 | How long does recovery take? (Figs. 9-12) | [`TtrAnalysis`], [`per_category_ttr`], [`SeasonalAnalysis`] |
//!
//! plus the paper's proposed metric, performance-error-proportionality
//! ([`Pep`] / [`PepComparison`]), and plain-text report rendering
//! ([`render_report`] / [`render_comparison`]).
//!
//! # Examples
//!
//! Answer RQ1 and RQ4 on a generated Tsubame-3 log:
//!
//! ```
//! use failscope::{CategoryBreakdown, TbfAnalysis};
//! use failsim::{Simulator, SystemModel};
//!
//! let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
//!
//! let view = failscope::LogView::new(&log);
//! let cats = CategoryBreakdown::from_index(&view);
//! assert!(cats.shares()[0].fraction > 0.5); // software dominates
//!
//! let tbf = TbfAnalysis::from_index(&view).unwrap();
//! assert!(tbf.mtbf_hours() > 70.0); // "more than 70 hours"
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

mod availability;
mod categories;
mod index;
mod logview;
mod multigpu;
mod rates;
mod survival;
mod pep;
mod report;
mod seasonal;
mod spatial;
mod streamview;
mod tbf;
mod temporal;
mod ttr;

pub use availability::AvailabilityAnalysis;
pub use categories::{
    CategoryBreakdown, CategoryShare, ClassBreakdown, DomainBreakdown, LocusBreakdown, LocusShare,
};
pub use index::FleetIndex;
pub use logview::LogView;
pub use rates::{laplace_trend, rolling_rate, LaplaceTrend, RateBin};
pub use survival::{node_lifetimes, node_lifetimes_index, NodeSurvival};
pub use multigpu::{InvolvementRow, InvolvementTable};
pub use pep::{Pep, PepComparison};
pub use report::{
    comparison_json, render_comparison, render_comparison_json, render_comparison_threaded,
    render_json_sections, render_report, render_report_json, render_report_threaded,
    render_text_sections, section_by_id, select_sections, Section, SectionCtx,
    METRICS_SECTION_ID, SECTIONS,
};
pub use seasonal::{MonthBucket, SeasonalAnalysis};
pub use spatial::{NodeDistribution, RackDistribution, RackShare, SlotDistribution, SlotShare};
pub use streamview::{StreamView, StreamViewError, ViewParts};
pub use tbf::{
    class_mtbf_hours, class_mtbf_hours_index, class_mtbf_hours_view, gpu_involvement_mtbf_hours,
    gpu_involvement_mtbf_hours_index, gpu_involvement_mtbf_hours_view, per_category_tbf,
    per_category_tbf_index, per_category_tbf_view, CategoryTbf, TbfAnalysis,
};
pub use temporal::MultiGpuTemporal;
pub use ttr::{
    domain_ttr_spread, domain_ttr_spread_index, per_category_ttr, per_category_ttr_index,
    per_category_ttr_view, rare_but_costly, rare_but_costly_index, CategoryTtr, TtrAnalysis,
};

/// The canonical FleetIndex-era API surface in one import: the index
/// trait and its two implementations, the section registry, the render
/// entry points, and every analysis type's `from_index` home.
///
/// ```
/// use failscope::prelude::*;
/// use failsim::{Simulator, SystemModel};
///
/// let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
/// let view = LogView::new(&log);
/// assert!(TbfAnalysis::from_index(&view).unwrap().mtbf_hours() > 70.0);
/// ```
pub mod prelude {
    pub use crate::availability::AvailabilityAnalysis;
    pub use crate::categories::{
        CategoryBreakdown, ClassBreakdown, DomainBreakdown, LocusBreakdown,
    };
    pub use crate::index::FleetIndex;
    pub use crate::logview::LogView;
    pub use crate::multigpu::InvolvementTable;
    pub use crate::pep::{Pep, PepComparison};
    pub use crate::report::{
        render_json_sections, render_report, render_report_json, render_report_threaded,
        render_text_sections, section_by_id, select_sections, Section, SectionCtx,
        METRICS_SECTION_ID, SECTIONS,
    };
    pub use crate::seasonal::SeasonalAnalysis;
    pub use crate::spatial::{NodeDistribution, RackDistribution, SlotDistribution};
    pub use crate::streamview::{StreamView, StreamViewError};
    pub use crate::survival::NodeSurvival;
    pub use crate::tbf::{per_category_tbf_index, TbfAnalysis};
    pub use crate::temporal::MultiGpuTemporal;
    pub use crate::ttr::{per_category_ttr_index, TtrAnalysis};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CategoryBreakdown>();
        assert_send_sync::<NodeDistribution>();
        assert_send_sync::<InvolvementTable>();
        assert_send_sync::<TbfAnalysis>();
        assert_send_sync::<TtrAnalysis>();
        assert_send_sync::<SeasonalAnalysis>();
        assert_send_sync::<PepComparison>();
    }
}
