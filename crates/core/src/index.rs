//! The shared analysis surface: one trait over both indexed views.
//!
//! Every analysis in this crate consumes the same precomputed material —
//! time-ordered failure times, sorted repair durations, category
//! partitions, node/slot/rack tallies, month buckets, multi-GPU
//! involvements. [`crate::LogView`] builds those indexes in one batch
//! pass over a finished log; [`crate::StreamView`] maintains them
//! incrementally as a live stream delivers records. [`FleetIndex`]
//! abstracts over the two, so each analysis has exactly **one**
//! constructor body (`from_index`) and the batch/stream entry points are
//! thin shims — the structural guarantee behind the stream-vs-batch
//! equivalence suites in `tests/`.

use std::collections::BTreeMap;

use failtypes::{
    Category, FailureRecord, Generation, NodeId, ObservationWindow, SoftwareLocus, SystemSpec,
};

use crate::logview::LogView;
use crate::streamview::StreamView;

/// Indexed access to one fleet's failure history — the intersection of
/// what [`LogView`] and [`StreamView`] precompute, plus the system
/// topology the spatial and mitigation analyses need.
///
/// Implementations must keep the derived indexes consistent with
/// [`FleetIndex::records`]: `times()[i]` is `records()[i].time()`,
/// category partitions cover every record exactly once in time order,
/// and so on. Both provided implementations are cross-checked
/// structure-for-structure by the equivalence suites.
///
/// # Examples
///
/// ```
/// use failscope::{FleetIndex, LogView, TbfAnalysis};
/// use failsim::{Simulator, SystemModel};
///
/// let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
/// let view = LogView::new(&log);
/// let tbf = TbfAnalysis::from_index(&view).unwrap();
/// assert!(tbf.mtbf_hours() > 70.0);
/// assert_eq!(view.len(), log.len());
/// ```
pub trait FleetIndex {
    /// The system generation (category vocabulary) of the records.
    fn generation(&self) -> Generation;

    /// The system specification (topology, peak rate) of the fleet.
    fn spec(&self) -> &SystemSpec;

    /// The observation window the failure times are offsets into.
    fn window(&self) -> ObservationWindow;

    /// The records themselves, in ascending time order.
    fn records(&self) -> &[FailureRecord];

    /// Failure times in hours, in time order.
    fn times(&self) -> &[f64];

    /// Repair durations in hours, sorted ascending.
    fn ttrs_sorted(&self) -> &[f64];

    /// Repair-completion times clamped to the window, in time order.
    fn recoveries(&self) -> &[f64];

    /// Repair-completion times clamped to the window, sorted ascending.
    fn recoveries_sorted(&self) -> &[f64];

    /// Record indices (into time order) partitioned by category; each
    /// partition preserves time order.
    fn category_indices(&self) -> &BTreeMap<Category, Vec<u32>>;

    /// Software root-locus counts over records that carry one.
    fn locus_counts(&self) -> &BTreeMap<SoftwareLocus, usize>;

    /// Failure counts per node (only failing nodes appear).
    fn node_counts(&self) -> &BTreeMap<NodeId, u64>;

    /// GPU-failure involvements per slot, indexed by slot number.
    fn slot_counts(&self) -> &[usize];

    /// Failure counts per rack, indexed by rack number.
    fn rack_counts(&self) -> &[usize];

    /// Total per-GPU involvements (a failure touching 3 GPUs counts 3;
    /// unknown involvement counts 1).
    fn gpu_involvements(&self) -> usize;

    /// Arrival times of multi-GPU failures, in time order.
    fn multi_gpu_times(&self) -> &[f64];

    /// Repair durations bucketed by the `(year, month)` the failure
    /// occurred in, aligned with `window().months()`.
    fn month_ttrs(&self) -> &[Vec<f64>];

    /// Number of failures indexed.
    fn len(&self) -> usize {
        self.times().len()
    }

    /// `true` when no failures are indexed.
    fn is_empty(&self) -> bool {
        self.times().is_empty()
    }

    /// Number of failures in one category.
    fn category_count(&self, category: Category) -> usize {
        self.category_indices().get(&category).map_or(0, Vec::len)
    }

    /// The failure times of one category, in time order.
    fn category_times(&self, category: Category) -> Vec<f64> {
        self.category_indices()
            .get(&category)
            .map_or_else(Vec::new, |idx| {
                let times = self.times();
                idx.iter().map(|&i| times[i as usize]).collect()
            })
    }

    /// The repair durations of one category, in time order.
    fn category_ttrs(&self, category: Category) -> Vec<f64> {
        self.category_indices()
            .get(&category)
            .map_or_else(Vec::new, |idx| {
                let records = self.records();
                idx.iter()
                    .map(|&i| records[i as usize].ttr().get())
                    .collect()
            })
    }
}

impl FleetIndex for LogView<'_> {
    fn generation(&self) -> Generation {
        self.log().generation()
    }

    fn spec(&self) -> &SystemSpec {
        self.log().spec()
    }

    fn window(&self) -> ObservationWindow {
        self.log().window()
    }

    fn records(&self) -> &[FailureRecord] {
        self.log().records()
    }

    fn times(&self) -> &[f64] {
        LogView::times(self)
    }

    fn ttrs_sorted(&self) -> &[f64] {
        LogView::ttrs_sorted(self)
    }

    fn recoveries(&self) -> &[f64] {
        LogView::recoveries(self)
    }

    fn recoveries_sorted(&self) -> &[f64] {
        LogView::recoveries_sorted(self)
    }

    fn category_indices(&self) -> &BTreeMap<Category, Vec<u32>> {
        LogView::category_indices(self)
    }

    fn locus_counts(&self) -> &BTreeMap<SoftwareLocus, usize> {
        LogView::locus_counts(self)
    }

    fn node_counts(&self) -> &BTreeMap<NodeId, u64> {
        LogView::node_counts(self)
    }

    fn slot_counts(&self) -> &[usize] {
        LogView::slot_counts(self)
    }

    fn rack_counts(&self) -> &[usize] {
        LogView::rack_counts(self)
    }

    fn gpu_involvements(&self) -> usize {
        LogView::gpu_involvements(self)
    }

    fn multi_gpu_times(&self) -> &[f64] {
        LogView::multi_gpu_times(self)
    }

    fn month_ttrs(&self) -> &[Vec<f64>] {
        LogView::month_ttrs(self)
    }
}

impl FleetIndex for StreamView {
    fn generation(&self) -> Generation {
        StreamView::generation(self)
    }

    fn spec(&self) -> &SystemSpec {
        StreamView::spec(self)
    }

    fn window(&self) -> ObservationWindow {
        StreamView::window(self)
    }

    fn records(&self) -> &[FailureRecord] {
        StreamView::records(self)
    }

    fn times(&self) -> &[f64] {
        StreamView::times(self)
    }

    fn ttrs_sorted(&self) -> &[f64] {
        StreamView::ttrs_sorted(self)
    }

    fn recoveries(&self) -> &[f64] {
        StreamView::recoveries(self)
    }

    fn recoveries_sorted(&self) -> &[f64] {
        StreamView::recoveries_sorted(self)
    }

    fn category_indices(&self) -> &BTreeMap<Category, Vec<u32>> {
        StreamView::category_indices(self)
    }

    fn locus_counts(&self) -> &BTreeMap<SoftwareLocus, usize> {
        StreamView::locus_counts(self)
    }

    fn node_counts(&self) -> &BTreeMap<NodeId, u64> {
        StreamView::node_counts(self)
    }

    fn slot_counts(&self) -> &[usize] {
        StreamView::slot_counts(self)
    }

    fn rack_counts(&self) -> &[usize] {
        StreamView::rack_counts(self)
    }

    fn gpu_involvements(&self) -> usize {
        StreamView::gpu_involvements(self)
    }

    fn multi_gpu_times(&self) -> &[f64] {
        StreamView::multi_gpu_times(self)
    }

    fn month_ttrs(&self) -> &[Vec<f64>] {
        StreamView::month_ttrs(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{Simulator, SystemModel};
    use failtypes::FailureLog;

    fn t3() -> FailureLog {
        Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap()
    }

    /// Exercises the trait through a generic function, the way the
    /// analyses consume it.
    fn summarize<V: FleetIndex + ?Sized>(index: &V) -> (usize, usize, usize) {
        (
            index.len(),
            index.category_indices().len(),
            index.records().len(),
        )
    }

    #[test]
    fn both_views_expose_the_same_index_through_the_trait() {
        let log = t3();
        let bv = LogView::new(&log);
        let mut sv = StreamView::for_log(&log);
        for rec in log.iter() {
            sv.push(rec.clone()).unwrap();
        }
        assert_eq!(summarize(&bv), summarize(&sv));
        assert_eq!(FleetIndex::times(&bv), FleetIndex::times(&sv));
        assert_eq!(FleetIndex::spec(&bv), FleetIndex::spec(&sv));
        assert_eq!(FleetIndex::window(&bv), FleetIndex::window(&sv));
        assert_eq!(FleetIndex::generation(&bv), FleetIndex::generation(&sv));
        assert_eq!(FleetIndex::records(&bv), FleetIndex::records(&sv));
    }

    #[test]
    fn default_methods_agree_with_inherent_ones() {
        let log = t3();
        let view = LogView::new(&log);
        for &category in view.category_indices().keys().collect::<Vec<_>>() {
            assert_eq!(
                FleetIndex::category_times(&view, category),
                LogView::category_times(&view, category)
            );
            assert_eq!(
                FleetIndex::category_ttrs(&view, category),
                LogView::category_ttrs(&view, category)
            );
            assert_eq!(
                FleetIndex::category_count(&view, category),
                LogView::category_count(&view, category)
            );
        }
        assert!(!FleetIndex::is_empty(&view));
    }
}
