//! Figs. 11-12 — monthly (seasonal) analysis of failures and recovery
//! times, and the RQ5 question of whether failure density predicts TTR.

use failstats::Summary;
use failtypes::{FailureLog, Month};
use serde::{Deserialize, Serialize};

use crate::{FleetIndex, LogView};

/// One calendar month's failures in one year.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonthBucket {
    /// Calendar year.
    pub year: i32,
    /// Calendar month.
    pub month: Month,
    /// Failures that occurred in this month.
    pub failures: usize,
    /// TTR summary of those failures (`None` when the month had none).
    pub ttr: Option<Summary>,
}

/// The month-by-month view of a log (Figs. 11 and 12).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeasonalAnalysis {
    buckets: Vec<MonthBucket>,
}

impl SeasonalAnalysis {
    /// Buckets every failure by the `(year, month)` it occurred in,
    /// reusing the index's month-bucketed repair durations; all months
    /// the window touches appear, including failure-free ones.
    pub fn from_index<V: FleetIndex + ?Sized>(index: &V) -> Self {
        let months = index.window().months();
        let buckets = months
            .into_iter()
            .zip(index.month_ttrs())
            .map(|((year, month), ttr_values)| MonthBucket {
                year,
                month,
                failures: ttr_values.len(),
                ttr: Summary::from_data(ttr_values),
            })
            .collect();
        SeasonalAnalysis { buckets }
    }

    /// [`SeasonalAnalysis::from_index`], indexing the log once.
    #[doc(hidden)]
    pub fn from_log(log: &FailureLog) -> Self {
        Self::from_index(&LogView::new(log))
    }

    /// [`SeasonalAnalysis::from_index`] on a prebuilt [`LogView`].
    #[doc(hidden)]
    pub fn from_view(view: &LogView<'_>) -> Self {
        Self::from_index(view)
    }

    /// The chronological `(year, month)` buckets.
    pub fn buckets(&self) -> &[MonthBucket] {
        &self.buckets
    }

    /// Failure counts per bucket in chronological order (Fig. 12's
    /// series).
    pub fn monthly_failure_counts(&self) -> Vec<usize> {
        self.buckets.iter().map(|b| b.failures).collect()
    }

    /// Aggregates across years: mean TTR of all failures that occurred in
    /// each calendar month (January..December). Months with no failures
    /// yield `None`.
    pub fn mean_ttr_by_calendar_month(&self) -> [Option<f64>; 12] {
        let mut sums = [0.0; 12];
        let mut counts = [0usize; 12];
        for b in &self.buckets {
            if let Some(s) = &b.ttr {
                sums[b.month.index()] += s.mean() * s.n() as f64;
                counts[b.month.index()] += s.n();
            }
        }
        std::array::from_fn(|i| (counts[i] > 0).then(|| sums[i] / counts[i] as f64))
    }

    /// Mean TTR over the first (Jan-Jun) vs. second (Jul-Dec) half of the
    /// calendar year — Fig. 11's Tsubame-2 observation. `None` when
    /// either half has no failures.
    pub fn half_year_ttr_means(&self) -> Option<(f64, f64)> {
        let mut h = [(0.0, 0usize); 2];
        for b in &self.buckets {
            if let Some(s) = &b.ttr {
                let idx = usize::from(b.month.is_second_half());
                h[idx].0 += s.mean() * s.n() as f64;
                h[idx].1 += s.n();
            }
        }
        (h[0].1 > 0 && h[1].1 > 0)
            .then(|| (h[0].0 / h[0].1 as f64, h[1].0 / h[1].1 as f64))
    }

    /// Pearson correlation between a month's failure count and its mean
    /// TTR across the `(year, month)` buckets — the RQ5 "failure density
    /// does not predict recovery time" check. `None` with fewer than
    /// three non-empty buckets.
    pub fn density_ttr_correlation(&self) -> Option<f64> {
        let pairs: Vec<(f64, f64)> = self
            .buckets
            .iter()
            .filter_map(|b| b.ttr.as_ref().map(|s| (b.failures as f64, s.mean())))
            .collect();
        if pairs.len() < 3 {
            return None;
        }
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        failstats::pearson(&xs, &ys)
    }

    /// Spearman variant of [`SeasonalAnalysis::density_ttr_correlation`].
    pub fn density_ttr_rank_correlation(&self) -> Option<f64> {
        let pairs: Vec<(f64, f64)> = self
            .buckets
            .iter()
            .filter_map(|b| b.ttr.as_ref().map(|s| (b.failures as f64, s.mean())))
            .collect();
        if pairs.len() < 3 {
            return None;
        }
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        failstats::spearman(&xs, &ys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{Simulator, SystemModel};

    fn t2() -> FailureLog {
        Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap()
    }

    fn t3() -> FailureLog {
        Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap()
    }

    #[test]
    fn buckets_cover_window_and_sum_to_total() {
        let log = t2();
        let s = SeasonalAnalysis::from_log(&log);
        // 2012-01 .. 2013-07 (the window ends 2013-08-01 exclusive) = 19
        // months.
        assert_eq!(s.buckets().len(), 19);
        let total: usize = s.monthly_failure_counts().iter().sum();
        assert_eq!(total, 897);
        // Chronological order.
        for w in s.buckets().windows(2) {
            assert!((w[0].year, w[0].month) < (w[1].year, w[1].month));
        }
    }

    #[test]
    fn fig12_counts_vary_month_to_month() {
        let s = SeasonalAnalysis::from_log(&t2());
        let counts = s.monthly_failure_counts();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().filter(|&&c| c > 0).min().unwrap();
        assert!(max > min, "no monthly variation at all");
    }

    #[test]
    fn fig11_t2_second_half_ttr_uplift() {
        // Average over seeds: Tsubame-2's TTR is higher in Jul-Dec.
        let deltas = failstats::par_map_ordered(8, failstats::available_threads(), |seed| {
            let log = Simulator::new(SystemModel::tsubame2(), 500 + seed as u64)
                .generate()
                .unwrap();
            let s = SeasonalAnalysis::from_log(&log);
            let (h1, h2) = s.half_year_ttr_means().unwrap();
            h2 - h1
        });
        let mean_delta = failstats::mean(&deltas).unwrap();
        assert!(mean_delta > 0.0, "T2 second-half uplift {mean_delta}");
    }

    #[test]
    fn fig11_t3_no_half_year_trend() {
        let deltas = failstats::par_map_ordered(8, failstats::available_threads(), |seed| {
            let log = Simulator::new(SystemModel::tsubame3(), 600 + seed as u64)
                .generate()
                .unwrap();
            let s = SeasonalAnalysis::from_log(&log);
            let (h1, h2) = s.half_year_ttr_means().unwrap();
            h2 - h1
        });
        let mean_delta = failstats::mean(&deltas).unwrap().abs();
        // No systematic uplift either way (band sized to TTR noise).
        assert!(mean_delta < 8.0, "T3 half-year delta {mean_delta}");
    }

    #[test]
    fn rq5_density_does_not_predict_ttr() {
        // Average |r| across seeds stays small: no correlation between a
        // month's failure count and its mean TTR.
        let rs = failstats::par_map_ordered(8, failstats::available_threads(), |seed| {
            let log = Simulator::new(SystemModel::tsubame3(), 700 + seed as u64)
                .generate()
                .unwrap();
            let s = SeasonalAnalysis::from_log(&log);
            s.density_ttr_correlation().unwrap()
        });
        let mean_abs = failstats::mean(&rs.iter().map(|r| r.abs()).collect::<Vec<_>>()).unwrap();
        assert!(mean_abs < 0.35, "mean |r| {mean_abs}");
        let mean = failstats::mean(&rs).unwrap();
        assert!(mean.abs() < 0.25, "mean r {mean}");
    }

    #[test]
    fn calendar_month_aggregation() {
        let s = SeasonalAnalysis::from_log(&t3());
        let by_month = s.mean_ttr_by_calendar_month();
        // Every calendar month is touched by a ~33-month window.
        assert!(by_month.iter().all(|m| m.is_some()));
        for m in by_month.into_iter().flatten() {
            assert!(m > 0.0);
        }
    }

    #[test]
    fn rank_correlation_also_small() {
        let s = SeasonalAnalysis::from_log(&t3());
        let rho = s.density_ttr_rank_correlation().unwrap();
        assert!(rho.abs() < 0.6);
    }

    #[test]
    fn degenerate_logs() {
        let empty = t3().filtered(|_| false);
        let s = SeasonalAnalysis::from_log(&empty);
        assert!(s.buckets().iter().all(|b| b.failures == 0));
        assert!(s.half_year_ttr_means().is_none());
        assert!(s.density_ttr_correlation().is_none());
        assert!(s.density_ttr_rank_correlation().is_none());
        assert!(s.mean_ttr_by_calendar_month().iter().all(|m| m.is_none()));
    }
}
