//! A precomputed, indexed view over a [`FailureLog`].
//!
//! Every analysis in this crate starts from the same raw material: the
//! time-ordered records, their per-category partitions, per-node and
//! per-slot occurrence counts, and the repair-duration sample. Computed
//! per analysis, those indexes are rebuilt (and the TTR sample re-sorted)
//! once per figure. [`LogView`] builds them **once** in a single pass
//! over the log, and each analysis gains a `from_view` constructor that
//! consumes the shared indexes — producing results identical to its
//! `from_log` sibling, which the equivalence suite in `tests/` asserts.

use std::collections::BTreeMap;

use failtypes::{Category, FailureLog, NodeId, SoftwareLocus};

/// Shared indexes over one log: time order, category partitions, count
/// maps, and pre-sorted repair durations.
///
/// # Examples
///
/// ```
/// use failscope::{LogView, TtrAnalysis};
/// use failsim::{Simulator, SystemModel};
///
/// let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
/// let view = LogView::new(&log);
/// let direct = TtrAnalysis::from_log(&log).unwrap();
/// let indexed = TtrAnalysis::from_view(&view).unwrap();
/// assert_eq!(direct, indexed);
/// ```
#[derive(Debug, Clone)]
pub struct LogView<'a> {
    log: &'a FailureLog,
    times: Vec<f64>,
    ttrs_sorted: Vec<f64>,
    recoveries: Vec<f64>,
    recoveries_sorted: Vec<f64>,
    category_indices: BTreeMap<Category, Vec<u32>>,
    locus_counts: BTreeMap<SoftwareLocus, usize>,
    node_counts: BTreeMap<NodeId, u64>,
    slot_counts: Vec<usize>,
    rack_counts: Vec<usize>,
    gpu_involvements: usize,
    multi_gpu_times: Vec<f64>,
    month_ttrs: Vec<Vec<f64>>,
}

impl<'a> LogView<'a> {
    /// [`LogView::new`] with optional tracing: records an
    /// `index.logview` span (items = records) and observes every repair
    /// duration into the `index.ttr_hours` histogram.
    pub fn new_traced(log: &'a FailureLog, trace: Option<&failtrace::Collector>) -> Self {
        let Some(trace) = trace else {
            return Self::new(log);
        };
        let mut span = trace.span("index.logview");
        let view = Self::new(log);
        span.add_items(log.len() as u64);
        drop(span);
        for &ttr in view.ttrs_sorted() {
            trace.observe_hours("index.ttr_hours", ttr);
        }
        view
    }

    /// Indexes `log` in one pass (plus two `sort_unstable` calls for the
    /// pre-sorted duration arrays).
    pub fn new(log: &'a FailureLog) -> Self {
        let n = log.len();
        let spec = log.spec();
        let window_hours = log.window().duration().get();
        let months = log.window().months();
        let slots = spec.gpus_per_node() as usize;

        let mut times = Vec::with_capacity(n);
        let mut ttrs = Vec::with_capacity(n);
        let mut recoveries = Vec::with_capacity(n);
        let mut category_indices: BTreeMap<Category, Vec<u32>> = BTreeMap::new();
        let mut locus_counts: BTreeMap<SoftwareLocus, usize> = BTreeMap::new();
        let mut node_counts: BTreeMap<NodeId, u64> = BTreeMap::new();
        let mut slot_counts = vec![0usize; slots];
        let mut rack_counts = vec![0usize; spec.racks() as usize];
        let mut gpu_involvements = 0usize;
        let mut multi_gpu_times = Vec::new();
        let mut month_ttrs: Vec<Vec<f64>> = vec![Vec::new(); months.len()];

        for (i, rec) in log.iter().enumerate() {
            let time = rec.time().get();
            let ttr = rec.ttr().get();
            times.push(time);
            ttrs.push(ttr);
            recoveries.push(rec.recovery_time().get().min(window_hours));
            category_indices
                .entry(rec.category())
                .or_default()
                .push(i as u32);
            if let Some(locus) = rec.locus() {
                *locus_counts.entry(locus).or_insert(0) += 1;
            }
            *node_counts.entry(rec.node()).or_insert(0) += 1;
            rack_counts[spec.rack_of(rec.node()).index() as usize] += 1;
            if rec.category().is_gpu() {
                gpu_involvements += rec.gpus().len().max(1);
                for slot in rec.gpus() {
                    if (slot.index() as usize) < slots {
                        slot_counts[slot.index() as usize] += 1;
                    }
                }
                if rec.is_multi_gpu() {
                    multi_gpu_times.push(time);
                }
            }
            let date = log.window().date_of(rec.time());
            if let Some(idx) = months.iter().position(|&m| m == date.year_month()) {
                month_ttrs[idx].push(ttr);
            }
        }

        let mut ttrs_sorted = ttrs;
        ttrs_sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("TTRs are finite"));
        let mut recoveries_sorted = recoveries.clone();
        recoveries_sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("times are finite"));

        LogView {
            log,
            times,
            ttrs_sorted,
            recoveries,
            recoveries_sorted,
            category_indices,
            locus_counts,
            node_counts,
            slot_counts,
            rack_counts,
            gpu_involvements,
            multi_gpu_times,
            month_ttrs,
        }
    }

    /// The underlying log.
    pub const fn log(&self) -> &'a FailureLog {
        self.log
    }

    /// Number of failures.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when the log holds no failures.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Failure times in hours, in log (time) order.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Repair durations in hours, sorted ascending.
    pub fn ttrs_sorted(&self) -> &[f64] {
        &self.ttrs_sorted
    }

    /// Repair-completion times clamped to the window, in log order.
    pub fn recoveries(&self) -> &[f64] {
        &self.recoveries
    }

    /// Repair-completion times clamped to the window, sorted ascending.
    pub fn recoveries_sorted(&self) -> &[f64] {
        &self.recoveries_sorted
    }

    /// Record indices (into log order) partitioned by category; each
    /// partition preserves time order.
    pub fn category_indices(&self) -> &BTreeMap<Category, Vec<u32>> {
        &self.category_indices
    }

    /// Number of failures in one category.
    pub fn category_count(&self, category: Category) -> usize {
        self.category_indices
            .get(&category)
            .map_or(0, Vec::len)
    }

    /// The failure times of one category, in time order.
    pub fn category_times(&self, category: Category) -> Vec<f64> {
        self.category_indices
            .get(&category)
            .map_or_else(Vec::new, |idx| {
                idx.iter().map(|&i| self.times[i as usize]).collect()
            })
    }

    /// The repair durations of one category, in time order.
    pub fn category_ttrs(&self, category: Category) -> Vec<f64> {
        self.category_indices
            .get(&category)
            .map_or_else(Vec::new, |idx| {
                idx.iter()
                    .map(|&i| {
                        let rec = &self.log.records()[i as usize];
                        rec.ttr().get()
                    })
                    .collect()
            })
    }

    /// Software root-locus counts over records that carry one.
    pub fn locus_counts(&self) -> &BTreeMap<SoftwareLocus, usize> {
        &self.locus_counts
    }

    /// Failure counts per node (only failing nodes appear).
    pub fn node_counts(&self) -> &BTreeMap<NodeId, u64> {
        &self.node_counts
    }

    /// GPU-failure involvements per slot, indexed by slot number.
    pub fn slot_counts(&self) -> &[usize] {
        &self.slot_counts
    }

    /// Failure counts per rack, indexed by rack number.
    pub fn rack_counts(&self) -> &[usize] {
        &self.rack_counts
    }

    /// Total per-GPU involvements (a failure touching 3 GPUs counts 3;
    /// unknown involvement counts 1).
    pub const fn gpu_involvements(&self) -> usize {
        self.gpu_involvements
    }

    /// Arrival times of multi-GPU failures, in time order.
    pub fn multi_gpu_times(&self) -> &[f64] {
        &self.multi_gpu_times
    }

    /// Repair durations bucketed by the `(year, month)` the failure
    /// occurred in, aligned with `log.window().months()`.
    pub fn month_ttrs(&self) -> &[Vec<f64>] {
        &self.month_ttrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{Simulator, SystemModel};

    fn t2() -> FailureLog {
        Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap()
    }

    #[test]
    fn indexes_are_consistent_with_the_log() {
        let log = t2();
        let view = LogView::new(&log);
        assert_eq!(view.len(), log.len());
        assert_eq!(view.times().len(), 897);
        // Category partitions cover every record exactly once.
        let total: usize = view.category_indices().values().map(Vec::len).sum();
        assert_eq!(total, log.len());
        // Node counts sum to the record count.
        let nodes: u64 = view.node_counts().values().sum();
        assert_eq!(nodes as usize, log.len());
        // Rack counts sum to the record count.
        assert_eq!(view.rack_counts().iter().sum::<usize>(), log.len());
        // Month buckets cover every record (the window spans all times).
        assert_eq!(
            view.month_ttrs().iter().map(Vec::len).sum::<usize>(),
            log.len()
        );
        // Sorted arrays are sorted and complete.
        assert_eq!(view.ttrs_sorted().len(), log.len());
        assert!(view.ttrs_sorted().windows(2).all(|w| w[0] <= w[1]));
        assert!(view.recoveries_sorted().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn partitions_preserve_time_order() {
        let log = t2();
        let view = LogView::new(&log);
        for indices in view.category_indices().values() {
            assert!(indices.windows(2).all(|w| w[0] < w[1]));
        }
        for times in view
            .category_indices()
            .keys()
            .map(|&c| view.category_times(c))
        {
            assert!(times.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn empty_log_view() {
        let log = t2().filtered(|_| false);
        let view = LogView::new(&log);
        assert!(view.is_empty());
        assert!(view.category_indices().is_empty());
        assert!(view.multi_gpu_times().is_empty());
        assert_eq!(view.gpu_involvements(), 0);
    }
}
