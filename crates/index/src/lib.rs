//! Persistent, checksummed on-disk [`FleetIndex`] snapshots for the
//! `failscope` workspace.
//!
//! Parsing and indexing a failure log is the dominant cost of every
//! `failctl report` invocation, yet the log rarely changes between
//! runs. This crate persists a fully-built index next to the log as
//! `<log>.fsidx` — a versioned binary snapshot of everything a
//! [`FleetIndex`] exposes — so subsequent runs skip parsing entirely:
//!
//! * **Exact match** — the log's raw bytes still hash to the snapshot's
//!   fingerprint: the snapshot is decoded and served with *zero* record
//!   parsing.
//! * **Prefix match** — the log grew but its old bytes are unchanged
//!   (the append-only common case): the snapshot is decoded and only
//!   the appended tail is parsed, then the snapshot is rewritten.
//! * **Stale** — anything else (edited bytes, truncation, compressed
//!   tail growth, corrupt snapshot): callers fall back to a cold parse
//!   and rewrite the snapshot. Corruption is *never* an error on the
//!   read path — the snapshot is a cache, the log stays authoritative.
//!
//! Integrity is belt-and-braces: the 44-byte header carries its own
//! CRC-32, the body carries another, and the source fingerprint binds
//! the snapshot to the log's raw on-disk bytes (so a gzip log re-
//! compressed at a different level is correctly treated as stale).
//!
//! # Examples
//!
//! ```
//! use failscope::FleetIndex;
//!
//! // Build an index once, snapshot it, and reload without parsing.
//! let log = failsim::Simulator::new(failsim::SystemModel::tsubame3(), 7)
//!     .generate()
//!     .unwrap();
//! let text = faillog::to_string(&log)?;
//!
//! let dir = std::env::temp_dir().join("failindex-doc");
//! std::fs::create_dir_all(&dir)?;
//! let log_path = dir.join("doc.fslog");
//! std::fs::write(&log_path, &text)?;
//!
//! let mut view = failscope::StreamView::for_log(&log);
//! view.extend(log.records().iter().cloned()).unwrap();
//! let source = failindex::SourceInfo::of_bytes(text.as_bytes());
//! failindex::save(failindex::snapshot_path(&log_path), &view, source)?;
//!
//! match failindex::open_indexed(&log_path, None)? {
//!     failindex::IndexedLoad::Exact(snap) => assert_eq!(snap.len(), log.len()),
//!     other => panic!("expected an exact hit, got {other:?}"),
//! }
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

mod bytes;
mod format;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::str::FromStr;

use faillog::{crc32, Compression, Crc32};
use failscope::{FleetIndex, StreamView};
use failtrace::Collector;
use failtypes::{
    Category, Error, FailureRecord, Generation, NodeId, ObservationWindow, SoftwareLocus,
    SystemSpec,
};

pub use format::{Header, FORMAT_VERSION, HEADER_LEN};

/// Fingerprint of a log's raw on-disk bytes at snapshot time.
///
/// `lines` counts the *text* lines the fingerprinted bytes span (a
/// final unterminated line counts as one); it rebases parser line
/// numbers when a prefix-matched snapshot extends over an appended
/// tail. For compressed logs the field is unused — only exact matches
/// apply there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceInfo {
    /// Raw byte length of the fingerprinted input.
    pub bytes: u64,
    /// CRC-32 of those bytes.
    pub crc32: u32,
    /// Text lines the bytes span.
    pub lines: u64,
}

impl SourceInfo {
    /// Fingerprints a byte slice (length, CRC-32, line count).
    pub fn of_bytes(data: &[u8]) -> SourceInfo {
        let newlines = data.iter().filter(|&&b| b == b'\n').count() as u64;
        let lines = match data.last() {
            None => 0,
            Some(b'\n') => newlines,
            Some(_) => newlines + 1,
        };
        SourceInfo {
            bytes: data.len() as u64,
            crc32: crc32(data),
            lines,
        }
    }
}

/// A loaded `.fsidx` snapshot: a fully-reconstructed [`StreamView`]
/// plus the source fingerprint it was built against.
///
/// Implements [`FleetIndex`] by delegation, so reports render from a
/// snapshot exactly as they would from a freshly-parsed log.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    view: StreamView,
    source: SourceInfo,
}

impl Snapshot {
    /// The reconstructed index.
    pub fn view(&self) -> &StreamView {
        &self.view
    }

    /// Consumes the snapshot, yielding the index (e.g. to extend it).
    pub fn into_view(self) -> StreamView {
        self.view
    }

    /// The source-log fingerprint recorded at save time.
    pub fn source(&self) -> SourceInfo {
        self.source
    }
}

impl FleetIndex for Snapshot {
    fn generation(&self) -> Generation {
        self.view.generation()
    }
    fn spec(&self) -> &SystemSpec {
        self.view.spec()
    }
    fn window(&self) -> ObservationWindow {
        self.view.window()
    }
    fn records(&self) -> &[FailureRecord] {
        self.view.records()
    }
    fn times(&self) -> &[f64] {
        self.view.times()
    }
    fn ttrs_sorted(&self) -> &[f64] {
        self.view.ttrs_sorted()
    }
    fn recoveries(&self) -> &[f64] {
        self.view.recoveries()
    }
    fn recoveries_sorted(&self) -> &[f64] {
        self.view.recoveries_sorted()
    }
    fn category_indices(&self) -> &BTreeMap<Category, Vec<u32>> {
        self.view.category_indices()
    }
    fn locus_counts(&self) -> &BTreeMap<SoftwareLocus, usize> {
        self.view.locus_counts()
    }
    fn node_counts(&self) -> &BTreeMap<NodeId, u64> {
        self.view.node_counts()
    }
    fn slot_counts(&self) -> &[usize] {
        self.view.slot_counts()
    }
    fn rack_counts(&self) -> &[usize] {
        self.view.rack_counts()
    }
    fn gpu_involvements(&self) -> usize {
        self.view.gpu_involvements()
    }
    fn multi_gpu_times(&self) -> &[f64] {
        self.view.multi_gpu_times()
    }
    fn month_ttrs(&self) -> &[Vec<f64>] {
        self.view.month_ttrs()
    }
}

/// How commands should use `.fsidx` snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexMode {
    /// Use a warm snapshot when one validates; otherwise parse cold and
    /// refresh the snapshot best-effort. The default.
    #[default]
    Auto,
    /// Ignore snapshots entirely: always parse the log.
    Off,
    /// Insist on a warm (exact or prefix) snapshot; error otherwise.
    Require,
}

impl fmt::Display for IndexMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IndexMode::Auto => "auto",
            IndexMode::Off => "off",
            IndexMode::Require => "require",
        })
    }
}

impl FromStr for IndexMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(IndexMode::Auto),
            "off" => Ok(IndexMode::Off),
            "require" => Ok(IndexMode::Require),
            other => Err(format!(
                "unknown index mode `{other}` (expected auto, off, or require)"
            )),
        }
    }
}

/// How a snapshot relates to the current bytes of its source log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Freshness {
    /// The log's bytes are exactly what the snapshot fingerprinted.
    Exact,
    /// The log grew by `tail_bytes` but the fingerprinted prefix is
    /// unchanged: the snapshot can be extended incrementally.
    Prefix {
        /// Appended bytes not covered by the snapshot.
        tail_bytes: u64,
    },
    /// The snapshot no longer describes the log (or is unreadable).
    Stale {
        /// Human-readable explanation.
        reason: String,
    },
    /// No snapshot file exists next to the log.
    Missing,
}

/// The canonical snapshot path for a log: `<log>.fsidx` appended to the
/// full file name (so `a.fslog` and `a.fslog.gz` get distinct
/// snapshots).
pub fn snapshot_path(log_path: impl AsRef<Path>) -> PathBuf {
    let mut os = log_path.as_ref().as_os_str().to_os_string();
    os.push(".fsidx");
    PathBuf::from(os)
}

fn path_err(path: &Path, e: impl fmt::Display) -> Error {
    Error::run(format!("{}: {e}", path.display()))
}

/// Serializes `index` to `path` atomically (temp file + rename).
///
/// `source` must fingerprint the raw on-disk bytes of the log the index
/// was built from — it is what future loads validate against. Returns
/// the total bytes written.
///
/// # Errors
///
/// I/O failures only; encoding is infallible.
pub fn save(
    path: impl AsRef<Path>,
    index: &dyn FleetIndex,
    source: SourceInfo,
) -> Result<u64, Error> {
    save_traced(path, index, source, None)
}

/// [`save`], recording the bytes written on the `index.save_bytes`
/// trace counter.
pub fn save_traced(
    path: impl AsRef<Path>,
    index: &dyn FleetIndex,
    source: SourceInfo,
    trace: Option<&Collector>,
) -> Result<u64, Error> {
    let path = path.as_ref();
    let body = format::encode_body(index);
    let header = Header {
        version: FORMAT_VERSION,
        source,
        body_len: body.len() as u64,
        body_crc32: crc32(&body),
    };
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&header.encode());
    out.extend_from_slice(&body);

    let file_name = path
        .file_name()
        .ok_or_else(|| path_err(path, "not a file path"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    fs::write(&tmp, &out).map_err(|e| path_err(&tmp, e))?;
    if let Err(e) = fs::rename(&tmp, path) {
        fs::remove_file(&tmp).ok();
        return Err(path_err(path, e));
    }
    if let Some(t) = trace {
        t.incr("index.save_bytes", out.len() as u64);
    }
    Ok(out.len() as u64)
}

fn decode_snapshot(data: &[u8], header: &Header) -> Result<Snapshot, String> {
    let body = &data[HEADER_LEN..];
    if body.len() as u64 != header.body_len {
        return Err(format!(
            "body is {} bytes but header says {}",
            body.len(),
            header.body_len
        ));
    }
    if crc32(body) != header.body_crc32 {
        return Err("body checksum mismatch".to_string());
    }
    let parts = format::decode_body(body)?;
    let view = StreamView::from_parts(parts).map_err(|e| e.to_string())?;
    Ok(Snapshot {
        view,
        source: header.source,
    })
}

/// Strictly loads a snapshot file, validating the magic, version, both
/// CRCs, and the structural consistency of the payload.
///
/// # Errors
///
/// Any validation failure — strict loading is for tooling
/// (`failctl index stat`/`verify`); the report path uses
/// [`open_indexed`], which falls back to a cold parse instead.
pub fn load(path: impl AsRef<Path>) -> Result<Snapshot, Error> {
    let path = path.as_ref();
    let data = fs::read(path).map_err(|e| path_err(path, e))?;
    let header = Header::decode(&data)
        .map_err(|reason| path_err(path, format!("invalid .fsidx snapshot: {reason}")))?;
    decode_snapshot(&data, &header)
        .map_err(|reason| path_err(path, format!("invalid .fsidx snapshot: {reason}")))
}

/// Classifies `header` against the log's current raw bytes.
///
/// Prefix matches demand three things beyond the prefix CRC: the
/// snapshot must cover a non-empty prefix, the log must be *plain* text
/// (appending to a gzip file creates a new member — old decoded bytes
/// unchanged, raw prefix untouched, but the tail is not line-oriented
/// text), and the covered prefix must end at a line boundary.
fn classify(header: &Header, raw: &[u8]) -> Freshness {
    let src_len = header.source.bytes as usize;
    if src_len > raw.len() {
        return Freshness::Stale {
            reason: format!(
                "log shrank to {} bytes below the {} the snapshot covers",
                raw.len(),
                src_len
            ),
        };
    }
    let mut hasher = Crc32::new();
    hasher.update(&raw[..src_len]);
    if hasher.finish() != header.source.crc32 {
        return Freshness::Stale {
            reason: "log bytes changed under the snapshot".to_string(),
        };
    }
    if src_len == raw.len() {
        return Freshness::Exact;
    }
    if Compression::sniff(raw) != Compression::Plain {
        return Freshness::Stale {
            reason: "compressed logs support exact-match snapshots only".to_string(),
        };
    }
    if src_len == 0 || raw[src_len - 1] != b'\n' {
        return Freshness::Stale {
            reason: "snapshot coverage does not end at a line boundary".to_string(),
        };
    }
    Freshness::Prefix {
        tail_bytes: (raw.len() - src_len) as u64,
    }
}

/// Read-only freshness check: how does the snapshot next to `log_path`
/// relate to the log's current bytes? Never writes anything.
///
/// # Errors
///
/// Only when the *log* itself is unreadable; snapshot problems are
/// reported as [`Freshness::Missing`] / [`Freshness::Stale`].
pub fn probe(log_path: impl AsRef<Path>) -> Result<Freshness, Error> {
    let log_path = log_path.as_ref();
    let raw = fs::read(log_path).map_err(|e| path_err(log_path, e))?;
    let spath = snapshot_path(log_path);
    let data = match fs::read(&spath) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Freshness::Missing),
        Err(e) => {
            return Ok(Freshness::Stale {
                reason: format!("snapshot unreadable: {e}"),
            })
        }
    };
    match Header::decode(&data) {
        Ok(header) => Ok(classify(&header, &raw)),
        Err(reason) => Ok(Freshness::Stale { reason }),
    }
}

/// The outcome of [`open_indexed`].
#[derive(Debug)]
pub enum IndexedLoad {
    /// The snapshot matched the log exactly: served with zero parsing.
    Exact(Snapshot),
    /// The snapshot covered a prefix; `added` appended records were
    /// parsed, the index extended, and the snapshot file rewritten.
    Extended {
        /// The extended snapshot, now covering the whole log.
        snapshot: Snapshot,
        /// Records parsed from the appended tail.
        added: usize,
    },
    /// No usable snapshot: the caller should parse the log cold and
    /// (in auto mode) [`save`] a fresh snapshot using `source`.
    Cold {
        /// Fingerprint of the log bytes just read, ready for [`save`].
        source: SourceInfo,
    },
}

/// Opens the log's snapshot if it is warm, extending it over an
/// appended tail when possible.
///
/// Exact hits increment the `index.snapshot_hit` trace counter and
/// parse nothing. Prefix hits parse only the appended tail, rewrite
/// the snapshot (best-effort — a failed rewrite does not fail the
/// load), and increment `index.snapshot_extend`. Every other outcome —
/// missing, corrupt, or stale snapshot, unparseable tail — degrades
/// silently to [`IndexedLoad::Cold`].
///
/// # Errors
///
/// Only when the log itself cannot be read.
pub fn open_indexed(
    log_path: impl AsRef<Path>,
    trace: Option<&Collector>,
) -> Result<IndexedLoad, Error> {
    let log_path = log_path.as_ref();
    let raw = fs::read(log_path).map_err(|e| path_err(log_path, e))?;
    Ok(open_indexed_bytes(log_path, &raw, trace))
}

fn open_indexed_bytes(log_path: &Path, raw: &[u8], trace: Option<&Collector>) -> IndexedLoad {
    let cold = || IndexedLoad::Cold {
        source: SourceInfo::of_bytes(raw),
    };
    let spath = snapshot_path(log_path);
    let data = match fs::read(&spath) {
        Ok(d) => d,
        Err(_) => return cold(),
    };
    let header = match Header::decode(&data) {
        Ok(h) => h,
        Err(_) => return cold(),
    };
    match classify(&header, raw) {
        Freshness::Exact => match decode_snapshot(&data, &header) {
            Ok(snapshot) => {
                if let Some(t) = trace {
                    t.incr("index.snapshot_hit", 1);
                }
                IndexedLoad::Exact(snapshot)
            }
            Err(_) => cold(),
        },
        Freshness::Prefix { .. } => {
            let snapshot = match decode_snapshot(&data, &header) {
                Ok(s) => s,
                Err(_) => return cold(),
            };
            let tail = match std::str::from_utf8(&raw[header.source.bytes as usize..]) {
                Ok(t) => t,
                Err(_) => return cold(),
            };
            let generation = snapshot.generation();
            let rows = match faillog::parse_body_rows(tail, generation, header.source.lines as usize)
            {
                Ok(r) => r,
                Err(_) => return cold(),
            };
            let mut view = snapshot.into_view();
            let added = match view.extend(rows) {
                Ok(n) => n,
                Err(_) => return cold(),
            };
            let source = SourceInfo::of_bytes(raw);
            let snapshot = Snapshot { view, source };
            save_traced(&spath, &snapshot, source, trace).ok();
            if let Some(t) = trace {
                t.incr("index.snapshot_extend", 1);
            }
            IndexedLoad::Extended { snapshot, added }
        }
        Freshness::Stale { .. } | Freshness::Missing => cold(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{Simulator, SystemModel};
    use failtypes::FailureLog;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("failindex-test-{name}"));
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn view_of(log: &FailureLog) -> StreamView {
        let mut view = StreamView::for_log(log);
        view.extend(log.records().iter().cloned()).unwrap();
        view
    }

    #[test]
    fn snapshot_path_appends_to_the_full_file_name() {
        assert_eq!(
            snapshot_path(Path::new("/x/a.fslog")),
            PathBuf::from("/x/a.fslog.fsidx")
        );
        assert_eq!(
            snapshot_path(Path::new("a.fslog.gz")),
            PathBuf::from("a.fslog.gz.fsidx")
        );
    }

    #[test]
    fn source_info_counts_lines_like_a_text_editor() {
        assert_eq!(SourceInfo::of_bytes(b"").lines, 0);
        assert_eq!(SourceInfo::of_bytes(b"a\nb\n").lines, 2);
        assert_eq!(SourceInfo::of_bytes(b"a\nb").lines, 2);
        assert_eq!(SourceInfo::of_bytes(b"\n").lines, 1);
        assert_eq!(
            SourceInfo::of_bytes(b"abc").crc32,
            faillog::crc32(b"abc")
        );
    }

    #[test]
    fn save_then_load_round_trips_both_generations() {
        let dir = tmp_dir("roundtrip");
        for (model, seed) in [(SystemModel::tsubame2(), 42), (SystemModel::tsubame3(), 43)] {
            let log = Simulator::new(model, seed).generate().unwrap();
            let view = view_of(&log);
            let path = dir.join(format!("{seed}.fsidx"));
            let source = SourceInfo {
                bytes: 10,
                crc32: 0x1234,
                lines: 2,
            };
            let written = save(&path, &view, source).unwrap();
            assert_eq!(written, fs::metadata(&path).unwrap().len());
            let snap = load(&path).unwrap();
            assert_eq!(snap.source(), source);
            assert_eq!(snap.view(), &view);
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_indexed_serves_exact_hits_without_parsing() {
        let dir = tmp_dir("exact");
        let log = Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap();
        let text = faillog::to_string(&log).unwrap();
        let log_path = dir.join("log.fslog");
        fs::write(&log_path, &text).unwrap();

        // No snapshot yet: cold, with a ready-to-save fingerprint.
        let trace = Collector::new();
        match open_indexed(&log_path, Some(&trace)).unwrap() {
            IndexedLoad::Cold { source } => {
                assert_eq!(source, SourceInfo::of_bytes(text.as_bytes()));
                save(snapshot_path(&log_path), &view_of(&log), source).unwrap();
            }
            other => panic!("expected cold, got {other:?}"),
        }
        assert_eq!(trace.counter("index.snapshot_hit"), 0);

        // Snapshot in place: exact hit, counter bumped.
        assert_eq!(probe(&log_path).unwrap(), Freshness::Exact);
        match open_indexed(&log_path, Some(&trace)).unwrap() {
            IndexedLoad::Exact(snap) => assert_eq!(snap.view(), &view_of(&log)),
            other => panic!("expected exact, got {other:?}"),
        }
        assert_eq!(trace.counter("index.snapshot_hit"), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_indexed_extends_over_an_appended_tail() {
        let dir = tmp_dir("extend");
        let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
        let text = faillog::to_string(&log).unwrap();

        // Split the serialized log at a line boundary ~halfway through.
        let cut = text[..text.len() / 2].rfind('\n').unwrap() + 1;
        let (prefix, tail) = text.split_at(cut);

        let log_path = dir.join("grow.fslog");
        fs::write(&log_path, prefix).unwrap();
        let prefix_log = faillog::from_str(prefix).unwrap();
        save(
            snapshot_path(&log_path),
            &view_of(&prefix_log),
            SourceInfo::of_bytes(prefix.as_bytes()),
        )
        .unwrap();

        // Grow the log; the snapshot should extend, not rebuild.
        fs::write(&log_path, &text).unwrap();
        match probe(&log_path).unwrap() {
            Freshness::Prefix { tail_bytes } => assert_eq!(tail_bytes as usize, tail.len()),
            other => panic!("expected prefix, got {other:?}"),
        }
        let trace = Collector::new();
        let extended = match open_indexed(&log_path, Some(&trace)).unwrap() {
            IndexedLoad::Extended { snapshot, added } => {
                assert_eq!(added, log.len() - prefix_log.len());
                snapshot
            }
            other => panic!("expected extended, got {other:?}"),
        };
        assert_eq!(extended.view(), &view_of(&log));
        assert_eq!(trace.counter("index.snapshot_extend"), 1);
        assert!(trace.counter("index.save_bytes") > 0);

        // The rewrite covers the grown log: next open is an exact hit.
        match open_indexed(&log_path, None).unwrap() {
            IndexedLoad::Exact(snap) => assert_eq!(snap.view(), &view_of(&log)),
            other => panic!("expected exact after extend, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn edited_logs_and_corrupt_snapshots_degrade_to_cold() {
        let dir = tmp_dir("stale");
        let log = Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap();
        let text = faillog::to_string(&log).unwrap();
        let log_path = dir.join("log.fslog");
        let spath = snapshot_path(&log_path);
        fs::write(&log_path, &text).unwrap();
        save(&spath, &view_of(&log), SourceInfo::of_bytes(text.as_bytes())).unwrap();

        // Edit a byte inside the covered range: stale, cold fallback.
        let mut edited = text.clone().into_bytes();
        let mid = edited.len() / 2;
        edited[mid] = if edited[mid] == b'0' { b'1' } else { b'0' };
        fs::write(&log_path, &edited).unwrap();
        assert!(matches!(probe(&log_path).unwrap(), Freshness::Stale { .. }));
        assert!(matches!(
            open_indexed(&log_path, None).unwrap(),
            IndexedLoad::Cold { .. }
        ));

        // Restore the log but flip a snapshot body byte: cold fallback,
        // while the strict loader reports the corruption loudly.
        fs::write(&log_path, &text).unwrap();
        let mut snap_bytes = fs::read(&spath).unwrap();
        let last = snap_bytes.len() - 1;
        snap_bytes[last] ^= 0xFF;
        fs::write(&spath, &snap_bytes).unwrap();
        assert!(matches!(
            open_indexed(&log_path, None).unwrap(),
            IndexedLoad::Cold { .. }
        ));
        let err = load(&spath).unwrap_err().to_string();
        assert!(err.contains("checksum"), "{err}");

        // Truncate the log below snapshot coverage: stale.
        fs::write(&log_path, &text.as_bytes()[..text.len() / 2]).unwrap();
        save(&spath, &view_of(&log), SourceInfo::of_bytes(text.as_bytes())).unwrap();
        match probe(&log_path).unwrap() {
            Freshness::Stale { reason } => assert!(reason.contains("shrank"), "{reason}"),
            other => panic!("expected stale, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gzip_logs_hit_exactly_but_never_extend() {
        let dir = tmp_dir("gzip");
        let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
        let text = faillog::to_string(&log).unwrap();
        let gz = faillog::gzip_compress(text.as_bytes());
        let log_path = dir.join("log.fslog.gz");
        fs::write(&log_path, &gz).unwrap();
        save(
            snapshot_path(&log_path),
            &view_of(&log),
            SourceInfo::of_bytes(&gz),
        )
        .unwrap();

        assert_eq!(probe(&log_path).unwrap(), Freshness::Exact);

        // Appending a second gzip member keeps the raw prefix intact,
        // but compressed tails must classify stale, not prefix.
        let mut grown = gz.clone();
        grown.extend_from_slice(&faillog::gzip_compress(b"junk\n"));
        fs::write(&log_path, &grown).unwrap();
        match probe(&log_path).unwrap() {
            Freshness::Stale { reason } => assert!(reason.contains("compressed"), "{reason}"),
            other => panic!("expected stale, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn index_mode_parses_and_displays() {
        assert_eq!("auto".parse::<IndexMode>(), Ok(IndexMode::Auto));
        assert_eq!("off".parse::<IndexMode>(), Ok(IndexMode::Off));
        assert_eq!("require".parse::<IndexMode>(), Ok(IndexMode::Require));
        assert_eq!(IndexMode::default(), IndexMode::Auto);
        assert_eq!(IndexMode::Require.to_string(), "require");
        let err = "yes".parse::<IndexMode>().unwrap_err();
        assert!(err.contains("auto, off, or require"), "{err}");
    }
}
