//! The `.fsidx` on-disk layout: a fixed 44-byte header followed by a
//! checksummed body that serializes everything a
//! [`failscope::FleetIndex`] exposes.
//!
//! All integers are little-endian; `f64`s are stored as IEEE-754 bit
//! patterns. The layout is documented field-by-field in `DESIGN.md` and
//! guarded by [`FORMAT_VERSION`]: readers reject any other version, so
//! layout changes must bump it.

use std::collections::BTreeMap;

use faillog::{crc32, FSIDX_MAGIC};
use failscope::{FleetIndex, ViewParts};
use failtypes::{
    Category, Date, FailureRecord, Generation, GpuSlot, Hours, NodeId, ObservationWindow,
    SoftwareLocus, SystemSpec, T2Category, T3Category,
};

use crate::bytes::{ByteReader, ByteWriter};
use crate::SourceInfo;

/// The `.fsidx` format version this build reads and writes.
pub const FORMAT_VERSION: u16 = 1;

/// Total size of the fixed header, in bytes.
pub const HEADER_LEN: usize = 44;

/// Decoded `.fsidx` header: everything needed to decide whether the
/// snapshot is still warm for a given log *without* touching the body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Format version (currently always [`FORMAT_VERSION`]).
    pub version: u16,
    /// Fingerprint of the source log's raw on-disk bytes at save time.
    pub source: SourceInfo,
    /// Body length in bytes (everything after the header).
    pub body_len: u64,
    /// CRC-32 of the body bytes.
    pub body_crc32: u32,
}

impl Header {
    /// Encodes the header, computing the trailing header CRC.
    pub(crate) fn encode(&self) -> [u8; HEADER_LEN] {
        let mut w = ByteWriter::with_capacity(HEADER_LEN);
        w.raw(&FSIDX_MAGIC);
        w.u16(self.version);
        w.u64(self.source.bytes);
        w.u32(self.source.crc32);
        w.u64(self.source.lines);
        w.u64(self.body_len);
        w.u32(self.body_crc32);
        let bytes = w.into_bytes();
        let mut out = [0u8; HEADER_LEN];
        out[..HEADER_LEN - 4].copy_from_slice(&bytes);
        out[HEADER_LEN - 4..].copy_from_slice(&crc32(&bytes).to_le_bytes());
        out
    }

    /// Decodes and fully validates a header prefix: magic, version,
    /// and the header's own CRC. Returns a human-readable reason on
    /// failure (the caller prefixes the path).
    pub(crate) fn decode(data: &[u8]) -> Result<Header, String> {
        if data.len() < HEADER_LEN {
            return Err(format!(
                "truncated header ({} of {HEADER_LEN} bytes)",
                data.len()
            ));
        }
        let stored = u32::from_le_bytes(data[HEADER_LEN - 4..HEADER_LEN].try_into().unwrap());
        let mut r = ByteReader::new(&data[..HEADER_LEN - 4]);
        let magic = r.take(FSIDX_MAGIC.len()).expect("sized above");
        if magic != FSIDX_MAGIC {
            return Err("bad magic (not a .fsidx snapshot)".to_string());
        }
        let version = r.u16().expect("sized above");
        if version != FORMAT_VERSION {
            return Err(format!(
                "unsupported format version {version} (this build reads {FORMAT_VERSION})"
            ));
        }
        if crc32(&data[..HEADER_LEN - 4]) != stored {
            return Err("header checksum mismatch".to_string());
        }
        let source = SourceInfo {
            bytes: r.u64().expect("sized above"),
            crc32: r.u32().expect("sized above"),
            lines: r.u64().expect("sized above"),
        };
        let body_len = r.u64().expect("sized above");
        let body_crc32 = r.u32().expect("sized above");
        Ok(Header {
            version,
            source,
            body_len,
            body_crc32,
        })
    }
}

fn locus_byte(locus: Option<SoftwareLocus>) -> u8 {
    match locus {
        None => 0,
        Some(l) => {
            let idx = SoftwareLocus::ALL
                .iter()
                .position(|&x| x == l)
                .expect("ALL is exhaustive");
            idx as u8 + 1
        }
    }
}

fn locus_from_byte(b: u8) -> Result<Option<SoftwareLocus>, String> {
    match b {
        0 => Ok(None),
        n => SoftwareLocus::ALL
            .get(n as usize - 1)
            .copied()
            .map(Some)
            .ok_or_else(|| format!("unknown software locus code {n}")),
    }
}

fn category_from_label(generation: Generation, label: &str) -> Result<Category, String> {
    match generation {
        Generation::Tsubame2 => label
            .parse::<T2Category>()
            .map(Category::T2)
            .map_err(|e| e.to_string()),
        Generation::Tsubame3 => label
            .parse::<T3Category>()
            .map(Category::T3)
            .map_err(|e| e.to_string()),
    }
}

fn encode_date(w: &mut ByteWriter, d: Date) {
    w.i32(d.year());
    w.u8(d.month().number());
    w.u8(d.day());
}

fn f64_array(r: &mut ByteReader<'_>, what: &str, count: usize) -> Result<Vec<f64>, String> {
    // One bounds check for the whole array, then a straight-line bulk
    // conversion — these arrays are the largest part of the body.
    let bytes = r
        .take(count.checked_mul(8).ok_or_else(|| format!("truncated body ({what})"))?)
        .map_err(|_| format!("truncated body ({what})"))?;
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("chunk of 8"))))
        .collect())
}

fn decode_date(r: &mut ByteReader<'_>) -> Result<Date, String> {
    let year = r.i32().map_err(|_| "truncated date")?;
    let month = r.u8().map_err(|_| "truncated date")?;
    let day = r.u8().map_err(|_| "truncated date")?;
    Date::new(year, month, day).ok_or_else(|| format!("invalid date {year}-{month}-{day}"))
}

/// Serializes every index surface of `index` into the body byte stream.
///
/// The category section doubles as the palette for per-record category
/// bytes: records store an index into it, in `BTreeMap` iteration
/// order. `f64` arrays (`ttrs_sorted`, `recoveries_sorted`,
/// `multi_gpu_times`) are stored raw so loading skips re-sorting.
pub(crate) fn encode_body(index: &dyn FleetIndex) -> Vec<u8> {
    let records = index.records();
    let n = records.len();
    // Rough per-record cost ~40 bytes + two raw f64 arrays.
    let mut w = ByteWriter::with_capacity(64 * n / 3 * 2 + 4096);

    w.u8(match index.generation() {
        Generation::Tsubame2 => 0,
        Generation::Tsubame3 => 1,
    });
    let spec = index.spec();
    w.str(spec.name());
    w.u32(spec.nodes());
    w.u8(spec.gpus_per_node());
    let window = index.window();
    encode_date(&mut w, window.start());
    encode_date(&mut w, window.end());

    // Category partition — and the palette records point into.
    let cats = index.category_indices();
    w.u16(cats.len() as u16);
    let mut palette: BTreeMap<Category, u8> = BTreeMap::new();
    for (i, (cat, indices)) in cats.iter().enumerate() {
        palette.insert(*cat, i as u8);
        w.str(cat.label());
        w.u64(indices.len() as u64);
        for &idx in indices {
            w.u32(idx);
        }
    }

    w.u64(n as u64);
    for rec in records {
        w.u32(rec.id());
        w.f64(rec.time().get());
        w.f64(rec.ttr().get());
        w.u8(palette[&rec.category()]);
        w.u32(rec.node().index());
        w.u8(locus_byte(rec.locus()));
        let gpus = rec.gpus();
        w.u8(gpus.len() as u8);
        for g in gpus {
            w.u8(g.index());
        }
    }

    for &t in index.ttrs_sorted() {
        w.f64(t);
    }
    for &t in index.recoveries_sorted() {
        w.f64(t);
    }

    let loci = index.locus_counts();
    w.u16(loci.len() as u16);
    for (locus, count) in loci {
        w.str(locus.label());
        w.u64(*count as u64);
    }

    let nodes = index.node_counts();
    w.u64(nodes.len() as u64);
    for (node, count) in nodes {
        w.u32(node.index());
        w.u64(*count);
    }

    let slots = index.slot_counts();
    w.u16(slots.len() as u16);
    for &c in slots {
        w.u64(c as u64);
    }

    let racks = index.rack_counts();
    w.u32(racks.len() as u32);
    for &c in racks {
        w.u64(c as u64);
    }

    w.u64(index.gpu_involvements() as u64);

    let multi = index.multi_gpu_times();
    w.u64(multi.len() as u64);
    for &t in multi {
        w.f64(t);
    }

    let months = index.month_ttrs();
    w.u32(months.len() as u32);
    for bucket in months {
        w.u32(bucket.len() as u32);
    }

    w.into_bytes()
}

/// Mirrors `faillog`'s header-reconstruction rule: logs that only name
/// the generation reuse its canonical spec, so a snapshot of such a log
/// rebuilds the *identical* spec object rather than a lookalike.
fn rebuild_spec(generation: Generation, name: &str, nodes: u32, gpus: u8) -> Result<SystemSpec, String> {
    let base = generation.spec();
    if nodes == base.nodes() && gpus == base.gpus_per_node() && name == base.name() {
        return Ok(base);
    }
    SystemSpec::builder(name)
        .nodes(nodes)
        .gpus_per_node(gpus)
        .build()
        .map_err(|e| e.to_string())
}

/// Decodes a body byte stream into [`ViewParts`].
///
/// Performs structural validation only (bounds, palette indices,
/// trailing garbage); cross-array consistency is enforced by
/// `StreamView::from_parts` downstream. Errors are human-readable
/// reasons without the path prefix.
pub(crate) fn decode_body(data: &[u8]) -> Result<ViewParts, String> {
    let trunc = |what: &str| format!("truncated body ({what})");
    let mut r = ByteReader::new(data);

    let generation = match r.u8().map_err(|_| trunc("generation"))? {
        0 => Generation::Tsubame2,
        1 => Generation::Tsubame3,
        g => return Err(format!("unknown generation code {g}")),
    };
    let name = r.str().map_err(|_| trunc("spec name"))?;
    let nodes = r.u32().map_err(|_| trunc("spec nodes"))?;
    let gpus = r.u8().map_err(|_| trunc("spec gpus"))?;
    let spec = rebuild_spec(generation, name, nodes, gpus)?;
    let start = decode_date(&mut r)?;
    let end = decode_date(&mut r)?;
    let window = ObservationWindow::new(start, end)
        .ok_or_else(|| "observation window end precedes start".to_string())?;

    let n_cats = r.u16().map_err(|_| trunc("category count"))? as usize;
    let mut category_indices: BTreeMap<Category, Vec<u32>> = BTreeMap::new();
    let mut palette: Vec<Category> = Vec::with_capacity(n_cats);
    for _ in 0..n_cats {
        let label = r.str().map_err(|_| trunc("category label"))?;
        let cat = category_from_label(generation, label)?;
        let count = r.u64().map_err(|_| trunc("category index count"))? as usize;
        if count > r.remaining() / 4 {
            return Err(trunc("category indices"));
        }
        let bytes = r.take(count * 4).map_err(|_| trunc("category indices"))?;
        let indices: Vec<u32> = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("chunk of 4")))
            .collect();
        if category_indices.insert(cat, indices).is_some() {
            return Err(format!("duplicate category `{label}` in palette"));
        }
        palette.push(cat);
    }

    let n = r.u64().map_err(|_| trunc("record count"))? as usize;
    // 30 bytes is the minimum encoded record size; a cheap overflow guard
    // so a corrupt count can't trigger a huge allocation.
    if n > r.remaining() / 30 {
        return Err(trunc("records"));
    }
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        // The fixed-width prefix (id, time, ttr, category, node, locus,
        // gpu count = 27 bytes) is pulled in one bounds check; only the
        // variable GPU-slot suffix needs a second read.
        let fixed = r.take(27).map_err(|_| trunc("record"))?;
        let id = u32::from_le_bytes(fixed[0..4].try_into().expect("4 bytes"));
        let time = f64::from_bits(u64::from_le_bytes(fixed[4..12].try_into().expect("8 bytes")));
        let ttr = f64::from_bits(u64::from_le_bytes(fixed[12..20].try_into().expect("8 bytes")));
        let cat_idx = fixed[20] as usize;
        let cat = *palette
            .get(cat_idx)
            .ok_or_else(|| format!("record category index {cat_idx} outside palette"))?;
        let node = u32::from_le_bytes(fixed[21..25].try_into().expect("4 bytes"));
        let locus = locus_from_byte(fixed[25])?;
        let n_gpus = fixed[26] as usize;
        let mut rec = FailureRecord::new(
            id,
            Hours::new(time),
            Hours::new(ttr),
            cat,
            NodeId::new(node),
        );
        if n_gpus > 0 {
            let slots = r.take(n_gpus).map_err(|_| trunc("record gpu slots"))?;
            rec = rec.with_gpus(slots.iter().map(|&b| GpuSlot::new(b)));
        }
        if let Some(l) = locus {
            rec = rec.with_locus(l);
        }
        records.push(rec);
    }

    let ttrs_sorted = f64_array(&mut r, "ttrs", n)?;
    let recoveries_sorted = f64_array(&mut r, "recoveries", n)?;

    let n_loci = r.u16().map_err(|_| trunc("locus count"))? as usize;
    let mut locus_counts: BTreeMap<SoftwareLocus, usize> = BTreeMap::new();
    for _ in 0..n_loci {
        let label = r.str().map_err(|_| trunc("locus label"))?;
        let locus = label
            .parse::<SoftwareLocus>()
            .map_err(|e| e.to_string())?;
        let count = r.u64().map_err(|_| trunc("locus tally"))? as usize;
        if locus_counts.insert(locus, count).is_some() {
            return Err(format!("duplicate locus `{label}`"));
        }
    }

    let n_nodes = r.u64().map_err(|_| trunc("node count"))? as usize;
    if n_nodes > r.remaining() / 12 {
        return Err(trunc("node tallies"));
    }
    let mut node_counts: BTreeMap<NodeId, u64> = BTreeMap::new();
    for _ in 0..n_nodes {
        let node = NodeId::new(r.u32().map_err(|_| trunc("node id"))?);
        let count = r.u64().map_err(|_| trunc("node tally"))?;
        if node_counts.insert(node, count).is_some() {
            return Err(format!("duplicate node tally for node {}", node.index()));
        }
    }

    let n_slots = r.u16().map_err(|_| trunc("slot count"))? as usize;
    let mut slot_counts = Vec::with_capacity(n_slots);
    for _ in 0..n_slots {
        slot_counts.push(r.u64().map_err(|_| trunc("slot tally"))? as usize);
    }

    let n_racks = r.u32().map_err(|_| trunc("rack count"))? as usize;
    if n_racks > r.remaining() / 8 {
        return Err(trunc("rack tallies"));
    }
    let mut rack_counts = Vec::with_capacity(n_racks);
    for _ in 0..n_racks {
        rack_counts.push(r.u64().map_err(|_| trunc("rack tally"))? as usize);
    }

    let gpu_involvements = r.u64().map_err(|_| trunc("gpu involvements"))? as usize;

    let n_multi = r.u64().map_err(|_| trunc("multi-gpu count"))? as usize;
    if n_multi > r.remaining() / 8 {
        return Err(trunc("multi-gpu times"));
    }
    let multi_gpu_times = f64_array(&mut r, "multi-gpu times", n_multi)?;

    let n_months = r.u32().map_err(|_| trunc("month count"))? as usize;
    let mut month_counts = Vec::with_capacity(n_months);
    for _ in 0..n_months {
        month_counts.push(r.u32().map_err(|_| trunc("month tally"))? as usize);
    }

    if r.remaining() != 0 {
        return Err(format!("{} trailing bytes after body", r.remaining()));
    }

    Ok(ViewParts {
        generation,
        spec,
        window,
        records,
        ttrs_sorted,
        recoveries_sorted,
        category_indices,
        locus_counts,
        node_counts,
        slot_counts,
        rack_counts,
        gpu_involvements,
        multi_gpu_times,
        month_counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> Header {
        Header {
            version: FORMAT_VERSION,
            source: SourceInfo {
                bytes: 123,
                crc32: 0xDEAD_BEEF,
                lines: 9,
            },
            body_len: 4567,
            body_crc32: 0x0BAD_F00D,
        }
    }

    #[test]
    fn header_round_trips_and_is_exactly_44_bytes() {
        let h = sample_header();
        let bytes = h.encode();
        assert_eq!(bytes.len(), HEADER_LEN);
        assert_eq!(&bytes[..FSIDX_MAGIC.len()], &FSIDX_MAGIC);
        assert_eq!(Header::decode(&bytes), Ok(h));
        // Extra trailing bytes (the body) don't confuse the decoder.
        let mut with_body = bytes.to_vec();
        with_body.extend_from_slice(b"body");
        assert_eq!(Header::decode(&with_body), Ok(h));
    }

    #[test]
    fn header_decode_rejects_corruption() {
        let good = sample_header().encode();

        let err = Header::decode(&good[..20]).unwrap_err();
        assert!(err.contains("truncated"), "{err}");

        let mut bad_magic = good;
        bad_magic[0] ^= 0xFF;
        let err = Header::decode(&bad_magic).unwrap_err();
        assert!(err.contains("magic"), "{err}");

        // A bumped version is reported as unsupported, not a checksum error.
        let mut v2 = sample_header();
        v2.version = FORMAT_VERSION + 1;
        let mut bytes = ByteWriter::with_capacity(HEADER_LEN);
        bytes.raw(&FSIDX_MAGIC);
        bytes.u16(v2.version);
        bytes.u64(v2.source.bytes);
        bytes.u32(v2.source.crc32);
        bytes.u64(v2.source.lines);
        bytes.u64(v2.body_len);
        bytes.u32(v2.body_crc32);
        let mut raw = bytes.into_bytes();
        let crc = faillog::crc32(&raw);
        raw.extend_from_slice(&crc.to_le_bytes());
        let err = Header::decode(&raw).unwrap_err();
        assert!(err.contains("version 2"), "{err}");

        // Any flipped payload byte trips the header CRC.
        let mut flipped = sample_header().encode();
        flipped[12] ^= 0x01;
        let err = Header::decode(&flipped).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
    }

    #[test]
    fn locus_bytes_cover_every_variant() {
        assert_eq!(locus_from_byte(0), Ok(None));
        for (i, &l) in SoftwareLocus::ALL.iter().enumerate() {
            let b = locus_byte(Some(l));
            assert_eq!(b as usize, i + 1);
            assert_eq!(locus_from_byte(b), Ok(Some(l)));
        }
        assert!(locus_from_byte(SoftwareLocus::ALL.len() as u8 + 1).is_err());
    }
}
