//! Minimal little-endian byte encoding for the `.fsidx` format.
//!
//! The format is hand-rolled (no serde) so the on-disk layout is an
//! explicit, versioned contract: every field below is written in
//! little-endian order exactly as documented in `DESIGN.md`.

/// Growable little-endian byte sink.
#[derive(Debug, Default)]
pub(crate) struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub(crate) fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `f64` values are stored as the IEEE-754 bit pattern, so NaN
    /// payloads and signed zeros round-trip bit-for-bit.
    pub(crate) fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub(crate) fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Length-prefixed UTF-8 string (`u32` byte length + bytes).
    pub(crate) fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.raw(s.as_bytes());
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian cursor over a byte slice.
///
/// Every read returns `Err(())` on underrun; the caller maps that to a
/// descriptive decode error. A trailing-garbage check is available via
/// [`ByteReader::remaining`].
#[derive(Debug)]
pub(crate) struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], ()> {
        if self.remaining() < n {
            return Err(());
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, ()> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, ()> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, ()> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, ()> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn i32(&mut self) -> Result<i32, ()> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// `f64` values travel as raw bit patterns (see [`ByteWriter::f64`]);
    /// the hot decode paths bulk-convert instead, so this scalar form
    /// only serves tests and one-off fields.
    #[cfg(test)]
    pub(crate) fn f64(&mut self) -> Result<f64, ()> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().unwrap(),
        )))
    }

    /// Length-prefixed UTF-8 string; rejects invalid UTF-8.
    pub(crate) fn str(&mut self) -> Result<&'a str, ()> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.take(len)?).map_err(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = ByteWriter::with_capacity(64);
        w.u8(0xAB);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(0x0123_4567_89AB_CDEF);
        w.i32(-12345);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.str("héllo");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8(), Ok(0xAB));
        assert_eq!(r.u16(), Ok(0xBEEF));
        assert_eq!(r.u32(), Ok(0xDEAD_BEEF));
        assert_eq!(r.u64(), Ok(0x0123_4567_89AB_CDEF));
        assert_eq!(r.i32(), Ok(-12345));
        let z = r.f64().unwrap();
        assert!(z == 0.0 && z.is_sign_negative());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.str(), Ok("héllo"));
        assert_eq!(r.remaining(), 0);
        assert!(r.u8().is_err());
    }

    #[test]
    fn reader_rejects_underruns_and_bad_utf8() {
        let mut r = ByteReader::new(&[0x01, 0x02]);
        assert!(r.u32().is_err());
        // A failed read must not advance the cursor.
        assert_eq!(r.u16(), Ok(0x0201));

        // Length prefix says 2 bytes, payload is invalid UTF-8.
        let mut w = ByteWriter::default();
        w.u32(2);
        w.raw(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        assert!(ByteReader::new(&bytes).str().is_err());

        // Length prefix overruns the buffer.
        let mut w = ByteWriter::default();
        w.u32(100);
        w.raw(b"short");
        let bytes = w.into_bytes();
        assert!(ByteReader::new(&bytes).str().is_err());
    }
}
