//! `failwatch` — streaming ingestion and online analytics over failure
//! streams, with drift alerting against a calibrated baseline.
//!
//! The batch pipeline (`faillog` → `failscope`) answers questions about
//! a *finished* log. This crate answers the operator's question: what
//! does the failure behaviour of the machine look like *right now*, one
//! record at a time, and when does it stop looking like the calibrated
//! models of the source paper (Tsubame 2.5/3.0, DSN 2021)?
//!
//! The subsystem is built from four layers:
//!
//! * **Sources** ([`EventSource`]): a tailed `failscope-log v1` file
//!   ([`TailSource`], optionally followed as it grows) or a calibrated
//!   simulation replay ([`SimSource`]) paced by a
//!   [`failsim::ReplayClock`] — real-time-scaled or fully accelerated.
//! * **Online state** ([`WatchState`]): an incremental
//!   [`failscope::StreamView`] index plus [`QuantileSketch`]es over
//!   gaps/TTRs, trailing-window samples, and per-category [`Ewma`]s.
//!   While the sketches are in exact mode every headline number is
//!   **bit-identical** to the batch pipeline; past the exactness
//!   capacity quantiles carry a small documented rank error.
//! * **Drift detection** ([`DriftDetector`]): edge-triggered checks of
//!   the live window against a [`Baseline`] (category-mix shift via
//!   total-variation distance, MTTR regression corroborated by a
//!   two-sample KS test, GPU-slot skew, multi-GPU bursts), emitting
//!   structured [`failtypes::Alert`]s as NDJSON.
//! * **The loop** ([`run`]): ties the three together behind
//!   `failctl watch`, rendering summaries through
//!   [`failstats::par_map_ordered`] so output is byte-identical at any
//!   thread count.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

mod drift;
mod estimators;
mod ingest;
mod sketch;
mod state;
mod watch;

pub use drift::{Baseline, DriftConfig, DriftDetector};
pub use estimators::{Ewma, RateWindow, WindowMean};
pub use ingest::{EventSource, SimSource, TailSource, WatchError};
pub use sketch::{QuantileSketch, DEFAULT_SKETCH_CAPACITY};
pub use state::{StateConfig, WatchState};
pub use watch::{
    render_summary, render_summary_sections, run, select_watch_sections, watch_section_by_id,
    WatchConfig, WatchOutcome, WatchSection, WATCH_SECTIONS,
};
