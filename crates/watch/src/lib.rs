//! `failwatch` — streaming ingestion and online analytics over failure
//! streams, with drift alerting against a calibrated baseline.
//!
//! The batch pipeline (`faillog` → `failscope`) answers questions about
//! a *finished* log. This crate answers the operator's question: what
//! does the failure behaviour of the machine look like *right now*, one
//! record at a time, and when does it stop looking like the calibrated
//! models of the source paper (Tsubame 2.5/3.0, DSN 2021)?
//!
//! The subsystem is built from four layers:
//!
//! * **Sources** ([`EventSource`]): a tailed `failscope-log v1` file
//!   ([`TailSource`], optionally followed as it grows) or a calibrated
//!   simulation replay ([`SimSource`]) paced by a
//!   [`failsim::ReplayClock`] — real-time-scaled or fully accelerated.
//! * **Online state** ([`WatchState`]): an incremental
//!   [`failscope::StreamView`] index plus [`QuantileSketch`]es over
//!   gaps/TTRs, trailing-window samples, and per-category [`Ewma`]s.
//!   While the sketches are in exact mode every headline number is
//!   **bit-identical** to the batch pipeline; past the exactness
//!   capacity quantiles carry a small documented rank error.
//! * **Drift detection** ([`DriftDetector`]): edge-triggered checks of
//!   the live window against a [`Baseline`] (category-mix shift via
//!   total-variation distance, MTTR regression corroborated by a
//!   two-sample KS test, GPU-slot skew, multi-GPU bursts), emitting
//!   structured [`failtypes::Alert`]s as NDJSON.
//! * **The loop** ([`run`]): ties the three together behind
//!   `failctl watch`, rendering summaries through
//!   [`failstats::par_map_ordered`] so output is byte-identical at any
//!   thread count.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

mod drift;
mod estimators;
mod ingest;
mod sketch;
mod state;
mod watch;

pub use drift::{Baseline, DriftConfig, DriftConfigBuilder, DriftDetector};
pub use estimators::{Ewma, RateWindow, WindowMean};
pub use ingest::{ChunkEnd, EventSource, SimSource, TailSource};
pub use sketch::{QuantileSketch, DEFAULT_SKETCH_CAPACITY};
pub use state::{StateConfig, StateConfigBuilder, WatchState};
pub use watch::{
    render_summary, render_summary_sections, run, select_watch_sections, watch_section_by_id,
    WatchConfig, WatchConfigBuilder, WatchOutcome, WatchSection, WATCH_SECTIONS,
};

/// One-stop imports for driving the watch loop.
///
/// Errors across the crate are the unified [`failtypes::Error`]
/// (re-exported here with its `Result` alias), so a whole
/// source → state → detector → loop pipeline propagates with `?`.
///
/// # Examples
///
/// ```
/// use failwatch::prelude::*;
///
/// let mut source = SimSource::new(
///     failsim::SystemModel::tsubame3(),
///     7,
///     failsim::ReplayClock::unpaced(),
/// )?;
/// let config = WatchConfig::builder().max_records(30).build()?;
/// let mut out = Vec::new();
/// let outcome = run(&mut source, None, &config, &mut out)?;
/// assert_eq!(outcome.records, 30);
/// # Ok::<(), failwatch::prelude::Error>(())
/// ```
pub mod prelude {
    pub use crate::drift::{Baseline, DriftConfig, DriftConfigBuilder, DriftDetector};
    pub use crate::ingest::{ChunkEnd, EventSource, SimSource, TailSource};
    pub use crate::sketch::{QuantileSketch, DEFAULT_SKETCH_CAPACITY};
    pub use crate::state::{StateConfig, StateConfigBuilder, WatchState};
    pub use crate::watch::{
        render_summary, render_summary_sections, run, select_watch_sections,
        watch_section_by_id, WatchConfig, WatchConfigBuilder, WatchOutcome, WatchSection,
        WATCH_SECTIONS,
    };
    pub use failtypes::{Error, Result};
}
