//! The watch loop: pull events from a source, feed the online state,
//! stream alerts, and render periodic summaries.
//!
//! Output is line-oriented so it can be piped: alerts are NDJSON
//! objects written the moment they fire, summaries are `#`-prefixed
//! text blocks refreshed every `refresh_every` records (and once at end
//! of stream). The summary sections are rendered through
//! [`failstats::par_map_ordered`], so the text is byte-identical at any
//! thread count — the same guarantee the batch report pipeline makes.

use std::io::Write;
use std::thread;
use std::time::Duration;

use failstats::par_map_ordered;
use failtypes::{Alert, StreamEvent};

use crate::drift::DriftDetector;
use crate::ingest::{EventSource, WatchError};
use crate::state::{StateConfig, WatchState};

/// Tuning for the watch loop itself (state and drift thresholds are
/// configured on [`StateConfig`] / [`crate::DriftConfig`]).
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// Online-state tuning (trailing window, sketch capacity, ...).
    pub state: StateConfig,
    /// Records between summary refreshes.
    pub refresh_every: usize,
    /// Sleep between polls when a followed source is idle.
    pub idle_sleep_ms: u64,
    /// Stop after this many *consecutive* idle polls (`None` = follow
    /// forever; the CLI uses a bound so smoke tests terminate).
    pub max_idle_polls: Option<u64>,
    /// Stop after ingesting this many records (`None` = run to EOF).
    pub max_records: Option<usize>,
    /// Worker threads for summary rendering (1 = serial; any value
    /// produces byte-identical output).
    pub threads: usize,
}

impl Default for WatchConfig {
    fn default() -> Self {
        WatchConfig {
            state: StateConfig::default(),
            refresh_every: 100,
            idle_sleep_ms: 200,
            max_idle_polls: None,
            max_records: None,
            threads: 1,
        }
    }
}

/// What a finished watch run observed.
#[derive(Debug)]
pub struct WatchOutcome {
    /// Records ingested.
    pub records: usize,
    /// Every alert fired, in order.
    pub alerts: Vec<Alert>,
    /// The final online state.
    pub state: WatchState,
}

/// Runs the watch loop over `source` until EOF (or the configured
/// record/idle bounds), writing NDJSON alerts and periodic summaries to
/// `out`.
///
/// `detector` is optional: without a baseline the loop still maintains
/// the full online state and summaries, it just cannot alert.
///
/// # Errors
///
/// Fails on stream parse errors, record validation/order errors, or
/// write failures on `out`.
pub fn run(
    source: &mut dyn EventSource,
    mut detector: Option<DriftDetector>,
    config: &WatchConfig,
    out: &mut dyn Write,
) -> Result<WatchOutcome, WatchError> {
    let mut state = WatchState::new(
        source.generation(),
        source.spec().clone(),
        source.window(),
        config.state.clone(),
    );
    writeln!(out, "# failwatch: {}", source.describe())?;
    if let Some(det) = &detector {
        writeln!(out, "# baseline: {}", det.baseline().name)?;
    }
    let mut alerts = Vec::new();
    let mut records = 0usize;
    let mut idle_polls = 0u64;
    let refresh = config.refresh_every.max(1);

    loop {
        match source.next_event()? {
            StreamEvent::Record(rec) => {
                idle_polls = 0;
                state.ingest(rec)?;
                records += 1;
                if let Some(det) = &mut detector {
                    for alert in det.evaluate(&state) {
                        writeln!(out, "{}", alert.to_ndjson())?;
                        alerts.push(alert);
                    }
                }
                if records.is_multiple_of(refresh) {
                    out.write_all(render_summary(&state, config.threads).as_bytes())?;
                }
                if config.max_records.is_some_and(|max| records >= max) {
                    break;
                }
            }
            StreamEvent::Idle => {
                idle_polls += 1;
                if config.max_idle_polls.is_some_and(|max| idle_polls >= max) {
                    break;
                }
                thread::sleep(Duration::from_millis(config.idle_sleep_ms));
            }
            StreamEvent::Eof => break,
        }
    }

    out.write_all(render_summary(&state, config.threads).as_bytes())?;
    writeln!(
        out,
        "# watch done: {records} records, {} alert(s)",
        alerts.len()
    )?;
    Ok(WatchOutcome {
        records,
        alerts,
        state,
    })
}

/// Renders the periodic summary block. Sections are computed via
/// [`par_map_ordered`], so the result is byte-identical at any
/// `threads` value.
pub fn render_summary(state: &WatchState, threads: usize) -> String {
    if state.is_empty() {
        return String::from("# summary: no records yet\n");
    }
    let sections = par_map_ordered(4, threads, |i| match i {
        0 => overview_section(state),
        1 => category_section(state),
        2 => slot_section(state),
        _ => month_section(state),
    });
    sections.concat()
}

fn fmt_opt(value: Option<f64>) -> String {
    value.map_or_else(|| String::from("n/a"), |v| format!("{v:.2}"))
}

fn overview_section(state: &WatchState) -> String {
    let mode = if state.sketches_exact() {
        "exact"
    } else {
        "sketched"
    };
    let mut s = format!(
        "# summary @ {:.1} h: {} records ({mode})\n",
        state.stream_time().unwrap_or(0.0),
        state.len()
    );
    s.push_str(&format!(
        "#   mtbf {} h | mean gap {} h | rate {}/h\n",
        fmt_opt(state.mtbf_hours()),
        fmt_opt(state.mean_gap_hours()),
        fmt_opt(state.rate_per_hour()),
    ));
    s.push_str(&format!(
        "#   mttr {} h (p50 {}, p90 {}) | window({}) mttr {} h\n",
        fmt_opt(state.mttr_hours()),
        fmt_opt(state.ttr_quantile(0.5)),
        fmt_opt(state.ttr_quantile(0.9)),
        state.window_len(),
        fmt_opt(state.window_ttr_mean()),
    ));
    s
}

fn category_section(state: &WatchState) -> String {
    let view = state.view();
    let n = view.len().max(1);
    let mut s = String::from("#   categories:");
    for (&category, idx) in view.category_indices() {
        s.push_str(&format!(
            " {category} {} ({:.0}%, ewma ttr {} h)",
            idx.len(),
            idx.len() as f64 * 100.0 / n as f64,
            fmt_opt(state.ewma_ttr(category)),
        ));
    }
    s.push('\n');
    s
}

fn slot_section(state: &WatchState) -> String {
    let counts = state.view().slot_counts();
    let (window_shares, involvements) = state.window_slot_shares();
    let mut s = String::from("#   gpu slots:");
    for (slot, &count) in counts.iter().enumerate() {
        let share = window_shares.get(slot).copied().unwrap_or(0.0);
        s.push_str(&format!(" {slot}:{count} (win {:.0}%)", share * 100.0));
    }
    s.push_str(&format!(
        " | window involvements {involvements} | multi-gpu total {}\n",
        state.view().multi_gpu_times().len()
    ));
    s
}

fn month_section(state: &WatchState) -> String {
    let view = state.view();
    let months = view.window().months();
    let buckets = view.month_ttrs();
    // Show the most recent non-empty buckets (up to four).
    let filled: Vec<(usize, &Vec<f64>)> = buckets
        .iter()
        .enumerate()
        .filter(|(_, b)| !b.is_empty())
        .collect();
    let mut s = String::from("#   months:");
    for &(i, bucket) in filled.iter().rev().take(4).rev() {
        let (year, month) = months[i];
        let mean = bucket.iter().sum::<f64>() / bucket.len() as f64;
        s.push_str(&format!(
            " {year}-{month} n={} mttr {mean:.1}",
            bucket.len()
        ));
    }
    if filled.is_empty() {
        s.push_str(" none");
    }
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::{Baseline, DriftConfig};
    use crate::ingest::SimSource;
    use failsim::{ReplayClock, SystemModel};
    use failtypes::AlertKind;

    fn watch_sim(
        seed: u64,
        inject: Option<(f64, f64)>,
        config: &WatchConfig,
    ) -> (WatchOutcome, String) {
        let mut src =
            SimSource::new(SystemModel::tsubame3(), seed, ReplayClock::unpaced()).unwrap();
        if let Some((factor, from)) = inject {
            src = src.with_mttr_injection(factor, from);
        }
        let baseline = Baseline::from_model(SystemModel::tsubame3(), 1).unwrap();
        let detector = DriftDetector::new(baseline, DriftConfig::default());
        let mut buf = Vec::new();
        let outcome = run(&mut src, Some(detector), config, &mut buf).unwrap();
        (outcome, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn injected_regression_alerts_and_streams_ndjson() {
        let (outcome, output) = watch_sim(1, Some((5.0, 0.5)), &WatchConfig::default());
        assert!(
            outcome
                .alerts
                .iter()
                .any(|a| a.kind == AlertKind::MttrRegression),
            "no regression alert: {:?}",
            outcome.alerts
        );
        assert!(output.contains("\"kind\":\"mttr_regression\""));
        assert!(output.contains("# watch done:"));
        assert_eq!(outcome.records, outcome.state.len());
    }

    #[test]
    fn summary_is_byte_identical_across_thread_counts() {
        let (_, state) = {
            let (outcome, _) = watch_sim(7, None, &WatchConfig::default());
            (outcome.records, outcome.state)
        };
        let serial = render_summary(&state, 1);
        for threads in [2, 4, 8] {
            assert_eq!(serial, render_summary(&state, threads), "threads={threads}");
        }
        assert!(serial.contains("# summary @"));
        assert!(serial.contains("categories:"));
    }

    #[test]
    fn max_records_bounds_the_run() {
        let config = WatchConfig {
            max_records: Some(25),
            ..WatchConfig::default()
        };
        let (outcome, _) = watch_sim(1, None, &config);
        assert_eq!(outcome.records, 25);
    }

    #[test]
    fn whole_stream_output_is_deterministic() {
        let config_a = WatchConfig {
            threads: 1,
            ..WatchConfig::default()
        };
        let config_b = WatchConfig {
            threads: 6,
            ..WatchConfig::default()
        };
        let (_, out_a) = watch_sim(3, Some((4.0, 0.6)), &config_a);
        let (_, out_b) = watch_sim(3, Some((4.0, 0.6)), &config_b);
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn empty_summary_renders() {
        let log = failsim::Simulator::new(SystemModel::tsubame3(), 1)
            .generate()
            .unwrap();
        let state = WatchState::for_log(&log, StateConfig::default());
        assert_eq!(render_summary(&state, 4), "# summary: no records yet\n");
    }
}
