//! The watch loop: pull events from a source, feed the online state,
//! stream alerts, and render periodic summaries.
//!
//! Output is line-oriented so it can be piped: alerts are NDJSON
//! objects written the moment they fire, summaries are `#`-prefixed
//! text blocks (or NDJSON section lines with
//! [`WatchConfig::json_summaries`]) refreshed every `refresh_every`
//! records (and once at end of stream). Summaries dispatch through the
//! typed [`WATCH_SECTIONS`] registry and render via
//! [`failstats::par_map_ordered`], so the output is byte-identical at
//! any thread count — the same guarantee the batch report pipeline
//! makes.

use std::io::Write;
use std::thread;
use std::time::Duration;

use failfilter::CompiledPredicate;
use failstats::par_map_ordered;
use failtrace::Collector;
use failtypes::{Alert, FailureRecord, JsonValue};

use crate::drift::DriftDetector;
use crate::ingest::{ChunkEnd, EventSource};
use crate::state::{StateConfig, WatchState};

/// One streaming summary section: a stable machine id, a human title,
/// and paired JSON/text renderers over the online [`WatchState`] — the
/// streaming mirror of `failscope::Section`.
#[derive(Debug, Clone, Copy)]
pub struct WatchSection {
    /// Stable identifier — the `--sections` / JSON `"id"` vocabulary.
    pub id: &'static str,
    /// Human-readable title, carried on every JSON line.
    pub title: &'static str,
    /// Structured renderer (`null` when the state is empty).
    pub json: fn(&WatchState) -> JsonValue,
    /// Plain-text renderer (one `#`-prefixed summary block line).
    pub text: fn(&WatchState) -> String,
}

/// The summary sections in print order.
pub const WATCH_SECTIONS: &[WatchSection] = &[
    WatchSection {
        id: "overview",
        title: "Stream overview",
        json: json_overview,
        text: overview_section,
    },
    WatchSection {
        id: "categories",
        title: "Category mix",
        json: json_categories,
        text: category_section,
    },
    WatchSection {
        id: "slots",
        title: "GPU slots",
        json: json_slots,
        text: slot_section,
    },
    WatchSection {
        id: "months",
        title: "Monthly repair times",
        json: json_months,
        text: month_section,
    },
];

/// Looks up one watch section by its stable id.
pub fn watch_section_by_id(id: &str) -> Option<&'static WatchSection> {
    WATCH_SECTIONS.iter().find(|s| s.id == id)
}

/// Resolves a comma-separated id list (e.g. `"overview,slots"`) against
/// the watch registry, preserving the requested order.
///
/// # Errors
///
/// Rejects unknown or empty selections with a
/// [`failtypes::Error::Args`] naming the known vocabulary.
pub fn select_watch_sections(spec: &str) -> failtypes::Result<Vec<&'static WatchSection>> {
    let known = || {
        WATCH_SECTIONS
            .iter()
            .map(|s| s.id)
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut out = Vec::new();
    for id in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        match watch_section_by_id(id) {
            Some(section) => out.push(section),
            None => {
                return Err(failtypes::Error::args(format!(
                    "unknown section `{id}` (known: {})",
                    known()
                )))
            }
        }
    }
    if out.is_empty() {
        return Err(failtypes::Error::args(format!(
            "no sections selected (known: {})",
            known()
        )));
    }
    Ok(out)
}

/// Tuning for the watch loop itself (state and drift thresholds are
/// configured on [`StateConfig`] / [`crate::DriftConfig`]).
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// Online-state tuning (trailing window, sketch capacity, ...).
    pub state: StateConfig,
    /// Records between summary refreshes.
    pub refresh_every: usize,
    /// Largest record chunk pulled from the source per
    /// [`EventSource::next_chunk`] call. Chunks are additionally
    /// clipped to the next refresh tick and the `max_records` bound, so
    /// summaries and record limits are honoured exactly; drift checks
    /// run once per chunk (partial chunks are flushed on idle/EOF, so
    /// chunking never delays follow-mode delivery or alerting on a
    /// stalled stream).
    pub ingest_chunk: usize,
    /// Sleep between polls when a followed source is idle.
    pub idle_sleep_ms: u64,
    /// Stop after this many *consecutive* idle polls (`None` = follow
    /// forever; the CLI uses a bound so smoke tests terminate).
    pub max_idle_polls: Option<u64>,
    /// Stop after ingesting this many records (`None` = run to EOF).
    pub max_records: Option<usize>,
    /// Worker threads for summary rendering (1 = serial; any value
    /// produces byte-identical output).
    pub threads: usize,
    /// Emit summaries as NDJSON section lines instead of `#` text.
    pub json_summaries: bool,
    /// Summary sections to render, in order (defaults to all of
    /// [`WATCH_SECTIONS`]).
    pub summary_sections: Vec<&'static WatchSection>,
    /// `--where` scope for the whole watch: records failing the
    /// predicate are dropped as each chunk is pulled, before they reach
    /// the online state, so the detector, summaries, and record bounds
    /// all see only matching records. NDJSON alerts raised under a
    /// filter carry its expression in a `"filter"` field.
    pub filter: Option<CompiledPredicate>,
    /// Optional trace collector; when set, the loop records the
    /// `watch.records_ingested`, `watch.alerts_raised`, and
    /// `watch.sketch_compactions` counters as it runs.
    pub trace: Option<Collector>,
}

impl Default for WatchConfig {
    fn default() -> Self {
        WatchConfig {
            state: StateConfig::default(),
            refresh_every: 100,
            ingest_chunk: 256,
            idle_sleep_ms: 200,
            max_idle_polls: None,
            max_records: None,
            threads: 1,
            json_summaries: false,
            summary_sections: WATCH_SECTIONS.iter().collect(),
            filter: None,
            trace: None,
        }
    }
}

impl WatchConfig {
    /// A validating builder starting from the defaults.
    pub fn builder() -> WatchConfigBuilder {
        WatchConfigBuilder::default()
    }
}

/// Validating builder for [`WatchConfig`].
///
/// [`build`](WatchConfigBuilder::build) rejects loop parameters the run
/// cannot honour (a zero refresh cadence or zero worker threads) with a
/// [`failtypes::Error::Config`] naming the offending knob.
///
/// # Examples
///
/// ```
/// use failwatch::WatchConfig;
///
/// let config = WatchConfig::builder().max_records(25).threads(4).build()?;
/// assert_eq!(config.max_records, Some(25));
/// assert!(WatchConfig::builder().threads(0).build().is_err());
/// # Ok::<(), failtypes::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct WatchConfigBuilder {
    config: WatchConfig,
}

impl WatchConfigBuilder {
    /// Online-state tuning (see [`StateConfig::builder`]).
    #[must_use]
    pub fn state(mut self, state: StateConfig) -> Self {
        self.config.state = state;
        self
    }

    /// Records between summary refreshes.
    #[must_use]
    pub fn refresh_every(mut self, records: usize) -> Self {
        self.config.refresh_every = records;
        self
    }

    /// Largest record chunk per source pull (see
    /// [`WatchConfig::ingest_chunk`]).
    #[must_use]
    pub fn ingest_chunk(mut self, records: usize) -> Self {
        self.config.ingest_chunk = records;
        self
    }

    /// Sleep between polls when a followed source is idle.
    #[must_use]
    pub fn idle_sleep_ms(mut self, millis: u64) -> Self {
        self.config.idle_sleep_ms = millis;
        self
    }

    /// Stop after this many consecutive idle polls.
    #[must_use]
    pub fn max_idle_polls(mut self, polls: u64) -> Self {
        self.config.max_idle_polls = Some(polls);
        self
    }

    /// Stop after ingesting this many records.
    #[must_use]
    pub fn max_records(mut self, records: usize) -> Self {
        self.config.max_records = Some(records);
        self
    }

    /// Worker threads for summary rendering.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Emit summaries as NDJSON section lines instead of `#` text.
    #[must_use]
    pub fn json_summaries(mut self, json: bool) -> Self {
        self.config.json_summaries = json;
        self
    }

    /// Summary sections to render, in order.
    #[must_use]
    pub fn summary_sections(mut self, sections: Vec<&'static WatchSection>) -> Self {
        self.config.summary_sections = sections;
        self
    }

    /// Scope the watch to records matching a compiled `--where`
    /// predicate (see [`WatchConfig::filter`]).
    #[must_use]
    pub fn filter(mut self, filter: CompiledPredicate) -> Self {
        self.config.filter = Some(filter);
        self
    }

    /// Attach a trace collector (see [`WatchConfig::trace`]).
    #[must_use]
    pub fn trace(mut self, trace: Collector) -> Self {
        self.config.trace = Some(trace);
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// [`failtypes::Error::Config`] (target `watch loop`) when the
    /// refresh cadence or thread count is zero, or no summary section
    /// is selected.
    pub fn build(self) -> failtypes::Result<WatchConfig> {
        let c = &self.config;
        if c.refresh_every == 0 {
            return Err(failtypes::Error::config(
                "watch loop",
                "summary refresh cadence must be at least 1 record",
            ));
        }
        if c.ingest_chunk == 0 {
            return Err(failtypes::Error::config(
                "watch loop",
                "ingest chunk must hold at least 1 record",
            ));
        }
        if c.threads == 0 {
            return Err(failtypes::Error::config(
                "watch loop",
                "summary rendering needs at least 1 worker thread",
            ));
        }
        if c.summary_sections.is_empty() {
            return Err(failtypes::Error::config(
                "watch loop",
                "at least one summary section must be selected",
            ));
        }
        Ok(self.config)
    }
}

/// What a finished watch run observed.
#[derive(Debug)]
pub struct WatchOutcome {
    /// Records ingested.
    pub records: usize,
    /// Every alert fired, in order.
    pub alerts: Vec<Alert>,
    /// The final online state.
    pub state: WatchState,
}

/// Runs the watch loop over `source` until EOF (or the configured
/// record/idle bounds), writing NDJSON alerts and periodic summaries to
/// `out`.
///
/// `detector` is optional: without a baseline the loop still maintains
/// the full online state and summaries, it just cannot alert.
///
/// # Errors
///
/// Fails on stream parse errors, record validation/order errors, or
/// write failures on `out`.
pub fn run(
    source: &mut dyn EventSource,
    mut detector: Option<DriftDetector>,
    config: &WatchConfig,
    out: &mut dyn Write,
) -> failtypes::Result<WatchOutcome> {
    let mut state = WatchState::new(
        source.generation(),
        source.spec().clone(),
        source.window(),
        config.state.clone(),
    );
    // In JSON mode the whole stream is machine-readable NDJSON (alerts
    // plus section lines), so the `#` banner/footer lines are skipped.
    if !config.json_summaries {
        writeln!(out, "# failwatch: {}", source.describe())?;
        if let Some(det) = &detector {
            writeln!(out, "# baseline: {}", det.baseline().name)?;
        }
        if let Some(pred) = &config.filter {
            writeln!(out, "# filter: {}", pred.source())?;
        }
    }
    // Predicate evaluation needs the source's system context.
    let filter_spec = source.spec().clone();
    let filter_window = source.window();
    let mut alerts = Vec::new();
    let mut records = 0usize;
    let mut idle_polls = 0u64;
    let refresh = config.refresh_every.max(1);
    // One reusable chunk buffer for the whole run; records move from
    // the source through it into the state without cloning.
    let mut chunk: Vec<FailureRecord> = Vec::with_capacity(config.ingest_chunk.max(1));

    loop {
        // Clip the chunk to the next refresh tick and the record bound
        // so both are honoured exactly, as per-record ingestion did.
        let mut limit = config.ingest_chunk.max(1);
        limit = limit.min(refresh - records % refresh);
        if let Some(max) = config.max_records {
            if records >= max {
                break;
            }
            limit = limit.min(max - records);
        }
        chunk.clear();
        let end = source.next_chunk(limit, &mut chunk)?;

        // The idle counter tracks the *source*: a pull that produced
        // records resets it even when the filter drops them all.
        if !chunk.is_empty() {
            idle_polls = 0;
        }
        if let Some(pred) = &config.filter {
            let pulled = chunk.len();
            chunk.retain(|r| pred.matches(r, &filter_spec, filter_window));
            if let Some(trace) = &config.trace {
                trace.incr("filter.records_in", pulled as u64);
                trace.incr("filter.records_kept", chunk.len() as u64);
            }
        }

        if !chunk.is_empty() {
            let ingested = state.ingest_batch(chunk.drain(..))?;
            records += ingested;
            if let Some(trace) = &config.trace {
                trace.incr("watch.records_ingested", ingested as u64);
            }
            // Drift checks run once per chunk — the chunk boundary is
            // where the trailing windows have genuinely new content.
            if let Some(det) = &mut detector {
                for alert in det.evaluate(&state) {
                    let filter_tag = config.filter.as_ref().map(CompiledPredicate::source);
                    writeln!(out, "{}", alert.to_ndjson_with(filter_tag))?;
                    if let Some(trace) = &config.trace {
                        trace.incr("watch.alerts_raised", 1);
                    }
                    alerts.push(alert);
                }
            }
            if records.is_multiple_of(refresh) {
                state.materialize();
                out.write_all(config_summary(&state, config).as_bytes())?;
            }
            if config.max_records.is_some_and(|max| records >= max) {
                break;
            }
        }

        match end {
            ChunkEnd::More => {}
            ChunkEnd::Idle => {
                idle_polls += 1;
                if config.max_idle_polls.is_some_and(|max| idle_polls >= max) {
                    break;
                }
                thread::sleep(Duration::from_millis(config.idle_sleep_ms));
            }
            ChunkEnd::Eof => break,
        }
    }

    state.materialize();
    out.write_all(config_summary(&state, config).as_bytes())?;
    if let Some(trace) = &config.trace {
        trace.incr("watch.sketch_compactions", state.sketch_compactions());
    }
    if !config.json_summaries {
        writeln!(
            out,
            "# watch done: {records} records, {} alert(s)",
            alerts.len()
        )?;
    }
    Ok(WatchOutcome {
        records,
        alerts,
        state,
    })
}

fn config_summary(state: &WatchState, config: &WatchConfig) -> String {
    render_summary_sections(
        state,
        &config.summary_sections,
        config.threads,
        config.json_summaries,
    )
}

/// Renders the full periodic summary block as text — byte-identical at
/// any `threads` value.
pub fn render_summary(state: &WatchState, threads: usize) -> String {
    let sections: Vec<&WatchSection> = WATCH_SECTIONS.iter().collect();
    render_summary_sections(state, &sections, threads, false)
}

/// Renders a summary section selection via [`par_map_ordered`] (so the
/// output is byte-identical at any `threads` value), either as the
/// `#`-prefixed text block or as NDJSON `{"id","title","data"}` lines.
///
/// An empty state renders as `"# summary: no records yet\n"` in text
/// mode and as one `"data":null` line per section in JSON mode.
pub fn render_summary_sections(
    state: &WatchState,
    sections: &[&WatchSection],
    threads: usize,
    json: bool,
) -> String {
    if state.is_empty() && !json {
        return String::from("# summary: no records yet\n");
    }
    par_map_ordered(sections.len(), threads, |i| {
        let section = sections[i];
        if json {
            let data = if state.is_empty() {
                JsonValue::Null
            } else {
                (section.json)(state)
            };
            let mut line = JsonValue::object()
                .field("id", section.id)
                .field("title", section.title)
                .field("data", data)
                .build()
                .render();
            line.push('\n');
            line
        } else {
            (section.text)(state)
        }
    })
    .concat()
}

fn json_overview(state: &WatchState) -> JsonValue {
    JsonValue::object()
        .field("stream_hours", state.stream_time())
        .field("records", state.len())
        .field("exact", state.sketches_exact())
        .field("mtbf_hours", state.mtbf_hours())
        .field("mean_gap_hours", state.mean_gap_hours())
        .field("rate_per_hour", state.rate_per_hour())
        .field("mttr_hours", state.mttr_hours())
        .field("ttr_p50_hours", state.ttr_quantile(0.5))
        .field("ttr_p90_hours", state.ttr_quantile(0.9))
        .field("window_records", state.window_len())
        .field("window_mttr_hours", state.window_ttr_mean())
        .build()
}

fn json_categories(state: &WatchState) -> JsonValue {
    let view = state.view();
    let n = view.len().max(1);
    JsonValue::Array(
        view.category_indices()
            .iter()
            .map(|(&category, idx)| {
                JsonValue::object()
                    .field("category", category.label())
                    .field("count", idx.len())
                    .field("fraction", idx.len() as f64 / n as f64)
                    .field("ewma_ttr_hours", state.ewma_ttr(category))
                    .build()
            })
            .collect(),
    )
}

fn json_slots(state: &WatchState) -> JsonValue {
    let counts = state.view().slot_counts();
    let (window_shares, involvements) = state.window_slot_shares();
    JsonValue::object()
        .field(
            "slots",
            JsonValue::Array(
                counts
                    .iter()
                    .enumerate()
                    .map(|(slot, &count)| {
                        JsonValue::object()
                            .field("slot", slot)
                            .field("count", count)
                            .field(
                                "window_share",
                                window_shares.get(slot).copied().unwrap_or(0.0),
                            )
                            .build()
                    })
                    .collect(),
            ),
        )
        .field("window_involvements", involvements)
        .field("multi_gpu_total", state.view().multi_gpu_times().len())
        .build()
}

fn json_months(state: &WatchState) -> JsonValue {
    let view = state.view();
    let months = view.window().months();
    JsonValue::Array(
        view.month_ttrs()
            .iter()
            .enumerate()
            .filter(|(_, bucket)| !bucket.is_empty())
            .map(|(i, bucket)| {
                let (year, month) = months[i];
                JsonValue::object()
                    .field("year", year)
                    .field("month", month.number())
                    .field("n", bucket.len())
                    .field(
                        "mttr_hours",
                        bucket.iter().sum::<f64>() / bucket.len() as f64,
                    )
                    .build()
            })
            .collect(),
    )
}

fn fmt_opt(value: Option<f64>) -> String {
    value.map_or_else(|| String::from("n/a"), |v| format!("{v:.2}"))
}

fn overview_section(state: &WatchState) -> String {
    let mode = if state.sketches_exact() {
        "exact"
    } else {
        "sketched"
    };
    let mut s = format!(
        "# summary @ {:.1} h: {} records ({mode})\n",
        state.stream_time().unwrap_or(0.0),
        state.len()
    );
    s.push_str(&format!(
        "#   mtbf {} h | mean gap {} h | rate {}/h\n",
        fmt_opt(state.mtbf_hours()),
        fmt_opt(state.mean_gap_hours()),
        fmt_opt(state.rate_per_hour()),
    ));
    s.push_str(&format!(
        "#   mttr {} h (p50 {}, p90 {}) | window({}) mttr {} h\n",
        fmt_opt(state.mttr_hours()),
        fmt_opt(state.ttr_quantile(0.5)),
        fmt_opt(state.ttr_quantile(0.9)),
        state.window_len(),
        fmt_opt(state.window_ttr_mean()),
    ));
    s
}

fn category_section(state: &WatchState) -> String {
    let view = state.view();
    let n = view.len().max(1);
    let mut s = String::from("#   categories:");
    for (&category, idx) in view.category_indices() {
        s.push_str(&format!(
            " {category} {} ({:.0}%, ewma ttr {} h)",
            idx.len(),
            idx.len() as f64 * 100.0 / n as f64,
            fmt_opt(state.ewma_ttr(category)),
        ));
    }
    s.push('\n');
    s
}

fn slot_section(state: &WatchState) -> String {
    let counts = state.view().slot_counts();
    let (window_shares, involvements) = state.window_slot_shares();
    let mut s = String::from("#   gpu slots:");
    for (slot, &count) in counts.iter().enumerate() {
        let share = window_shares.get(slot).copied().unwrap_or(0.0);
        s.push_str(&format!(" {slot}:{count} (win {:.0}%)", share * 100.0));
    }
    s.push_str(&format!(
        " | window involvements {involvements} | multi-gpu total {}\n",
        state.view().multi_gpu_times().len()
    ));
    s
}

fn month_section(state: &WatchState) -> String {
    let view = state.view();
    let months = view.window().months();
    let buckets = view.month_ttrs();
    // Show the most recent non-empty buckets (up to four).
    let filled: Vec<(usize, &Vec<f64>)> = buckets
        .iter()
        .enumerate()
        .filter(|(_, b)| !b.is_empty())
        .collect();
    let mut s = String::from("#   months:");
    for &(i, bucket) in filled.iter().rev().take(4).rev() {
        let (year, month) = months[i];
        let mean = bucket.iter().sum::<f64>() / bucket.len() as f64;
        s.push_str(&format!(
            " {year}-{month} n={} mttr {mean:.1}",
            bucket.len()
        ));
    }
    if filled.is_empty() {
        s.push_str(" none");
    }
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::{Baseline, DriftConfig};
    use crate::ingest::SimSource;
    use failsim::{ReplayClock, SystemModel};
    use failtypes::AlertKind;

    fn watch_sim(
        seed: u64,
        inject: Option<(f64, f64)>,
        config: &WatchConfig,
    ) -> (WatchOutcome, String) {
        let mut src =
            SimSource::new(SystemModel::tsubame3(), seed, ReplayClock::unpaced()).unwrap();
        if let Some((factor, from)) = inject {
            src = src.with_mttr_injection(factor, from);
        }
        let baseline = Baseline::from_model(SystemModel::tsubame3(), 1).unwrap();
        let detector = DriftDetector::new(baseline, DriftConfig::default());
        let mut buf = Vec::new();
        let outcome = run(&mut src, Some(detector), config, &mut buf).unwrap();
        (outcome, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn injected_regression_alerts_and_streams_ndjson() {
        let (outcome, output) = watch_sim(1, Some((5.0, 0.5)), &WatchConfig::default());
        assert!(
            outcome
                .alerts
                .iter()
                .any(|a| a.kind == AlertKind::MttrRegression),
            "no regression alert: {:?}",
            outcome.alerts
        );
        assert!(output.contains("\"kind\":\"mttr_regression\""));
        assert!(output.contains("# watch done:"));
        assert_eq!(outcome.records, outcome.state.len());
    }

    #[test]
    fn summary_is_byte_identical_across_thread_counts() {
        let (_, state) = {
            let (outcome, _) = watch_sim(7, None, &WatchConfig::default());
            (outcome.records, outcome.state)
        };
        let serial = render_summary(&state, 1);
        for threads in [2, 4, 8] {
            assert_eq!(serial, render_summary(&state, threads), "threads={threads}");
        }
        assert!(serial.contains("# summary @"));
        assert!(serial.contains("categories:"));
    }

    #[test]
    fn max_records_bounds_the_run() {
        let config = WatchConfig::builder().max_records(25).build().unwrap();
        let (outcome, _) = watch_sim(1, None, &config);
        assert_eq!(outcome.records, 25);
    }

    #[test]
    fn chunk_size_preserves_bounds_and_final_state() {
        // max_records is honoured exactly at any chunk size (chunks are
        // clipped to the bound, never overshooting).
        for chunk in [1, 7, 64, 1024] {
            let config = WatchConfig::builder()
                .ingest_chunk(chunk)
                .max_records(25)
                .build()
                .unwrap();
            let (outcome, _) = watch_sim(1, None, &config);
            assert_eq!(outcome.records, 25, "chunk={chunk}");
        }
        // The final online state of a full replay is identical at any
        // chunk size — chunking changes when drift checks run, never
        // what was ingested. ingest_chunk(1) is the per-record path.
        let base = {
            let config = WatchConfig::builder().ingest_chunk(1).build().unwrap();
            watch_sim(7, None, &config).0.state
        };
        for chunk in [3, 100, 4096] {
            let config = WatchConfig::builder().ingest_chunk(chunk).build().unwrap();
            let state = watch_sim(7, None, &config).0.state;
            assert_eq!(state, base, "chunk={chunk}");
        }
    }

    #[test]
    fn whole_stream_output_is_deterministic() {
        let config_a = WatchConfig::builder().threads(1).build().unwrap();
        let config_b = WatchConfig::builder().threads(6).build().unwrap();
        let (_, out_a) = watch_sim(3, Some((4.0, 0.6)), &config_a);
        let (_, out_b) = watch_sim(3, Some((4.0, 0.6)), &config_b);
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn empty_summary_renders() {
        let log = failsim::Simulator::new(SystemModel::tsubame3(), 1)
            .generate()
            .unwrap();
        let state = WatchState::for_log(&log, StateConfig::default());
        assert_eq!(render_summary(&state, 4), "# summary: no records yet\n");
        // JSON mode still emits one line per section, with null data.
        let sections: Vec<&WatchSection> = WATCH_SECTIONS.iter().collect();
        let json = render_summary_sections(&state, &sections, 2, true);
        assert_eq!(json.lines().count(), WATCH_SECTIONS.len());
        assert!(json.starts_with(r#"{"id":"overview","title":"Stream overview","data":null}"#));
    }

    #[test]
    fn json_summaries_are_thread_identical_ndjson() {
        let (outcome, _) = watch_sim(7, None, &WatchConfig::default());
        let sections: Vec<&WatchSection> = WATCH_SECTIONS.iter().collect();
        let serial = render_summary_sections(&outcome.state, &sections, 1, true);
        for threads in [2, 4, 8] {
            assert_eq!(
                serial,
                render_summary_sections(&outcome.state, &sections, threads, true),
                "threads={threads}"
            );
        }
        let lines: Vec<&str> = serial.lines().collect();
        assert_eq!(lines.len(), WATCH_SECTIONS.len());
        for (line, section) in lines.iter().zip(WATCH_SECTIONS) {
            assert!(line.starts_with(&format!(r#"{{"id":"{}","#, section.id)), "{line}");
        }
        assert!(serial.contains(r#""mtbf_hours":"#));
    }

    #[test]
    fn watch_section_selection() {
        let picked = select_watch_sections("slots, overview").expect("valid ids");
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].id, "slots");
        assert_eq!(picked[1].id, "overview");
        assert!(select_watch_sections("bogus").is_err());
        assert!(select_watch_sections("").is_err());

        let (outcome, _) = watch_sim(7, None, &WatchConfig::default());
        let text = render_summary_sections(&outcome.state, &picked, 2, false);
        assert!(text.contains("gpu slots:"));
        assert!(text.contains("# summary @"));
        assert!(!text.contains("categories:"));
    }

    #[test]
    fn builders_reject_degenerate_configurations() {
        assert!(WatchConfig::builder().build().is_ok());
        for bad in [
            WatchConfig::builder().refresh_every(0).build(),
            WatchConfig::builder().ingest_chunk(0).build(),
            WatchConfig::builder().threads(0).build(),
            WatchConfig::builder().summary_sections(Vec::new()).build(),
        ] {
            let err = bad.unwrap_err();
            assert!(matches!(err, failtypes::Error::Config { .. }), "{err}");
            assert!(err.to_string().starts_with("invalid watch loop configuration:"));
        }
        assert!(StateConfig::builder().window(0).build().is_err());
        assert!(StateConfig::builder().sketch_capacity(0).build().is_err());
        assert!(StateConfig::builder().ewma_alpha(1.5).build().is_err());
        assert!(StateConfig::builder().rate_window_hours(f64::NAN).build().is_err());
        let drift = crate::DriftConfig::builder();
        assert!(drift.clone().ks_alpha(1.0).build().is_err());
        assert!(drift.clone().mttr_ratio(0.9).build().is_err());
        assert!(drift.clone().burst_window_hours(0.0).build().is_err());
        assert!(drift.min_window(5).build().is_ok());
    }

    #[test]
    fn filter_scopes_the_state_and_tags_alerts() {
        let pred = failfilter::compile("category == gpu").unwrap();
        let trace = Collector::new();
        let config = WatchConfig::builder()
            .filter(pred.clone())
            .trace(trace.clone())
            .build()
            .unwrap();
        let (outcome, output) = watch_sim(1, Some((5.0, 0.1)), &config);
        // The detector and state only ever saw matching records.
        assert!(outcome.records > 0);
        assert!(outcome
            .state
            .view()
            .records()
            .iter()
            .all(|r| r.category().is_gpu()));
        assert!(output.contains("# filter: category == gpu"), "{output}");
        for alert in &outcome.alerts {
            assert!(output.contains(&alert.to_ndjson_with(Some("category == gpu"))));
        }
        // The pushdown counters tally the whole stream.
        let records_in = trace.counter("filter.records_in");
        let kept = trace.counter("filter.records_kept");
        assert_eq!(kept, outcome.records as u64);
        assert!(records_in > kept);
        // Unfiltered run sees the full stream.
        let (full, _) = watch_sim(1, Some((5.0, 0.1)), &WatchConfig::default());
        assert_eq!(records_in, full.records as u64);
    }

    #[test]
    fn match_all_filter_only_adds_the_banner_and_alert_tags() {
        let pred = failfilter::compile("ttr >= 0").unwrap();
        let config = WatchConfig::builder().filter(pred).build().unwrap();
        let (filtered, out_f) = watch_sim(3, Some((4.0, 0.6)), &config);
        let (plain, out_p) = watch_sim(3, Some((4.0, 0.6)), &WatchConfig::default());
        assert_eq!(filtered.records, plain.records);
        assert_eq!(filtered.alerts, plain.alerts);
        assert_eq!(filtered.state, plain.state);
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("# filter:"))
                .map(|l| l.replace(",\"filter\":\"ttr >= 0\"}", "}"))
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&out_f), strip(&out_p));
        assert_ne!(out_f, out_p);
    }

    #[test]
    fn json_mode_suppresses_the_filter_banner() {
        let pred = failfilter::compile("ttr >= 0").unwrap();
        let config = WatchConfig::builder()
            .filter(pred)
            .json_summaries(true)
            .build()
            .unwrap();
        let (_, output) = watch_sim(1, None, &config);
        assert!(output.lines().all(|l| l.starts_with('{')), "{output}");
    }

    #[test]
    fn traced_run_counts_records_and_alerts() {
        let trace = Collector::new();
        let config = WatchConfig::builder()
            .max_records(120)
            .trace(trace.clone())
            .build()
            .unwrap();
        let (outcome, _) = watch_sim(1, Some((5.0, 0.1)), &config);
        assert_eq!(trace.counter("watch.records_ingested"), outcome.records as u64);
        assert_eq!(trace.counter("watch.alerts_raised"), outcome.alerts.len() as u64);
        assert_eq!(
            trace.counter("watch.sketch_compactions"),
            outcome.state.sketch_compactions()
        );
    }

    #[test]
    fn json_summary_config_streams_ndjson_sections() {
        let config = WatchConfig::builder().json_summaries(true).build().unwrap();
        let (outcome, output) = watch_sim(1, None, &config);
        assert!(outcome.records > 0);
        assert!(output.contains(r#"{"id":"overview","title":"Stream overview","data":{"#));
        // JSON mode is pure NDJSON: no `#` banner/summary/footer lines.
        assert!(output.lines().all(|l| l.starts_with('{')), "{output}");
    }
}
