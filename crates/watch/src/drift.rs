//! Drift detection: comparing live-window behaviour to a calibrated
//! baseline and emitting structured [`Alert`]s.
//!
//! The [`Baseline`] captures what "normal" looks like — category mix,
//! MTTR with its full TTR sample, GPU-slot involvement shares —
//! either from a calibrated `failsim` model (simulate once, summarize)
//! or from a reference log. The [`DriftDetector`] then evaluates four
//! conditions against the trailing window of the live stream:
//!
//! * **category-mix shift** — total-variation distance between the
//!   window's category fractions and the baseline mix, triggered only
//!   beyond a sampling-noise allowance (a Bretagnolle–Huber–Carol
//!   concentration bound at the 1% level), so a small window drawn
//!   from the baseline itself stays quiet;
//! * **MTTR regression** — windowed mean TTR exceeding the baseline
//!   MTTR by a configurable ratio, corroborated by a two-sample KS test
//!   of the window sample against the baseline TTR sample (severity
//!   escalates to critical when the KS test rejects);
//! * **slot-skew anomaly** — a GPU slot's windowed involvement share
//!   moving away from its baseline share by more than a threshold;
//! * **multi-GPU burst** — too many multi-GPU failures inside a
//!   trailing excitation window (the paper's Fig. 8 clustering, live).
//!
//! Alerts are **edge-triggered**: a condition fires once when it
//! becomes true and re-arms only after it has observed false again, so
//! a persistently degraded stream does not spam one alert per record.
//! A severity escalation (the KS test starting to reject while the
//! ratio condition still holds) counts as a fresh edge and fires once
//! more.

use std::collections::BTreeMap;

use failscope::LogView;
use failsim::{Simulator, SystemModel};
use failstats::ks_test_two_sample;
use failtypes::{Alert, AlertKind, AlertSeverity, Category, FailureLog};

use crate::state::WatchState;

/// What "normal" looks like: the reference the live window is compared
/// against.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// Human-readable origin (model or log name).
    pub name: String,
    /// Category fractions of the reference log.
    pub category_fractions: Vec<(Category, f64)>,
    /// Mean repair duration, hours.
    pub mttr_hours: f64,
    /// Full repair-duration sample, sorted ascending (KS reference).
    pub ttr_sample: Vec<f64>,
    /// Per-slot involvement shares, indexed by slot number.
    pub slot_shares: Vec<f64>,
    /// System MTBF of the reference, hours.
    pub mtbf_hours: f64,
}

impl Baseline {
    /// Builds a baseline by simulating `model` once with `seed` and
    /// summarizing the calibrated log.
    ///
    /// # Errors
    ///
    /// Propagates simulator validation failure (cannot happen for the
    /// stock calibrated models).
    pub fn from_model(model: SystemModel, seed: u64) -> failtypes::Result<Self> {
        let log = Simulator::new(model, seed).generate()?;
        Ok(Baseline::from_log(&log))
    }

    /// Summarizes an existing reference log into a baseline.
    pub fn from_log(log: &FailureLog) -> Self {
        let view = LogView::new(log);
        let n = view.len().max(1);
        let category_fractions = view
            .category_indices()
            .iter()
            .map(|(&c, idx)| (c, idx.len() as f64 / n as f64))
            .collect();
        let ttr_sample = view.ttrs_sorted().to_vec();
        let mttr_hours = if ttr_sample.is_empty() {
            0.0
        } else {
            ttr_sample.iter().sum::<f64>() / ttr_sample.len() as f64
        };
        let involvements: usize = view.slot_counts().iter().sum();
        let slot_shares = view
            .slot_counts()
            .iter()
            .map(|&k| {
                if involvements == 0 {
                    0.0
                } else {
                    k as f64 / involvements as f64
                }
            })
            .collect();
        Baseline {
            name: log.spec().name().to_string(),
            category_fractions,
            mttr_hours,
            ttr_sample,
            slot_shares,
            mtbf_hours: log.window().duration().get() / n as f64,
        }
    }

    /// Baseline fraction for one category (zero when absent).
    pub fn fraction(&self, category: Category) -> f64 {
        self.category_fractions
            .iter()
            .find(|&&(c, _)| c == category)
            .map_or(0.0, |&(_, f)| f)
    }
}

/// Thresholds for the drift checks.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Minimum records in the trailing window before any check runs.
    pub min_window: usize,
    /// Total-variation distance on category fractions, **beyond the
    /// sampling-noise allowance**, that triggers a mix-shift alert. The
    /// allowance `sqrt((k ln 2 + ln 100) / 2n)` (BHC bound at the 1%
    /// level, `k` categories, `n` window records) is added to this
    /// margin, so the default stays quiet on clean windows of any size.
    pub mix_threshold: f64,
    /// Windowed-MTTR / baseline-MTTR ratio that triggers a regression
    /// alert. Windowed means over heavy-tailed repair times fluctuate
    /// up to ~1.7x on streams drawn from the baseline itself, so the
    /// default keeps a margin above that.
    pub mttr_ratio: f64,
    /// Significance level for the corroborating KS test; rejection
    /// (`p < ks_alpha`) escalates the MTTR alert to critical.
    pub ks_alpha: f64,
    /// Absolute change in a slot's involvement share that triggers a
    /// skew alert.
    pub slot_share_threshold: f64,
    /// Minimum windowed involvements before the slot check runs.
    pub min_involvements: usize,
    /// Multi-GPU failures within [`burst_window_hours`] that trigger a
    /// burst alert.
    ///
    /// [`burst_window_hours`]: DriftConfig::burst_window_hours
    pub burst_count: usize,
    /// Span of the burst excitation window, hours.
    pub burst_window_hours: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            min_window: 20,
            mix_threshold: 0.15,
            mttr_ratio: 2.0,
            ks_alpha: 0.05,
            slot_share_threshold: 0.15,
            min_involvements: 10,
            burst_count: 3,
            burst_window_hours: 24.0,
        }
    }
}

impl DriftConfig {
    /// A validating builder starting from the defaults.
    pub fn builder() -> DriftConfigBuilder {
        DriftConfigBuilder::default()
    }
}

/// Validating builder for [`DriftConfig`].
///
/// [`build`](DriftConfigBuilder::build) rejects thresholds the checks
/// cannot interpret (zero windows, inverted ratios, degenerate
/// significance levels) with a [`failtypes::Error::Config`] naming the
/// offending knob.
///
/// # Examples
///
/// ```
/// use failwatch::DriftConfig;
///
/// let config = DriftConfig::builder().mttr_ratio(3.0).build()?;
/// assert_eq!(config.mttr_ratio, 3.0);
/// assert!(DriftConfig::builder().mttr_ratio(0.5).build().is_err());
/// # Ok::<(), failtypes::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct DriftConfigBuilder {
    config: DriftConfig,
}

impl DriftConfigBuilder {
    /// Minimum records in the trailing window before any check runs.
    #[must_use]
    pub fn min_window(mut self, records: usize) -> Self {
        self.config.min_window = records;
        self
    }

    /// Total-variation margin beyond the sampling-noise allowance.
    #[must_use]
    pub fn mix_threshold(mut self, threshold: f64) -> Self {
        self.config.mix_threshold = threshold;
        self
    }

    /// Windowed-MTTR / baseline-MTTR ratio that triggers a regression.
    #[must_use]
    pub fn mttr_ratio(mut self, ratio: f64) -> Self {
        self.config.mttr_ratio = ratio;
        self
    }

    /// Significance level for the corroborating KS test.
    #[must_use]
    pub fn ks_alpha(mut self, alpha: f64) -> Self {
        self.config.ks_alpha = alpha;
        self
    }

    /// Absolute slot-share change that triggers a skew alert.
    #[must_use]
    pub fn slot_share_threshold(mut self, threshold: f64) -> Self {
        self.config.slot_share_threshold = threshold;
        self
    }

    /// Minimum windowed involvements before the slot check runs.
    #[must_use]
    pub fn min_involvements(mut self, involvements: usize) -> Self {
        self.config.min_involvements = involvements;
        self
    }

    /// Multi-GPU failures inside the burst window that trigger an alert.
    #[must_use]
    pub fn burst_count(mut self, count: usize) -> Self {
        self.config.burst_count = count;
        self
    }

    /// Span of the burst excitation window, hours.
    #[must_use]
    pub fn burst_window_hours(mut self, hours: f64) -> Self {
        self.config.burst_window_hours = hours;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// [`failtypes::Error::Config`] (target `drift detector`) when a
    /// window or count is zero, the MTTR ratio is below 1, the KS
    /// significance level is outside `(0, 1)`, or a threshold is
    /// negative or non-finite.
    pub fn build(self) -> failtypes::Result<DriftConfig> {
        let c = &self.config;
        let err = |reason: String| Err(failtypes::Error::config("drift detector", reason));
        if c.min_window == 0 {
            return err("minimum window must hold at least 1 record".into());
        }
        if !(c.mix_threshold.is_finite() && c.mix_threshold >= 0.0) {
            return err(format!(
                "mix threshold must be a finite non-negative distance, got {}",
                c.mix_threshold
            ));
        }
        if !(c.mttr_ratio.is_finite() && c.mttr_ratio >= 1.0) {
            return err(format!(
                "MTTR ratio must be finite and at least 1, got {}",
                c.mttr_ratio
            ));
        }
        if !(c.ks_alpha > 0.0 && c.ks_alpha < 1.0) {
            return err(format!(
                "KS significance level must be in (0, 1), got {}",
                c.ks_alpha
            ));
        }
        if !(c.slot_share_threshold.is_finite() && c.slot_share_threshold > 0.0) {
            return err(format!(
                "slot-share threshold must be a positive finite share, got {}",
                c.slot_share_threshold
            ));
        }
        if c.min_involvements == 0 {
            return err("minimum involvements must be at least 1".into());
        }
        if c.burst_count == 0 {
            return err("burst count must be at least 1".into());
        }
        if !(c.burst_window_hours.is_finite() && c.burst_window_hours > 0.0) {
            return err(format!(
                "burst window must be a positive finite number of hours, got {}",
                c.burst_window_hours
            ));
        }
        Ok(self.config)
    }
}

/// Edge-triggered drift detector (see the module docs).
#[derive(Debug, Clone)]
pub struct DriftDetector {
    baseline: Baseline,
    config: DriftConfig,
    /// Currently-true conditions with the highest severity already
    /// alerted; an escalation past the stored severity re-fires.
    active: BTreeMap<AlertKind, AlertSeverity>,
}

impl DriftDetector {
    /// A detector comparing against `baseline` with `config` thresholds.
    pub fn new(baseline: Baseline, config: DriftConfig) -> Self {
        DriftDetector {
            baseline,
            config,
            active: BTreeMap::new(),
        }
    }

    /// The baseline in use.
    pub const fn baseline(&self) -> &Baseline {
        &self.baseline
    }

    /// Evaluates every check against the current state, returning newly
    /// fired alerts (empty while conditions are unchanged or the window
    /// is not yet warm).
    pub fn evaluate(&mut self, state: &WatchState) -> Vec<Alert> {
        let mut alerts = Vec::new();
        if state.window_len() < self.config.min_window {
            return alerts;
        }
        let time_h = state.stream_time().unwrap_or(0.0);
        let window_n = state.window_len();

        // 1. Category-mix shift (total-variation distance beyond the
        // multinomial sampling-noise allowance).
        let live = state.window_category_fractions();
        let mut tv = 0.0;
        let mut k = live.len();
        for (&c, &f) in &live {
            tv += (f - self.baseline.fraction(c)).abs();
        }
        for &(c, f) in &self.baseline.category_fractions {
            if !live.contains_key(&c) {
                tv += f;
                k += 1;
            }
        }
        let tv = tv / 2.0;
        // P(TV >= eps) <= 2^k exp(-2 n eps^2) (Bretagnolle–Huber–Carol);
        // solving for the 1% level gives the allowance below.
        let noise =
            ((k as f64 * std::f64::consts::LN_2 + 100f64.ln()) / (2.0 * window_n as f64)).sqrt();
        let mix_threshold = self.config.mix_threshold + noise;
        Self::edge(&mut self.active, &mut alerts, tv > mix_threshold, || {
            Alert {
                kind: AlertKind::CategoryMixShift,
                severity: AlertSeverity::Warning,
                time_h,
                window_n,
                metric: tv,
                threshold: mix_threshold,
                p_value: None,
                message: format!(
                    "window category mix diverged from baseline: total-variation distance {tv:.3}"
                ),
            }
        });

        // 2. MTTR regression (ratio + KS corroboration).
        if let Some(window_mttr) = state.window_ttr_mean() {
            if self.baseline.mttr_hours > 0.0 {
                let ratio = window_mttr / self.baseline.mttr_hours;
                let ks = ks_test_two_sample(&state.window_ttr_sample(), &self.baseline.ttr_sample);
                let (p_value, rejects) = ks.map_or((None, false), |t| {
                    (Some(t.p_value), t.rejects_at(self.config.ks_alpha))
                });
                let severity = if rejects {
                    AlertSeverity::Critical
                } else {
                    AlertSeverity::Warning
                };
                Self::edge(
                    &mut self.active,
                    &mut alerts,
                    ratio > self.config.mttr_ratio,
                    || Alert {
                        kind: AlertKind::MttrRegression,
                        severity,
                        time_h,
                        window_n,
                        metric: ratio,
                        threshold: self.config.mttr_ratio,
                        p_value,
                        message: format!(
                            "windowed MTTR {window_mttr:.2} h is {ratio:.2}x the baseline {:.2} h",
                            self.baseline.mttr_hours
                        ),
                    },
                );
            }
        }

        // 3. Slot-skew anomaly.
        let (shares, involvements) = state.window_slot_shares();
        if involvements >= self.config.min_involvements {
            let (worst_slot, delta) = shares
                .iter()
                .enumerate()
                .map(|(i, &s)| {
                    let base = self.baseline.slot_shares.get(i).copied().unwrap_or(0.0);
                    (i, (s - base).abs())
                })
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("shares are finite"))
                .unwrap_or((0, 0.0));
            Self::edge(
                &mut self.active,
                &mut alerts,
                delta > self.config.slot_share_threshold,
                || Alert {
                    kind: AlertKind::SlotSkewAnomaly,
                    severity: AlertSeverity::Warning,
                    time_h,
                    window_n,
                    metric: delta,
                    threshold: self.config.slot_share_threshold,
                    p_value: None,
                    message: format!(
                        "GPU slot {worst_slot} involvement share moved {delta:.3} from baseline"
                    ),
                },
            );
        }

        // 4. Multi-GPU burst.
        let burst = state.multi_gpu_since(time_h - self.config.burst_window_hours);
        Self::edge(
            &mut self.active,
            &mut alerts,
            burst >= self.config.burst_count,
            || Alert {
                kind: AlertKind::MultiGpuBurst,
                severity: AlertSeverity::Warning,
                time_h,
                window_n,
                metric: burst as f64,
                threshold: self.config.burst_count as f64,
                p_value: None,
                message: format!(
                    "{burst} multi-GPU failures within {:.0} h",
                    self.config.burst_window_hours
                ),
            },
        );

        alerts
    }

    /// Edge-triggering: fire when the condition transitions false→true,
    /// or when it stays true but the severity escalates past what was
    /// already alerted; re-arm on true→false.
    fn edge(
        active: &mut BTreeMap<AlertKind, AlertSeverity>,
        alerts: &mut Vec<Alert>,
        condition: bool,
        make: impl FnOnce() -> Alert,
    ) {
        let alert = make();
        let kind = alert.kind;
        if condition {
            let fires = active.get(&kind).is_none_or(|&seen| alert.severity > seen);
            if fires {
                active.insert(kind, alert.severity);
                alerts.push(alert);
            }
        } else {
            active.remove(&kind);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{StateConfig, WatchState};
    use failsim::{Simulator, SystemModel};
    use failtypes::{FailureRecord, Hours};
    use std::collections::BTreeSet;

    fn baseline() -> Baseline {
        Baseline::from_model(SystemModel::tsubame3(), 1).unwrap()
    }

    #[test]
    fn baseline_fractions_sum_to_one() {
        let b = baseline();
        let sum: f64 = b.category_fractions.iter().map(|&(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(b.mttr_hours > 0.0);
        assert!(b.mtbf_hours > 70.0);
        assert_eq!(b.slot_shares.len(), 4);
        assert!(b.ttr_sample.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn clean_replays_stay_quiet_on_mttr_and_mix() {
        // Streams drawn from the baseline model itself (several seeds)
        // may never trip the MTTR or mix checks: windowed fluctuation
        // stays inside the sampling-noise allowance.
        for seed in [1, 2, 3, 7] {
            let log = Simulator::new(SystemModel::tsubame3(), seed)
                .generate()
                .unwrap();
            let mut state = WatchState::for_log(&log, StateConfig::default());
            let mut det = DriftDetector::new(baseline(), DriftConfig::default());
            let mut fired = Vec::new();
            for rec in log.iter() {
                state.ingest(rec.clone()).unwrap();
                fired.extend(det.evaluate(&state));
            }
            assert!(
                !fired.iter().any(|a| a.kind == AlertKind::MttrRegression),
                "seed {seed}: clean replay fired MTTR regression: {fired:?}"
            );
            assert!(
                !fired.iter().any(|a| a.kind == AlertKind::CategoryMixShift),
                "seed {seed}: clean replay fired mix shift: {fired:?}"
            );
        }
    }

    #[test]
    fn injected_mttr_regression_fires_and_escalates_to_critical() {
        let log = Simulator::new(SystemModel::tsubame3(), 1).generate().unwrap();
        let mut state = WatchState::for_log(&log, StateConfig::default());
        let mut det = DriftDetector::new(baseline(), DriftConfig::default());
        let half = log.len() / 2;
        let mut fired = Vec::new();
        for (i, rec) in log.iter().enumerate() {
            let mut rec = rec.clone();
            if i >= half {
                // Repairs suddenly take 5x longer.
                rec = FailureRecord::new(
                    rec.id(),
                    rec.time(),
                    Hours::new(rec.ttr().get() * 5.0),
                    rec.category(),
                    rec.node(),
                );
            }
            state.ingest(rec).unwrap();
            fired.extend(det.evaluate(&state));
        }
        let mttr_alerts: Vec<&Alert> = fired
            .iter()
            .filter(|a| a.kind == AlertKind::MttrRegression)
            .collect();
        assert!(!mttr_alerts.is_empty(), "no MTTR regression fired");
        // Edge-triggered with severity escalation: at most the initial
        // warning plus one escalation per episode, not one per record.
        assert!(mttr_alerts.len() <= 4, "spammed: {}", mttr_alerts.len());
        for a in &mttr_alerts {
            assert!(a.metric > 2.0, "ratio at firing: {}", a.metric);
        }
        // Once the window is fully degraded the KS test corroborates.
        let last = mttr_alerts.last().unwrap();
        assert_eq!(last.severity, AlertSeverity::Critical);
        assert!(last.p_value.is_some());
    }

    #[test]
    fn injected_category_shift_fires_mix_alert() {
        let log = Simulator::new(SystemModel::tsubame3(), 1).generate().unwrap();
        let base = baseline();
        // Force the tail of the stream into the rarest baseline
        // category: the window TV distance approaches 1 - fraction,
        // clearing the noise allowance.
        let rare = base
            .category_fractions
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|&(c, _)| c)
            .unwrap();
        let mut state = WatchState::for_log(&log, StateConfig::default());
        let mut det = DriftDetector::new(base, DriftConfig::default());
        let half = log.len() / 2;
        let mut fired = Vec::new();
        for (i, rec) in log.iter().enumerate() {
            let mut rec = rec.clone();
            if i >= half {
                rec = FailureRecord::new(rec.id(), rec.time(), rec.ttr(), rare, rec.node());
            }
            state.ingest(rec).unwrap();
            fired.extend(det.evaluate(&state));
        }
        assert!(
            fired.iter().any(|a| a.kind == AlertKind::CategoryMixShift),
            "monoculture tail did not fire mix shift: {fired:?}"
        );
    }

    #[test]
    fn burst_detector_counts_the_excitation_window() {
        let log = Simulator::new(SystemModel::tsubame3(), 1).generate().unwrap();
        let mut state = WatchState::for_log(&log, StateConfig::default());
        let config = DriftConfig {
            min_window: 1,
            burst_count: 1, // any multi-GPU failure alerts
            ..DriftConfig::default()
        };
        let mut det = DriftDetector::new(baseline(), config);
        let mut kinds = BTreeSet::new();
        for rec in log.iter() {
            state.ingest(rec.clone()).unwrap();
            for a in det.evaluate(&state) {
                kinds.insert(a.kind);
            }
        }
        // The calibrated T3 log contains multi-GPU failures (Table III),
        // so with burst_count=1 the burst alert must appear.
        assert!(kinds.contains(&AlertKind::MultiGpuBurst), "{kinds:?}");
    }

    #[test]
    fn warm_up_produces_no_alerts() {
        let log = Simulator::new(SystemModel::tsubame3(), 1).generate().unwrap();
        let mut state = WatchState::for_log(&log, StateConfig::default());
        let mut det = DriftDetector::new(baseline(), DriftConfig::default());
        for rec in log.iter().take(19) {
            state.ingest(rec.clone()).unwrap();
            assert!(det.evaluate(&state).is_empty(), "fired during warm-up");
        }
    }
}
