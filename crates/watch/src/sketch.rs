//! A streaming quantile sketch with an exactness fallback.
//!
//! Up to `capacity` observations the sketch simply buffers everything,
//! and its quantiles and mean are computed from a sorted copy with the
//! *same* type-7 interpolation and left-to-right sorted summation as
//! [`failstats::Ecdf`] — so while in exact mode the results are
//! **bit-identical** to the batch pipeline, which is what the streaming
//! equivalence suite asserts (field logs at Tsubame scale fit easily).
//!
//! Past `capacity` the sketch switches to deterministic KLL-style level
//! compaction: the buffer is sorted and every second item survives to
//! the next level with doubled weight, the parity of the surviving
//! offset alternating per level across compactions so no half of the
//! data is systematically favored. Capacities are rounded up to even so
//! every compaction halves an even-length buffer and total weight is
//! preserved exactly. Quantiles then come from the weighted rank over
//! all levels; the normalized rank error stays small (the unit tests
//! enforce ≤ 0.025 at n = 200 000 with the default capacity) and the
//! mean degrades to the weighted mean of the retained items.

use failstats::quantile_sorted;

/// Default number of buffered observations before compaction begins.
pub const DEFAULT_SKETCH_CAPACITY: usize = 4096;

/// Streaming quantile/mean sketch (see the module docs).
///
/// # Examples
///
/// ```
/// use failwatch::QuantileSketch;
///
/// let mut s = QuantileSketch::default();
/// for x in [4.0, 1.0, 3.0, 2.0] {
///     s.push(x);
/// }
/// assert!(s.is_exact());
/// assert_eq!(s.quantile(0.5), Some(2.5));
/// assert_eq!(s.mean(), Some(2.5));
/// assert_eq!(s.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    capacity: usize,
    /// `levels[i]` holds items of weight `2^i`; level 0 is the intake.
    levels: Vec<Vec<f64>>,
    parity: Vec<bool>,
    count: u64,
    min: f64,
    max: f64,
    compactions: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new(DEFAULT_SKETCH_CAPACITY)
    }
}

impl QuantileSketch {
    /// A sketch that stays exact until `capacity` observations
    /// (rounded up to an even minimum of 8).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(8).next_multiple_of(2);
        QuantileSketch {
            capacity,
            levels: vec![Vec::new()],
            parity: vec![false],
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            compactions: 0,
        }
    }

    /// Observes one finite value.
    ///
    /// # Panics
    ///
    /// Panics on NaN (quantiles over NaN are meaningless).
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "sketch values must not be NaN");
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.levels[0].push(x);
        let mut level = 0;
        while self.levels[level].len() >= self.capacity {
            self.compact(level);
            level += 1;
        }
    }

    /// Compacts one full level: sort, keep alternating halves with
    /// doubled weight one level up. Length is always even here.
    fn compact(&mut self, level: usize) {
        self.compactions += 1;
        if self.levels.len() == level + 1 {
            self.levels.push(Vec::new());
            self.parity.push(false);
        }
        let mut buf = std::mem::take(&mut self.levels[level]);
        buf.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN in sketch"));
        let offset = usize::from(self.parity[level]);
        self.parity[level] = !self.parity[level];
        self.levels[level + 1]
            .extend(buf.into_iter().skip(offset).step_by(2));
    }

    /// Total observations pushed.
    pub const fn len(&self) -> u64 {
        self.count
    }

    /// `true` when nothing has been pushed.
    pub const fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// `true` while no compaction has happened — quantiles and mean are
    /// bit-identical to the batch [`failstats::Ecdf`] on the same data.
    pub const fn is_exact(&self) -> bool {
        self.compactions == 0
    }

    /// Number of level compactions performed so far (zero while the
    /// sketch is exact). Surfaced through watch tracing as the
    /// `watch.sketch_compactions` counter.
    pub const fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Smallest observation (always exact).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (always exact).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The `p`-quantile (`p` in `[0, 1]`).
    ///
    /// Exact mode matches [`failstats::quantile_sorted`] bitwise; in
    /// compacted mode the weighted-rank estimate carries the documented
    /// rank error.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.is_exact() {
            let mut sorted = self.levels[0].clone();
            sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN in sketch"));
            return quantile_sorted(&sorted, p);
        }
        // Weighted rank over all retained items.
        let mut items: Vec<(f64, u64)> = Vec::new();
        for (level, buf) in self.levels.iter().enumerate() {
            let w = 1u64 << level;
            items.extend(buf.iter().map(|&x| (x, w)));
        }
        items.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN in sketch"));
        let total: u64 = items.iter().map(|&(_, w)| w).sum();
        debug_assert_eq!(total, self.count, "compaction preserves total weight");
        let target = p * total as f64;
        let mut cum = 0u64;
        for &(x, w) in &items {
            cum += w;
            if cum as f64 >= target {
                return Some(x);
            }
        }
        items.last().map(|&(x, _)| x)
    }

    /// The mean: bit-identical to [`failstats::Ecdf::mean`] in exact
    /// mode (sorted left-to-right summation), weighted mean of retained
    /// items after compaction.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.is_exact() {
            let mut sorted = self.levels[0].clone();
            sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN in sketch"));
            return Some(sorted.iter().sum::<f64>() / sorted.len() as f64);
        }
        let mut sum = 0.0;
        let mut weight = 0u64;
        for (level, buf) in self.levels.iter().enumerate() {
            let w = 1u64 << level;
            weight += w * buf.len() as u64;
            sum += buf.iter().sum::<f64>() * w as f64;
        }
        Some(sum / weight as f64)
    }

    /// Number of values currently retained across all levels.
    pub fn retained(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use failstats::Ecdf;

    /// Deterministic pseudo-random stream (SplitMix64 → uniform [0,1)).
    fn uniform_stream(n: usize, mut seed: u64) -> Vec<f64> {
        (0..n)
            .map(|_| {
                seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                (z >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn exact_mode_is_bitwise_equal_to_ecdf() {
        let data = uniform_stream(1500, 9);
        let mut sketch = QuantileSketch::new(4096);
        for &x in &data {
            sketch.push(x);
        }
        assert!(sketch.is_exact());
        let ecdf = Ecdf::new(data.clone()).unwrap();
        for p in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(
                sketch.quantile(p).unwrap().to_bits(),
                ecdf.quantile(p).to_bits(),
                "p = {p}"
            );
        }
        assert_eq!(sketch.mean().unwrap().to_bits(), ecdf.mean().to_bits());
        assert_eq!(sketch.min(), Some(ecdf.min()));
        assert_eq!(sketch.max(), Some(ecdf.max()));
    }

    #[test]
    fn compacted_mode_rank_error_is_bounded() {
        // The documented bound: normalized rank error <= 0.025 at
        // n = 200_000 with capacity 1024.
        let n = 200_000;
        let data = uniform_stream(n, 4242);
        let mut sketch = QuantileSketch::new(1024);
        for &x in &data {
            sketch.push(x);
        }
        assert!(!sketch.is_exact());
        // ~log2(n/capacity) levels of < capacity items each.
        assert!(sketch.retained() < 10 * 1024, "sketch stays bounded");
        let mut sorted = data;
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        for p in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let est = sketch.quantile(p).unwrap();
            // Normalized rank of the estimate in the true data.
            let rank = sorted.partition_point(|&x| x <= est) as f64 / n as f64;
            assert!(
                (rank - p).abs() <= 0.025,
                "p = {p}: estimate {est} has rank {rank}"
            );
        }
        // Uniform data: the weighted mean stays close to 0.5.
        assert!((sketch.mean().unwrap() - 0.5).abs() < 0.01);
        // Min/max stay exact through compaction.
        assert_eq!(sketch.min(), sorted.first().copied());
        assert_eq!(sketch.max(), sorted.last().copied());
    }

    #[test]
    fn compaction_preserves_total_weight() {
        let mut sketch = QuantileSketch::new(16);
        for i in 0..10_000 {
            sketch.push(i as f64);
        }
        assert_eq!(sketch.len(), 10_000);
        let total: u64 = sketch
            .levels
            .iter()
            .enumerate()
            .map(|(level, buf)| (1u64 << level) * buf.len() as u64)
            .sum();
        assert_eq!(total, 10_000);
    }

    #[test]
    fn empty_sketch_returns_none() {
        let s = QuantileSketch::default();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_is_rejected() {
        QuantileSketch::default().push(f64::NAN);
    }

    #[test]
    fn tiny_capacity_is_rounded_up() {
        let mut s = QuantileSketch::new(1);
        for i in 0..7 {
            s.push(i as f64);
        }
        assert!(s.is_exact(), "minimum capacity is 8");
        s.push(7.0);
        assert!(!s.is_exact());
        assert!(s.quantile(0.5).is_some());
    }
}
