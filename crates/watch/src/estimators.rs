//! Online estimators: EWMA smoothing and trailing-window aggregates.
//!
//! These are the "recent behaviour" side of the monitor, complementing
//! the since-start-of-stream aggregates in
//! [`WatchState`](crate::WatchState): an [`Ewma`] per category tracks
//! smoothed TTR and inter-arrival gaps, and [`WindowMean`] /
//! [`RateWindow`] expose the last-N-records sample the drift detector
//! compares against the baseline.

use std::collections::VecDeque;

/// Exponentially weighted moving average with smoothing factor `alpha`
/// (weight of the newest observation; `1.0` tracks the last value,
/// small values smooth heavily). The first observation seeds the value.
///
/// # Examples
///
/// ```
/// use failwatch::Ewma;
///
/// let mut e = Ewma::new(0.5);
/// assert!(e.value().is_none());
/// e.update(10.0);
/// e.update(20.0);
/// assert_eq!(e.value(), Some(15.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
    n: u64,
}

impl Ewma {
    /// A new estimator with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA alpha must be in (0, 1], got {alpha}"
        );
        Ewma {
            alpha,
            value: None,
            n: 0,
        }
    }

    /// Incorporates one observation.
    pub fn update(&mut self, x: f64) {
        self.n += 1;
        self.value = Some(match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        });
    }

    /// The current smoothed value; `None` before any observation.
    pub const fn value(&self) -> Option<f64> {
        self.value
    }

    /// Number of observations incorporated.
    pub const fn count(&self) -> u64 {
        self.n
    }
}

/// Mean over a trailing window of the last `cap` observations, with
/// access to the raw window sample (for KS comparison against a
/// baseline sample).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowMean {
    cap: usize,
    buf: VecDeque<f64>,
}

impl WindowMean {
    /// A window keeping the most recent `cap` observations (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        WindowMean {
            cap: cap.max(1),
            buf: VecDeque::new(),
        }
    }

    /// Pushes one observation, evicting the oldest beyond capacity.
    pub fn push(&mut self, x: f64) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(x);
    }

    /// Number of observations currently in the window.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when the window holds nothing yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// `true` once the window has reached capacity.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.cap
    }

    /// Mean of the windowed observations.
    pub fn mean(&self) -> Option<f64> {
        if self.buf.is_empty() {
            return None;
        }
        Some(self.buf.iter().sum::<f64>() / self.buf.len() as f64)
    }

    /// The window contents in arrival order, as a contiguous sample.
    pub fn sample(&self) -> Vec<f64> {
        self.buf.iter().copied().collect()
    }
}

/// Failure rate over a trailing span of simulated time: keeps event
/// times within `window_hours` of the newest event and reports events
/// per hour over the span actually covered.
#[derive(Debug, Clone, PartialEq)]
pub struct RateWindow {
    window_hours: f64,
    times: VecDeque<f64>,
}

impl RateWindow {
    /// A rate window spanning `window_hours` of stream time.
    ///
    /// # Panics
    ///
    /// Panics unless `window_hours` is finite and positive.
    pub fn new(window_hours: f64) -> Self {
        assert!(
            window_hours.is_finite() && window_hours > 0.0,
            "rate window must be positive, got {window_hours}"
        );
        RateWindow {
            window_hours,
            times: VecDeque::new(),
        }
    }

    /// Records an event at `time` hours (non-decreasing), evicting
    /// events older than the window.
    pub fn push(&mut self, time: f64) {
        self.times.push_back(time);
        let cutoff = time - self.window_hours;
        while self.times.front().is_some_and(|&t| t < cutoff) {
            self.times.pop_front();
        }
    }

    /// Events currently inside the window.
    pub fn count(&self) -> usize {
        self.times.len()
    }

    /// Events per hour over the covered span. Until the stream has run
    /// for a full window the denominator is the span actually observed
    /// (so early rates are not diluted); a single event reports `None`.
    pub fn rate_per_hour(&self) -> Option<f64> {
        let (first, last) = (self.times.front()?, self.times.back()?);
        let span = (last - first).min(self.window_hours);
        if span <= 0.0 {
            return None;
        }
        Some(self.times.len() as f64 / span)
    }

    /// Number of events in the window with time >= `cutoff`.
    pub fn count_since(&self, cutoff: f64) -> usize {
        self.times.iter().filter(|&&t| t >= cutoff).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_seeds_and_smooths() {
        let mut e = Ewma::new(0.2);
        e.update(100.0);
        assert_eq!(e.value(), Some(100.0));
        e.update(0.0);
        assert_eq!(e.value(), Some(80.0));
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn ewma_alpha_one_tracks_last_value() {
        let mut e = Ewma::new(1.0);
        e.update(3.0);
        e.update(7.0);
        assert_eq!(e.value(), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn window_mean_evicts_oldest() {
        let mut w = WindowMean::new(3);
        for x in [1.0, 2.0, 3.0, 4.0] {
            w.push(x);
        }
        assert!(w.is_full());
        assert_eq!(w.len(), 3);
        assert_eq!(w.mean(), Some(3.0));
        assert_eq!(w.sample(), vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn window_mean_empty() {
        let w = WindowMean::new(5);
        assert!(w.is_empty());
        assert_eq!(w.mean(), None);
    }

    #[test]
    fn rate_window_evicts_and_reports() {
        let mut r = RateWindow::new(10.0);
        for t in [0.0, 2.0, 4.0, 6.0, 8.0] {
            r.push(t);
        }
        assert_eq!(r.count(), 5);
        // Span covered so far is 8 h.
        assert!((r.rate_per_hour().unwrap() - 5.0 / 8.0).abs() < 1e-12);
        r.push(13.0); // evicts t=0 and t=2
        assert_eq!(r.count(), 4);
        assert_eq!(r.count_since(6.0), 3);
    }

    #[test]
    fn rate_window_single_event_has_no_rate() {
        let mut r = RateWindow::new(10.0);
        r.push(5.0);
        assert_eq!(r.rate_per_hour(), None);
    }
}
