//! The monitor's online state: everything `failwatch` knows after
//! ingesting a prefix of the stream.
//!
//! [`WatchState`] combines three layers, updated record by record:
//!
//! 1. a [`failscope::StreamView`] — the full incremental index
//!    (category partitions, node/slot/rack counts, month buckets) whose
//!    contents are equal to the batch `LogView` after full ingestion;
//! 2. since-start sketches — [`QuantileSketch`]es over inter-arrival
//!    gaps and repair durations whose exact mode reproduces the batch
//!    `Ecdf` numbers bit for bit (MTBF itself is the closed-form
//!    `window / n`, exact by construction);
//! 3. recent-behaviour estimators — trailing-window samples of TTRs,
//!    categories, and GPU-slot involvements plus per-category EWMAs,
//!    which is what the drift detector compares against a baseline.

use std::collections::{BTreeMap, VecDeque};

use failscope::StreamView;
use failtypes::{Category, FailureRecord, Generation, ObservationWindow, SystemSpec};

use crate::estimators::{Ewma, RateWindow, WindowMean};
use crate::sketch::{QuantileSketch, DEFAULT_SKETCH_CAPACITY};

/// Tuning knobs for [`WatchState`].
#[derive(Debug, Clone, PartialEq)]
pub struct StateConfig {
    /// Trailing-window size in records for drift samples.
    pub window: usize,
    /// Sketch exactness capacity (observations buffered before
    /// compaction).
    pub sketch_capacity: usize,
    /// EWMA smoothing factor for per-category TTR/gap estimators.
    pub ewma_alpha: f64,
    /// Span of the failure-rate window, in stream hours.
    pub rate_window_hours: f64,
}

impl Default for StateConfig {
    fn default() -> Self {
        StateConfig {
            window: 50,
            sketch_capacity: DEFAULT_SKETCH_CAPACITY,
            ewma_alpha: 0.2,
            rate_window_hours: 30.0 * 24.0,
        }
    }
}

impl StateConfig {
    /// A validating builder starting from the defaults.
    pub fn builder() -> StateConfigBuilder {
        StateConfigBuilder::default()
    }
}

/// Validating builder for [`StateConfig`].
///
/// Every setter takes the candidate value as-is; [`build`] rejects
/// configurations the estimators cannot honour (zero windows,
/// out-of-range smoothing factors) with a
/// [`failtypes::Error::Config`] naming the offending knob.
///
/// # Examples
///
/// ```
/// use failwatch::StateConfig;
///
/// let config = StateConfig::builder().window(25).ewma_alpha(0.5).build()?;
/// assert_eq!(config.window, 25);
/// assert!(StateConfig::builder().ewma_alpha(0.0).build().is_err());
/// # Ok::<(), failtypes::Error>(())
/// ```
///
/// [`build`]: StateConfigBuilder::build
#[derive(Debug, Clone, Default)]
pub struct StateConfigBuilder {
    config: StateConfig,
}

impl StateConfigBuilder {
    /// Trailing-window size in records for drift samples.
    #[must_use]
    pub fn window(mut self, window: usize) -> Self {
        self.config.window = window;
        self
    }

    /// Sketch exactness capacity before compaction begins.
    #[must_use]
    pub fn sketch_capacity(mut self, capacity: usize) -> Self {
        self.config.sketch_capacity = capacity;
        self
    }

    /// EWMA smoothing factor in `(0, 1]`.
    #[must_use]
    pub fn ewma_alpha(mut self, alpha: f64) -> Self {
        self.config.ewma_alpha = alpha;
        self
    }

    /// Span of the failure-rate window, in stream hours.
    #[must_use]
    pub fn rate_window_hours(mut self, hours: f64) -> Self {
        self.config.rate_window_hours = hours;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// [`failtypes::Error::Config`] (target `watch state`) when the
    /// trailing window or sketch capacity is zero, the EWMA factor is
    /// outside `(0, 1]`, or the rate window is not a positive finite
    /// number of hours.
    pub fn build(self) -> failtypes::Result<StateConfig> {
        let c = &self.config;
        if c.window == 0 {
            return Err(failtypes::Error::config(
                "watch state",
                "trailing window must hold at least 1 record",
            ));
        }
        if c.sketch_capacity == 0 {
            return Err(failtypes::Error::config(
                "watch state",
                "sketch capacity must be at least 1",
            ));
        }
        if !(c.ewma_alpha > 0.0 && c.ewma_alpha <= 1.0) {
            return Err(failtypes::Error::config(
                "watch state",
                format!("EWMA alpha must be in (0, 1], got {}", c.ewma_alpha),
            ));
        }
        if !(c.rate_window_hours.is_finite() && c.rate_window_hours > 0.0) {
            return Err(failtypes::Error::config(
                "watch state",
                format!(
                    "rate window must be a positive finite number of hours, got {}",
                    c.rate_window_hours
                ),
            ));
        }
        Ok(self.config)
    }
}

/// Online analytics state over a failure stream (see the module docs).
///
/// # Examples
///
/// ```
/// use failsim::{Simulator, SystemModel};
/// use failwatch::WatchState;
///
/// let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
/// let mut state = WatchState::for_log(&log, Default::default());
/// state.ingest_batch(log.records().to_vec()).unwrap();
/// // MTBF identical to the batch formula: window hours / n.
/// let mtbf = state.mtbf_hours().unwrap();
/// assert_eq!(mtbf, log.window().duration().get() / log.len() as f64);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WatchState {
    view: StreamView,
    config: StateConfig,
    gap_sketch: QuantileSketch,
    ttr_sketch: QuantileSketch,
    last_time: Option<f64>,
    window_ttrs: WindowMean,
    window_categories: VecDeque<Category>,
    window_slots: VecDeque<u8>,
    rate: RateWindow,
    ewma_ttr: BTreeMap<Category, Ewma>,
    ewma_gap: BTreeMap<Category, Ewma>,
    cat_last_time: BTreeMap<Category, f64>,
}

impl WatchState {
    /// Empty state for a system described by `spec` over `window`.
    pub fn new(
        generation: Generation,
        spec: SystemSpec,
        window: ObservationWindow,
        config: StateConfig,
    ) -> Self {
        WatchState {
            view: StreamView::new(generation, spec, window),
            gap_sketch: QuantileSketch::new(config.sketch_capacity),
            ttr_sketch: QuantileSketch::new(config.sketch_capacity),
            last_time: None,
            window_ttrs: WindowMean::new(config.window),
            window_categories: VecDeque::new(),
            window_slots: VecDeque::new(),
            rate: RateWindow::new(config.rate_window_hours),
            ewma_ttr: BTreeMap::new(),
            ewma_gap: BTreeMap::new(),
            cat_last_time: BTreeMap::new(),
            config,
        }
    }

    /// Empty state shaped like `log` (same generation, spec, window).
    pub fn for_log(log: &failtypes::FailureLog, config: StateConfig) -> Self {
        WatchState::new(log.generation(), log.spec().clone(), log.window(), config)
    }

    /// Ingests one record, updating every layer. The record is
    /// validated (and time order enforced) by the underlying
    /// [`StreamView`]; state is unchanged on error.
    ///
    /// Allocation-free: the record moves into the view and every other
    /// layer updates in place (GPU slots are read back from the view's
    /// copy rather than collected into a temporary).
    ///
    /// # Errors
    ///
    /// See [`failscope::StreamView::push`]; the underlying
    /// [`failscope::StreamViewError`] is carried as the source of a
    /// [`failtypes::Error`].
    pub fn ingest(&mut self, rec: FailureRecord) -> failtypes::Result<()> {
        let time = rec.time().get();
        let ttr = rec.ttr().get();
        let category = rec.category();
        self.view.push(rec)?;

        // Since-start sketches: gaps mirror inter_arrival_times (first
        // record produces no gap).
        if let Some(prev) = self.last_time {
            self.gap_sketch.push(time - prev);
        }
        self.last_time = Some(time);
        self.ttr_sketch.push(ttr);

        // Trailing-window samples.
        self.window_ttrs.push(ttr);
        if self.window_categories.len() == self.config.window {
            self.window_categories.pop_front();
        }
        self.window_categories.push_back(category);
        // Borrow the slots back from the record the view just took —
        // disjoint fields, so no temporary Vec is needed.
        let gpus = self
            .view
            .records()
            .last()
            .expect("record was just pushed")
            .gpus();
        for slot in gpus {
            if self.window_slots.len() == self.config.window {
                self.window_slots.pop_front();
            }
            self.window_slots.push_back(slot.index());
        }
        self.rate.push(time);

        // Per-category EWMAs.
        self.ewma_ttr
            .entry(category)
            .or_insert_with(|| Ewma::new(self.config.ewma_alpha))
            .update(ttr);
        if let Some(&prev) = self.cat_last_time.get(&category) {
            self.ewma_gap
                .entry(category)
                .or_insert_with(|| Ewma::new(self.config.ewma_alpha))
                .update(time - prev);
        }
        self.cat_last_time.insert(category, time);
        Ok(())
    }

    /// Ingests a whole chunk of records in time order — the batched
    /// mirror of [`ingest`](WatchState::ingest), with identical
    /// resulting state (the batched-vs-per-record proptest in `tests/`
    /// asserts this bit for bit, sketches and EWMAs included). Returns
    /// the number of records accepted.
    ///
    /// # Errors
    ///
    /// As [`ingest`](WatchState::ingest); records before the offending
    /// one remain incorporated.
    pub fn ingest_batch<I>(&mut self, records: I) -> failtypes::Result<usize>
    where
        I: IntoIterator<Item = FailureRecord>,
    {
        let mut accepted = 0;
        for rec in records {
            self.ingest(rec)?;
            accepted += 1;
        }
        Ok(accepted)
    }

    /// Forces the view's deferred sorted-array merges now (see
    /// [`StreamView::materialize`]); the watch loop calls this before
    /// rendering summaries so parallel section renderers read zero-cost
    /// slices instead of racing to build the merge cache.
    pub fn materialize(&mut self) {
        self.view.materialize();
    }

    /// The underlying incremental index.
    pub const fn view(&self) -> &StreamView {
        &self.view
    }

    /// The tuning configuration.
    pub const fn config(&self) -> &StateConfig {
        &self.config
    }

    /// Records ingested so far.
    pub fn len(&self) -> usize {
        self.view.len()
    }

    /// `true` before the first record.
    pub fn is_empty(&self) -> bool {
        self.view.is_empty()
    }

    /// Stream time of the newest record, hours.
    pub const fn stream_time(&self) -> Option<f64> {
        self.last_time
    }

    /// System MTBF over the full observation window — the batch
    /// `TbfAnalysis` closed form `window hours / n`, exact at any point
    /// in the stream.
    pub fn mtbf_hours(&self) -> Option<f64> {
        if self.view.is_empty() {
            return None;
        }
        Some(self.view.window().duration().get() / self.view.len() as f64)
    }

    /// Mean inter-arrival gap since stream start (bit-identical to the
    /// batch `Ecdf` mean while the sketch is exact).
    pub fn mean_gap_hours(&self) -> Option<f64> {
        self.gap_sketch.mean()
    }

    /// Mean repair duration since stream start (bit-identical to the
    /// batch `Ecdf` mean while the sketch is exact).
    pub fn mttr_hours(&self) -> Option<f64> {
        self.ttr_sketch.mean()
    }

    /// `p`-quantile of inter-arrival gaps since stream start.
    pub fn gap_quantile(&self, p: f64) -> Option<f64> {
        self.gap_sketch.quantile(p)
    }

    /// `p`-quantile of repair durations since stream start.
    pub fn ttr_quantile(&self, p: f64) -> Option<f64> {
        self.ttr_sketch.quantile(p)
    }

    /// Whether both sketches are still in their exact mode.
    pub fn sketches_exact(&self) -> bool {
        self.gap_sketch.is_exact() && self.ttr_sketch.is_exact()
    }

    /// Total level compactions across the gap and TTR sketches (zero
    /// while [`sketches_exact`](WatchState::sketches_exact) holds).
    pub const fn sketch_compactions(&self) -> u64 {
        self.gap_sketch.compactions() + self.ttr_sketch.compactions()
    }

    /// Mean TTR over the trailing window of records.
    pub fn window_ttr_mean(&self) -> Option<f64> {
        self.window_ttrs.mean()
    }

    /// The trailing-window TTR sample, in arrival order.
    pub fn window_ttr_sample(&self) -> Vec<f64> {
        self.window_ttrs.sample()
    }

    /// Records currently in the trailing window.
    pub fn window_len(&self) -> usize {
        self.window_categories.len()
    }

    /// Category fractions over the trailing window.
    pub fn window_category_fractions(&self) -> BTreeMap<Category, f64> {
        let n = self.window_categories.len();
        let mut counts: BTreeMap<Category, usize> = BTreeMap::new();
        for &c in &self.window_categories {
            *counts.entry(c).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .map(|(c, k)| (c, k as f64 / n as f64))
            .collect()
    }

    /// Per-slot involvement shares over the trailing window, indexed by
    /// slot number; the total-involvement count is the second element.
    pub fn window_slot_shares(&self) -> (Vec<f64>, usize) {
        let slots = self.view.spec().gpus_per_node() as usize;
        let mut counts = vec![0usize; slots];
        for &s in &self.window_slots {
            if (s as usize) < slots {
                counts[s as usize] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        let shares = counts
            .iter()
            .map(|&k| if total == 0 { 0.0 } else { k as f64 / total as f64 })
            .collect();
        (shares, total)
    }

    /// Failure rate (events per hour) over the trailing time window.
    pub fn rate_per_hour(&self) -> Option<f64> {
        self.rate.rate_per_hour()
    }

    /// Smoothed per-category repair duration.
    pub fn ewma_ttr(&self, category: Category) -> Option<f64> {
        self.ewma_ttr.get(&category).and_then(Ewma::value)
    }

    /// Smoothed per-category inter-arrival gap.
    pub fn ewma_gap(&self, category: Category) -> Option<f64> {
        self.ewma_gap.get(&category).and_then(Ewma::value)
    }

    /// Multi-GPU failures whose arrival time is at or after `cutoff`
    /// hours (the burst detector's tail count; the underlying array is
    /// time-ordered).
    pub fn multi_gpu_since(&self, cutoff: f64) -> usize {
        let times = self.view.multi_gpu_times();
        times.len() - times.partition_point(|&t| t < cutoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{Simulator, SystemModel};
    use failscope::{TbfAnalysis, TtrAnalysis};
    use failtypes::FailureLog;

    fn fed(seed: u64) -> (FailureLog, WatchState) {
        let log = Simulator::new(SystemModel::tsubame3(), seed).generate().unwrap();
        let mut state = WatchState::for_log(&log, StateConfig::default());
        let accepted = state.ingest_batch(log.records().to_vec()).unwrap();
        assert_eq!(accepted, log.len());
        (log, state)
    }

    #[test]
    fn since_start_estimates_match_batch_bitwise() {
        let (log, state) = fed(43);
        assert!(state.sketches_exact());
        let tbf = TbfAnalysis::from_log(&log).unwrap();
        let ttr = TtrAnalysis::from_log(&log).unwrap();
        assert_eq!(
            state.mtbf_hours().unwrap().to_bits(),
            tbf.mtbf_hours().to_bits()
        );
        assert_eq!(
            state.mean_gap_hours().unwrap().to_bits(),
            tbf.mean_gap_hours().to_bits()
        );
        assert_eq!(
            state.mttr_hours().unwrap().to_bits(),
            ttr.mttr_hours().to_bits()
        );
    }

    #[test]
    fn window_fractions_sum_to_one() {
        let (_, state) = fed(43);
        let fractions = state.window_category_fractions();
        let sum: f64 = fractions.values().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(state.window_len(), state.config().window);
    }

    #[test]
    fn slot_shares_are_normalized() {
        let (_, state) = fed(43);
        let (shares, total) = state.window_slot_shares();
        assert_eq!(shares.len(), 4);
        if total > 0 {
            assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ewmas_exist_for_observed_categories() {
        let (log, state) = fed(43);
        let c = log.records()[0].category();
        assert!(state.ewma_ttr(c).is_some());
        assert!(state.rate_per_hour().is_some());
    }

    #[test]
    fn multi_gpu_since_counts_the_tail() {
        let (_, state) = fed(43);
        let times = state.view().multi_gpu_times().to_vec();
        assert_eq!(state.multi_gpu_since(f64::NEG_INFINITY), times.len());
        assert_eq!(state.multi_gpu_since(f64::INFINITY), 0);
        if let Some(&last) = times.last() {
            assert!(state.multi_gpu_since(last) >= 1);
        }
    }

    #[test]
    fn empty_state_returns_none() {
        let log = Simulator::new(SystemModel::tsubame3(), 1).generate().unwrap();
        let state = WatchState::for_log(&log, StateConfig::default());
        assert!(state.is_empty());
        assert_eq!(state.mtbf_hours(), None);
        assert_eq!(state.mttr_hours(), None);
        assert_eq!(state.window_ttr_mean(), None);
    }
}
