//! Event sources feeding the watch loop.
//!
//! Two sources produce [`StreamEvent`]s behind one trait:
//!
//! * [`TailSource`] — a `failscope-log v1` file read incrementally via
//!   [`faillog::LogTailer`] (CSV or NDJSON body rows); in follow mode
//!   exhaustion yields [`StreamEvent::Idle`] so the caller can sleep
//!   and poll again while the file grows, otherwise the final partial
//!   line is flushed and the source ends with [`StreamEvent::Eof`].
//! * [`SimSource`] — a calibrated `failsim` model replayed through a
//!   [`failsim::ReplayClock`], paced (real-time-scaled) or unpaced
//!   (`--accel max`). An optional MTTR injection multiplies the repair
//!   durations of the tail of the replay, the canonical regression
//!   scenario the acceptance tests alert on.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};

use faillog::{Compression, InputReader, LogTailer, TailProgress};
use failsim::{ReplayClock, Simulator, SystemModel};
use failtypes::{
    FailureRecord, Generation, Hours, ObservationWindow, Result, StreamEvent, SystemSpec,
};

/// Why a chunked pull ([`EventSource::next_chunk`]) stopped delivering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkEnd {
    /// The chunk filled to its limit; more records may be ready now.
    More,
    /// Nothing available right now — poll again later (follow mode).
    Idle,
    /// The stream ended; no further records will arrive.
    Eof,
}

/// A producer of [`StreamEvent`]s plus the system metadata the online
/// state needs up front.
pub trait EventSource {
    /// The system generation of the stream.
    fn generation(&self) -> Generation;
    /// The system spec of the stream.
    fn spec(&self) -> &SystemSpec;
    /// The observation window of the stream.
    fn window(&self) -> ObservationWindow;
    /// Pulls the next event. [`StreamEvent::Idle`] means "nothing right
    /// now, poll again"; [`StreamEvent::Eof`] is terminal.
    fn next_event(&mut self) -> Result<StreamEvent>;
    /// Pulls up to `max` immediately deliverable records into `out`
    /// (appending; the caller owns clearing), so the watch loop ingests
    /// whole chunks between refresh ticks instead of making per-record
    /// virtual calls. Stops early on [`StreamEvent::Idle`] /
    /// [`StreamEvent::Eof`] and reports why it stopped; partial chunks
    /// are always handed over, so chunking never delays follow-mode
    /// delivery.
    ///
    /// # Errors
    ///
    /// As [`next_event`](EventSource::next_event); records pulled
    /// before the failing event remain in `out`.
    fn next_chunk(&mut self, max: usize, out: &mut Vec<FailureRecord>) -> Result<ChunkEnd> {
        while out.len() < max {
            match self.next_event()? {
                StreamEvent::Record(rec) => out.push(rec),
                StreamEvent::Idle => return Ok(ChunkEnd::Idle),
                StreamEvent::Eof => return Ok(ChunkEnd::Eof),
            }
        }
        Ok(ChunkEnd::More)
    }
    /// Human-readable description of the source for the watch banner.
    fn describe(&self) -> String;
    /// Support for persisting the accumulated index as a `.fsidx`
    /// snapshot on clean shutdown: the source log's path plus the
    /// progress fingerprint (bytes/CRC/lines) of exactly the raw input
    /// consumed so far. `None` (the default) when the stream cannot be
    /// fingerprinted against on-disk bytes — simulated replays, and
    /// compressed files (whose progress counts *decoded* bytes).
    fn snapshot_target(&self) -> Option<(PathBuf, TailProgress)> {
        None
    }
}

/// Tails a `failscope-log v1` file (see the module docs).
///
/// Files open through the layered [`InputReader`], so a
/// gzip-compressed replay (`.fslog.gz`) streams exactly like plain
/// text in non-follow mode. Follow mode polls the file for appended
/// bytes, which only plain text supports — a gzip member is decoded
/// once at open — so `--follow` on compressed input is rejected at
/// open time.
#[derive(Debug)]
pub struct TailSource {
    tailer: LogTailer<InputReader>,
    path: String,
    follow: bool,
    done: bool,
}

impl TailSource {
    /// Opens `path`, parsing the header eagerly.
    ///
    /// # Errors
    ///
    /// Returns [`failtypes::Error::Io`] when the file cannot be opened
    /// or decoded, a parse variant when its header is incomplete, and
    /// [`failtypes::Error::Args`] for `follow` on compressed input.
    pub fn open(path: impl AsRef<Path>, follow: bool) -> Result<Self> {
        Self::open_with_capacity(path, follow, None)
    }

    /// [`TailSource::open`] with an explicit read-buffer capacity in
    /// bytes for plain files (`failctl watch --parse-chunk`).
    ///
    /// # Errors
    ///
    /// See [`TailSource::open`].
    pub fn open_with_capacity(
        path: impl AsRef<Path>,
        follow: bool,
        capacity: Option<usize>,
    ) -> Result<Self> {
        let display = path.as_ref().display().to_string();
        let tailer = LogTailer::open_with_capacity(path, capacity)?;
        if follow && tailer.compression() != Compression::Plain {
            return Err(failtypes::Error::args(format!(
                "--follow requires plain text, but `{display}` is {}-compressed \
                 (appended bytes cannot be observed through a compressed member)",
                tailer.compression().label()
            )));
        }
        Ok(TailSource {
            tailer,
            path: display,
            follow,
            done: false,
        })
    }
}

impl EventSource for TailSource {
    fn generation(&self) -> Generation {
        self.tailer.generation()
    }

    fn spec(&self) -> &SystemSpec {
        self.tailer.spec()
    }

    fn window(&self) -> ObservationWindow {
        self.tailer.window()
    }

    fn next_event(&mut self) -> Result<StreamEvent> {
        if self.done {
            return Ok(StreamEvent::Eof);
        }
        match self.tailer.next_record()? {
            Some(rec) => Ok(StreamEvent::Record(rec)),
            None if self.follow => Ok(StreamEvent::Idle),
            None => {
                self.done = true;
                match self.tailer.flush_partial()? {
                    Some(rec) => Ok(StreamEvent::Record(rec)),
                    None => Ok(StreamEvent::Eof),
                }
            }
        }
    }

    fn describe(&self) -> String {
        if self.follow {
            format!("{} (follow)", self.path)
        } else {
            self.path.clone()
        }
    }

    fn snapshot_target(&self) -> Option<(PathBuf, TailProgress)> {
        if self.tailer.compression() != Compression::Plain {
            return None;
        }
        Some((PathBuf::from(&self.path), self.tailer.progress()))
    }
}

/// Replays a calibrated simulation as a stream (see the module docs).
#[derive(Debug)]
pub struct SimSource {
    /// Remaining records, popped from the front so delivery **moves**
    /// each record out instead of cloning its GPU-slot heap data.
    records: VecDeque<FailureRecord>,
    clock: ReplayClock,
    generation: Generation,
    spec: SystemSpec,
    window: ObservationWindow,
    name: String,
}

impl SimSource {
    /// Simulates `model` with `seed` and prepares a replay paced by
    /// `clock`.
    ///
    /// # Errors
    ///
    /// Propagates simulator validation failure (cannot happen for stock
    /// models).
    pub fn new(model: SystemModel, seed: u64, clock: ReplayClock) -> Result<Self> {
        let name = format!("sim:{} seed {seed}", model.spec.name());
        let log = Simulator::new(model, seed).generate()?;
        Ok(SimSource {
            records: log.records().to_vec().into(),
            clock,
            generation: log.generation(),
            spec: log.spec().clone(),
            window: log.window(),
            name,
        })
    }

    /// Multiplies the repair durations of the replay tail (records from
    /// `from_fraction` of the stream onward) by `factor` — the injected
    /// MTTR-regression scenario.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and positive and
    /// `from_fraction` is in `[0, 1]`.
    pub fn with_mttr_injection(mut self, factor: f64, from_fraction: f64) -> Self {
        assert!(factor.is_finite() && factor > 0.0, "bad factor {factor}");
        assert!(
            (0.0..=1.0).contains(&from_fraction),
            "bad fraction {from_fraction}"
        );
        let start = (self.records.len() as f64 * from_fraction) as usize;
        for rec in self.records.iter_mut().skip(start) {
            let mut degraded = FailureRecord::new(
                rec.id(),
                rec.time(),
                Hours::new(rec.ttr().get() * factor),
                rec.category(),
                rec.node(),
            );
            if !rec.gpus().is_empty() {
                degraded = degraded.with_gpus(rec.gpus().iter().copied());
            }
            if let Some(l) = rec.locus() {
                degraded = degraded.with_locus(l);
            }
            *rec = degraded;
        }
        self.name.push_str(&format!(
            " (+mttr x{factor} from {:.0}%)",
            from_fraction * 100.0
        ));
        self
    }

    /// Records remaining in the replay.
    pub fn remaining(&self) -> usize {
        self.records.len()
    }
}

impl EventSource for SimSource {
    fn generation(&self) -> Generation {
        self.generation
    }

    fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    fn window(&self) -> ObservationWindow {
        self.window
    }

    fn next_event(&mut self) -> Result<StreamEvent> {
        let Some(rec) = self.records.front() else {
            return Ok(StreamEvent::Eof);
        };
        // Paced replay sleeps inline until the record is due; unpaced
        // clocks return immediately.
        self.clock.sleep_until(rec.time().get());
        let rec = self.records.pop_front().expect("front() was Some");
        Ok(StreamEvent::Record(rec))
    }

    fn describe(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(source: &mut dyn EventSource) -> Vec<FailureRecord> {
        let mut out = Vec::new();
        loop {
            match source.next_event().unwrap() {
                StreamEvent::Record(r) => out.push(r),
                StreamEvent::Idle => panic!("unexpected idle"),
                StreamEvent::Eof => break,
            }
        }
        out
    }

    #[test]
    fn sim_source_replays_the_exact_log() {
        let log = Simulator::new(SystemModel::tsubame3(), 5).generate().unwrap();
        let mut src =
            SimSource::new(SystemModel::tsubame3(), 5, ReplayClock::unpaced()).unwrap();
        assert_eq!(src.remaining(), log.len());
        assert_eq!(src.spec(), log.spec());
        let records = drain(&mut src);
        assert_eq!(records.as_slice(), log.records());
        // Eof is sticky.
        assert_eq!(src.next_event().unwrap(), StreamEvent::Eof);
    }

    #[test]
    fn chunked_delivery_matches_per_record_and_flushes_partials() {
        let log = Simulator::new(SystemModel::tsubame3(), 5).generate().unwrap();
        let mut src =
            SimSource::new(SystemModel::tsubame3(), 5, ReplayClock::unpaced()).unwrap();
        let mut out = Vec::new();
        let mut chunk = Vec::new();
        loop {
            chunk.clear();
            let end = src.next_chunk(7, &mut chunk).unwrap();
            out.append(&mut chunk);
            match end {
                ChunkEnd::More => {}
                ChunkEnd::Idle => panic!("unpaced replay never idles"),
                ChunkEnd::Eof => break,
            }
        }
        assert_eq!(out.as_slice(), log.records());
        // Eof is sticky through the chunked path too.
        chunk.clear();
        assert_eq!(src.next_chunk(7, &mut chunk).unwrap(), ChunkEnd::Eof);
        assert!(chunk.is_empty());
    }

    #[test]
    fn follow_mode_chunks_end_with_idle_not_eof() {
        let log = Simulator::new(SystemModel::tsubame2(), 6).generate().unwrap();
        let dir = std::env::temp_dir().join("failscope-test-watch-ingest");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("follow-chunk.fslog");
        faillog::save(&path, &log).unwrap();
        let mut src = TailSource::open(&path, true).unwrap();
        let mut records = 0;
        let mut chunk = Vec::new();
        loop {
            chunk.clear();
            let end = src.next_chunk(16, &mut chunk).unwrap();
            records += chunk.len();
            match end {
                ChunkEnd::More => {}
                ChunkEnd::Idle => break,
                ChunkEnd::Eof => panic!("follow mode must idle, not end"),
            }
        }
        // The whole file arrives before the first idle — partial chunks
        // are flushed, chunking adds no delivery latency.
        assert_eq!(records, log.len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mttr_injection_degrades_only_the_tail() {
        let log = Simulator::new(SystemModel::tsubame3(), 5).generate().unwrap();
        let mut src = SimSource::new(SystemModel::tsubame3(), 5, ReplayClock::unpaced())
            .unwrap()
            .with_mttr_injection(4.0, 0.5);
        assert!(src.describe().contains("x4"));
        let records = drain(&mut src);
        let half = log.len() / 2;
        for (a, b) in records.iter().zip(log.records()).take(half) {
            assert_eq!(a, b);
        }
        for (a, b) in records.iter().zip(log.records()).skip(half) {
            assert_eq!(a.ttr().get(), b.ttr().get() * 4.0);
            assert_eq!(a.time(), b.time());
            assert_eq!(a.gpus(), b.gpus());
        }
    }

    #[test]
    fn tail_source_reads_a_file_and_ends() {
        let log = Simulator::new(SystemModel::tsubame2(), 6).generate().unwrap();
        let dir = std::env::temp_dir().join("failscope-test-watch-ingest");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t2.fslog");
        faillog::save(&path, &log).unwrap();
        let mut src = TailSource::open(&path, false).unwrap();
        assert_eq!(src.generation(), log.generation());
        let records = drain(&mut src);
        assert_eq!(records.len(), log.len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn follow_mode_reports_idle_instead_of_eof() {
        let log = Simulator::new(SystemModel::tsubame2(), 6).generate().unwrap();
        let dir = std::env::temp_dir().join("failscope-test-watch-ingest");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("follow.fslog");
        faillog::save(&path, &log).unwrap();
        let mut src = TailSource::open(&path, true).unwrap();
        let mut records = 0;
        loop {
            match src.next_event().unwrap() {
                StreamEvent::Record(_) => records += 1,
                StreamEvent::Idle => break,
                StreamEvent::Eof => panic!("follow mode must idle, not end"),
            }
        }
        assert_eq!(records, log.len());
        assert!(src.describe().contains("follow"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn gzip_replay_streams_like_plain_text() {
        let log = Simulator::new(SystemModel::tsubame3(), 9).generate().unwrap();
        let dir = std::env::temp_dir().join("failscope-test-watch-ingest");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("replay.fslog.gz");
        faillog::save(&path, &log).unwrap();
        let mut src = TailSource::open(&path, false).unwrap();
        assert_eq!(src.generation(), log.generation());
        let records = drain(&mut src);
        assert_eq!(records.as_slice(), log.records());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn follow_on_gzip_input_is_rejected() {
        let log = Simulator::new(SystemModel::tsubame2(), 9).generate().unwrap();
        let dir = std::env::temp_dir().join("failscope-test-watch-ingest");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("follow.fslog.gz");
        faillog::save(&path, &log).unwrap();
        let err = TailSource::open(&path, true).unwrap_err();
        assert!(matches!(err, failtypes::Error::Args(_)), "{err}");
        assert!(err.to_string().contains("--follow"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = TailSource::open("/definitely/not/here.fslog", false).unwrap_err();
        assert!(matches!(err, failtypes::Error::Io { .. }), "{err}");
        assert!(std::error::Error::source(&err).is_some());
    }
}
