//! Tokenizer for the `--where` expression language.
//!
//! Produces a flat token stream with byte-offset spans; every error the
//! later stages report points back into the original source through
//! these spans.

/// A half-open byte range `[start, end)` into the source expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    pub(crate) fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Tok {
    /// A bareword: field names, unquoted values, and the `in` keyword.
    Word(String),
    /// A numeric literal.
    Number(f64),
    /// A quoted string literal (quotes stripped, escapes resolved).
    Str(String),
    AndAnd,
    OrOr,
    Bang,
    EqEq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Tilde,
    LParen,
    RParen,
    Comma,
}

impl Tok {
    /// How the token reads in an error message.
    pub(crate) fn describe(&self) -> String {
        match self {
            Tok::Word(w) => format!("`{w}`"),
            Tok::Number(n) => format!("`{n}`"),
            Tok::Str(s) => format!("\"{s}\""),
            Tok::AndAnd => "`&&`".into(),
            Tok::OrOr => "`||`".into(),
            Tok::Bang => "`!`".into(),
            Tok::EqEq => "`==`".into(),
            Tok::Ne => "`!=`".into(),
            Tok::Lt => "`<`".into(),
            Tok::Le => "`<=`".into(),
            Tok::Gt => "`>`".into(),
            Tok::Ge => "`>=`".into(),
            Tok::Tilde => "`~`".into(),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::Comma => "`,`".into(),
        }
    }
}

/// A token plus where it came from.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Lexed {
    pub tok: Tok,
    pub span: Span,
}

/// Tokenizes `src`. Errors carry a message and the offending span.
pub(crate) fn lex(src: &str) -> Result<Vec<Lexed>, (String, Span)> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        let tok = match b {
            b'(' => {
                i += 1;
                Tok::LParen
            }
            b')' => {
                i += 1;
                Tok::RParen
            }
            b',' => {
                i += 1;
                Tok::Comma
            }
            b'~' => {
                i += 1;
                Tok::Tilde
            }
            b'&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    i += 2;
                    Tok::AndAnd
                } else {
                    return Err((
                        "single `&` is not an operator (use `&&`)".into(),
                        Span::new(start, start + 1),
                    ));
                }
            }
            b'|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    i += 2;
                    Tok::OrOr
                } else {
                    return Err((
                        "single `|` is not an operator (use `||`)".into(),
                        Span::new(start, start + 1),
                    ));
                }
            }
            b'=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    Tok::EqEq
                } else {
                    return Err((
                        "single `=` is not an operator (use `==`)".into(),
                        Span::new(start, start + 1),
                    ));
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    Tok::Ne
                } else {
                    i += 1;
                    Tok::Bang
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    Tok::Le
                } else {
                    i += 1;
                    Tok::Lt
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    Tok::Ge
                } else {
                    i += 1;
                    Tok::Gt
                }
            }
            b'"' | b'\'' => {
                let quote = b;
                let mut text = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err((
                                "unterminated string literal".into(),
                                Span::new(start, bytes.len()),
                            ))
                        }
                        Some(&c) if c == quote => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => match bytes.get(i + 1) {
                            Some(&e) if e == quote || e == b'\\' => {
                                text.push(e as char);
                                i += 2;
                            }
                            _ => {
                                return Err((
                                    "unsupported escape in string literal".into(),
                                    Span::new(i, i + 2),
                                ))
                            }
                        },
                        Some(_) => {
                            // Advance one whole UTF-8 character.
                            let ch = src[i..].chars().next().expect("in-bounds char");
                            text.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                Tok::Str(text)
            }
            b'0'..=b'9' | b'.' => {
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                let text = &src[start..i];
                match text.parse::<f64>() {
                    Ok(n) if n.is_finite() => Tok::Number(n),
                    _ => {
                        return Err((
                            format!("malformed number `{text}`"),
                            Span::new(start, i),
                        ))
                    }
                }
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                i += 1;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'-')
                {
                    i += 1;
                }
                Tok::Word(src[start..i].to_string())
            }
            _ => {
                let ch = src[start..].chars().next().expect("in-bounds char");
                return Err((
                    format!("unexpected character `{ch}`"),
                    Span::new(start, start + ch.len_utf8()),
                ));
            }
        };
        out.push(Lexed {
            tok,
            span: Span::new(start, i),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|l| l.tok).collect()
    }

    #[test]
    fn operators_and_atoms() {
        assert_eq!(
            toks("category == gpu && ttr > 24.5"),
            vec![
                Tok::Word("category".into()),
                Tok::EqEq,
                Tok::Word("gpu".into()),
                Tok::AndAnd,
                Tok::Word("ttr".into()),
                Tok::Gt,
                Tok::Number(24.5),
            ]
        );
        assert_eq!(
            toks("!(a != b) || c <= 1 , ~ >="),
            vec![
                Tok::Bang,
                Tok::LParen,
                Tok::Word("a".into()),
                Tok::Ne,
                Tok::Word("b".into()),
                Tok::RParen,
                Tok::OrOr,
                Tok::Word("c".into()),
                Tok::Le,
                Tok::Number(1.0),
                Tok::Comma,
                Tok::Tilde,
                Tok::Ge,
            ]
        );
    }

    #[test]
    fn strings_both_quotes_and_escapes() {
        assert_eq!(toks(r#"node ~ "rack12""#)[2], Tok::Str("rack12".into()));
        assert_eq!(toks("x == 'System Board'")[2], Tok::Str("System Board".into()));
        assert_eq!(toks(r#"x == "a\"b\\c""#)[2], Tok::Str("a\"b\\c".into()));
    }

    #[test]
    fn words_allow_hyphens_after_first_char() {
        assert_eq!(toks("Omni-Path")[0], Tok::Word("Omni-Path".into()));
        assert_eq!(toks("in")[0], Tok::Word("in".into()));
    }

    #[test]
    fn spans_point_at_the_source() {
        let lexed = lex("ttr  >= 7").unwrap();
        assert_eq!(lexed[0].span, Span::new(0, 3));
        assert_eq!(lexed[1].span, Span::new(5, 7));
        assert_eq!(lexed[2].span, Span::new(8, 9));
    }

    #[test]
    fn rejects_bad_input() {
        for (src, what) in [
            ("a = b", "single `=`"),
            ("a & b", "single `&`"),
            ("a | b", "single `|`"),
            ("x == \"open", "unterminated"),
            ("x == 1.2.3", "malformed number"),
            ("x == #", "unexpected character"),
            (r#"x == "a\nb""#, "unsupported escape"),
        ] {
            let (msg, _) = lex(src).unwrap_err();
            assert!(msg.contains(what), "{src}: {msg}");
        }
    }
}
