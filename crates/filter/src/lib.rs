//! `failfilter` — the `--where` record filter expression language.
//!
//! The pipeline's analyses repeatedly slice the fleet log along the same
//! axes: failure category, TTR magnitude, node/rack locality, multi-GPU
//! involvement, time window. This crate turns those slices into one
//! small expression language that every consumer (report, compare,
//! watch, index) compiles **once** and evaluates **per record at
//! ingest**, so a filtered run never materializes records it is about
//! to drop.
//!
//! ```text
//! failctl report t3.fslog --where 'category == gpu && ttr > 24'
//! failctl watch  t3.fslog --where 'node ~ "rack12" && gpus >= 2'
//! ```
//!
//! # Fields
//!
//! | field      | type    | meaning                                               |
//! |------------|---------|-------------------------------------------------------|
//! | `category` | string  | failure category (label, component class, or domain)  |
//! | `ttr`      | hours   | time to repair                                        |
//! | `recovery` | hours   | failure time + TTR (unclamped)                        |
//! | `time`     | hours   | failure time offset (also compares to `"YYYY-MM-DD"`) |
//! | `node`     | integer | node index; `~` matches the `rackR/nodeN` path        |
//! | `slot`     | integer | any involved GPU slot index (existential)             |
//! | `rack`     | integer | rack index; `~` matches `rackR`                       |
//! | `gpus`     | integer | number of GPU slots involved                          |
//! | `month`    | 1..=12  | calendar month of the failure date                    |
//!
//! Operators: `&&`, `||`, `!`, comparisons (`==` `!=` `<` `<=` `>`
//! `>=`), case-insensitive substring match `~`, and set membership
//! `in (a, b, c)`. Category values match the per-system labels of
//! Table II (`"System Board"`, `GPUDriver`, ...), the shared component
//! classes (`gpu`, `memory`, ...), and the domains (`hardware`,
//! `software`, `unknown`), case-insensitively and ignoring spaces,
//! hyphens, and underscores.
//!
//! # Two stages, spans throughout
//!
//! [`parse`] produces a syntax-checked [`Expr`]; [`Expr::compile`] (or
//! the one-shot [`compile`]) type-checks it into a [`CompiledPredicate`]
//! — the validated IR the ingest layers evaluate. Every error from
//! either stage is a [`failtypes::Error::Args`] whose message carries
//! the source expression with a caret span under the offending token:
//!
//! ```text
//! unknown field `ttrs` (fields: category, ttr, recovery, time, node, slot, rack, gpus, month)
//!   ttrs > 24
//!   ^^^^
//! ```
//!
//! # Examples
//!
//! ```
//! use failfilter::compile;
//! use failsim::{Simulator, SystemModel};
//!
//! let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
//! let pred = compile("category == gpu && ttr > 24").unwrap();
//! let n = log
//!     .records()
//!     .iter()
//!     .filter(|r| pred.matches(r, log.spec(), log.window()))
//!     .count();
//! assert!(n > 0 && n < log.len());
//! assert!(compile("ttrs > 24").is_err());
//! ```

use failtypes::{
    Category, ComponentClass, Date, Error, FailureRecord, ObservationWindow, Result, SystemSpec,
    T2Category, T3Category,
};

mod lexer;
mod parser;

use lexer::Span;
use parser::{Ast, CmpOp, Value, ValueKind};

/// The field vocabulary, for error messages.
const FIELDS: &str = "category, ttr, recovery, time, node, slot, rack, gpus, month";

/// A syntax-checked filter expression, not yet type-checked.
///
/// Produced by [`parse`]; [`Expr::compile`] turns it into the
/// evaluatable [`CompiledPredicate`].
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    src: String,
    root: Ast,
}

impl Expr {
    /// The original expression text.
    pub fn source(&self) -> &str {
        &self.src
    }

    /// Type-checks the expression into an evaluatable predicate.
    ///
    /// # Errors
    ///
    /// [`Error::Args`] with a span-annotated message for unknown
    /// fields, operators that do not apply to a field's type, and
    /// malformed values (unknown categories, non-integer node numbers,
    /// out-of-range months, undated time strings).
    pub fn compile(&self) -> Result<CompiledPredicate> {
        let root = check(&self.root, &self.src)?;
        Ok(CompiledPredicate {
            source: self.src.clone(),
            root,
        })
    }
}

/// Parses an expression without type-checking it.
///
/// # Errors
///
/// [`Error::Args`] with a span-annotated message on lexical or syntax
/// errors.
pub fn parse(src: &str) -> Result<Expr> {
    let tokens = lexer::lex(src).map_err(|(msg, span)| annotate(src, span, &msg))?;
    let root =
        parser::parse(&tokens, src.len()).map_err(|(msg, span)| annotate(src, span, &msg))?;
    Ok(Expr {
        src: src.to_string(),
        root,
    })
}

/// Parses and type-checks an expression in one step.
///
/// # Errors
///
/// As [`parse`] and [`Expr::compile`].
pub fn compile(src: &str) -> Result<CompiledPredicate> {
    parse(src)?.compile()
}

/// Validates a `--since`/`--until` style time bound — a number of hours
/// or a `YYYY-MM-DD` date — and returns it as an expression literal
/// (dates come back quoted), ready to splice into a desugared
/// `time >= X && time < Y` expression.
///
/// # Errors
///
/// [`Error::Args`] naming the offending value when it is neither.
///
/// # Examples
///
/// ```
/// assert_eq!(failfilter::time_literal("36.5").unwrap(), "36.5");
/// assert_eq!(failfilter::time_literal("2018-03-01").unwrap(), "\"2018-03-01\"");
/// assert!(failfilter::time_literal("banana").is_err());
/// ```
pub fn time_literal(raw: &str) -> Result<String> {
    let t = raw.trim();
    if let Ok(h) = t.parse::<f64>() {
        if h.is_finite() {
            return Ok(format!("{h}"));
        }
    }
    if parse_date(t).is_some() {
        return Ok(format!("\"{t}\""));
    }
    Err(Error::args(format!(
        "not a time bound: expected hours (e.g. 36.5) or a date (YYYY-MM-DD), got `{raw}`"
    )))
}

/// A type-checked predicate over failure records — the IR every ingest
/// layer evaluates.
///
/// Evaluation needs the record's system context: the [`SystemSpec`]
/// (for rack topology) and the [`ObservationWindow`] (for calendar
/// fields and date literals), both known wherever records are parsed
/// or replayed.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPredicate {
    source: String,
    root: Node,
}

impl CompiledPredicate {
    /// The expression this predicate was compiled from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Evaluates the predicate against one record.
    pub fn matches(
        &self,
        rec: &FailureRecord,
        spec: &SystemSpec,
        window: ObservationWindow,
    ) -> bool {
        eval(&self.root, rec, spec, window)
    }

    /// Conjoins two predicates: the result matches when both do. The
    /// source reads `(a) && (b)`.
    #[must_use]
    pub fn and(self, other: CompiledPredicate) -> CompiledPredicate {
        CompiledPredicate {
            source: format!("({}) && ({})", self.source, other.source),
            root: Node::And(Box::new(self.root), Box::new(other.root)),
        }
    }
}

/// A numeric record field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NumField {
    Ttr,
    Recovery,
    Time,
    Node,
    Slot,
    Rack,
    Gpus,
    Month,
}

impl NumField {
    fn name(self) -> &'static str {
        match self {
            NumField::Ttr => "ttr",
            NumField::Recovery => "recovery",
            NumField::Time => "time",
            NumField::Node => "node",
            NumField::Slot => "slot",
            NumField::Rack => "rack",
            NumField::Gpus => "gpus",
            NumField::Month => "month",
        }
    }
}

/// A field with a textual rendering `~` can match against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StrField {
    Node,
    Rack,
}

/// A comparison bound: plain hours, or a date literal resolved against
/// the observation window at evaluation time (so compilation never
/// needs the log header).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Bound {
    Hours(f64),
    Date(Date),
}

/// The categories a token (label, component class, or domain) resolves
/// to. The set is computed once at compile time over the closed
/// [`Category`] vocabulary, so evaluation is a handful of `Copy`-enum
/// compares with no string work on the record path.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CategoryMatcher {
    matched: Vec<Category>,
}

impl CategoryMatcher {
    fn matches(&self, category: Category) -> bool {
        self.matched.contains(&category)
    }
}

/// Every category either generation's vocabulary defines.
fn all_categories() -> impl Iterator<Item = Category> {
    T2Category::ALL
        .iter()
        .copied()
        .map(Category::T2)
        .chain(T3Category::ALL.iter().copied().map(Category::T3))
}

fn domain_name(category: Category) -> &'static str {
    match category.domain() {
        failtypes::Domain::Hardware => "hardware",
        failtypes::Domain::Software => "software",
        failtypes::Domain::Unknown => "unknown",
    }
}

/// The typed predicate tree.
#[derive(Debug, Clone, PartialEq)]
enum Node {
    And(Box<Node>, Box<Node>),
    Or(Box<Node>, Box<Node>),
    Not(Box<Node>),
    NumCmp {
        field: NumField,
        op: CmpOp,
        bound: Bound,
    },
    NumIn {
        field: NumField,
        values: Vec<f64>,
    },
    CatCmp {
        matcher: CategoryMatcher,
        negate: bool,
    },
    CatIn {
        matchers: Vec<CategoryMatcher>,
    },
    StrMatch {
        field: StrField,
        needle: String,
    },
}

// ---------------------------------------------------------------------------
// Type checking
// ---------------------------------------------------------------------------

fn check(ast: &Ast, src: &str) -> Result<Node> {
    match ast {
        Ast::And(a, b) => Ok(Node::And(
            Box::new(check(a, src)?),
            Box::new(check(b, src)?),
        )),
        Ast::Or(a, b) => Ok(Node::Or(
            Box::new(check(a, src)?),
            Box::new(check(b, src)?),
        )),
        Ast::Not(a) => Ok(Node::Not(Box::new(check(a, src)?))),
        Ast::Cmp {
            field,
            field_span,
            op,
            op_span,
            value,
        } => check_cmp(src, field, *field_span, *op, *op_span, value),
        Ast::In {
            field,
            field_span,
            values,
        } => check_in(src, field, *field_span, values),
    }
}

fn unknown_field(src: &str, field: &str, span: Span) -> Error {
    annotate(
        src,
        span,
        &format!("unknown field `{field}` (fields: {FIELDS})"),
    )
}

fn num_field(field: &str) -> Option<NumField> {
    Some(match field {
        "ttr" => NumField::Ttr,
        "recovery" => NumField::Recovery,
        "time" => NumField::Time,
        "node" => NumField::Node,
        "slot" => NumField::Slot,
        "rack" => NumField::Rack,
        "gpus" => NumField::Gpus,
        "month" => NumField::Month,
        _ => return None,
    })
}

fn check_cmp(
    src: &str,
    field: &str,
    field_span: Span,
    op: CmpOp,
    op_span: Span,
    value: &Value,
) -> Result<Node> {
    if field == "category" {
        return match op {
            CmpOp::Eq | CmpOp::Ne => {
                let matcher = category_matcher(src, value)?;
                Ok(Node::CatCmp {
                    matcher,
                    negate: op == CmpOp::Ne,
                })
            }
            CmpOp::Match => Ok(Node::CatIn {
                matchers: vec![category_substring_matcher(
                    &text_value(src, value, "category")?.to_lowercase(),
                )],
            }),
            other => Err(annotate(
                src,
                op_span,
                &format!(
                    "operator `{}` does not apply to `category` (use `==`, `!=`, `~`, or `in`)",
                    other.symbol()
                ),
            )),
        };
    }
    let Some(nf) = num_field(field) else {
        return Err(unknown_field(src, field, field_span));
    };
    if op == CmpOp::Match {
        return match nf {
            NumField::Node => Ok(Node::StrMatch {
                field: StrField::Node,
                needle: text_value(src, value, "node")?.to_lowercase(),
            }),
            NumField::Rack => Ok(Node::StrMatch {
                field: StrField::Rack,
                needle: text_value(src, value, "rack")?.to_lowercase(),
            }),
            other => Err(annotate(
                src,
                op_span,
                &format!(
                    "operator `~` does not apply to numeric field `{}`",
                    other.name()
                ),
            )),
        };
    }
    let bound = bound_value(src, nf, value)?;
    Ok(Node::NumCmp {
        field: nf,
        op,
        bound,
    })
}

fn check_in(src: &str, field: &str, field_span: Span, values: &[Value]) -> Result<Node> {
    if field == "category" {
        let matchers = values
            .iter()
            .map(|v| category_matcher(src, v))
            .collect::<Result<Vec<_>>>()?;
        return Ok(Node::CatIn { matchers });
    }
    let Some(nf) = num_field(field) else {
        return Err(unknown_field(src, field, field_span));
    };
    let nums = values
        .iter()
        .map(|v| match bound_value(src, nf, v)? {
            Bound::Hours(h) => Ok(h),
            Bound::Date(_) => Err(annotate(
                src,
                v.span,
                "date literals are not supported in `in` sets (compare `time` directly)",
            )),
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(Node::NumIn {
        field: nf,
        values: nums,
    })
}

/// The textual payload of a string-ish value (quoted or bareword).
fn text_value<'v>(src: &str, value: &'v Value, field: &str) -> Result<&'v str> {
    match &value.kind {
        ValueKind::Str(s) => Ok(s),
        ValueKind::Word(w) => Ok(w),
        ValueKind::Num(_) => Err(annotate(
            src,
            value.span,
            &format!("field `{field}` expects a string here, got a number"),
        )),
    }
}

fn category_matcher(src: &str, value: &Value) -> Result<CategoryMatcher> {
    let text = text_value(src, value, "category")?;
    let token = normalize(text);
    if token.is_empty() || !known_category_token(&token) {
        return Err(annotate(
            src,
            value.span,
            &format!(
                "unknown category `{text}` (a Table II label like \"System Board\", a component \
                 class like gpu/memory/network, or a domain: hardware, software, unknown)"
            ),
        ));
    }
    let matched = all_categories()
        .filter(|c| {
            normalize(c.label()) == token
                || normalize(c.component_class().name()) == token
                || normalize(domain_name(*c)) == token
        })
        .collect();
    Ok(CategoryMatcher { matched })
}

/// Resolves `category ~ "needle"` to the label-substring match set at
/// compile time, for the same reason as [`category_matcher`].
fn category_substring_matcher(needle: &str) -> CategoryMatcher {
    let matched = all_categories()
        .filter(|c| c.label().to_lowercase().contains(needle))
        .collect();
    CategoryMatcher { matched }
}

fn known_category_token(token: &str) -> bool {
    T2Category::ALL
        .iter()
        .any(|c| normalize(c.label()) == token)
        || T3Category::ALL
            .iter()
            .any(|c| normalize(c.label()) == token)
        || ComponentClass::ALL
            .iter()
            .any(|c| normalize(c.name()) == token)
        || ["hardware", "software", "unknown"].contains(&token)
}

/// Lowercases and strips the separators log vocabularies disagree on,
/// so `system_board`, `"System Board"`, and `system-board` all meet.
fn normalize(s: &str) -> String {
    s.chars()
        .filter(|c| !matches!(c, ' ' | '-' | '_'))
        .flat_map(char::to_lowercase)
        .collect()
}

fn bound_value(src: &str, field: NumField, value: &Value) -> Result<Bound> {
    match &value.kind {
        ValueKind::Num(n) => {
            match field {
                NumField::Month => {
                    if n.fract() != 0.0 || !(1.0..=12.0).contains(n) {
                        return Err(annotate(
                            src,
                            value.span,
                            &format!("field `month` expects a calendar month 1..=12, got `{n}`"),
                        ));
                    }
                }
                NumField::Node | NumField::Slot | NumField::Rack | NumField::Gpus => {
                    if n.fract() != 0.0 || *n < 0.0 {
                        return Err(annotate(
                            src,
                            value.span,
                            &format!(
                                "field `{}` expects a non-negative integer, got `{n}`",
                                field.name()
                            ),
                        ));
                    }
                }
                NumField::Ttr | NumField::Recovery | NumField::Time => {}
            }
            Ok(Bound::Hours(*n))
        }
        ValueKind::Str(s) if field == NumField::Time => match parse_date(s) {
            Some(date) => Ok(Bound::Date(date)),
            None => Err(annotate(
                src,
                value.span,
                &format!("field `time` expects hours or a date (YYYY-MM-DD), got \"{s}\""),
            )),
        },
        ValueKind::Str(_) | ValueKind::Word(_) => {
            let hint = if field == NumField::Time {
                "hours or a date (YYYY-MM-DD)"
            } else {
                "a number"
            };
            Err(annotate(
                src,
                value.span,
                &format!("field `{}` expects {hint}", field.name()),
            ))
        }
    }
}

/// Parses a strict `YYYY-MM-DD` calendar date.
fn parse_date(s: &str) -> Option<Date> {
    let mut parts = s.split('-');
    let year = parts.next()?.parse::<i32>().ok()?;
    let month = parts.next()?.parse::<u8>().ok()?;
    let day = parts.next()?.parse::<u8>().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Date::new(year, month, day)
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

fn eval(node: &Node, rec: &FailureRecord, spec: &SystemSpec, window: ObservationWindow) -> bool {
    match node {
        Node::And(a, b) => eval(a, rec, spec, window) && eval(b, rec, spec, window),
        Node::Or(a, b) => eval(a, rec, spec, window) || eval(b, rec, spec, window),
        Node::Not(a) => !eval(a, rec, spec, window),
        Node::NumCmp { field, op, bound } => {
            let rhs = match bound {
                Bound::Hours(h) => *h,
                Bound::Date(d) => window.start().hours_until(*d).get(),
            };
            match field {
                // `slot` is existential over the involved GPU slots.
                NumField::Slot => rec
                    .gpus()
                    .iter()
                    .any(|s| num_cmp(f64::from(s.index()), *op, rhs)),
                other => num_cmp(num_value(*other, rec, spec, window), *op, rhs),
            }
        }
        Node::NumIn { field, values } => match field {
            NumField::Slot => rec
                .gpus()
                .iter()
                .any(|s| values.contains(&f64::from(s.index()))),
            other => values.contains(&num_value(*other, rec, spec, window)),
        },
        Node::CatCmp { matcher, negate } => matcher.matches(rec.category()) != *negate,
        Node::CatIn { matchers } => matchers.iter().any(|m| m.matches(rec.category())),
        Node::StrMatch { field, needle } => {
            let haystack = match field {
                StrField::Node => format!(
                    "rack{}/node{}",
                    spec.rack_of(rec.node()).index(),
                    rec.node().index()
                ),
                StrField::Rack => format!("rack{}", spec.rack_of(rec.node()).index()),
            };
            haystack.contains(needle.as_str())
        }
    }
}

fn num_value(
    field: NumField,
    rec: &FailureRecord,
    spec: &SystemSpec,
    window: ObservationWindow,
) -> f64 {
    match field {
        NumField::Ttr => rec.ttr().get(),
        NumField::Recovery => rec.recovery_time().get(),
        NumField::Time => rec.time().get(),
        NumField::Node => f64::from(rec.node().index()),
        NumField::Rack => f64::from(spec.rack_of(rec.node()).index()),
        NumField::Gpus => rec.gpus().len() as f64,
        NumField::Month => f64::from(window.date_of(rec.time()).month().number()),
        NumField::Slot => unreachable!("slot is handled existentially"),
    }
}

fn num_cmp(lhs: f64, op: CmpOp, rhs: f64) -> bool {
    match op {
        CmpOp::Eq => lhs == rhs,
        CmpOp::Ne => lhs != rhs,
        CmpOp::Lt => lhs < rhs,
        CmpOp::Le => lhs <= rhs,
        CmpOp::Gt => lhs > rhs,
        CmpOp::Ge => lhs >= rhs,
        CmpOp::Match => unreachable!("`~` never reaches numeric comparison"),
    }
}

// ---------------------------------------------------------------------------
// Error rendering
// ---------------------------------------------------------------------------

/// Formats a span-annotated error: the message, the source line, and a
/// caret run under the offending span (column math in characters, so
/// multi-byte input stays aligned).
fn annotate(src: &str, span: Span, msg: &str) -> Error {
    let start = span.start.min(src.len());
    let end = span.end.min(src.len()).max(start);
    let col = src[..start].chars().count();
    let width = src[start..end].chars().count().max(1);
    Error::args(format!(
        "{msg}\n  {src}\n  {}{}",
        " ".repeat(col),
        "^".repeat(width)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{Simulator, SystemModel};
    use failtypes::FailureLog;

    fn t3log() -> FailureLog {
        Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap()
    }

    fn keep(log: &FailureLog, expr: &str) -> Vec<usize> {
        let pred = compile(expr).unwrap();
        log.records()
            .iter()
            .enumerate()
            .filter(|(_, r)| pred.matches(r, log.spec(), log.window()))
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn category_matches_label_class_and_domain() {
        let log = t3log();
        let by_label = keep(&log, "category == \"GPU\"");
        let by_class = keep(&log, "category == gpu");
        assert_eq!(by_label, by_class);
        assert!(!by_class.is_empty());
        let hw = keep(&log, "category == hardware");
        let sw = keep(&log, "category == software");
        let unknown = keep(&log, "category == unknown");
        assert_eq!(hw.len() + sw.len() + unknown.len(), log.len());
        // != is the exact complement of ==.
        let not_gpu = keep(&log, "category != gpu");
        assert_eq!(by_class.len() + not_gpu.len(), log.len());
    }

    #[test]
    fn category_normalization_crosses_spellings() {
        let log = t3log();
        assert_eq!(
            keep(&log, "category == \"Omni-Path\""),
            keep(&log, "category == omnipath")
        );
        assert_eq!(
            keep(&log, "category == sxm2_cable"),
            keep(&log, "category == \"SXM2_Cable\"")
        );
    }

    #[test]
    fn in_sets_union() {
        let log = t3log();
        let gpu = keep(&log, "category == gpu");
        let mem = keep(&log, "category == memory");
        let both = keep(&log, "category in (gpu, memory)");
        assert_eq!(both.len(), gpu.len() + mem.len());
        let months = keep(&log, "month in (1, 2, 3)");
        let manual = keep(&log, "month == 1 || month == 2 || month == 3");
        assert_eq!(months, manual);
    }

    #[test]
    fn numeric_fields_and_boolean_algebra() {
        let log = t3log();
        let a = keep(&log, "ttr > 24");
        let b = keep(&log, "!(ttr <= 24)");
        assert_eq!(a, b);
        assert!(!a.is_empty() && a.len() < log.len());
        let c = keep(&log, "ttr > 24 && category == gpu");
        let d = keep(&log, "category == gpu && ttr > 24");
        assert_eq!(c, d);
        // recovery is time + ttr.
        let pred = compile("recovery >= 0").unwrap();
        assert!(log
            .records()
            .iter()
            .all(|r| pred.matches(r, log.spec(), log.window())));
    }

    #[test]
    fn rack_and_node_topology() {
        let log = t3log();
        let rack0_eq = keep(&log, "rack == 0");
        // Tsubame-3 racks hold 36 nodes: rack 0 is nodes 0..=35.
        let node_range = keep(&log, "node <= 35");
        assert_eq!(rack0_eq, node_range);
        // `~` on node matches the rack-qualified topology path.
        let via_match = keep(&log, "node ~ \"rack3/\"");
        assert_eq!(via_match, keep(&log, "rack == 3"));
        assert_eq!(keep(&log, "rack ~ \"rack1\"").len(), {
            // substring: rack1, rack10..rack14
            let mut n = keep(&log, "rack == 1").len();
            for r in 10..=14 {
                n += keep(&log, &format!("rack == {r}")).len();
            }
            n
        });
    }

    #[test]
    fn slot_is_existential_and_gpus_counts() {
        let log = t3log();
        let pred = compile("slot == 0").unwrap();
        for (i, rec) in log.records().iter().enumerate() {
            let expect = rec.gpus().iter().any(|s| s.index() == 0);
            assert_eq!(
                pred.matches(rec, log.spec(), log.window()),
                expect,
                "record {i}"
            );
        }
        let multi = keep(&log, "gpus >= 2");
        for &i in &multi {
            assert!(log.records()[i].gpus().len() >= 2);
        }
    }

    #[test]
    fn month_uses_the_calendar_of_the_window() {
        let log = t3log();
        let pred = compile("month == 12").unwrap();
        for rec in log.records() {
            let expect = log.window().date_of(rec.time()).month().number() == 12;
            assert_eq!(pred.matches(rec, log.spec(), log.window()), expect);
        }
    }

    #[test]
    fn time_compares_hours_and_dates() {
        let log = t3log();
        // The Tsubame-3 window starts 2017-05-09; 2017-06-08 is 720 h in.
        let by_date = keep(&log, "time >= \"2017-06-08\"");
        let by_hours = keep(&log, "time >= 720");
        assert_eq!(by_date, by_hours);
        let window = keep(&log, "time >= 100 && time < 1000");
        for &i in &window {
            let t = log.records()[i].time().get();
            assert!((100.0..1000.0).contains(&t));
        }
    }

    #[test]
    fn predicate_and_composes() {
        let log = t3log();
        let a = compile("category == gpu").unwrap();
        let b = compile("ttr > 24").unwrap();
        let both = a.and(b);
        assert_eq!(both.source(), "(category == gpu) && (ttr > 24)");
        assert_eq!(
            log.records()
                .iter()
                .filter(|r| both.matches(r, log.spec(), log.window()))
                .count(),
            keep(&log, "category == gpu && ttr > 24").len()
        );
    }

    #[test]
    fn time_literals() {
        assert_eq!(time_literal(" 1000 ").unwrap(), "1000");
        assert_eq!(time_literal("36.5").unwrap(), "36.5");
        assert_eq!(time_literal("2017-06-08").unwrap(), "\"2017-06-08\"");
        for bad in ["banana", "inf", "NaN", "2017-13-40", "2017-06", ""] {
            let err = time_literal(bad).unwrap_err();
            assert!(err.to_string().contains("not a time bound"), "{bad}: {err}");
        }
    }

    #[test]
    fn expr_parse_then_compile_matches_one_shot() {
        let expr = parse("category == gpu && ttr > 24").unwrap();
        assert_eq!(expr.source(), "category == gpu && ttr > 24");
        assert_eq!(expr.compile().unwrap(), compile(expr.source()).unwrap());
    }

    // -- golden span errors ------------------------------------------------

    fn err_text(src: &str) -> String {
        compile(src).unwrap_err().to_string()
    }

    #[test]
    fn golden_unknown_field_span() {
        assert_eq!(
            err_text("category == gpu && ttrs > 2"),
            "unknown field `ttrs` (fields: category, ttr, recovery, time, node, slot, rack, \
             gpus, month)\n  category == gpu && ttrs > 2\n                     ^^^^"
        );
    }

    #[test]
    fn golden_single_equals_span() {
        assert_eq!(
            err_text("category = gpu"),
            "single `=` is not an operator (use `==`)\n  category = gpu\n           ^"
        );
    }

    #[test]
    fn golden_bad_value_type_span() {
        assert_eq!(
            err_text("ttr > banana"),
            "field `ttr` expects a number\n  ttr > banana\n        ^^^^^^"
        );
    }

    #[test]
    fn golden_unknown_category_span() {
        let text = err_text("category == quantum");
        assert!(text.starts_with("unknown category `quantum`"), "{text}");
        assert!(text.ends_with("\n  category == quantum\n              ^^^^^^^"), "{text}");
    }

    #[test]
    fn golden_operator_type_mismatch_span() {
        assert_eq!(
            err_text("category < gpu"),
            "operator `<` does not apply to `category` (use `==`, `!=`, `~`, or `in`)\n  \
             category < gpu\n           ^"
        );
        assert_eq!(
            err_text("ttr ~ \"2\""),
            "operator `~` does not apply to numeric field `ttr`\n  ttr ~ \"2\"\n      ^"
        );
    }

    #[test]
    fn golden_end_of_expression_span() {
        assert_eq!(
            err_text("ttr >"),
            "expected a value, found end of expression\n  ttr >\n       ^"
        );
    }

    #[test]
    fn golden_month_range_span() {
        assert_eq!(
            err_text("month == 13"),
            "field `month` expects a calendar month 1..=12, got `13`\n  month == 13\n           ^^"
        );
    }

    #[test]
    fn more_malformed_expressions_fail_with_spans() {
        for src in [
            "",
            "ttr",
            "ttr 24",
            "(ttr > 2",
            "ttr > 2)",
            "node == -1",
            "node == 1.5",
            "gpus in (banana)",
            "time >= \"2018-13-01\"",
            "time in (\"2018-01-01\")",
            "category in ()",
            "category == 7",
            "node ~ 12",
            "slot ~ \"a\"",
            "ttr > 1 &&",
            "ttr > 1 zebra == 2",
        ] {
            let err = compile(src).unwrap_err();
            assert!(
                matches!(err, Error::Args(_)),
                "{src}: unexpected error kind {err:?}"
            );
            let text = err.to_string();
            if !src.is_empty() {
                assert!(text.contains('^'), "{src}: no caret in {text}");
                assert!(text.contains(src), "{src}: source not echoed in {text}");
            }
        }
    }
}
