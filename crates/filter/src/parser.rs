//! Recursive-descent parser for the `--where` expression grammar.
//!
//! ```text
//! expr       := or
//! or         := and ( "||" and )*
//! and        := unary ( "&&" unary )*
//! unary      := "!" unary | atom
//! atom       := "(" expr ")" | comparison
//! comparison := FIELD op value
//!             | FIELD "in" "(" value ( "," value )* ")"
//! op         := "==" | "!=" | "<" | "<=" | ">" | ">=" | "~"
//! value      := NUMBER | STRING | WORD
//! ```
//!
//! The parser is syntax-only: field names and value types are checked
//! by the compiler in `lib.rs`, which is where the span on every node
//! pays off.

use crate::lexer::{Lexed, Span, Tok};

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// `~`: case-insensitive substring match.
    Match,
}

impl CmpOp {
    pub(crate) fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Match => "~",
        }
    }
}

/// A literal on the right-hand side of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ValueKind {
    Num(f64),
    Str(String),
    Word(String),
}

/// A spanned literal.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Value {
    pub kind: ValueKind,
    pub span: Span,
}

/// The syntax tree of one filter expression.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Ast {
    And(Box<Ast>, Box<Ast>),
    Or(Box<Ast>, Box<Ast>),
    Not(Box<Ast>),
    Cmp {
        field: String,
        field_span: Span,
        op: CmpOp,
        op_span: Span,
        value: Value,
    },
    In {
        field: String,
        field_span: Span,
        values: Vec<Value>,
    },
}

pub(crate) fn parse(tokens: &[Lexed], src_len: usize) -> Result<Ast, (String, Span)> {
    let mut p = Parser {
        tokens,
        pos: 0,
        end: Span::new(src_len, src_len),
    };
    if tokens.is_empty() {
        return Err(("empty filter expression".into(), Span::new(0, src_len.max(1))));
    }
    let ast = p.or_expr()?;
    if let Some(extra) = p.peek() {
        return Err((
            format!("unexpected {} after the expression", extra.tok.describe()),
            extra.span,
        ));
    }
    Ok(ast)
}

struct Parser<'a> {
    tokens: &'a [Lexed],
    pos: usize,
    /// Zero-width span at end of input, for "expected ..." errors there.
    end: Span,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Lexed> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<&'a Lexed> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<Span, (String, Span)> {
        match self.next() {
            Some(l) if &l.tok == want => Ok(l.span),
            Some(l) => Err((
                format!("expected {what}, found {}", l.tok.describe()),
                l.span,
            )),
            None => Err((format!("expected {what}, found end of expression"), self.end)),
        }
    }

    fn or_expr(&mut self) -> Result<Ast, (String, Span)> {
        let mut lhs = self.and_expr()?;
        while matches!(self.peek(), Some(l) if l.tok == Tok::OrOr) {
            self.pos += 1;
            let rhs = self.and_expr()?;
            lhs = Ast::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Ast, (String, Span)> {
        let mut lhs = self.unary()?;
        while matches!(self.peek(), Some(l) if l.tok == Tok::AndAnd) {
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Ast::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Ast, (String, Span)> {
        if matches!(self.peek(), Some(l) if l.tok == Tok::Bang) {
            self.pos += 1;
            return Ok(Ast::Not(Box::new(self.unary()?)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Ast, (String, Span)> {
        match self.peek() {
            Some(l) if l.tok == Tok::LParen => {
                self.pos += 1;
                let inner = self.or_expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(inner)
            }
            Some(l) => {
                if let Tok::Word(field) = &l.tok {
                    let field = field.clone();
                    let field_span = l.span;
                    self.pos += 1;
                    self.comparison(field, field_span)
                } else {
                    Err((
                        format!(
                            "expected a field name or `(`, found {}",
                            l.tok.describe()
                        ),
                        l.span,
                    ))
                }
            }
            None => Err((
                "expected a field name or `(`, found end of expression".into(),
                self.end,
            )),
        }
    }

    fn comparison(&mut self, field: String, field_span: Span) -> Result<Ast, (String, Span)> {
        let (op, op_span) = match self.next() {
            Some(l) => {
                let op = match &l.tok {
                    Tok::EqEq => Some(CmpOp::Eq),
                    Tok::Ne => Some(CmpOp::Ne),
                    Tok::Lt => Some(CmpOp::Lt),
                    Tok::Le => Some(CmpOp::Le),
                    Tok::Gt => Some(CmpOp::Gt),
                    Tok::Ge => Some(CmpOp::Ge),
                    Tok::Tilde => Some(CmpOp::Match),
                    Tok::Word(w) if w == "in" => None,
                    other => {
                        return Err((
                            format!(
                                "expected a comparison operator or `in` after `{field}`, \
                                 found {}",
                                other.describe()
                            ),
                            l.span,
                        ))
                    }
                };
                match op {
                    Some(op) => (op, l.span),
                    None => return self.in_set(field, field_span),
                }
            }
            None => {
                return Err((
                    format!("expected a comparison operator or `in` after `{field}`"),
                    self.end,
                ))
            }
        };
        let value = self.value()?;
        Ok(Ast::Cmp {
            field,
            field_span,
            op,
            op_span,
            value,
        })
    }

    fn in_set(&mut self, field: String, field_span: Span) -> Result<Ast, (String, Span)> {
        self.expect(&Tok::LParen, "`(` after `in`")?;
        let mut values = vec![self.value()?];
        loop {
            match self.next() {
                Some(l) if l.tok == Tok::Comma => values.push(self.value()?),
                Some(l) if l.tok == Tok::RParen => break,
                Some(l) => {
                    return Err((
                        format!("expected `,` or `)`, found {}", l.tok.describe()),
                        l.span,
                    ))
                }
                None => {
                    return Err(("expected `,` or `)`, found end of expression".into(), self.end))
                }
            }
        }
        Ok(Ast::In {
            field,
            field_span,
            values,
        })
    }

    fn value(&mut self) -> Result<Value, (String, Span)> {
        match self.next() {
            Some(l) => {
                let kind = match &l.tok {
                    Tok::Number(n) => ValueKind::Num(*n),
                    Tok::Str(s) => ValueKind::Str(s.clone()),
                    Tok::Word(w) => ValueKind::Word(w.clone()),
                    other => {
                        return Err((
                            format!("expected a value, found {}", other.describe()),
                            l.span,
                        ))
                    }
                };
                Ok(Value { kind, span: l.span })
            }
            None => Err(("expected a value, found end of expression".into(), self.end)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> Ast {
        parse(&lex(src).unwrap(), src.len()).unwrap()
    }

    fn parse_err(src: &str) -> String {
        parse(&lex(src).unwrap(), src.len()).unwrap_err().0
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        // a || b && c  parses as  a || (b && c)
        let ast = parsed("a == 1 || b == 2 && c == 3");
        match ast {
            Ast::Or(lhs, rhs) => {
                assert!(matches!(*lhs, Ast::Cmp { .. }));
                assert!(matches!(*rhs, Ast::And(..)));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn parens_override_precedence() {
        let ast = parsed("(a == 1 || b == 2) && c == 3");
        assert!(matches!(ast, Ast::And(..)));
    }

    #[test]
    fn not_applies_to_the_nearest_atom() {
        let ast = parsed("!a == 1 && b == 2");
        match ast {
            Ast::And(lhs, _) => assert!(matches!(*lhs, Ast::Not(..))),
            other => panic!("unexpected shape: {other:?}"),
        }
        assert!(matches!(parsed("!!a == 1"), Ast::Not(..)));
    }

    #[test]
    fn in_sets_parse() {
        match parsed("category in (gpu, memory, \"System Board\")") {
            Ast::In { field, values, .. } => {
                assert_eq!(field, "category");
                assert_eq!(values.len(), 3);
                assert_eq!(values[2].kind, ValueKind::Str("System Board".into()));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn error_messages_name_the_problem() {
        assert!(parse_err("").contains("empty filter expression"));
        assert!(parse_err("ttr >").contains("expected a value"));
        assert!(parse_err("ttr 24").contains("comparison operator or `in`"));
        assert!(parse_err("(a == 1").contains("expected `)`"));
        assert!(parse_err("a == 1 b == 2").contains("after the expression"));
        assert!(parse_err("in (a)").contains("comparison operator or `in`"));
        assert!(parse_err("a in b").contains("`(` after `in`"));
        assert!(parse_err("a in (1,)").contains("expected a value"));
        assert!(parse_err("&& a == 1").contains("field name or `(`"));
    }
}
