//! `failctl` — command-line front end for the failscope workspace.
//!
//! See `failctl help` for the command list; all logic lives in
//! [`commands`] so it is unit-tested without spawning processes.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::ParsedArgs::parse(raw) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("failctl: {e}");
            return ExitCode::from(2);
        }
    };
    match commands::dispatch(&parsed) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failctl: {e}");
            ExitCode::FAILURE
        }
    }
}
