//! `failctl` — command-line front end for the failscope workspace.
//!
//! See `failctl help` for the command list; all logic lives in
//! [`commands`] so it is unit-tested without spawning processes.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::ParsedArgs::parse(raw) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("failctl: {e}");
            return ExitCode::from(2);
        }
    };
    // `watch` streams: alerts and summaries must reach the terminal as
    // they happen, not after the stream ends.
    if parsed.command == "watch" {
        let stdout = std::io::stdout();
        return match commands::watch_stream(&parsed, &mut stdout.lock()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("failctl: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match commands::dispatch(&parsed) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failctl: {e}");
            ExitCode::FAILURE
        }
    }
}
