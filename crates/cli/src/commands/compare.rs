//! `failctl compare`: a thin adapter over [`failapi::QueryEngine`].

use failapi::{QueryEngine, QueryRequest};
use failtypes::Result;

use super::common::{CommonQueryArgs, TIME_FLAGS};
use crate::args::ParsedArgs;

/// The flags compare accepts: the common set minus `--sections` (a
/// comparison is one document), plus the time sugar.
fn compare_flags() -> Vec<&'static str> {
    let mut allowed: Vec<&'static str> = super::common::COMMON_QUERY_FLAGS
        .iter()
        .copied()
        .filter(|f| *f != "sections")
        .collect();
    allowed.extend_from_slice(TIME_FLAGS);
    allowed
}

/// `failctl compare`.
pub fn compare(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&compare_flags())?;
    let common = CommonQueryArgs::from_args(args);
    let req = common.apply_query(QueryRequest::compare(
        args.positional(0, "old")?,
        args.positional(1, "new")?,
    ))?;
    let outcome = QueryEngine::new().execute(&req)?;
    common.write_trace(&outcome.trace)?;
    Ok(outcome.output)
}
