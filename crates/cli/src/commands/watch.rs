//! `failctl watch`: a thin adapter over [`failapi::watch::run`].

use std::io;

use failtypes::{Error, Result};

use super::common::CommonQueryArgs;
use crate::args::ParsedArgs;

/// Builds the watch request from the command line. Source-specific
/// values stay raw strings: watch's flag-combination diagnostics quote
/// them verbatim.
pub(crate) fn watch_request(args: &ParsedArgs) -> Result<failapi::WatchRequest> {
    let mut req = failapi::WatchRequest::new(args.positional(0, "path|sim:MODEL")?);
    req.follow = args.switch("follow");
    let take = |key: &str| args.flag(key).map(String::from);
    req.accel = take("accel");
    req.seed = take("seed");
    req.inject_mttr = take("inject-mttr");
    req.baseline = take("baseline");
    req.window = take("window");
    req.refresh = take("refresh");
    req.chunk = take("chunk");
    req.max_records = take("max-records");
    req.max_idle = take("max-idle");
    CommonQueryArgs::from_args(args).apply_watch(&mut req)?;
    Ok(req)
}

/// `failctl watch`: streams a log file or a simulated replay through
/// the online monitor, writing NDJSON alerts and periodic summaries to
/// `out` as they happen (which is why this one takes a writer instead
/// of returning a `String`).
pub fn watch_stream(args: &ParsedArgs, out: &mut dyn io::Write) -> Result<()> {
    args.reject_unknown_flags(&[
        "follow",
        "accel",
        "seed",
        "inject-mttr",
        "baseline",
        "window",
        "refresh",
        "chunk",
        "max-records",
        "max-idle",
        "threads",
        "where",
        "format",
        "sections",
        "trace",
        "parse-chunk",
        "index",
    ])?;
    let req = watch_request(args)?;
    let trace = failapi::watch::run(&req, out)?;
    CommonQueryArgs::from_args(args).write_trace(&trace)?;
    Ok(())
}

/// `failctl watch` via the uniform dispatch path: buffers the stream
/// and returns it as a string (main.rs streams to stdout instead).
pub fn watch(args: &ParsedArgs) -> Result<String> {
    let mut buf = Vec::new();
    watch_stream(args, &mut buf)?;
    String::from_utf8(buf).map_err(|_| Error::run("watch produced non-UTF8 output"))
}
