//! The operational planning commands: `anonymize`, `checkpoint`,
//! `spares`, `availability`, `survival`, `staffing`, `plan`, `racks`.

use std::fmt::Write as _;

use failmitigate::{
    required_crews, simulate_staffing, CheckpointPlan, OperationsPlan, PlanConfig, SparePolicy,
};
use failscope::{AvailabilityAnalysis, NodeSurvival};
use failtypes::{ComponentClass, Error, Result};

use super::load;
use crate::args::ParsedArgs;

/// `failctl anonymize`.
pub fn anonymize(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&["key"])?;
    let input = args.positional(0, "in")?;
    let output = args.positional(1, "out")?;
    let key: u64 = args.flag_or("key", 0xFA11_5C0F)?;
    let log = load(input)?;
    let anon = faillog::anonymize_nodes(&log, key);
    faillog::save(output, &anon)?;
    Ok(format!("anonymized {} records -> {output}\n", anon.len()))
}

/// `failctl checkpoint`.
pub fn checkpoint(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&["cost"])?;
    let log = load(args.positional(0, "file")?)?;
    let cost: f64 = args.flag_or("cost", 0.25)?;
    let plan = CheckpointPlan::from_log(&log, cost).map_err(|e| Error::run(e.to_string()))?;
    let daly = plan.daly_interval_hours();
    let mut out = String::new();
    let _ = writeln!(out, "mtbf:            {:.1} h", plan.mtbf_hours());
    let _ = writeln!(out, "checkpoint cost: {:.2} h", plan.checkpoint_cost_hours());
    let _ = writeln!(out, "young interval:  {:.2} h", plan.young_interval_hours());
    let _ = writeln!(out, "daly interval:   {daly:.2} h");
    let _ = writeln!(out, "efficiency:      {:.1}%", plan.efficiency(daly) * 100.0);
    Ok(out)
}

/// `failctl spares`.
pub fn spares(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&["class", "lead-days", "risk"])?;
    let log = load(args.positional(0, "file")?)?;
    let class = match args.flag("class").unwrap_or("gpu") {
        "gpu" => ComponentClass::Gpu,
        "cpu" => ComponentClass::Cpu,
        "memory" => ComponentClass::Memory,
        "storage" => ComponentClass::Storage,
        "power" => ComponentClass::Power,
        "board" => ComponentClass::Board,
        other => return Err(Error::args(format!("unknown component class `{other}`"))),
    };
    let lead_days: f64 = args.flag_or("lead-days", 14.0)?;
    let risk: f64 = args.flag_or("risk", 0.05)?;
    if !(risk > 0.0 && risk < 1.0) {
        return Err(Error::args("--risk must be in (0, 1)"));
    }
    let policy = SparePolicy::from_log(&log, class, lead_days * 24.0)
        .ok_or_else(|| Error::run(format!("no {} failures in the log", class.name())))?;
    let spares = policy.required_spares(risk);
    let mut out = String::new();
    let _ = writeln!(out, "class:            {}", class.name());
    let _ = writeln!(out, "lead time:        {lead_days:.1} days");
    let _ = writeln!(out, "lead-time demand: {:.2} failures", policy.lead_time_demand());
    let _ = writeln!(out, "required spares:  {spares} (stockout <= {:.1}%)", risk * 100.0);
    let _ = writeln!(
        out,
        "residual risk:    {:.2}%",
        policy.stockout_probability(spares) * 100.0
    );
    Ok(out)
}

/// `failctl availability`.
pub fn availability(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&[])?;
    let log = load(args.positional(0, "file")?)?;
    let a = AvailabilityAnalysis::from_log(&log)
        .ok_or_else(|| Error::run("log is empty"))?;
    let mut out = String::new();
    let _ = writeln!(out, "repair overlap probability:  {:.1}%", a.overlap_probability() * 100.0);
    let _ = writeln!(out, "mean concurrent repairs:     {:.2}", a.mean_concurrent_repairs());
    let _ = writeln!(out, "max concurrent repairs:      {}", a.max_concurrent_repairs());
    let _ = writeln!(out, "time with repairs open:      {:.1}%", a.repair_busy_fraction() * 100.0);
    let _ = writeln!(out, "node-hours lost:             {:.0}", a.node_hours_lost());
    let _ = writeln!(out, "node availability:           {:.3}%", a.node_availability() * 100.0);
    Ok(out)
}

/// `failctl survival`.
pub fn survival(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&[])?;
    let log = load(args.positional(0, "file")?)?;
    let s = NodeSurvival::from_log(&log)
        .ok_or_else(|| Error::run("cannot fit a survival curve"))?;
    let horizon = log.window().duration().get();
    let mut out = String::new();
    let _ = writeln!(out, "nodes that failed:       {}", s.observed_failures());
    let _ = writeln!(out, "nodes never failed:      {}", s.censored_nodes());
    for frac in [0.25, 0.5, 0.75, 1.0] {
        let t = horizon * frac;
        let _ = writeln!(
            out,
            "S({:>6.0} h) = {:.3}",
            t,
            s.survival_at(t)
        );
    }
    match s.median_hours() {
        Some(m) => {
            let _ = writeln!(out, "median time to first failure: {m:.0} h");
        }
        None => {
            let _ = writeln!(out, "median time to first failure: beyond the window");
        }
    }
    Ok(out)
}

/// `failctl staffing`.
pub fn staffing(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&["crews", "target"])?;
    let log = load(args.positional(0, "file")?)?;
    let target: f64 = args.flag_or("target", 1.05)?;
    if target < 1.0 {
        return Err(Error::args("--target must be at least 1.0"));
    }
    let mut out = String::new();
    if let Some(raw) = args.flag("crews") {
        let crews: u32 = raw
            .parse()
            .map_err(|_| Error::args(format!("invalid --crews value `{raw}`")))?;
        let o = simulate_staffing(&log, crews)
            .ok_or_else(|| Error::run("log is empty or crews is zero"))?;
        let _ = writeln!(out, "crews:            {}", o.crews);
        let _ = writeln!(out, "hands-on mttr:    {:.1} h", o.hands_on_mttr_hours);
        let _ = writeln!(out, "effective mttr:   {:.1} h ({:.2}x)", o.effective_mttr_hours, o.inflation());
        let _ = writeln!(out, "mean wait:        {:.1} h", o.mean_wait_hours);
        let _ = writeln!(out, "delayed failures: {:.1}%", o.delayed_fraction * 100.0);
    } else {
        let _ = writeln!(out, "crews  effective mttr  inflation  delayed");
        for crews in 1..=10 {
            let o = simulate_staffing(&log, crews)
                .ok_or_else(|| Error::run("log is empty"))?;
            let _ = writeln!(
                out,
                "{:>5}  {:>12.1} h  {:>8.2}x  {:>6.1}%",
                crews,
                o.effective_mttr_hours,
                o.inflation(),
                o.delayed_fraction * 100.0
            );
        }
        match required_crews(&log, target, 64) {
            Some(c) => {
                let _ = writeln!(out, "crews for <= {:.0}% queueing overhead: {c}", (target - 1.0) * 100.0);
            }
            None => {
                let _ = writeln!(out, "no crew count up to 64 meets the target");
            }
        }
    }
    Ok(out)
}

/// `failctl plan`.
pub fn plan(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&[])?;
    let log = load(args.positional(0, "file")?)?;
    let plan = OperationsPlan::from_log(&log, PlanConfig::default())
        .ok_or_else(|| Error::run("log too small to plan from"))?;
    Ok(plan.render())
}

/// `failctl racks`.
pub fn racks(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&[])?;
    let log = load(args.positional(0, "file")?)?;
    let d = failscope::RackDistribution::from_log(&log);
    let mut out = String::new();
    let mut rows: Vec<_> = d.shares().to_vec();
    rows.sort_by_key(|share| std::cmp::Reverse(share.count));
    for share in rows.iter().take(10) {
        let _ = writeln!(
            out,
            "{:<8} {:>4} failures over {:>3} nodes",
            share.rack.to_string(),
            share.count,
            share.nodes
        );
    }
    if d.shares().len() > 10 {
        let _ = writeln!(out, "... ({} racks total)", d.shares().len());
    }
    if let Some(test) = d.uniformity_test() {
        let _ = writeln!(
            out,
            "uniformity: chi2 = {:.1}, dof = {}, p = {:.4} -> {}",
            test.statistic,
            test.dof,
            test.p_value,
            if test.rejects_at(0.01) {
                "non-uniform"
            } else {
                "consistent with uniform"
            }
        );
    }
    Ok(out)
}
