//! `failctl serve`: run `faild`, the long-lived query server.

use std::io::Write as _;

use failapi::QueryEngine;
use failserver::{Endpoint, ServerConfig};
use failtypes::{Error, Result};

use crate::args::ParsedArgs;

/// Resolves the listening endpoint from `--socket`/`--listen`.
pub(crate) fn endpoint_from(args: &ParsedArgs, flag: &str) -> Result<Endpoint> {
    match (args.flag("socket"), args.flag(flag)) {
        (Some(_), Some(_)) => Err(Error::args(format!(
            "pass either --socket or --{flag}, not both"
        ))),
        (Some(path), None) => Ok(Endpoint::unix(path)),
        (None, Some(addr)) => Ok(Endpoint::tcp(addr)),
        (None, None) => Err(Error::args(format!(
            "{} needs --socket PATH or --{flag} ADDR",
            args.command
        ))),
    }
}

/// `failctl serve`.
///
/// Blocks until a client sends the protocol's `shutdown` command, then
/// drains in-flight handlers, persists `.fsidx` snapshots for every log
/// the engine cold-parsed, and returns the run's summary. The
/// `{"v":1,"ready":true,...}` line is printed to stdout the moment the
/// socket is bound so scripts can wait for it before connecting.
pub fn serve(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&["socket", "listen", "max-inflight", "cache-bytes"])?;
    let endpoint = endpoint_from(args, "listen")?;
    let max_inflight: usize = args.flag_or("max-inflight", 4usize)?;
    if max_inflight == 0 {
        return Err(Error::args("--max-inflight must be at least 1"));
    }
    // `--cache-bytes 0` disables render caching entirely (every query
    // re-renders); the default is a 64 MiB LRU budget.
    let cache_bytes: usize = args.flag_or("cache-bytes", failapi::DEFAULT_CACHE_BYTES)?;
    let summary = failserver::serve_with_engine(
        ServerConfig {
            endpoint,
            max_inflight,
        },
        QueryEngine::with_cache_bytes(cache_bytes),
        |bound| {
            println!("{}", failserver::ready_line(bound));
            let _ = std::io::stdout().flush();
        },
    )?;
    Ok(format!(
        "faild: served {} requests over {} connections, persisted {} snapshots\n",
        summary.requests, summary.connections, summary.snapshots_persisted
    ))
}
