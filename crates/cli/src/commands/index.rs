//! `failctl index`: explicit `.fsidx` snapshot management.

use std::fmt::Write as _;

use faillog::ParseOptions;
use failindex::Freshness;
use failtypes::{Error, Result};

use crate::args::ParsedArgs;

/// `failctl index`.
///
/// `build` parses the log and writes a fresh snapshot; `verify` is a
/// read-only freshness check (exit status reflects usability); `stat`
/// prints a snapshot's own metadata without touching the source log.
pub fn index_cmd(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&["threads", "parse-chunk"])?;
    let action = args.positional(0, "build|verify|stat")?;
    let path = args.positional(1, "file")?;
    match action {
        "build" => {
            let parse_opts = ParseOptions::new()
                .threads(failapi::parse_threads(args.flag("threads"))?)
                .chunk_bytes(failapi::parse_chunk_bytes(args.flag("parse-chunk"))?);
            let raw = std::fs::read(path).map_err(|e| Error::run(format!("{path}: {e}")))?;
            let source = failindex::SourceInfo::of_bytes(&raw);
            let log = faillog::load_traced_with(path, None, &parse_opts)
                .map_err(|e| Error::run(format!("{path}: {e}")))?;
            let spath = failindex::snapshot_path(path);
            let bytes = failindex::save(&spath, &failscope::LogView::new(&log), source)?;
            Ok(format!(
                "indexed {} records -> {} ({bytes} bytes)\n",
                log.len(),
                spath.display()
            ))
        }
        "verify" => {
            let spath = failindex::snapshot_path(path);
            match failindex::probe(path)? {
                Freshness::Exact => Ok(format!("{}: exact match\n", spath.display())),
                Freshness::Prefix { tail_bytes } => Ok(format!(
                    "{}: prefix match ({tail_bytes} bytes appended since the snapshot)\n",
                    spath.display()
                )),
                Freshness::Stale { reason } => Err(Error::run(format!(
                    "{}: stale snapshot: {reason}",
                    spath.display()
                ))),
                Freshness::Missing => Err(Error::run(format!(
                    "{path}: no .fsidx snapshot (run `failctl index build {path}`)"
                ))),
            }
        }
        "stat" => {
            let spath = if path.ends_with(".fsidx") {
                std::path::PathBuf::from(path)
            } else {
                failindex::snapshot_path(path)
            };
            let snap = failindex::load(&spath)?;
            let source = snap.source();
            let spec = failscope::FleetIndex::spec(&snap);
            let mut out = String::new();
            let _ = writeln!(out, "snapshot: {}", spath.display());
            let _ = writeln!(out, "format:   fsidx v{}", failindex::FORMAT_VERSION);
            let _ = writeln!(
                out,
                "system:   {} ({} nodes x {} GPUs)",
                spec.name(),
                spec.nodes(),
                spec.gpus_per_node()
            );
            let _ = writeln!(out, "window:   {}", failscope::FleetIndex::window(&snap));
            let _ = writeln!(out, "records:  {}", failscope::FleetIndex::len(&snap));
            let _ = writeln!(
                out,
                "source:   {} bytes, {} lines, crc32 {:08x}",
                source.bytes, source.lines, source.crc32
            );
            Ok(out)
        }
        other => Err(Error::args(format!(
            "unknown index action `{other}` (use build, verify, or stat)"
        ))),
    }
}
