//! The `failctl` subcommands, one module per command family, all
//! returning their output as a `String` so they are directly
//! unit-testable.
//!
//! The analysis commands (`report`, `compare`, `watch`) are thin
//! adapters: they parse flags into the shared [`failapi`] request types
//! and route through [`failapi::QueryEngine`] — the same execution path
//! `faild` serves — so CLI and server output cannot drift.

mod common;
mod compare;
mod generate;
mod index;
mod ops;
mod query;
mod report;
mod serve;
mod watch;

#[cfg(test)]
mod tests;

pub use compare::compare;
pub use generate::{generate, scenario, summary};
pub use index::index_cmd;
pub use ops::{anonymize, availability, checkpoint, plan, racks, spares, staffing, survival};
pub use query::query;
pub use report::report;
pub use serve::serve;
pub use watch::{watch, watch_stream};

use failtypes::{Error, FailureLog, Result};

use crate::args::ParsedArgs;

/// The help text.
pub fn help() -> String {
    "failctl — multi-GPU supercomputer failure-log toolkit

USAGE: failctl <command> [args]

COMMANDS
  generate --system tsubame2|tsubame3 [--seed N] [--out FILE]
      Generate a calibrated failure log (writes failscope-log v1; an
      --out path ending in .gz is written gzip-compressed).
  scenario --nodes N --gpus G --mtbf H --days D [--seed N] [--out FILE]
           [--multi F] [--trend-start X] [--trend-end Y]
      Generate a what-if system's log (trend: rate ramps X -> Y x base).
  summary <FILE>
      One-paragraph structural summary of a log.
  report <FILE | --model tsubame2|tsubame3 [--seed N]> [--threads N]
         [--parse-chunk BYTES] [--where EXPR] [--since T] [--until T]
         [--format text|json] [--sections IDS] [--trace FILE]
         [--index auto|off|require]
      Full five-RQ reliability report (parsing and sections computed in
      parallel; output is identical at any thread count). The input is
      a log file — gzip-compressed .fslog.gz is decoded transparently —
      or a calibrated model generated in-process. --threads also sets
      the parse worker count and --parse-chunk the byte-range chunk
      size the input is split at (default 1 MiB; any value gives
      byte-identical output). --where EXPR keeps only records matching
      a filter expression — e.g. 'category == gpu && ttr > 24' — over
      the fields category, ttr, recovery, time, node, slot, rack,
      gpus, month, with ==, !=, <, <=, >, >=, ~ (substring),
      `in (a, b)`, combined with &&, ||, ! and parentheses; the
      predicate is evaluated during parsing (or against a warm
      snapshot's decoded records), never as a post-pass. --since T and
      --until T are sugar for `time >= T` / `time < T` (until is
      exclusive) and conjoin with --where; T is hours from the window
      start or a YYYY-MM-DD date. --format json emits a {\"v\":1} header
      line, then one NDJSON line per section; --sections picks from:
      header, categories, spatial, involvement, tbf, ttr, availability,
      survival, seasonal, metrics (the pipeline's own runtime
      counters). --trace writes the deterministic NDJSON trace export.
      --index auto serves the report from a validated FILE.fsidx
      snapshot when one exists (skipping parsing entirely on an
      unchanged log, parsing only the appended tail on a grown one) and
      refreshes it after cold parses; require insists on a warm
      snapshot; off (the default) ignores snapshots.
  compare <OLD> <NEW> [--threads N] [--parse-chunk BYTES] [--where EXPR]
          [--since T] [--until T] [--format text|json] [--trace FILE]
          [--index auto|off|require]
      Cross-generation comparison (MTBF/MTTR/PEP factors); inputs may
      be gzip-compressed. --format json emits a {\"v\":1} header line and
      one JSON document. --where/--since/--until filter both inputs as
      for report; --index works as for report, for both inputs.
  index build|verify|stat <FILE> [--threads N] [--parse-chunk BYTES]
      Manage FILE.fsidx snapshots: build parses FILE and writes the
      checksummed snapshot next to it; verify checks the snapshot
      against the log's current bytes (exact or prefix coverage
      passes, stale or missing is an error); stat prints a
      snapshot's metadata without reading the log (FILE may also be
      the .fsidx itself).
  watch <FILE|sim:MODEL> [--follow] [--accel RATE|max] [--seed N]
        [--baseline tsubame2|tsubame3|none] [--window N] [--refresh N]
        [--chunk N] [--max-records N] [--max-idle N] [--inject-mttr F]
        [--threads N] [--parse-chunk BYTES] [--where EXPR]
        [--format text|json] [--sections IDS] [--trace FILE]
        [--index auto|off]
      Stream a log (or an accelerated simulated replay) through the
      online monitor: NDJSON drift alerts against a calibrated
      baseline, plus periodic summaries. A gzip-compressed replay file
      is decoded transparently (non-follow only: --follow requires
      plain text, since appended bytes cannot be observed through a
      compressed member). Records are ingested in chunks of up to
      --chunk (default 256; drift checks run per chunk, partial chunks
      flush on idle/EOF so follow mode never lags); --parse-chunk sets
      the file read-buffer size in bytes. --where EXPR scopes the
      monitor to matching records (report syntax): the detector and
      summaries see only the filtered stream, and every alert line
      carries the expression in a `filter` field. --format json makes
      the whole stream NDJSON (a {\"v\":1} header line, then one line
      per summary section); --sections picks from: overview,
      categories, slots, months. --trace writes the loop's
      ingestion/alert counters as NDJSON. --index auto persists the
      accumulated index as FILE.fsidx on clean shutdown (plain-text
      file sources only, and never combined with --where: snapshots
      always hold unfiltered state), so a later `report --index auto`
      starts warm.
  serve --socket PATH | --listen ADDR [--max-inflight N] [--cache-bytes N]
      Run faild: a long-lived query server holding parsed logs and
      warm .fsidx indexes in memory, answering report/compare/watch/
      metrics queries from many concurrent clients over the versioned
      NDJSON protocol. One event-loop thread multiplexes every
      connection (idle clients cost zero CPU); --max-inflight (default
      4) sizes the worker pool that executes queries. --cache-bytes
      bounds the rendered-output LRU cache (default 64 MiB; 0 disables
      it). Prints a {\"v\":1,\"ready\":true,...} line once the socket is
      bound. Responses are byte-identical to the equivalent CLI
      invocation. A client `shutdown` command stops the server
      gracefully, persisting .fsidx snapshots for every log it
      cold-parsed.
  query --socket PATH | --connect ADDR <report|compare|watch|logs|evict|metrics|ping|shutdown> [args]
      Send one query to a running faild and print the response body.
      report/compare/watch take the same arguments as the local
      commands (minus --trace and --follow), so
      `failctl query --socket S report LOG --format json` prints
      exactly what `failctl report LOG --format json` would. `logs`
      lists the server's cached-log catalog (records, source
      fingerprint, snapshot state, cached render count); `evict LOG`
      (or `evict --model NAME [--seed N]`) drops one source's memoized
      state and render-cache entries without restarting the server.
  anonymize <IN> <OUT> [--key N]
      Rewrite node identities with a keyed permutation.
  checkpoint <FILE> [--cost H]
      Young/Daly checkpoint intervals from the measured MTBF.
  spares <FILE> [--class gpu|cpu|memory|storage|power|board] [--lead-days D] [--risk EPS]
      Spare-pool sizing for a component class.
  availability <FILE>
      Repair overlap and node availability.
  survival <FILE>
      Node time-to-first-failure survival summary.
  staffing <FILE> [--crews N] [--target INFLATION]
      Repair-crew queueing: effective MTTR vs crew count.
  plan <FILE>
      Integrated operations plan (checkpoints, spares, crews, placement).
  racks <FILE>
      Rack-level failure distribution and uniformity test.
  help
      This text.
"
    .to_string()
}

/// Loads a log with default parse options, prefixing errors with the
/// path (parse errors carry their 1-based line number and offending
/// field; the path makes the message directly actionable).
pub(crate) fn load(path: &str) -> Result<FailureLog> {
    faillog::load_traced_with(path, None, &faillog::ParseOptions::default())
        .map_err(|e| Error::run(format!("{path}: {e}")))
}

/// Dispatches a parsed command line.
pub fn dispatch(args: &ParsedArgs) -> Result<String> {
    match args.command.as_str() {
        "generate" => generate(args),
        "scenario" => scenario(args),
        "summary" => summary(args),
        "report" => report(args),
        "compare" => compare(args),
        "index" => index_cmd(args),
        "anonymize" => anonymize(args),
        "checkpoint" => checkpoint(args),
        "spares" => spares(args),
        "availability" => availability(args),
        "survival" => survival(args),
        "staffing" => staffing(args),
        "plan" => plan(args),
        "racks" => racks(args),
        "watch" => watch(args),
        "serve" => serve(args),
        "query" => query(args),
        "help" | "--help" | "-h" => Ok(help()),
        other => Err(Error::run(format!(
            "unknown command `{other}`; try `failctl help`"
        ))),
    }
}
