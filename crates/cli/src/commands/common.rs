//! The flags every analysis command shares, captured once.
//!
//! [`CommonQueryArgs`] holds the raw values of the common query flags
//! (`--threads`, `--where`, `--sections`, `--format`, `--index`,
//! `--trace`, `--parse-chunk`, plus the `--since`/`--until` time
//! sugar) and turns them into the shared [`failapi`] request types.
//! `report`, `compare`, and `watch` all go through here, so a flag
//! cannot gain command-specific parsing or drift in its error message.

use failtrace::Collector;
use failtypes::{Error, Result};

use crate::args::ParsedArgs;

/// The flags shared by every analysis command (`watch` additionally
/// keeps its own source-specific flags).
pub const COMMON_QUERY_FLAGS: &[&str] = &[
    "threads",
    "where",
    "sections",
    "format",
    "index",
    "trace",
    "parse-chunk",
];

/// The `--since`/`--until` time-bound sugar (report and compare only;
/// watch has no retrospective window to clip).
pub const TIME_FLAGS: &[&str] = &["since", "until"];

/// Raw values of the common query flags, exactly as given on the
/// command line. Values stay raw here because downstream diagnostics
/// quote them verbatim; [`CommonQueryArgs::apply_query`] and
/// [`CommonQueryArgs::apply_watch`] are where they become typed.
#[derive(Debug, Clone, Default)]
pub struct CommonQueryArgs {
    /// Raw `--threads`.
    pub threads: Option<String>,
    /// Raw `--parse-chunk`.
    pub parse_chunk: Option<String>,
    /// Raw `--where` expression.
    pub where_expr: Option<String>,
    /// Raw `--since` bound.
    pub since: Option<String>,
    /// Raw `--until` bound.
    pub until: Option<String>,
    /// Raw `--format`.
    pub format: Option<String>,
    /// Raw `--sections` selection.
    pub sections: Option<String>,
    /// Raw `--index` mode.
    pub index: Option<String>,
    /// `--trace` output path.
    pub trace: Option<String>,
}

impl CommonQueryArgs {
    /// Captures the common flags from a parsed command line.
    pub fn from_args(args: &ParsedArgs) -> Self {
        let take = |key: &str| args.flag(key).map(String::from);
        CommonQueryArgs {
            threads: take("threads"),
            parse_chunk: take("parse-chunk"),
            where_expr: take("where"),
            since: take("since"),
            until: take("until"),
            format: take("format"),
            sections: take("sections"),
            index: take("index"),
            trace: take("trace"),
        }
    }

    /// Applies the common flags to a report/compare request, parsing
    /// the typed ones with the canonical messages.
    ///
    /// # Errors
    ///
    /// Fails on an unparsable `--threads`, `--format`, `--parse-chunk`,
    /// or `--index` value.
    pub fn apply_query(&self, mut req: failapi::QueryRequest) -> Result<failapi::QueryRequest> {
        req.opts.threads = failapi::parse_threads(self.threads.as_deref())?;
        req.opts.format = failapi::parse_format(self.format.as_deref())?;
        req.opts.chunk_bytes = failapi::parse_chunk_bytes(self.parse_chunk.as_deref())?;
        req.opts.index = failapi::parse_index(self.index.as_deref())?;
        req.opts.where_expr = self.where_expr.clone();
        req.opts.since = self.since.clone();
        req.opts.until = self.until.clone();
        req.opts.sections = self.sections.clone();
        Ok(req)
    }

    /// Applies the common flags to a watch request. Most values stay
    /// raw (watch's flag-combination diagnostics quote them verbatim);
    /// only `--format` and `--index` are parsed here.
    ///
    /// # Errors
    ///
    /// Fails on an unparsable `--format` or `--index` value.
    pub fn apply_watch(&self, req: &mut failapi::WatchRequest) -> Result<()> {
        req.threads = self.threads.clone();
        req.parse_chunk = self.parse_chunk.clone();
        req.where_expr = self.where_expr.clone();
        req.sections = self.sections.clone();
        req.format = failapi::parse_format(self.format.as_deref())?;
        req.index = failapi::parse_index(self.index.as_deref())?;
        Ok(())
    }

    /// Writes the collector's deterministic NDJSON export to the
    /// `--trace` path (a no-op when the flag is absent).
    ///
    /// # Errors
    ///
    /// Fails when the trace file cannot be written.
    pub fn write_trace(&self, trace: &Collector) -> Result<()> {
        if let Some(path) = &self.trace {
            std::fs::write(path, trace.export()).map_err(|e| Error::io("writing trace", e))?;
        }
        Ok(())
    }
}

/// Composes a command's allowed-flag list: the common query flags,
/// then `extra`, preserving order for the `unknown flag` message.
pub fn allowed_flags(with_time: bool, extra: &[&'static str]) -> Vec<&'static str> {
    let mut allowed: Vec<&'static str> = COMMON_QUERY_FLAGS.to_vec();
    if with_time {
        allowed.extend_from_slice(TIME_FLAGS);
    }
    allowed.extend_from_slice(extra);
    allowed
}
