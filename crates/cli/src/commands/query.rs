//! `failctl query`: a one-shot client for a running `faild`.
//!
//! `failctl query --socket S report LOG --format json` prints exactly
//! what `failctl report LOG --format json` would — the sub-command
//! lines reuse the same flag parsing and the server runs the same
//! [`failapi::QueryEngine`] path.

use failapi::{wire, QueryRequest};
use failtypes::{Error, Result};

use super::common::{allowed_flags, CommonQueryArgs};
use super::report::report_source_at;
use super::serve::endpoint_from;
use crate::args::ParsedArgs;

/// `failctl query`.
pub fn query(args: &ParsedArgs) -> Result<String> {
    let sub = args.positional(0, "report|compare|watch|logs|evict|metrics|ping|shutdown")?;
    let line = match sub {
        "report" => {
            args.reject_unknown_flags(&query_flags(true, &["model", "seed"]))?;
            let req = CommonQueryArgs::from_args(args)
                .apply_query(QueryRequest::report(report_source_at(args, 1)?))?;
            wire::encode_query(1, &req)
        }
        "compare" => {
            args.reject_unknown_flags(&{
                let mut allowed = query_flags(true, &[]);
                allowed.retain(|f| *f != "sections");
                allowed
            })?;
            let req = CommonQueryArgs::from_args(args).apply_query(QueryRequest::compare(
                args.positional(1, "old")?,
                args.positional(2, "new")?,
            ))?;
            wire::encode_query(1, &req)
        }
        "watch" => {
            args.reject_unknown_flags(&query_flags(
                false,
                &[
                    "follow",
                    "accel",
                    "seed",
                    "inject-mttr",
                    "baseline",
                    "window",
                    "refresh",
                    "chunk",
                    "max-records",
                    "max-idle",
                ],
            ))?;
            if args.switch("follow") {
                return Err(Error::args(
                    "--follow does not apply over the protocol (the response is one buffered document; watch a file locally instead)",
                ));
            }
            let mut req = failapi::WatchRequest::new(args.positional(1, "path|sim:MODEL")?);
            let take = |key: &str| args.flag(key).map(String::from);
            req.accel = take("accel");
            req.seed = take("seed");
            req.inject_mttr = take("inject-mttr");
            req.baseline = take("baseline");
            req.window = take("window");
            req.refresh = take("refresh");
            req.chunk = take("chunk");
            req.max_records = take("max-records");
            req.max_idle = take("max-idle");
            CommonQueryArgs::from_args(args).apply_watch(&mut req)?;
            wire::encode_watch(1, &req)
        }
        "evict" => {
            args.reject_unknown_flags(&["socket", "connect", "model", "seed"])?;
            wire::encode_evict(1, &report_source_at(args, 1)?)
        }
        "logs" | "metrics" | "ping" | "shutdown" => {
            args.reject_unknown_flags(&["socket", "connect"])?;
            wire::encode_simple(1, sub)
        }
        other => {
            return Err(Error::args(format!(
                "unknown query sub-command `{other}` (use report, compare, watch, logs, evict, metrics, ping, or shutdown)"
            )))
        }
    };
    let endpoint = endpoint_from(args, "connect")?;
    let resp = failserver::client::roundtrip(&endpoint, &line)?;
    Ok(resp.output)
}

/// The common query flags plus the transport flags; `--trace` is
/// excluded because the trace lives in the server's collector (query it
/// with the `metrics` sub-command instead).
fn query_flags(with_time: bool, extra: &[&'static str]) -> Vec<&'static str> {
    let mut allowed: Vec<&'static str> = allowed_flags(with_time, extra);
    allowed.retain(|f| *f != "trace");
    allowed.extend_from_slice(&["socket", "connect"]);
    allowed
}
