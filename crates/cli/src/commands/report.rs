//! `failctl report`: a thin adapter over [`failapi::QueryEngine`].

use failapi::{QueryEngine, QueryRequest, QuerySource};
use failtypes::{Error, Result};

use super::common::{allowed_flags, CommonQueryArgs};
use crate::args::ParsedArgs;

/// Resolves the report's source: a log file (the positional at `idx`)
/// or `--model NAME [--seed N]`, which generates the calibrated log
/// in-process. `query report` reuses this with its sub-command-shifted
/// positional index.
pub(crate) fn report_source_at(args: &ParsedArgs, idx: usize) -> Result<QuerySource> {
    match args.flag("model") {
        Some(name) => {
            if args.positional.len() > idx {
                return Err(Error::args("pass either a log file or --model, not both"));
            }
            Ok(QuerySource::model(name, args.flag_or("seed", 42u64)?))
        }
        None => {
            if let Some(seed) = args.flag("seed") {
                return Err(Error::args(format!(
                    "--seed {seed} only applies with --model"
                )));
            }
            Ok(QuerySource::file(args.positional(idx, "file")?))
        }
    }
}

/// `failctl report`.
///
/// Every run records pipeline tracing — generation/parsing, index
/// construction, per-section rendering — so `--sections metrics`
/// always has data, and `--trace PATH` writes the deterministic NDJSON
/// export (byte-identical at any `--threads` value).
pub fn report(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&allowed_flags(true, &["model", "seed"]))?;
    let common = CommonQueryArgs::from_args(args);
    let req = common.apply_query(QueryRequest::report(report_source_at(args, 0)?))?;
    let outcome = QueryEngine::new().execute(&req)?;
    common.write_trace(&outcome.trace)?;
    Ok(outcome.output)
}
