//! `failctl generate` / `scenario` / `summary`: producing calibrated
//! and what-if logs, and the one-paragraph structural summary.

use std::fmt::Write as _;

use failscope::TbfAnalysis;
use failsim::{ScenarioBuilder, Simulator, SystemModel};
use failtypes::{Error, FailureLog, Generation, Result};

use crate::args::ParsedArgs;

/// `failctl generate`.
pub fn generate(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&["system", "seed", "out"])?;
    let system = args.flag("system").unwrap_or("tsubame3");
    let generation = match system {
        "tsubame2" => Generation::Tsubame2,
        "tsubame3" => Generation::Tsubame3,
        other => {
            return Err(Error::run(format!(
                "unknown system `{other}` (use tsubame2 or tsubame3)"
            )))
        }
    };
    let seed: u64 = args.flag_or("seed", 42)?;
    let log = Simulator::new(SystemModel::for_generation(generation), seed).generate()?;
    finish_generate(args, log)
}

/// `failctl scenario`.
pub fn scenario(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&[
        "nodes",
        "gpus",
        "mtbf",
        "days",
        "seed",
        "out",
        "multi",
        "trend-start",
        "trend-end",
    ])?;
    let mut builder = ScenarioBuilder::new("failctl-scenario")
        .nodes(args.flag_or("nodes", 540u32)?)
        .gpus_per_node(args.flag_or("gpus", 4u8)?)
        .system_mtbf_hours(args.flag_or("mtbf", 72.0f64)?)
        .window_days(args.flag_or("days", 365u32)?);
    if let Some(raw) = args.flag("multi") {
        let f: f64 = raw
            .parse()
            .map_err(|_| Error::args(format!("invalid --multi value `{raw}`")))?;
        builder = builder.multi_gpu_fraction(f);
    }
    let trend_start: f64 = args.flag_or("trend-start", 1.0)?;
    let trend_end: f64 = args.flag_or("trend-end", 1.0)?;
    builder = builder.reliability_trend(trend_start, trend_end);
    let model = builder
        .build()
        .ok_or_else(|| Error::run("scenario parameters out of range"))?;
    let seed: u64 = args.flag_or("seed", 42)?;
    let log = Simulator::new(model, seed).generate()?;
    finish_generate(args, log)
}

fn finish_generate(args: &ParsedArgs, log: FailureLog) -> Result<String> {
    match args.flag("out") {
        Some(path) => {
            faillog::save(path, &log)?;
            Ok(format!("wrote {} failures to {path}\n", log.len()))
        }
        None => Ok(faillog::to_string(&log)?),
    }
}

/// `failctl summary`.
pub fn summary(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&[])?;
    let log = super::load(args.positional(0, "file")?)?;
    let s = faillog::summarize(&log);
    let mut out = String::new();
    let _ = writeln!(out, "system:            {}", s.system);
    let _ = writeln!(out, "window:            {} ({:.0} days)", log.window(), s.window_days);
    let _ = writeln!(out, "failures:          {}", s.failures);
    let _ = writeln!(out, "failing nodes:     {}", s.failing_nodes);
    let _ = writeln!(out, "gpu failures:      {}", s.gpu_failures);
    let _ = writeln!(out, "multi-gpu:         {}", s.multi_gpu_failures);
    if let Some(tbf) = TbfAnalysis::from_log(&log) {
        let _ = writeln!(out, "mtbf:              {:.1} h", tbf.mtbf_hours());
    }
    if let Some(ttr) = failscope::TtrAnalysis::from_log(&log) {
        let _ = writeln!(out, "mttr:              {:.1} h", ttr.mttr_hours());
    }
    Ok(out)
}
