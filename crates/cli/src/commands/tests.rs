use super::*;

use failsim::{Simulator, SystemModel};
use failtypes::Result;

use crate::args::ParsedArgs;

fn parse(words: &[&str]) -> ParsedArgs {
    ParsedArgs::parse(words.iter().map(|s| s.to_string())).expect("parses")
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("failctl-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn generate_to_stdout_and_file() {
    let text = generate(&parse(&["generate", "--system", "tsubame3", "--seed", "7"]))
        .expect("generates");
    assert!(text.starts_with("# failscope-log v1"));
    let path = temp_path("gen.fslog");
    let msg = generate(&parse(&[
        "generate",
        "--out",
        path.to_str().expect("utf8 path"),
    ]))
    .expect("generates");
    assert!(msg.contains("338 failures"));
    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn generate_rejects_unknown_system_and_flags() {
    assert!(generate(&parse(&["generate", "--system", "cray"])).is_err());
    assert!(generate(&parse(&["generate", "--sytem", "tsubame2"])).is_err());
}

#[test]
fn full_pipeline_through_files() {
    let log_path = temp_path("pipeline.fslog");
    let path = log_path.to_str().expect("utf8 path");
    generate(&parse(&["generate", "--system", "tsubame2", "--out", path]))
        .expect("generates");

    let s = summary(&parse(&["summary", path])).expect("summarizes");
    assert!(s.contains("failures:          897"));
    assert!(s.contains("mtbf:"));

    let r = report(&parse(&["report", path])).expect("reports");
    assert!(r.contains("Failure categories"));
    let r1 = report(&parse(&["report", path, "--threads", "1"])).expect("reports");
    let r4 = report(&parse(&["report", path, "--threads", "4"])).expect("reports");
    assert_eq!(r, r1, "default thread count changes nothing");
    assert_eq!(r1, r4, "thread count changes the report");
    assert!(report(&parse(&["report", path, "--thread", "4"])).is_err());

    let c = checkpoint(&parse(&["checkpoint", path, "--cost", "0.1"])).expect("plans");
    assert!(c.contains("daly interval"));

    let sp = spares(&parse(&["spares", path, "--class", "gpu"])).expect("sizes");
    assert!(sp.contains("required spares"));

    let av = availability(&parse(&["availability", path])).expect("analyzes");
    assert!(av.contains("repair overlap"));

    let sv = survival(&parse(&["survival", path])).expect("fits");
    assert!(sv.contains("nodes that failed"));

    let st = staffing(&parse(&["staffing", path])).expect("simulates");
    assert!(st.contains("queueing overhead"));
    let st = staffing(&parse(&["staffing", path, "--crews", "2"])).expect("simulates");
    assert!(st.contains("effective mttr"));
    assert!(staffing(&parse(&["staffing", path, "--target", "0.5"])).is_err());

    let pl = plan(&parse(&["plan", path])).expect("plans");
    assert!(pl.contains("Operations plan"));
    assert!(pl.contains("repair crews"));

    let rk = racks(&parse(&["racks", path])).expect("analyzes");
    assert!(rk.contains("uniformity"));
    assert!(rk.contains("non-uniform"));

    let anon_path = temp_path("pipeline-anon.fslog");
    let anon = anonymize(&parse(&[
        "anonymize",
        path,
        anon_path.to_str().expect("utf8 path"),
        "--key",
        "9",
    ]))
    .expect("anonymizes");
    assert!(anon.contains("897 records"));

    std::fs::remove_file(&log_path).expect("cleanup");
    std::fs::remove_file(&anon_path).expect("cleanup");
}

#[test]
fn compare_two_generations() {
    let p2 = temp_path("cmp2.fslog");
    let p3 = temp_path("cmp3.fslog");
    generate(&parse(&["generate", "--system", "tsubame2", "--out", p2.to_str().unwrap()]))
        .expect("generates");
    generate(&parse(&["generate", "--system", "tsubame3", "--out", p3.to_str().unwrap()]))
        .expect("generates");
    let out = compare(&parse(&[
        "compare",
        p2.to_str().unwrap(),
        p3.to_str().unwrap(),
    ]))
    .expect("compares");
    assert!(out.contains("MTBF"));
    std::fs::remove_file(&p2).expect("cleanup");
    std::fs::remove_file(&p3).expect("cleanup");
}

#[test]
fn scenario_generation() {
    let out = scenario(&parse(&[
        "scenario", "--nodes", "64", "--gpus", "8", "--mtbf", "30", "--days", "120",
    ]))
    .expect("generates");
    assert!(out.contains("gpus-per-node: 8"));
    // Out-of-range parameters fail cleanly.
    assert!(scenario(&parse(&["scenario", "--gpus", "9"])).is_err());
    assert!(scenario(&parse(&["scenario", "--multi", "1.5"])).is_err());
    assert!(scenario(&parse(&["scenario", "--trend-start", "0"])).is_err());
    // A wear-out trend generates successfully.
    assert!(scenario(&parse(&[
        "scenario", "--trend-start", "0.5", "--trend-end", "2.0",
    ]))
    .is_ok());
}

#[test]
fn spares_flag_validation() {
    let path = temp_path("spares.fslog");
    generate(&parse(&["generate", "--out", path.to_str().unwrap()])).expect("generates");
    assert!(spares(&parse(&["spares", path.to_str().unwrap(), "--class", "quantum"]))
        .is_err());
    assert!(spares(&parse(&["spares", path.to_str().unwrap(), "--risk", "2.0"])).is_err());
    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn dispatch_routes_and_rejects() {
    assert!(dispatch(&parse(&["help"])).expect("help").contains("USAGE"));
    assert!(dispatch(&parse(&["frobnicate"])).is_err());
    // Missing file errors are reported, not panicked.
    assert!(dispatch(&parse(&["report", "/no/such/file"])).is_err());
}

#[test]
fn serve_and_query_validate_their_transport_flags() {
    let msg = |r: Result<String>| r.unwrap_err().to_string();
    let m = msg(serve(&parse(&["serve"])));
    assert!(m.contains("serve needs --socket PATH or --listen ADDR"), "{m}");
    let m = msg(serve(&parse(&["serve", "--socket", "a", "--listen", "b"])));
    assert!(m.contains("not both"), "{m}");
    let m = msg(serve(&parse(&["serve", "--socket", "a", "--max-inflight", "0"])));
    assert!(m.contains("--max-inflight must be at least 1"), "{m}");
    let m = msg(query(&parse(&["query"])));
    assert!(
        m.contains("report|compare|watch|logs|evict|metrics|ping|shutdown"),
        "{m}"
    );
    let m = msg(query(&parse(&["query", "frobnicate", "--socket", "a"])));
    assert!(m.contains("unknown query sub-command `frobnicate`"), "{m}");
    let m = msg(query(&parse(&["query", "ping"])));
    assert!(m.contains("query needs --socket PATH or --connect ADDR"), "{m}");
    // Flags that cannot travel over the protocol are rejected before
    // any connection is attempted.
    let m = msg(query(&parse(&[
        "query", "report", "x.fslog", "--socket", "a", "--trace", "t.ndjson",
    ])));
    assert!(m.contains("unknown flag --trace"), "{m}");
    let m = msg(query(&parse(&[
        "query", "watch", "sim:tsubame3", "--socket", "a", "--follow",
    ])));
    assert!(m.contains("--follow does not apply over the protocol"), "{m}");
}

#[test]
fn load_errors_carry_path_line_and_field() {
    let path = temp_path("broken.fslog");
    std::fs::write(
        &path,
        "# failscope-log v1\n# generation: Tsubame-3\n# name: Tsubame-3\n# nodes: 540\n\
         # gpus-per-node: 4\n# window: 2017-05-09..2020-02-22\n\
         id,time_h,ttr_h,category,node,gpus,locus\n0,12.0,oops,GPU,5,0,\n",
    )
    .expect("write");
    let err = load(path.to_str().unwrap()).unwrap_err().to_string();
    assert!(err.contains("broken.fslog"), "{err}");
    assert!(err.contains("line 8"), "{err}");
    assert!(err.contains("ttr_h"), "{err}");
    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn report_formats_and_section_selection() {
    let path = temp_path("fmt.fslog");
    let p = path.to_str().unwrap();
    generate(&parse(&["generate", "--system", "tsubame3", "--out", p])).expect("generates");

    // JSON report: the v1 header line, then one NDJSON line per
    // section, thread-identical.
    let j1 = report(&parse(&["report", p, "--format", "json", "--threads", "1"]))
        .expect("reports");
    let j4 = report(&parse(&["report", p, "--format", "json", "--threads", "4"]))
        .expect("reports");
    assert_eq!(j1, j4);
    assert_eq!(j1.lines().count(), failscope::SECTIONS.len() + 1);
    assert!(j1.starts_with("{\"v\":1,\"kind\":\"report\"}\n"), "{j1}");
    assert!(
        j1.lines().nth(1).unwrap().starts_with(r#"{"id":"header""#),
        "{j1}"
    );
    assert!(j1.contains(r#""system":"Tsubame-3""#), "{j1}");

    // Section selection works for both formats and rejects unknowns.
    let picked = report(&parse(&["report", p, "--sections", "tbf,ttr"])).expect("reports");
    assert!(picked.contains("Time between failures"));
    assert!(!picked.contains("Failure categories"));
    let picked_json = report(&parse(&[
        "report", p, "--sections", "tbf,ttr", "--format", "json",
    ]))
    .expect("reports");
    assert_eq!(picked_json.lines().count(), 3);
    let err = report(&parse(&["report", p, "--sections", "tbf,bogus"])).unwrap_err();
    assert!(err.to_string().contains("unknown section `bogus`"), "{err}");
    assert!(report(&parse(&["report", p, "--format", "yaml"])).is_err());

    // Comparison JSON is the v1 header line plus a single document.
    let cj = compare(&parse(&["compare", p, p, "--format", "json"])).expect("compares");
    assert_eq!(cj.lines().count(), 2);
    assert!(cj.starts_with("{\"v\":1,\"kind\":\"compare\"}\n"), "{cj}");
    assert!(cj.contains(r#""mttr_hours":{"older":"#), "{cj}");

    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn gzip_report_matches_plain_end_to_end() {
    let plain = temp_path("gzcmp.fslog");
    let packed = temp_path("gzcmp.fslog.gz");
    let p = plain.to_str().unwrap();
    let g = packed.to_str().unwrap();
    generate(&parse(&["generate", "--system", "tsubame3", "--out", p])).expect("generates");
    generate(&parse(&["generate", "--system", "tsubame3", "--out", g])).expect("generates");
    // The .gz output really is gzip (magic bytes) and smaller.
    let raw = std::fs::read(&packed).expect("read gz");
    assert_eq!(&raw[..2], &[0x1F, 0x8B], "not gzip output");
    let plain_len = std::fs::metadata(&plain).expect("stat").len() as usize;
    assert!(raw.len() * 10 < plain_len * 8, "{} vs {plain_len}", raw.len());
    // Same report from compressed and plain input, both formats.
    let rp = report(&parse(&["report", p])).expect("reports plain");
    let rg = report(&parse(&["report", g])).expect("reports gzip");
    assert_eq!(rp, rg, "gzip input changed the report");
    let jp = report(&parse(&["report", p, "--format", "json"])).expect("reports");
    let jg = report(&parse(&["report", g, "--format", "json"])).expect("reports");
    assert_eq!(jp, jg);
    // compare accepts compressed input too.
    let c = compare(&parse(&["compare", g, p])).expect("compares");
    assert!(c.contains("MTBF"));
    std::fs::remove_file(&plain).expect("cleanup");
    std::fs::remove_file(&packed).expect("cleanup");
}

#[test]
fn parse_chunk_flag_changes_nothing_but_is_validated() {
    let path = temp_path("chunked.fslog");
    let p = path.to_str().unwrap();
    generate(&parse(&["generate", "--system", "tsubame2", "--out", p])).expect("generates");
    // Analysis output is identical for every chunk size and thread
    // count. The full report is only compared at a fixed chunk size
    // across threads, because its metrics section truthfully
    // reports `parse.chunks`, which does change with --parse-chunk.
    let analysis = "header,categories,spatial,involvement,tbf,ttr,availability,survival,seasonal";
    let base = report(&parse(&["report", p, "--sections", analysis])).expect("reports");
    for chunk in ["1", "4096", "1048576"] {
        for threads in ["1", "4"] {
            let out = report(&parse(&[
                "report", p, "--sections", analysis,
                "--parse-chunk", chunk, "--threads", threads,
            ]))
            .expect("reports");
            assert_eq!(out, base, "--parse-chunk {chunk} --threads {threads}");
        }
    }
    let full1 = report(&parse(&["report", p, "--parse-chunk", "64", "--threads", "1"]))
        .expect("reports");
    let full4 = report(&parse(&["report", p, "--parse-chunk", "64", "--threads", "4"]))
        .expect("reports");
    assert_eq!(full1, full4, "metrics must stay thread-invariant");
    let c = compare(&parse(&["compare", p, p, "--parse-chunk", "512"])).expect("compares");
    assert!(c.contains("MTBF"));
    assert!(report(&parse(&["report", p, "--parse-chunk", "0"])).is_err());
    assert!(report(&parse(&["report", p, "--parse-chunk", "lots"])).is_err());
    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn watch_reads_gzip_replay_but_rejects_follow_on_it() {
    let packed = temp_path("watch-replay.fslog.gz");
    let g = packed.to_str().unwrap();
    generate(&parse(&["generate", "--system", "tsubame2", "--out", g])).expect("generates");
    let out = watch(&parse(&["watch", g, "--baseline", "tsubame2"])).expect("watches");
    assert!(out.contains("897 records"), "{out}");
    let err = watch(&parse(&["watch", g, "--follow"])).unwrap_err();
    assert!(err.to_string().contains("--follow requires plain text"), "{err}");
    // --parse-chunk tunes the file read buffer; sim sources reject it.
    let tuned = watch(&parse(&[
        "watch", g, "--baseline", "tsubame2", "--parse-chunk", "4096",
    ]))
    .expect("watches");
    assert_eq!(out, tuned);
    assert!(watch(&parse(&["watch", "sim:tsubame3", "--parse-chunk", "4096"])).is_err());
    std::fs::remove_file(&packed).expect("cleanup");
}

#[test]
fn watch_json_format_and_sections() {
    let out = watch(&parse(&[
        "watch", "sim:tsubame3", "--format", "json", "--max-records", "50",
    ]))
    .expect("watches");
    // Pure NDJSON: the v1 header first, then every line an object.
    assert!(out.starts_with("{\"v\":1,\"kind\":\"watch\"}\n"), "{out}");
    assert!(out.lines().all(|l| l.starts_with('{')), "{out}");
    assert!(out.contains(r#"{"id":"overview","title":"Stream overview","data":{"#));

    let picked = watch(&parse(&[
        "watch", "sim:tsubame3", "--sections", "overview", "--max-records", "50",
    ]))
    .expect("watches");
    assert!(picked.contains("# summary @"));
    assert!(!picked.contains("#   categories:"));
    assert!(watch(&parse(&["watch", "sim:tsubame3", "--sections", "nope"])).is_err());
}

/// The analysis sections (everything except `metrics`, whose
/// counters truthfully differ between a parse and a snapshot hit).
const ANALYSIS: &str =
    "header,categories,spatial,involvement,tbf,ttr,availability,survival,seasonal";

#[test]
fn index_lifecycle_and_warm_reports_match_cold_byte_for_byte() {
    let path = temp_path("idx.fslog");
    let p = path.to_str().unwrap();
    let spath = format!("{p}.fsidx");
    generate(&parse(&["generate", "--system", "tsubame2", "--out", p])).expect("generates");

    // No snapshot yet: require refuses, verify reports it missing.
    let err = report(&parse(&["report", p, "--index", "require"])).unwrap_err();
    assert!(err.to_string().contains("no warm .fsidx snapshot"), "{err}");
    let err = index_cmd(&parse(&["index", "verify", p])).unwrap_err();
    assert!(err.to_string().contains("no .fsidx snapshot"), "{err}");
    assert!(report(&parse(&["report", p, "--index", "sometimes"])).is_err());

    // Build, then inspect.
    let built = index_cmd(&parse(&["index", "build", p])).expect("builds");
    assert!(built.contains("indexed 897 records"), "{built}");
    let v = index_cmd(&parse(&["index", "verify", p])).expect("verifies");
    assert!(v.contains("exact match"), "{v}");
    let st = index_cmd(&parse(&["index", "stat", p])).expect("stats");
    assert!(st.contains("records:  897"), "{st}");
    assert!(st.contains("Tsubame-2"), "{st}");
    let st2 = index_cmd(&parse(&["index", "stat", &spath])).expect("stats");
    assert_eq!(st, st2, "stat accepts the .fsidx path directly");
    assert!(index_cmd(&parse(&["index", "rebuild", p])).is_err());

    // Warm report output is byte-identical to cold, at 1 and 4
    // threads, for text and JSON.
    let cold = report(&parse(&["report", p, "--sections", ANALYSIS, "--index", "off"]))
        .expect("reports");
    for threads in ["1", "4"] {
        let warm = report(&parse(&[
            "report", p, "--sections", ANALYSIS, "--index", "require", "--threads", threads,
        ]))
        .expect("reports");
        assert_eq!(warm, cold, "--threads {threads}");
    }
    let cold_json = report(&parse(&[
        "report", p, "--sections", ANALYSIS, "--format", "json",
    ]))
    .expect("reports");
    let warm_json = report(&parse(&[
        "report", p, "--sections", ANALYSIS, "--format", "json", "--index", "require",
    ]))
    .expect("reports");
    assert_eq!(warm_json, cold_json);

    // The warm run parsed zero records: its trace has the snapshot
    // hit and no parse counters at all.
    let tp = temp_path("idx-warm.ndjson");
    report(&parse(&[
        "report", p, "--index", "require", "--trace", tp.to_str().unwrap(),
    ]))
    .expect("reports");
    let trace = std::fs::read_to_string(&tp).expect("trace written");
    assert!(
        trace.contains(r#""stage":"index.snapshot_hit","value":1"#),
        "{trace}"
    );
    assert!(!trace.contains("parse.records"), "{trace}");

    // Clipping composes with a warm snapshot (zero parsing there too).
    let cold_clip = report(&parse(&[
        "report", p, "--until", "1000", "--sections", ANALYSIS,
    ]))
    .expect("reports");
    let warm_clip = report(&parse(&[
        "report", p, "--until", "1000", "--sections", ANALYSIS, "--index", "require",
    ]))
    .expect("reports");
    assert_eq!(warm_clip, cold_clip);

    // compare accepts --index and matches the cold comparison.
    let c_cold = compare(&parse(&["compare", p, p])).expect("compares");
    let c_warm = compare(&parse(&["compare", p, p, "--index", "require"])).expect("compares");
    assert_eq!(c_warm, c_cold);

    // --index is rejected where it cannot apply.
    assert!(report(&parse(&["report", "--model", "tsubame2", "--index", "auto"])).is_err());

    std::fs::remove_file(&path).expect("cleanup");
    std::fs::remove_file(&spath).expect("cleanup");
}

#[test]
fn index_auto_cold_builds_then_extends_over_growth() {
    let path = temp_path("idx-grow.fslog");
    let p = path.to_str().unwrap();
    let spath = format!("{p}.fsidx");
    let log = Simulator::new(SystemModel::tsubame2(), 42).generate().expect("simulates");
    let text = faillog::to_string(&log).expect("serializes");
    let cut = text[..text.len() / 2].rfind('\n').expect("has lines") + 1;
    std::fs::write(&path, &text[..cut]).expect("write prefix");

    // First auto run parses cold and leaves a snapshot behind.
    let first = report(&parse(&["report", p, "--sections", ANALYSIS, "--index", "auto"]))
        .expect("reports");
    let v = index_cmd(&parse(&["index", "verify", p])).expect("verifies");
    assert!(v.contains("exact match"), "{v}");

    // The log grows; verify sees a usable prefix, and the next auto
    // run extends instead of re-parsing, matching a cold rebuild.
    std::fs::write(&path, &text).expect("write full");
    let v = index_cmd(&parse(&["index", "verify", p])).expect("verifies");
    assert!(v.contains("prefix match"), "{v}");
    let tp = temp_path("idx-grow.ndjson");
    let warm = report(&parse(&[
        "report", p, "--sections", ANALYSIS, "--index", "auto",
        "--trace", tp.to_str().unwrap(),
    ]))
    .expect("reports");
    let cold = report(&parse(&["report", p, "--sections", ANALYSIS, "--index", "off"]))
        .expect("reports");
    assert_eq!(warm, cold);
    assert_ne!(warm, first, "growth must change the report");
    let trace = std::fs::read_to_string(&tp).expect("trace written");
    assert!(
        trace.contains(r#""stage":"index.snapshot_extend","value":1"#),
        "{trace}"
    );
    assert!(!trace.contains("parse.records"), "{trace}");
    // ... and the rewritten snapshot now covers the whole log.
    let v = index_cmd(&parse(&["index", "verify", p])).expect("verifies");
    assert!(v.contains("exact match"), "{v}");

    std::fs::remove_file(&path).expect("cleanup");
    std::fs::remove_file(&spath).expect("cleanup");
}

#[test]
fn watch_index_auto_persists_a_snapshot_on_clean_shutdown() {
    let path = temp_path("watch-idx.fslog");
    let p = path.to_str().unwrap();
    let spath = format!("{p}.fsidx");
    generate(&parse(&["generate", "--system", "tsubame2", "--out", p])).expect("generates");

    let out = watch(&parse(&[
        "watch", p, "--baseline", "tsubame2", "--index", "auto",
    ]))
    .expect("watches");
    assert!(out.contains("897 records"), "{out}");
    let v = index_cmd(&parse(&["index", "verify", p])).expect("verifies");
    assert!(v.contains("exact match"), "{v}");

    // The watch-built snapshot serves a warm report identical to cold.
    let warm = report(&parse(&["report", p, "--sections", ANALYSIS, "--index", "require"]))
        .expect("reports");
    let cold = report(&parse(&["report", p, "--sections", ANALYSIS])).expect("reports");
    assert_eq!(warm, cold);

    // Sim sources and require mode are rejected; gzip input writes
    // no snapshot (progress counts decoded bytes, not raw ones).
    assert!(watch(&parse(&["watch", "sim:tsubame3", "--index", "auto"])).is_err());
    assert!(watch(&parse(&["watch", p, "--index", "require"])).is_err());
    let packed = temp_path("watch-idx.fslog.gz");
    let g = packed.to_str().unwrap();
    generate(&parse(&["generate", "--system", "tsubame2", "--out", g])).expect("generates");
    watch(&parse(&["watch", g, "--baseline", "tsubame2", "--index", "auto"]))
        .expect("watches");
    assert!(!std::path::Path::new(&format!("{g}.fsidx")).exists());

    std::fs::remove_file(&path).expect("cleanup");
    std::fs::remove_file(&spath).expect("cleanup");
    std::fs::remove_file(&packed).expect("cleanup");
}

#[test]
fn report_from_model_emits_deterministic_trace() {
    let t1 = temp_path("model-t1.ndjson");
    let t4 = temp_path("model-t4.ndjson");
    let base = ["report", "--model", "tsubame2", "--seed", "42"];
    let with = |trace: &str, threads: &str| {
        let mut words: Vec<&str> = base.to_vec();
        words.extend(["--trace", trace, "--threads", threads]);
        report(&parse(&words)).expect("reports")
    };
    let r1 = with(t1.to_str().unwrap(), "1");
    let r4 = with(t4.to_str().unwrap(), "4");
    assert_eq!(r1, r4, "report must be thread-identical");
    assert!(r1.contains("Failure categories"));
    let trace1 = std::fs::read_to_string(&t1).expect("trace written");
    let trace4 = std::fs::read_to_string(&t4).expect("trace written");
    assert_eq!(trace1, trace4, "trace must be thread-identical");
    assert!(trace1.lines().count() > 3, "{trace1}");
    for line in trace1.lines() {
        assert!(line.starts_with(r#"{"kind":""#), "{line}");
    }
    assert!(trace1.contains(r#""stage":"sim.generate""#), "{trace1}");
    assert!(trace1.contains(r#""stage":"index.ttr_hours""#), "{trace1}");
    assert!(trace1.contains(r#""stage":"render.header""#), "{trace1}");
    // The metrics section surfaces the same collector as JSON, after
    // the v1 header line.
    let m = report(&parse(&[
        "report", "--model", "tsubame2", "--sections", "metrics", "--format", "json",
    ]))
    .expect("reports");
    assert_eq!(m.lines().count(), 2);
    assert!(m.starts_with("{\"v\":1,\"kind\":\"report\"}\n"), "{m}");
    assert!(
        m.lines()
            .nth(1)
            .unwrap()
            .starts_with(r#"{"id":"metrics","title":"Runtime metrics","data":{"#),
        "{m}"
    );
    assert!(m.contains(r#""counters":"#), "{m}");
    // Mixing the two input modes (or --seed without --model) fails.
    assert!(report(&parse(&["report", "x.fslog", "--model", "tsubame2"])).is_err());
    assert!(report(&parse(&["report", "x.fslog", "--seed", "7"])).is_err());
    std::fs::remove_file(&t1).expect("cleanup");
    std::fs::remove_file(&t4).expect("cleanup");
}

#[test]
fn watch_trace_counts_ingested_records() {
    let tp = temp_path("watch-trace.ndjson");
    let out = watch(&parse(&[
        "watch", "sim:tsubame3", "--max-records", "40",
        "--trace", tp.to_str().unwrap(),
    ]))
    .expect("watches");
    assert!(out.contains("# watch done:"));
    let trace = std::fs::read_to_string(&tp).expect("trace written");
    assert!(
        trace.contains(r#""stage":"watch.records_ingested","value":40"#),
        "{trace}"
    );
    std::fs::remove_file(&tp).expect("cleanup");
}

#[test]
fn report_since_until_filters_the_window() {
    let path = temp_path("clip.fslog");
    let p = path.to_str().unwrap();
    generate(&parse(&["generate", "--system", "tsubame3", "--out", p])).expect("generates");
    let full = report(&parse(&["report", p])).expect("reports");
    let early = report(&parse(&["report", p, "--until", "1000"])).expect("reports");
    assert_ne!(full, early, "clipping must change the report");
    // A date bound resolves against the window (T3 starts 2017-08-01).
    let dated =
        report(&parse(&["report", p, "--since", "2017-10-01"])).expect("reports");
    assert_ne!(full, dated);
    // An empty clip errors cleanly rather than panicking.
    assert!(report(&parse(&["report", p, "--since", "banana"])).is_err());
    let c = compare(&parse(&["compare", p, p, "--until", "2000"])).expect("compares");
    assert!(c.contains("MTBF"));
    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn watch_replays_a_simulation_and_alerts_on_injected_regression() {
    let out = watch(&parse(&[
        "watch",
        "sim:tsubame3",
        "--accel",
        "max",
        "--inject-mttr",
        "5.0",
    ]))
    .expect("watches");
    assert!(out.contains("# failwatch: sim:"), "{out}");
    assert!(out.contains("\"kind\":\"mttr_regression\""), "{out}");
    assert!(out.contains("# watch done:"), "{out}");
    // Deterministic across thread counts.
    let t1 = watch(&parse(&[
        "watch", "sim:tsubame3", "--inject-mttr", "5.0", "--threads", "1",
    ]))
    .expect("watches");
    let t4 = watch(&parse(&[
        "watch", "sim:tsubame3", "--inject-mttr", "5.0", "--threads", "4",
    ]))
    .expect("watches");
    assert_eq!(t1, t4);
}

#[test]
fn watch_reads_a_log_file() {
    let path = temp_path("watch.fslog");
    let p = path.to_str().unwrap();
    generate(&parse(&["generate", "--system", "tsubame2", "--out", p])).expect("generates");
    let out = watch(&parse(&["watch", p, "--baseline", "tsubame2"])).expect("watches");
    assert!(out.contains("897 records"), "{out}");
    // File sources reject sim-only flags; sim baseline name checked.
    assert!(watch(&parse(&["watch", p, "--inject-mttr", "2.0"])).is_err());
    assert!(watch(&parse(&["watch", "sim:cray"])).is_err());
    assert!(watch(&parse(&["watch", p, "--baseline", "cray"])).is_err());
    std::fs::remove_file(&path).expect("cleanup");
}

/// The ISSUE's acceptance predicate, end to end on both canonical
/// seed logs: byte-identical across thread counts, warm vs cold,
/// and against a post-hoc filtered baseline.
#[test]
fn report_where_is_byte_identical_across_threads_index_and_post_hoc() {
    const EXPR: &str = "category == gpu && ttr > 24";
    for system in ["tsubame2", "tsubame3"] {
        let path = temp_path(&format!("where-{system}.fslog"));
        let p = path.to_str().unwrap();
        let spath = format!("{p}.fsidx");
        generate(&parse(&["generate", "--system", system, "--out", p]))
            .expect("generates");

        let cold = report(&parse(&[
            "report", p, "--sections", ANALYSIS, "--where", EXPR, "--threads", "1",
        ]))
        .expect("reports");
        for threads in ["2", "4"] {
            let r = report(&parse(&[
                "report", p, "--sections", ANALYSIS, "--where", EXPR, "--threads", threads,
            ]))
            .expect("reports");
            assert_eq!(r, cold, "--threads {threads} on {system}");
        }

        // A filtered cold parse in auto mode matches too but must
        // NOT leave a snapshot behind: a filtered parse never sees
        // the whole log, and snapshots must.
        let auto = report(&parse(&[
            "report", p, "--sections", ANALYSIS, "--where", EXPR, "--index", "auto",
        ]))
        .expect("reports");
        assert_eq!(auto, cold);
        assert!(
            !std::path::Path::new(&spath).exists(),
            "filtered parse must not persist a snapshot"
        );

        // Warm snapshots compose: the .fsidx stores unfiltered
        // state and the predicate filters the decoded view.
        index_cmd(&parse(&["index", "build", p])).expect("builds");
        for mode in ["auto", "require"] {
            for threads in ["1", "4"] {
                let warm = report(&parse(&[
                    "report", p, "--sections", ANALYSIS, "--where", EXPR,
                    "--index", mode, "--threads", threads,
                ]))
                .expect("reports");
                assert_eq!(warm, cold, "--index {mode} --threads {threads} on {system}");
            }
        }

        // Post-hoc baseline: filter the same records outside the
        // pipeline, save them as a log, report that log unfiltered.
        let log = load(p).expect("loads");
        let posthoc_log = log.filtered(|r| r.category().is_gpu() && r.ttr().get() > 24.0);
        assert!(!posthoc_log.is_empty() && posthoc_log.len() < log.len());
        let bpath = temp_path(&format!("where-{system}-posthoc.fslog"));
        let b = bpath.to_str().unwrap();
        faillog::save(b, &posthoc_log).expect("saves");
        let posthoc = report(&parse(&["report", b, "--sections", ANALYSIS]))
            .expect("reports");
        assert_eq!(cold, posthoc, "pushdown must equal the post-hoc filter on {system}");

        // compare under the same filter matches an unfiltered
        // comparison of the post-hoc logs.
        let c_pushdown = compare(&parse(&["compare", p, p, "--where", EXPR]))
            .expect("compares");
        let c_posthoc = compare(&parse(&["compare", b, b])).expect("compares");
        assert_eq!(c_pushdown, c_posthoc);

        std::fs::remove_file(&path).expect("cleanup");
        std::fs::remove_file(&spath).expect("cleanup");
        std::fs::remove_file(&bpath).expect("cleanup");
    }
}

#[test]
fn where_errors_are_span_annotated_and_name_the_flag() {
    let path = temp_path("where-err.fslog");
    let p = path.to_str().unwrap();
    generate(&parse(&["generate", "--out", p])).expect("generates");
    let err = report(&parse(&["report", p, "--where", "bananas == 1"]))
        .unwrap_err()
        .to_string();
    assert!(err.starts_with("--where: unknown field `bananas`"), "{err}");
    assert!(err.contains("bananas == 1"), "{err}");
    assert!(err.contains("^^^^^^^"), "source span must be underlined: {err}");
    let err = report(&parse(&["report", p, "--where", "ttr >"]))
        .unwrap_err()
        .to_string();
    assert!(err.starts_with("--where: ") && err.contains('^'), "{err}");
    // compare and watch route through the same compiler.
    let err = compare(&parse(&["compare", p, p, "--where", "ttr = 1"]))
        .unwrap_err()
        .to_string();
    assert!(err.starts_with("--where: ") && err.contains('^'), "{err}");
    let err = watch(&parse(&["watch", p, "--where", "category == banana"]))
        .unwrap_err()
        .to_string();
    assert!(err.starts_with("--where: ") && err.contains('^'), "{err}");
    // The sugar flags name themselves, not --where.
    let err = report(&parse(&["report", p, "--since", "banana"]))
        .unwrap_err()
        .to_string();
    assert!(err.starts_with("--since: "), "{err}");
    let err = report(&parse(&["report", p, "--until", "2017-13-01"]))
        .unwrap_err()
        .to_string();
    assert!(err.starts_with("--until: "), "{err}");
    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn since_until_are_sugar_for_where_time_bounds() {
    let path = temp_path("sugar.fslog");
    let p = path.to_str().unwrap();
    generate(&parse(&["generate", "--system", "tsubame3", "--out", p]))
        .expect("generates");
    let sugar = report(&parse(&["report", p, "--since", "500", "--until", "1000"]))
        .expect("reports");
    let spelled = report(&parse(&[
        "report", p, "--where", "time >= 500 && time < 1000",
    ]))
    .expect("reports");
    assert_eq!(sugar, spelled, "--since/--until must desugar to time bounds");
    // The sugar conjoins with an explicit --where.
    let both = report(&parse(&[
        "report", p, "--where", "category == gpu", "--until", "1000",
    ]))
    .expect("reports");
    let spelled = report(&parse(&[
        "report", p, "--where", "category == gpu && time < 1000",
    ]))
    .expect("reports");
    assert_eq!(both, spelled);
    // Date bounds desugar through the same literal path.
    let dated = report(&parse(&["report", p, "--since", "2017-10-01"])).expect("reports");
    let spelled = report(&parse(&[
        "report", p, "--where", "time >= \"2017-10-01\"",
    ]))
    .expect("reports");
    assert_eq!(dated, spelled);
    // The model path honours the same filter flags.
    let m = report(&parse(&[
        "report", "--model", "tsubame3", "--sections", ANALYSIS, "--where", "category == gpu",
    ]))
    .expect("reports");
    let full = report(&parse(&["report", "--model", "tsubame3", "--sections", ANALYSIS]))
        .expect("reports");
    assert_ne!(m, full, "the filter must scope the generated log");
    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn watch_where_scopes_the_monitor_and_tags_alerts() {
    let path = temp_path("watch-where.fslog");
    let p = path.to_str().unwrap();
    generate(&parse(&["generate", "--system", "tsubame2", "--out", p]))
        .expect("generates");
    let out = watch(&parse(&[
        "watch", p, "--baseline", "tsubame2", "--where", "category == gpu",
    ]))
    .expect("watches");
    assert!(out.contains("# filter: category == gpu"), "{out}");
    assert!(
        !out.contains("897 records"),
        "the monitor must see only the filtered stream: {out}"
    );
    let alerts: Vec<&str> = out.lines().filter(|l| l.starts_with('{')).collect();
    for line in &alerts {
        assert!(
            line.ends_with("\"filter\":\"category == gpu\"}"),
            "every alert must carry the filter expression: {line}"
        );
    }
    // JSON mode stays pure NDJSON (the banner is text-only).
    let json = watch(&parse(&[
        "watch", p, "--baseline", "tsubame2", "--where", "category == gpu",
        "--format", "json",
    ]))
    .expect("watches");
    for line in json.lines() {
        assert!(line.starts_with('{'), "{line}");
    }
    // A filtered watch must never persist its (filtered) index.
    let err = watch(&parse(&[
        "watch", p, "--where", "category == gpu", "--index", "auto",
    ]))
    .unwrap_err()
    .to_string();
    assert!(err.contains("--index auto"), "{err}");
    assert!(err.contains("--where category == gpu"), "{err}");
    assert!(!std::path::Path::new(&format!("{p}.fsidx")).exists());
    std::fs::remove_file(&path).expect("cleanup");
}

/// Satellite: every invalid flag combination names the offending
/// flag and its value.
#[test]
fn flag_rejections_name_the_flag_and_value() {
    let path = temp_path("reject.fslog");
    let p = path.to_str().unwrap();
    generate(&parse(&["generate", "--out", p])).expect("generates");
    let msg = |r: Result<String>| r.unwrap_err().to_string();
    let m = msg(watch(&parse(&["watch", "sim:tsubame3", "--parse-chunk", "512"])));
    assert!(m.contains("--parse-chunk 512") && m.contains("sim:tsubame3"), "{m}");
    let m = msg(watch(&parse(&["watch", "sim:tsubame3", "--index", "off"])));
    assert!(m.contains("--index off") && m.contains("sim:tsubame3"), "{m}");
    let m = msg(watch(&parse(&["watch", p, "--inject-mttr", "2.0"])));
    assert!(m.contains("--inject-mttr 2.0") && m.contains(p), "{m}");
    let m = msg(watch(&parse(&["watch", p, "--accel", "3"])));
    assert!(m.contains("--accel 3"), "{m}");
    let m = msg(report(&parse(&["report", "--model", "tsubame2", "--index", "auto"])));
    assert!(m.contains("--index auto") && m.contains("tsubame2"), "{m}");
    let m = msg(report(&parse(&["report", p, "--seed", "7"])));
    assert!(m.contains("--seed 7"), "{m}");
    // --index require on a snapshotless log while --where is active
    // names both flags (and the fix is still an unfiltered build).
    let m = msg(report(&parse(&["report", p, "--index", "require", "--where", "ttr > 1"])));
    assert!(m.contains("--index require"), "{m}");
    assert!(m.contains("--where ttr > 1"), "{m}");
    assert!(m.contains("failctl index build"), "{m}");
    std::fs::remove_file(&path).expect("cleanup");
}
